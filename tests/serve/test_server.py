"""End-to-end tests for the asyncio job server (repro.serve.server).

Each test spins a real server on an ephemeral TCP port inside one
``asyncio.run`` and talks to it with the hand-rolled client — the same
wire path ``repro serve-bench`` and the CI smoke job exercise.
"""

import asyncio
import glob
import json

import numpy as np
import pytest

from repro.core.assemble import assemble_chunks
from repro.core.chunks import ChunkGrid
from repro.core.executor import execute_chunk_grid
from repro.core.governor.integrity import crc32_matrix
from repro.core.verify import verify_product
from repro.observability import validate_chrome_trace
from repro.sparse.formats import CSRMatrix
from repro.serve import ServeClient, ServeError, ServerConfig, SpgemmServer
from repro.serve.jobs import resolve_operand

A_SPEC = {"gen": {"family": "banded", "n": 256, "bandwidth": 4, "seed": 1}}
B_SPEC = {"gen": {"family": "banded", "n": 256, "bandwidth": 4, "seed": 2}}
GRID = [2, 1]


def serve(coro_fn, config=None):
    """Run ``await coro_fn(server, client)`` against a live server."""

    async def main():
        server = SpgemmServer(config or ServerConfig(slots=4))
        await server.start()
        client = ServeClient(*server.address)
        try:
            return await coro_fn(server, client)
        finally:
            await server.stop()

    return asyncio.run(main())


def job_payload(**overrides):
    payload = {"a": A_SPEC, "b": B_SPEC, "grid": GRID}
    payload.update(overrides)
    return payload


def local_product():
    a = resolve_operand(A_SPEC)
    b = resolve_operand(B_SPEC)
    grid = ChunkGrid.regular(a.n_rows, b.n_cols, *GRID)
    _, outputs = execute_chunk_grid(a, b, grid, workers=1, keep_outputs=True)
    return a, b, assemble_chunks(outputs)


class TestEndToEnd:
    def test_ten_concurrent_jobs_shared_operands(self):
        # ten overlapping jobs over one operand pair: every result must
        # match the single-run engine bit-for-bit and the repeated
        # operands must come out of the cache, not be rebuilt
        async def run(server, client):
            health = await client.health()
            assert health["ok"] is True
            payloads = [job_payload(tenant=f"t{i % 3}") for i in range(10)]
            snapshots = await asyncio.gather(
                *(client.submit_job(p) for p in payloads)
            )
            # the done event fires before the scheduler's bookkeeping
            # finishes; drain it so the counters below are final
            await asyncio.get_running_loop().run_in_executor(
                None, server.scheduler.wait_idle, 10.0
            )
            stats = await client.stats()
            return snapshots, stats

        snapshots, stats = serve(run)
        _, _, expected = local_product()
        expected_crc = crc32_matrix(expected)
        assert len(snapshots) == 10
        for snap in snapshots:
            assert snap["state"] == "done", snap.get("error")
            assert snap["result"]["crc32"] == expected_crc
            assert snap["result"]["nnz"] == expected.nnz
            assert snap["chunks_done"] == snap["chunks_total"] == 2
        # 20 operand resolutions, only the first build of each side may
        # miss; concurrent first arrivals dedup inside get_or_put
        assert stats["cache"]["hit_rate"] > 0.5
        assert stats["scheduler"]["completed"] == 10
        assert stats["scheduler"]["overcommits"] == 0
        assert (stats["host_mem_peak_reserved"]
                <= stats["scheduler"]["host_budget_bytes"])

    def test_result_matches_scipy_oracle(self):
        async def run(server, client):
            return await client.submit_job(job_payload(return_result=True))

        snap = serve(run)
        assert snap["state"] == "done"
        arrays = snap["result"]["matrix"]
        got = CSRMatrix(*arrays["shape"],
                        np.asarray(arrays["row_offsets"]),
                        np.asarray(arrays["col_ids"]),
                        np.asarray(arrays["data"]))
        a, b, expected = local_product()
        assert got == expected
        assert verify_product(got, a, b)

    def test_wait_false_returns_queued_then_polls_to_done(self):
        async def run(server, client):
            queued = await client.submit_job(job_payload(wait=False))
            assert queued["state"] in ("queued", "admitted", "running",
                                       "done")
            job_id = queued["job_id"]
            for _ in range(200):
                snap = await client.job(job_id)
                if snap["state"] in ("done", "failed"):
                    return snap
                await asyncio.sleep(0.02)
            return snap

        snap = serve(run)
        assert snap["state"] == "done"

    def test_unix_socket_transport(self, tmp_path):
        sock = str(tmp_path / "serve.sock")

        async def run(server, client):
            unix_client = ServeClient(unix_socket=sock)
            snap = await unix_client.submit_job(job_payload())
            assert snap["state"] == "done"
            return await unix_client.health()

        health = serve(run, ServerConfig(slots=2, unix_socket=sock))
        assert health["ok"] is True


class TestStreaming:
    def test_event_stream_order_and_chunk_feed(self):
        async def run(server, client):
            events = []
            async for event in client.stream_job(job_payload()):
                events.append(event)
            return events

        events = serve(run)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        # lifecycle events arrive in causal order with one chunk event
        # per completed chunk in between
        assert kinds.index("queued") < kinds.index("admitted") \
            < kinds.index("started") < kinds.index("done")
        assert kinds.count("chunk") == GRID[0] * GRID[1]
        done = events[-1]
        assert done["result"]["nnz"] > 0


class TestOperandUpload:
    def test_hash_spec_round_trip(self):
        async def run(server, client):
            first = await client.upload_operand(A_SPEC)
            again = await client.upload_operand(A_SPEC)
            assert first["hash"] == again["hash"]
            assert not first["cached"] and again["cached"]
            snap = await client.submit_job(
                job_payload(a={"hash": first["hash"]})
            )
            return snap

        snap = serve(run)
        assert snap["state"] == "done"
        assert snap["cache"]["a"] is True

    def test_unknown_hash_rejects(self):
        async def run(server, client):
            with pytest.raises(ServeError) as exc_info:
                await client.submit_job(job_payload(a={"hash": "f" * 64}))
            return exc_info.value

        err = serve(run)
        assert err.status == 400
        assert "not in the cache" in err.payload["error"]


class TestValidation:
    def test_unknown_field_rejects(self):
        async def run(server, client):
            with pytest.raises(ServeError) as exc_info:
                await client.submit_job(job_payload(frobnicate=1))
            return exc_info.value

        err = serve(run)
        assert err.status == 400

    def test_mismatched_shapes_reject(self):
        async def run(server, client):
            bad_b = {"gen": {"family": "banded", "n": 128}}
            with pytest.raises(ServeError) as exc_info:
                await client.submit_job(job_payload(b=bad_b))
            return exc_info.value

        err = serve(run)
        assert err.status == 400
        assert "do not chain" in err.payload["error"]

    def test_unknown_routes_404(self):
        async def run(server, client):
            with pytest.raises(ServeError) as exc_info:
                await client.request("GET", "/v1/nope")
            assert exc_info.value.status == 404
            with pytest.raises(ServeError) as exc_info:
                await client.job(999999)
            assert exc_info.value.status == 404

        serve(run)


class TestObservability:
    def test_per_job_chrome_trace_is_valid(self, tmp_path):
        async def run(server, client):
            return await client.submit_job(job_payload(trace=True))

        snap = serve(run, ServerConfig(slots=2, trace_dir=str(tmp_path)))
        assert snap["state"] == "done"
        trace_path = snap["result"]["trace"]
        with open(trace_path) as fh:
            events = validate_chrome_trace(json.load(fh))
        assert events, "trace exported no events"

    def test_server_stop_leaves_no_shm_segments(self):
        async def run(server, client):
            await client.submit_job(job_payload())
            return server.cache.prefix

        prefix = serve(run)
        assert not glob.glob(f"/dev/shm/{prefix}*")
