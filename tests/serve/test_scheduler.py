"""Tests for cross-job admission + fair queueing (repro.serve.scheduler)."""

import threading
import time

import pytest

from repro.observability import Tracer
from repro.serve.jobs import JobRecord, JobSpec, JobState
from repro.serve.scheduler import FairQueue, JobScheduler, TenantQuota

A = {"gen": {"family": "banded", "n": 32}}


def make_record(tenant="default", cost=1000):
    record = JobRecord(spec=JobSpec(a_spec=A, b_spec=A, tenant=tenant))
    record.cost_bytes = cost
    return record


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(weight=0.0)
        with pytest.raises(ValueError):
            TenantQuota(max_concurrent=0)
        with pytest.raises(ValueError):
            TenantQuota(max_queued=0)


class TestFairQueue:
    def test_fifo_for_equal_weight_and_cost(self):
        q = FairQueue()
        records = [make_record() for _ in range(3)]
        for r in records:
            q.push(r, 100.0, 1.0)
        popped = [q.pop_eligible(lambda r: True)[2] for _ in range(3)]
        assert [p.job_id for p in popped] == [r.job_id for r in records]

    def test_heavier_tenant_gets_proportionally_more_slots(self):
        # equal costs, weight 2 vs 1: tenant "big" accrues virtual time
        # half as fast, so its backlog interleaves 2:1 ahead of "small"
        q = FairQueue()
        for _ in range(4):
            q.push(make_record("big"), 100.0, 2.0)
        for _ in range(4):
            q.push(make_record("small"), 100.0, 1.0)
        order = [q.pop_eligible(lambda r: True)[2].spec.tenant
                 for _ in range(6)]
        assert order.count("big") == 4
        assert order.count("small") == 2

    def test_expensive_jobs_advance_the_virtual_clock_faster(self):
        # same weight, 10x cost: the expensive tenant's backlog accrues
        # virtual time so fast the cheap tenant's whole backlog goes
        # first — byte-weighted fairness, not job-count fairness
        q = FairQueue()
        q.push(make_record("heavy"), 1000.0, 1.0)
        q.push(make_record("heavy"), 1000.0, 1.0)
        for _ in range(3):
            q.push(make_record("light"), 100.0, 1.0)
        order = [q.pop_eligible(lambda r: True)[2].spec.tenant
                 for _ in range(5)]
        assert order == ["light", "light", "light", "heavy", "heavy"]

    def test_pop_eligible_skips_but_preserves_ineligible(self):
        q = FairQueue()
        blocked = make_record("blocked")
        runnable = make_record("ok")
        q.push(blocked, 100.0, 1.0)
        q.push(runnable, 100.0, 1.0)
        got = q.pop_eligible(lambda r: r.spec.tenant != "blocked")
        assert got[2] is runnable
        assert len(q) == 1
        # once eligible again, the skipped job pops in its original slot
        got = q.pop_eligible(lambda r: True)
        assert got[2] is blocked

    def test_requeue_front_restores_position(self):
        q = FairQueue()
        first = make_record()
        second = make_record()
        q.push(first, 100.0, 1.0)
        q.push(second, 100.0, 1.0)
        item = q.pop_eligible(lambda r: True)
        q.requeue_front(item)
        assert q.pop_eligible(lambda r: True)[2] is first

    def test_pop_on_empty(self):
        assert FairQueue().pop_eligible(lambda r: True) is None


def run_scheduler(records, *, runner, timeout=30.0, **kwargs):
    sched = JobScheduler(runner, **kwargs)
    sched.start()
    try:
        for r in records:
            accepted, reason = sched.submit(r)
            assert accepted, reason
        assert sched.wait_idle(timeout), "scheduler did not drain"
    finally:
        sched.stop()
    return sched


class TestJobScheduler:
    def test_runs_all_jobs(self):
        done = []

        def runner(record):
            with record.lock:
                record.state = JobState.DONE
            done.append(record.job_id)

        records = [make_record() for _ in range(8)]
        sched = run_scheduler(records, runner=runner, slots=3,
                              host_budget_bytes=1 << 20)
        assert sorted(done) == sorted(r.job_id for r in records)
        assert sched.completed == 8 and sched.failed == 0

    def test_runner_exception_marks_failed(self):
        def runner(record):
            raise RuntimeError("kaboom")

        record = make_record()
        sched = run_scheduler([record], runner=runner,
                              host_budget_bytes=1 << 20)
        assert record.state is JobState.FAILED
        assert "kaboom" in record.error
        assert sched.failed == 1

    def test_max_queued_rejects_excess_backlog(self):
        release = threading.Event()

        def runner(record):
            release.wait(10.0)
            with record.lock:
                record.state = JobState.DONE

        quota = TenantQuota(max_concurrent=1, max_queued=2)
        sched = JobScheduler(runner, slots=1, host_budget_bytes=1 << 20,
                             default_quota=quota)
        sched.start()
        try:
            results = [sched.submit(make_record()) for _ in range(4)]
            accepted = [ok for ok, _ in results]
            # slot takes one off the queue quickly, so 3 fit (1 running
            # + 2 queued at most); the 4th must bounce with a reason
            assert accepted.count(False) >= 1
            reason = next(r for ok, r in results if not ok)
            assert "max_queued" in reason
            assert sched.rejected >= 1
            release.set()
            assert sched.wait_idle(10.0)
        finally:
            release.set()
            sched.stop()

    def test_max_concurrent_caps_one_tenant_not_others(self):
        running = {"cap": 0, "free": 0}
        peak = {"cap": 0, "free": 0}
        lock = threading.Lock()

        def runner(record):
            tenant = record.spec.tenant
            with lock:
                running[tenant] += 1
                peak[tenant] = max(peak[tenant], running[tenant])
            time.sleep(0.05)
            with lock:
                running[tenant] -= 1
            with record.lock:
                record.state = JobState.DONE

        records = [make_record("cap") for _ in range(4)]
        records += [make_record("free") for _ in range(4)]
        run_scheduler(
            records, runner=runner, slots=4, host_budget_bytes=1 << 20,
            quotas={"cap": TenantQuota(max_concurrent=1)},
            default_quota=TenantQuota(max_concurrent=4),
        )
        assert peak["cap"] == 1, "capped tenant exceeded max_concurrent"
        assert peak["free"] >= 2, "uncapped tenant should overlap"

    def test_ledger_never_overcommits(self):
        # the acceptance gauge: jobs costing 0.6x budget each can never
        # overlap, and the host_mem gauge stream proves reserved bytes
        # stayed under the ceiling for the whole run
        budget = 10_000
        tracer = Tracer()
        overlap = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def runner(record):
            with lock:
                overlap["now"] += 1
                overlap["peak"] = max(overlap["peak"], overlap["now"])
            time.sleep(0.03)
            with lock:
                overlap["now"] -= 1
            with record.lock:
                record.state = JobState.DONE

        records = [make_record(cost=6_000) for _ in range(6)]
        sched = run_scheduler(records, runner=runner, slots=4,
                              host_budget_bytes=budget, tracer=tracer)
        assert overlap["peak"] == 1, "two 0.6-budget jobs overlapped"
        stats = sched.stats()
        assert stats["overcommits"] == 0
        assert stats["host_peak_bytes"] <= budget
        reserved_peak = tracer.gauge_max("host_mem", "reserved")
        assert reserved_peak is not None and reserved_peak <= budget

    def test_admission_packs_jobs_under_the_ceiling(self):
        budget = 10_000
        tracer = Tracer()

        def runner(record):
            time.sleep(0.02)
            with record.lock:
                record.state = JobState.DONE

        records = [make_record(cost=3_000) for _ in range(9)]
        sched = run_scheduler(records, runner=runner, slots=4,
                              host_budget_bytes=budget, tracer=tracer)
        stats = sched.stats()
        assert stats["overcommits"] == 0
        # three 3k jobs fit concurrently; a fourth would break 10k
        assert tracer.gauge_max("host_mem", "reserved") <= budget

    def test_oversized_job_runs_alone_as_counted_overcommit(self):
        # a job bigger than the whole budget must not deadlock the
        # queue: the minimum-progress escape admits it alone
        def runner(record):
            with record.lock:
                record.state = JobState.DONE

        record = make_record(cost=1 << 30)
        sched = run_scheduler([record], runner=runner, slots=2,
                              host_budget_bytes=1 << 20)
        assert record.state is JobState.DONE
        assert sched.stats()["overcommits"] == 1

    def test_submit_after_stop_refuses(self):
        sched = JobScheduler(lambda r: None, host_budget_bytes=1 << 20)
        sched.start()
        sched.stop()
        accepted, reason = sched.submit(make_record())
        assert not accepted and "shut down" in reason


class TestShardPlacement:
    def test_least_loaded_pick_and_release(self):
        from repro.distributed.sharding import ShardPlacement

        p = ShardPlacement(3)
        picks = [p.pick(100) for _ in range(3)]
        assert sorted(picks) == [0, 1, 2]      # spreads before stacking
        p.release(1, 100)
        assert p.pick(100) == 1                # freed shard is least loaded
        snap = p.snapshot()
        assert snap["running"] == [1, 1, 1]
        assert sum(snap["placed_total"]) == 4

    def test_reserved_bytes_break_ties(self):
        from repro.distributed.sharding import ShardPlacement

        p = ShardPlacement(2)
        assert p.pick(10_000) == 0
        assert p.pick(100) == 1
        p.release(0, 10_000)
        p.release(1, 100)
        # equal running counts: the lighter-history shard is irrelevant,
        # reserved bytes are live state — both are zero again, so the
        # lowest id wins deterministically
        assert p.pick(0) == 0

    def test_scheduler_places_jobs_across_shards(self):
        seen = []
        lock = threading.Lock()

        def runner(record):
            time.sleep(0.02)
            with lock:
                seen.append(record.shard)
            with record.lock:
                record.state = JobState.DONE

        records = [make_record(cost=100) for _ in range(12)]
        sched = run_scheduler(records, runner=runner, slots=6, shards=3,
                              host_budget_bytes=1 << 20)
        assert len(seen) == 12 and None not in seen
        assert set(seen) == {0, 1, 2}          # every shard served jobs
        stats = sched.stats()
        assert stats["shards"] == 3
        snap = stats["placement"]
        assert snap["running"] == [0, 0, 0]    # everything released
        assert sum(snap["placed_total"]) == 12

    def test_admission_stays_global_across_shards(self):
        # two 0.6-budget jobs on different shard pools must still never
        # overlap: placement decides where, the one ledger decides when
        overlap = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def runner(record):
            with lock:
                overlap["now"] += 1
                overlap["peak"] = max(overlap["peak"], overlap["now"])
            time.sleep(0.03)
            with lock:
                overlap["now"] -= 1
            with record.lock:
                record.state = JobState.DONE

        records = [make_record(cost=6_000) for _ in range(5)]
        sched = run_scheduler(records, runner=runner, slots=4, shards=4,
                              host_budget_bytes=10_000)
        assert overlap["peak"] == 1
        assert sched.stats()["overcommits"] == 0

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            JobScheduler(lambda r: None, host_budget_bytes=1 << 20,
                         shards=0)


class TestShardHealth:
    def test_mark_down_steers_pick_away(self):
        from repro.distributed.sharding import ShardPlacement

        p = ShardPlacement(3)
        p.mark_down(1)
        picks = [p.pick(0) for _ in range(6)]
        assert 1 not in picks
        assert set(picks) == {0, 2}
        assert p.snapshot()["down"] == [1]

    def test_mark_up_restores_placement(self):
        from repro.distributed.sharding import ShardPlacement

        p = ShardPlacement(2)
        p.mark_down(0)
        assert p.pick(0) == 1
        p.mark_up(0)
        assert p.snapshot()["down"] == []
        # shard 0 is back and less loaded than 1
        assert p.pick(0) == 0

    def test_all_down_falls_back_to_everyone(self):
        from repro.distributed.sharding import ShardPlacement

        p = ShardPlacement(2)
        p.mark_down(0)
        p.mark_down(1)
        # jobs must not queue forever: with no healthy shard, place
        # anywhere (callers degrade those spans in-process)
        assert {p.pick(0), p.pick(0)} == {0, 1}

    def test_scheduler_set_shard_health(self):
        seen = []
        lock = threading.Lock()

        def runner(record):
            with lock:
                seen.append(record.shard)
            with record.lock:
                record.state = JobState.DONE

        sched = JobScheduler(runner, slots=2, shards=2,
                             host_budget_bytes=1 << 20)
        with pytest.raises(ValueError):
            sched.set_shard_health(2, False)
        # the transport pool's on_worker_lost hook shape
        sched.set_shard_health(1, False)
        sched.start()
        try:
            for r in [make_record(cost=10) for _ in range(4)]:
                accepted, reason = sched.submit(r)
                assert accepted, reason
            assert sched.wait_idle(10.0)
        finally:
            sched.stop()
        assert seen and set(seen) == {0}       # shard 1 never placed
        sched.set_shard_health(1, True)
        assert sched.stats()["placement"]["down"] == []
