"""Tests for the content-addressed shared operand cache (repro.serve.cache)."""

import glob

import numpy as np
import pytest

from repro.core.assemble import assemble_chunks
from repro.core.chunks import ChunkGrid
from repro.core.executor import execute_chunk_grid
from repro.core.governor.integrity import crc32_matrix
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr
from repro.serve.cache import OperandCache, content_hash


def leaked(prefix):
    return glob.glob(f"/dev/shm/{prefix}*")


def tiny(seed, n=12, nnz=40):
    return random_csr(n, n, nnz, seed=seed)


class TestContentHash:
    def test_identical_matrices_hash_equal(self):
        m = tiny(1)
        copy = CSRMatrix(m.n_rows, m.n_cols, m.row_offsets.copy(),
                         m.col_ids.copy(), m.data.copy())
        assert content_hash(m) == content_hash(copy)

    def test_same_shape_different_values_hash_differently(self):
        # identical sparsity pattern, values differ: the classic
        # collision hazard for structure-only keys
        m = tiny(2)
        other = CSRMatrix(m.n_rows, m.n_cols, m.row_offsets.copy(),
                          m.col_ids.copy(), m.data * 2.0)
        assert m.shape == other.shape
        np.testing.assert_array_equal(m.col_ids, other.col_ids)
        assert content_hash(m) != content_hash(other)

    def test_same_values_different_structure_hash_differently(self):
        a = banded(16, 2, seed=3)
        b = banded(16, 3, seed=3)
        assert content_hash(a) != content_hash(b)

    def test_shape_is_part_of_the_digest(self):
        # an empty 4x6 and an empty 6x4 share all three (empty) arrays
        a = CSRMatrix.empty(4, 6)
        b = CSRMatrix.empty(6, 4)
        assert content_hash(a) != content_hash(b)


class TestGetOrPut:
    def test_miss_then_hit(self):
        with OperandCache(1 << 20, run_id="t") as cache:
            m = tiny(4)
            lease1, hit1 = cache.get_or_put(m)
            lease2, hit2 = cache.get_or_put(m)
            assert (hit1, hit2) == (False, True)
            assert lease1.key == lease2.key
            assert cache.hits == 1 and cache.misses == 1
            lease1.release()
            lease2.release()

    def test_same_shape_different_values_get_distinct_entries(self):
        with OperandCache(1 << 20, run_id="t") as cache:
            m = tiny(5)
            other = CSRMatrix(m.n_rows, m.n_cols, m.row_offsets.copy(),
                              m.col_ids.copy(), m.data + 1.0)
            la, hit_a = cache.get_or_put(m)
            lb, hit_b = cache.get_or_put(other)
            assert not hit_b, "different values must not hit the same entry"
            assert la.key != lb.key
            np.testing.assert_array_equal(la.matrix.data, m.data)
            np.testing.assert_array_equal(lb.matrix.data, other.data)
            la.release()
            lb.release()

    def test_leased_matrix_is_zero_copy(self):
        with OperandCache(1 << 20, run_id="t") as cache:
            lease, _ = cache.get_or_put(tiny(6))
            view = lease.matrix
            assert view.data.base is not None
            assert not view.data.flags.owndata
            lease.release()

    def test_lease_release_is_idempotent_and_context_managed(self):
        with OperandCache(1 << 20, run_id="t") as cache:
            lease, _ = cache.get_or_put(tiny(7))
            with lease:
                pass
            lease.release()  # second release: no underflow
            release = cache.lease(lease.key)
            assert release is not None
            release.release()

    def test_uncounted_probe_does_not_skew_hit_rate(self):
        with OperandCache(1 << 20, run_id="t") as cache:
            assert cache.lease("0" * 64) is None
            assert cache.misses == 0
            assert cache.lease("0" * 64, count=True) is None
            assert cache.misses == 1


class TestEviction:
    def test_pinned_entries_survive_budget_pressure(self):
        m1, m2, m3 = tiny(10, n=64, nnz=400), tiny(11, n=64, nnz=400), \
            tiny(12, n=64, nnz=400)
        nbytes = (64 + 1) * 8 + 400 * 16
        # budget fits ~1.5 operands: inserting three must evict, but
        # never an entry a job still holds a lease on
        with OperandCache(int(nbytes * 1.5), run_id="t") as cache:
            l1, _ = cache.get_or_put(m1)
            l2, _ = cache.get_or_put(m2)
            l3, _ = cache.get_or_put(m3)
            assert cache.held_bytes > cache.max_bytes
            assert cache.evictions == 0
            # every pinned matrix still reads back intact
            np.testing.assert_array_equal(l1.matrix.data, m1.data)
            np.testing.assert_array_equal(l2.matrix.data, m2.data)
            np.testing.assert_array_equal(l3.matrix.data, m3.data)
            # releasing the oldest lets pressure evict it (l3 stays: it
            # is both pinned and freshest)
            l1.release()
            assert cache.evictions == 1
            assert cache.lease(l1.key) is None
            assert cache.lease(l2.key) is not None  # still pinned
            l2.release()
            l3.release()

    def test_freshest_entry_survives_even_alone_over_budget(self):
        m = tiny(13, n=64, nnz=400)
        with OperandCache(16, run_id="t") as cache:  # absurdly small
            lease, _ = cache.get_or_put(m)
            lease.release()
            assert cache.stats()["entries"] == 1
            again = cache.lease(content_hash(m))
            assert again is not None
            again.release()

    def test_eviction_drops_spec_aliases(self):
        big = tiny(14, n=64, nnz=400)
        small = tiny(15, n=8, nnz=10)
        with OperandCache((8 + 1) * 8 + 10 * 16 + 8, run_id="t") as cache:
            lease, _ = cache.get_or_put(big)
            cache.alias('{"gen":1}', lease.key)
            assert cache.lookup_alias('{"gen":1}') == lease.key
            lease.release()
            l2, _ = cache.get_or_put(small)  # evicts big
            assert cache.lookup_alias('{"gen":1}') is None
            l2.release()


class TestSharedOperandResults:
    def test_two_jobs_sharing_one_cached_operand_bit_identical(self):
        # the acceptance property: a run whose A operand is the cache's
        # zero-copy view produces the byte-for-byte product of a run on
        # the original private matrix
        a = random_csr(96, 96, 900, seed=20)
        b = random_csr(96, 96, 900, seed=21)
        grid = ChunkGrid.regular(a.n_rows, b.n_cols, 3, 1)

        def product(a_mat, b_mat):
            _, outputs = execute_chunk_grid(a_mat, b_mat, grid,
                                            workers=1, keep_outputs=True)
            return assemble_chunks(outputs)

        baseline = product(a, b)
        with OperandCache(1 << 22, run_id="t") as cache:
            lease_one, _ = cache.get_or_put(a)
            lease_two, hit = cache.get_or_put(a)
            assert hit
            got_one = product(lease_one.matrix, b)
            got_two = product(lease_two.matrix, b)
            lease_one.release()
            lease_two.release()
        for got in (got_one, got_two):
            assert got == baseline
            assert crc32_matrix(got) == crc32_matrix(baseline)
            np.testing.assert_array_equal(got.data, baseline.data)


class TestLifecycle:
    def test_close_unlinks_all_segments(self):
        cache = OperandCache(1 << 20, run_id="t")
        prefix = cache.prefix
        lease, _ = cache.get_or_put(tiny(30))
        assert leaked(prefix)
        cache.close()
        assert not leaked(prefix)
        cache.close()  # idempotent
        with pytest.raises(RuntimeError):
            cache.get_or_put(tiny(31))

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            OperandCache(0)
