"""Property-based tests of the discrete-event engine.

Invariants checked over random schedules:
* starts respect dependencies and stream order;
* a resource never exceeds its capacity;
* the makespan is at least the critical path and at least the per-resource
  total work divided by capacity;
* execution is deterministic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.engine import SimEngine


@st.composite
def random_schedules(draw):
    """A random DAG over 2 resources and up to 3 streams."""
    n_ops = draw(st.integers(1, 25))
    ops = []
    for i in range(n_ops):
        resource = draw(st.sampled_from(["r0", "r1"]))
        duration = draw(st.floats(0.0, 5.0))
        stream = draw(st.sampled_from([None, "s0", "s1", "s2"]))
        # deps only on earlier ops -> acyclic by construction
        n_deps = draw(st.integers(0, min(i, 3)))
        deps = sorted(draw(st.sets(st.integers(0, i - 1), min_size=n_deps, max_size=n_deps))) if i else []
        ops.append((resource, duration, stream, deps))
    return ops


def build_and_run(ops, capacities=(1, 1)):
    eng = SimEngine()
    eng.add_resource("r0", capacity=capacities[0])
    eng.add_resource("r1", capacity=capacities[1])
    handles = []
    for i, (resource, duration, stream, deps) in enumerate(ops):
        handles.append(
            eng.submit(f"op{i}", resource, duration,
                       deps=[handles[d] for d in deps], stream=stream)
        )
    return eng.run(), handles


class TestEngineProperties:
    @given(ops=random_schedules())
    @settings(max_examples=120, deadline=None, print_blob=True)
    def test_dependencies_respected(self, ops):
        tl, _ = build_and_run(ops)
        recs = {r.label: r for r in tl.records}
        for i, (_, _, stream, deps) in enumerate(ops):
            for d in deps:
                assert recs[f"op{i}"].start >= recs[f"op{d}"].end - 1e-12
        # stream order
        last_end = {}
        for i, (_, _, stream, _) in enumerate(ops):
            if stream is None:
                continue
            if stream in last_end:
                assert recs[f"op{i}"].start >= last_end[stream] - 1e-12
            last_end[stream] = recs[f"op{i}"].end

    @given(ops=random_schedules(), caps=st.tuples(st.integers(1, 3), st.integers(1, 3)))
    @settings(max_examples=80, deadline=None, print_blob=True)
    def test_capacity_never_exceeded(self, ops, caps):
        tl, _ = build_and_run(ops, caps)
        for resource, cap in zip(("r0", "r1"), caps):
            events = []
            for r in tl.ops_on(resource):
                if r.duration > 0:
                    events.append((r.start, 1))
                    events.append((r.end, -1))
            events.sort()
            level = 0
            for _, delta in events:
                level += delta
                assert level <= cap

    @given(ops=random_schedules())
    @settings(max_examples=80, deadline=None, print_blob=True)
    def test_makespan_lower_bounds(self, ops):
        tl, _ = build_and_run(ops)
        # per-resource work bound (capacity 1)
        for resource in ("r0", "r1"):
            work = sum(d for res, d, _, _ in ops if res == resource)
            assert tl.makespan() >= work - 1e-9
        # critical-path bound
        dist = [0.0] * len(ops)
        for i, (_, duration, _, deps) in enumerate(ops):
            dist[i] = duration + max((dist[d] for d in deps), default=0.0)
        assert tl.makespan() >= max(dist, default=0.0) - 1e-9

    @given(ops=random_schedules())
    @settings(max_examples=50, deadline=None, print_blob=True)
    def test_deterministic(self, ops):
        t1, _ = build_and_run(ops)
        t2, _ = build_and_run(ops)
        assert [(r.label, r.start, r.end) for r in t1.records] == [
            (r.label, r.start, r.end) for r in t2.records
        ]

    @given(ops=random_schedules())
    @settings(max_examples=50, deadline=None, print_blob=True)
    def test_all_ops_complete(self, ops):
        tl, _ = build_and_run(ops)
        assert len(tl.records) == len(ops)
        for r in tl.records:
            assert r.end >= r.start >= 0.0
