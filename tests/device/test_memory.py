"""Tests for the device memory managers (paper Section IV.B)."""

import pytest

from repro.device.memory import (
    ALIGNMENT,
    DeviceOutOfMemory,
    DynamicAllocator,
    MemoryPool,
)


class TestMemoryPool:
    def test_offsets_bump_incrementally(self):
        pool = MemoryPool(4096)
        a = pool.alloc(100, tag="a")
        b = pool.alloc(100, tag="b")
        assert a.offset == 0
        assert b.offset == ALIGNMENT  # 100 rounded up

    def test_alignment(self):
        pool = MemoryPool(4096)
        a = pool.alloc(1)
        assert a.nbytes == ALIGNMENT

    def test_oom(self):
        pool = MemoryPool(512)
        pool.alloc(256)
        with pytest.raises(DeviceOutOfMemory, match="pool exhausted"):
            pool.alloc(512)

    def test_reset_recycles(self):
        pool = MemoryPool(512)
        pool.alloc(512)
        pool.reset()
        pool.alloc(512)  # fits again
        assert pool.used == 512

    def test_high_water_survives_reset(self):
        pool = MemoryPool(1024)
        pool.alloc(1024)
        pool.reset()
        pool.alloc(256)
        assert pool.high_water == 1024

    def test_live_allocations(self):
        pool = MemoryPool(1024)
        pool.alloc(10, tag="x")
        pool.alloc(10, tag="y")
        assert [a.tag for a in pool.live_allocations] == ["x", "y"]
        pool.reset()
        assert pool.live_allocations == []

    def test_zero_byte_alloc(self):
        pool = MemoryPool(256)
        a = pool.alloc(0)
        assert a.nbytes == 0

    def test_negative_alloc(self):
        with pytest.raises(ValueError):
            MemoryPool(256).alloc(-1)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            MemoryPool(0)


class TestDynamicAllocator:
    def test_alloc_free_cycle(self):
        da = DynamicAllocator(1024)
        a = da.alloc(512)
        assert da.used == 512
        da.free(a)
        assert da.used == 0
        assert da.live_count == 0

    def test_event_count_tracks_calls(self):
        da = DynamicAllocator(4096)
        a = da.alloc(10)
        b = da.alloc(10)
        da.free(a)
        assert da.event_count == 3  # the stream-serialization hazards

    def test_oom_respects_live_memory(self):
        da = DynamicAllocator(1024)
        a = da.alloc(768)
        with pytest.raises(DeviceOutOfMemory, match="OOM"):
            da.alloc(512)
        da.free(a)
        da.alloc(512)

    def test_double_free(self):
        da = DynamicAllocator(1024)
        a = da.alloc(10)
        da.free(a)
        with pytest.raises(ValueError, match="double free"):
            da.free(a)

    def test_free_all(self):
        da = DynamicAllocator(4096)
        for _ in range(5):
            da.alloc(64)
        da.free_all()
        assert da.used == 0 and da.live_count == 0

    def test_high_water(self):
        da = DynamicAllocator(4096)
        a = da.alloc(1024)
        da.free(a)
        da.alloc(256)
        assert da.high_water == 1024
