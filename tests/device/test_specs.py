"""Tests for the hardware specifications (Table I)."""

from repro.device.specs import GIB, v100_node, v100_spec, xeon_e5_2680_spec


class TestGPUSpec:
    def test_table1_values(self):
        spec = v100_spec()
        assert spec.name == "Tesla V100"
        assert spec.architecture == "Volta"
        assert spec.num_sms == 80
        assert spec.device_memory_bytes == 16 * GIB
        assert spec.fp32_cores == 5120
        assert spec.memory_interface == "4096-bit HBM2"
        assert spec.max_registers_per_thread == 255
        assert spec.shared_memory_per_sm_kb == 96
        assert spec.max_thread_block_size == 1024

    def test_scaled_memory(self):
        assert v100_spec(123).device_memory_bytes == 123


class TestCPUSpec:
    def test_paper_host(self):
        cpu = xeon_e5_2680_spec()
        assert cpu.physical_cores == 14
        assert cpu.threads_per_core == 2
        assert cpu.hardware_threads == 28  # "we use 28 threads"
        assert cpu.base_clock_ghz == 2.4
        assert cpu.host_memory_bytes == 128 * GIB


class TestNodeSpec:
    def test_default_node(self):
        node = v100_node()
        assert node.gpu.device_memory_bytes == 16 * GIB
        assert node.h2d_bandwidth > 0 and node.d2h_bandwidth > 0

    def test_with_device_memory(self):
        node = v100_node().with_device_memory(1 << 20)
        assert node.gpu.device_memory_bytes == 1 << 20
        # other fields untouched
        assert node.cpu.physical_cores == 14

    def test_frozen(self):
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            v100_node().h2d_bandwidth = 0
