"""Tests for timeline analysis."""

import pytest

from repro.device.trace import Timeline, TraceRecord


def rec(label, resource, start, end, stream=None):
    return TraceRecord(label=label, resource=resource, stream=stream, start=start, end=end)


@pytest.fixture
def timeline():
    return Timeline(
        records=(
            rec("k0", "gpu", 0.0, 2.0),
            rec("x0", "d2h", 2.0, 6.0),
            rec("k1", "gpu", 3.0, 5.0),
            rec("x1", "d2h", 6.0, 8.0),
            rec("h0", "h2d", 1.0, 3.0),
        )
    )


class TestBusy:
    def test_makespan(self, timeline):
        assert timeline.makespan() == 8.0

    def test_busy_time_merges_intervals(self):
        tl = Timeline(records=(rec("a", "r", 0, 2), rec("b", "r", 1, 3), rec("c", "r", 5, 6)))
        assert tl.busy_time("r") == 4.0

    def test_busy_fraction(self, timeline):
        assert timeline.busy_fraction("gpu") == pytest.approx(4.0 / 8.0)

    def test_unknown_resource_is_idle(self, timeline):
        assert timeline.busy_time("nope") == 0.0

    def test_zero_duration_ops_ignored(self):
        tl = Timeline(records=(rec("z", "r", 1, 1),))
        assert tl.busy_time("r") == 0.0


class TestTransferFraction:
    def test_union_of_directions(self, timeline):
        # d2h busy [2,8], h2d busy [1,3] -> union [1,8] = 7 of 8
        assert timeline.transfer_fraction() == pytest.approx(7.0 / 8.0)

    def test_single_direction(self, timeline):
        assert timeline.transfer_fraction(["d2h"]) == pytest.approx(6.0 / 8.0)

    def test_empty_timeline(self):
        assert Timeline(records=()).transfer_fraction() == 0.0


class TestOverlap:
    def test_overlap_time(self, timeline):
        # gpu busy [0,2]u[3,5]; d2h busy [2,8] -> overlap [3,5] = 2
        assert timeline.overlap_time("gpu", "d2h") == pytest.approx(2.0)

    def test_no_overlap(self):
        tl = Timeline(records=(rec("a", "r1", 0, 1), rec("b", "r2", 2, 3)))
        assert tl.overlap_time("r1", "r2") == 0.0

    def test_symmetry(self, timeline):
        assert timeline.overlap_time("gpu", "d2h") == timeline.overlap_time("d2h", "gpu")


class TestQueries:
    def test_ops_on(self, timeline):
        assert [r.label for r in timeline.ops_on("gpu")] == ["k0", "k1"]

    def test_with_label(self, timeline):
        assert [r.label for r in timeline.with_label("x")] == ["x0", "x1"]

    def test_order_of(self, timeline):
        assert timeline.order_of(["x1", "k0", "x0"]) == ["k0", "x0", "x1"]

    def test_order_of_unknown_label(self, timeline):
        with pytest.raises(KeyError):
            timeline.order_of(["nope"])

    def test_as_text(self, timeline):
        text = timeline.as_text()
        assert "k0" in text and "d2h" in text

    def test_as_text_truncation(self):
        tl = Timeline(records=tuple(rec(f"op{i}", "r", i, i + 1) for i in range(100)))
        assert "more)" in tl.as_text(max_rows=10)

    def test_duration(self, timeline):
        assert timeline.records[0].duration == 2.0


class TestChromeTrace:
    def test_events_complete(self, timeline):
        events = timeline.to_chrome_trace()
        assert len(events) == len(timeline.records)
        for e in events:
            assert e["ph"] == "X"
            assert e["dur"] >= 0

    def test_resources_map_to_tids(self, timeline):
        events = timeline.to_chrome_trace()
        by_name = {e["name"]: e["tid"] for e in events}
        assert by_name["k0"] == by_name["k1"]
        assert by_name["k0"] != by_name["x0"]

    def test_json_serializable(self, timeline):
        import json

        json.dumps(timeline.to_chrome_trace())
