"""Tests for the discrete-event simulation engine."""

import pytest

from repro.device.engine import DeadlockError, SimEngine


@pytest.fixture
def eng():
    e = SimEngine()
    e.add_resource("gpu")
    e.add_resource("d2h")
    return e


class TestBasics:
    def test_serial_chain_on_one_resource(self, eng):
        a = eng.submit("a", "gpu", 1.0)
        b = eng.submit("b", "gpu", 2.0)
        tl = eng.run()
        recs = {r.label: r for r in tl.records}
        assert recs["a"].start == 0.0 and recs["a"].end == 1.0
        assert recs["b"].start == 1.0 and recs["b"].end == 3.0
        assert tl.makespan() == 3.0

    def test_parallel_resources_overlap(self, eng):
        eng.submit("k", "gpu", 2.0)
        eng.submit("x", "d2h", 3.0)
        tl = eng.run()
        assert tl.makespan() == 3.0
        assert tl.overlap_time("gpu", "d2h") == 2.0

    def test_explicit_dependency(self, eng):
        k = eng.submit("k", "gpu", 2.0)
        eng.submit("x", "d2h", 1.0, deps=[k])
        tl = eng.run()
        recs = {r.label: r for r in tl.records}
        assert recs["x"].start == 2.0

    def test_stream_chains_across_resources(self, eng):
        eng.submit("k", "gpu", 2.0, stream="s0")
        eng.submit("x", "d2h", 1.0, stream="s0")
        eng.submit("k2", "gpu", 1.0, stream="s1")
        tl = eng.run()
        recs = {r.label: r for r in tl.records}
        assert recs["x"].start == 2.0       # after k on same stream
        assert recs["k2"].start == 2.0      # different stream, waits for gpu only

    def test_zero_duration(self, eng):
        eng.submit("z", "gpu", 0.0)
        assert eng.run().makespan() == 0.0

    def test_empty_run(self, eng):
        assert eng.run().makespan() == 0.0

    def test_negative_duration_rejected(self, eng):
        with pytest.raises(ValueError):
            eng.submit("bad", "gpu", -1.0)

    def test_unknown_resource(self, eng):
        with pytest.raises(KeyError):
            eng.submit("x", "nope", 1.0)

    def test_duplicate_resource(self, eng):
        with pytest.raises(ValueError):
            eng.add_resource("gpu")

    def test_meta_propagates(self, eng):
        eng.submit("x", "gpu", 1.0, chunk=7, kind="numeric")
        rec = eng.run().records[0]
        assert rec.meta == {"chunk": 7, "kind": "numeric"}


class TestFIFO:
    def test_head_of_line_blocking(self, eng):
        """An op behind a blocked head cannot jump the queue — the CUDA
        copy-engine behaviour that motivates Fig. 5/6."""
        k = eng.submit("slow_kernel", "gpu", 10.0)
        eng.submit("blocked_head", "d2h", 1.0, deps=[k])
        eng.submit("ready_behind", "d2h", 1.0)  # no deps, but queued behind
        tl = eng.run()
        recs = {r.label: r for r in tl.records}
        assert recs["blocked_head"].start == 10.0
        assert recs["ready_behind"].start == 11.0

    def test_capacity_two_runs_pairs(self):
        e = SimEngine()
        e.add_resource("cpu", capacity=2)
        for i in range(4):
            e.submit(f"t{i}", "cpu", 1.0)
        tl = e.run()
        assert tl.makespan() == 2.0

    def test_capacity_validation(self):
        e = SimEngine()
        with pytest.raises(ValueError):
            e.add_resource("bad", capacity=0)


class TestDeadlock:
    def test_cross_queue_deadlock_detected(self, eng):
        """Head of each queue depends on an op behind the other's head."""
        # gpu queue: g1 (depends on d2) then g2; d2h queue: d1 (depends on g2) then d2
        g1_dep_placeholder = eng.submit("warm", "gpu", 0.0)
        tl_ops = {}
        # build: d1 depends on g2 which is behind g1 which depends on d2 behind d1
        # submit g1 with dep on (later) d2 is impossible by construction, so
        # emulate with streams: simplest real deadlock — head depends on an op
        # behind it in ITS OWN queue is impossible too (deps point backwards).
        # Cross-resource: g1 deps d2? can't (d2 later). So verify instead that
        # the engine reports DeadlockError when an op's dep can never finish:
        # not constructible with backward-only deps — the DAG is acyclic by
        # construction, which is itself the guarantee this test documents.
        assert eng.run().makespan() == 0.0

    def test_all_submitted_snapshot(self, eng):
        a = eng.submit("a", "gpu", 1.0)
        snap = eng.all_submitted()
        b = eng.submit("b", "gpu", 1.0)
        assert a in snap and b not in snap


class TestDeterminism:
    def test_repeatable(self):
        def build():
            e = SimEngine()
            e.add_resource("gpu")
            e.add_resource("d2h")
            for i in range(20):
                s = f"s{i % 2}"
                k = e.submit(f"k{i}", "gpu", 0.5 + (i % 3) * 0.1, stream=s)
                e.submit(f"x{i}", "d2h", 1.0 + (i % 5) * 0.2, stream=s, deps=[k])
            return e.run()

        t1, t2 = build(), build()
        assert [(r.label, r.start, r.end) for r in t1.records] == [
            (r.label, r.start, r.end) for r in t2.records
        ]


class TestRunOnce:
    def test_second_run_rejected(self, eng):
        eng.submit("x", "gpu", 1.0)
        eng.run()
        with pytest.raises(RuntimeError, match="once"):
            eng.run()

    def test_submit_after_run_rejected(self, eng):
        eng.submit("x", "gpu", 1.0)
        eng.run()
        with pytest.raises(RuntimeError, match="already ran"):
            eng.submit("y", "gpu", 1.0)
