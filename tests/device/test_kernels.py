"""Tests for the analytic cost models."""

import pytest

from repro.device.kernels import CostModel, default_cost_model
from repro.device.specs import v100_node


@pytest.fixture
def cm():
    return default_cost_model(v100_node(1 << 28))


class TestGPUCosts:
    def test_more_flops_more_time(self, cm):
        assert cm.t_numeric(2_000_000, 500_000) > cm.t_numeric(1_000_000, 250_000)

    def test_higher_compression_faster_per_flop(self, cm):
        flops = 10_000_000
        fast = cm.t_numeric(flops, flops // 20)  # cr 20
        slow = cm.t_numeric(flops, flops // 2)   # cr 2
        assert fast < slow

    def test_symbolic_faster_than_numeric(self, cm):
        assert cm.t_symbolic(10**6, 10**5) < cm.t_numeric(10**6, 10**5)

    def test_kernel_count_adds_launch_latency(self, cm):
        one = cm.t_numeric(10**6, 10**5, kernels=1)
        five = cm.t_numeric(10**6, 10**5, kernels=5)
        assert five - one == pytest.approx(4 * cm.node.kernel_launch_latency)

    def test_analysis_scales_with_input(self, cm):
        assert cm.t_analysis(2_000_000) > cm.t_analysis(1_000_000)

    def test_cr_clamped(self, cm):
        # nnz_out = 0 -> cr clamps to cr_min rather than exploding
        t = cm.t_numeric(10**6, 0)
        assert t == pytest.approx(
            cm.node.kernel_launch_latency + 10**6 / (cm.gpu_numeric_coeff * cm.cr_min**cm.gpu_numeric_cr_exp)
        )

    def test_cr_max_clamp(self, cm):
        huge_cr = cm.t_numeric(10**9, 1)
        at_max = cm.t_numeric(10**9, int(10**9 / cm.cr_max))
        assert huge_cr == pytest.approx(at_max, rel=0.01)


class TestTransfers:
    def test_bandwidth(self, cm):
        t = cm.t_d2h(4_000_000_000)
        assert t == pytest.approx(1.0 + cm.node.transfer_latency)

    def test_latency_floor(self, cm):
        assert cm.t_d2h(0) == cm.node.transfer_latency
        assert cm.t_h2d(0) == cm.node.transfer_latency

    def test_malloc_cost_positive(self, cm):
        assert cm.t_malloc() > 0


class TestCPUCosts:
    def test_slower_than_gpu(self, cm):
        flops, nnz = 10**7, 4 * 10**6
        assert cm.t_cpu_chunk(flops, nnz) > cm.t_numeric(flops, nnz)

    def test_cr_override(self, cm):
        flops, nnz = 10**6, 10**5  # chunk cr = 10
        at_chunk_cr = cm.t_cpu_chunk(flops, nnz)
        at_global_cr = cm.t_cpu_chunk(flops, nnz, cr=2.0)
        assert at_global_cr > at_chunk_cr  # lower cr -> slower

    def test_override_clamped(self, cm):
        a = cm.t_cpu_chunk(10**6, 10**5, cr=0.001)
        b = cm.t_cpu_chunk(10**6, 10**5, cr=cm.cr_min)
        assert a == pytest.approx(b)

    def test_chunk_overhead(self, cm):
        assert cm.t_cpu_chunk(0, 0) == pytest.approx(cm.cpu_chunk_overhead)


class TestSpeedupModel:
    def test_expected_speedup_in_paper_band(self, cm):
        """S = t_cpu/t_gpu should be ~2 (the paper: 'most values around 2'),
        giving Ratio = S/(S+1) near 65%."""
        for cr in (2.2, 2.7, 5, 8.5, 10.4):
            flops = 10**7
            s = cm.expected_gpu_speedup(flops, int(flops / cr))
            assert 1.5 <= s <= 3.2
            ratio = s / (s + 1)
            assert 0.60 <= ratio <= 0.77
