"""Tests for the per-kernel cost-model recalibration (fit_cost_model)."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid, ChunkProfile, ChunkStats
from repro.device.kernels import (
    STAGES,
    CalibratedCostModel,
    StageFit,
    default_cost_model,
    fit_cost_model,
)
from repro.device.specs import v100_node


def synth_chunk(i, *, kernel="esc", flops, nnz_out, input_nnz, launches=1,
                coeffs=None, wall_factor=1.0):
    """A chunk whose stage times follow a known linear law."""
    if coeffs is None:
        coeffs = {
            "analysis": (2e-5, 1e-9),             # [1, input_nnz]
            "symbolic": (5e-5, 3e-9, 2e-9),       # [launches, flops, nnz]
            "numeric": (1e-5, 1.5e-9, 1e-9),
        }
    ana = coeffs["analysis"][0] + coeffs["analysis"][1] * input_nnz
    sym = (coeffs["symbolic"][0] * launches + coeffs["symbolic"][1] * flops
           + coeffs["symbolic"][2] * nnz_out)
    num = (coeffs["numeric"][0] * launches + coeffs["numeric"][1] * flops
           + coeffs["numeric"][2] * nnz_out)
    return ChunkStats(
        chunk_id=i, row_panel=i, col_panel=0, rows=10, width=10,
        flops=flops, a_panel_bytes=100, b_panel_bytes=100,
        input_nnz=input_nnz, nnz_out=nnz_out, output_bytes=nnz_out * 16,
        symbolic_kernels=launches, numeric_kernels=launches,
        measured_seconds=(ana + sym + num) * wall_factor, kernel=kernel,
        analysis_seconds=ana, symbolic_seconds=sym, numeric_seconds=num,
    )


def synth_profile(chunks):
    grid = ChunkGrid.regular(10 * len(chunks), 10, len(chunks), 1)
    return ChunkProfile(grid=grid, chunks=tuple(chunks))


WORKLOADS = [
    dict(flops=10_000, nnz_out=900, input_nnz=400),
    dict(flops=250_000, nnz_out=31_000, input_nnz=5_000),
    dict(flops=1_000_000, nnz_out=90_000, input_nnz=20_000, launches=3),
    dict(flops=40_000, nnz_out=3_500, input_nnz=1_200),
    dict(flops=600_000, nnz_out=55_000, input_nnz=9_000, launches=2),
    dict(flops=90_000, nnz_out=7_000, input_nnz=2_500),
]


class TestFitRecovery:
    def test_fit_recovers_synthetic_linear_stage_times(self):
        profile = synth_profile(
            [synth_chunk(i, **w) for i, w in enumerate(WORKLOADS)]
        )
        cost = fit_cost_model([profile], node=v100_node())
        for c in profile.chunks:
            modeled = cost.chunk_seconds(c)
            assert modeled == pytest.approx(c.measured_seconds, rel=1e-6)

    def test_fit_targets_measured_wall_clock(self):
        """Stage targets are rescaled to the chunk wall clock, so fitted
        totals track measured_seconds even when per-chunk dispatch
        overhead inflates it beyond the instrumented stage spans."""
        profile = synth_profile(
            [synth_chunk(i, wall_factor=1.25, **w)
             for i, w in enumerate(WORKLOADS)]
        )
        cost = fit_cost_model([profile], node=v100_node())
        for c in profile.chunks:
            assert cost.chunk_seconds(c) == pytest.approx(
                c.measured_seconds, rel=1e-6
            )

    def test_per_kernel_fits_are_independent(self):
        """A fast kernel must not poison a slow kernel's coefficients —
        the post-fast-kernels outlier class this PR fixes."""
        slow = [synth_chunk(i, kernel="esc", **w)
                for i, w in enumerate(WORKLOADS)]
        fast_coeffs = {
            "analysis": (2e-6, 1e-10),
            "symbolic": (5e-6, 2e-10, 1e-10),
            "numeric": (1e-6, 1e-10, 1e-10),
        }
        fast = [synth_chunk(10 + i, kernel="native", coeffs=fast_coeffs, **w)
                for i, w in enumerate(WORKLOADS)]
        cost = fit_cost_model([synth_profile(slow), synth_profile(fast)],
                              node=v100_node())
        assert cost.kernels() == ("esc", "native")
        for c in slow + fast:
            assert cost.chunk_seconds(c) == pytest.approx(
                c.measured_seconds, rel=1e-6
            )

    def test_unfitted_kernel_falls_back_to_analytic_base(self):
        profile = synth_profile(
            [synth_chunk(i, kernel="esc", **w) for i, w in enumerate(WORKLOADS)]
        )
        base = default_cost_model(v100_node())
        cost = fit_cost_model([profile], base=base)
        stranger = synth_chunk(99, kernel="dense", **WORKLOADS[0])
        analytic = (
            base.t_analysis(stranger.input_nnz)
            + base.t_symbolic(stranger.flops, stranger.nnz_out,
                              stranger.symbolic_kernels)
            + base.t_numeric(stranger.flops, stranger.nnz_out,
                             stranger.numeric_kernels)
        )
        assert cost.chunk_seconds(stranger) == pytest.approx(analytic)

    def test_unexecuted_and_untimed_chunks_are_skipped(self):
        pending = ChunkStats(
            chunk_id=0, row_panel=0, col_panel=0, rows=10, width=10,
            flops=100, a_panel_bytes=1, b_panel_bytes=1, input_nnz=10,
        )
        profile = synth_profile([pending])
        cost = fit_cost_model([profile], node=v100_node())
        assert cost.fits == {}

    def test_delegates_everything_else_to_base(self):
        base = default_cost_model(v100_node())
        cost = CalibratedCostModel(base, {})
        assert cost.t_analysis(1000) == base.t_analysis(1000)
        assert cost.node is base.node

    def test_negative_coefficients_pruned(self):
        """The constrained solve never returns a fit that predicts
        negative seconds for a larger workload."""
        profile = synth_profile(
            [synth_chunk(i, **w) for i, w in enumerate(WORKLOADS)]
        )
        cost = fit_cost_model([profile], node=v100_node())
        for fit in cost.fits.values():
            assert all(w >= 0 for w in fit.coeffs)


class TestModelErrorIntegration:
    def test_calibrated_fit_beats_analytic_on_real_profile(self):
        """In-sample recalibration drives the model-error report below
        the 0.25 gate with zero outliers — the acceptance criterion."""
        from repro.core.chunks import profile_chunks
        from repro.core.planner import plan_grid
        from repro.metrics.modelerror import model_error_report
        from repro.sparse.generators import rmat

        a = rmat(11, 8.0, seed=3)
        node = v100_node(64 << 20)
        grid = plan_grid(a, a, node).grid
        # warm run first: the cold run absorbs one-time process costs
        profile_chunks(a, a, grid, keep_outputs=False, name="warm")
        profile, _ = profile_chunks(a, a, grid, keep_outputs=False, name="x")
        cost = fit_cost_model([profile], node=v100_node())
        err = model_error_report(profile, cost)
        assert err.mean_abs_rel_error < 0.25
        assert err.outliers == 0
