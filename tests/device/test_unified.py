"""Tests for the unified-memory page-fault model."""

import pytest

from repro.device.specs import v100_node
from repro.device.unified import UnifiedMemoryModel


@pytest.fixture
def um():
    return UnifiedMemoryModel(node=v100_node())


class TestPages:
    def test_full_utilization(self, um):
        assert um.pages_for(um.page_size * 3, 1.0) == 3

    def test_partial_utilization_needs_more_pages(self, um):
        assert um.pages_for(um.page_size, 0.5) == 2

    def test_zero_bytes(self, um):
        assert um.pages_for(0, 0.5) == 0

    def test_bad_utilization(self, um):
        with pytest.raises(ValueError):
            um.pages_for(100, 0.0)
        with pytest.raises(ValueError):
            um.pages_for(100, 1.5)


class TestTimes:
    def test_migration_slower_than_explicit(self, um):
        nbytes = 50 << 20
        assert um.migration_time(nbytes, 0.4) > um.explicit_transfer_time(nbytes)

    def test_overhead_factor_above_one(self, um):
        assert um.overhead_factor(10 << 20, 0.5) > 1.0

    def test_overhead_grows_as_utilization_drops(self, um):
        nbytes = 10 << 20
        assert um.overhead_factor(nbytes, 0.2) > um.overhead_factor(nbytes, 0.8)

    def test_wasted_bytes(self, um):
        # 1 page of useful data at 50% utilization -> 2 pages moved
        waste = um.wasted_bytes(um.page_size, 0.5)
        assert waste == um.page_size

    def test_directions(self, um):
        assert um.migration_time(1 << 20, 0.5, "h2d") > 0
        assert um.explicit_transfer_time(1 << 20, "h2d") > 0
