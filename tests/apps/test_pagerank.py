"""Tests for PageRank."""

import numpy as np
import pytest

from repro.apps.pagerank import pagerank
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import rmat


class TestPageRank:
    def test_scores_sum_to_one(self):
        g = rmat(8, 4.0, seed=3)
        result = pagerank(g)
        assert result.converged
        assert result.scores.sum() == pytest.approx(1.0)
        assert np.all(result.scores > 0)

    def test_matches_networkx(self):
        import networkx as nx

        g = rmat(7, 4.0, seed=4)
        ours = pagerank(g, damping=0.85, tol=1e-12).scores
        nxg = nx.from_scipy_sparse_array(g.to_scipy(), create_using=nx.DiGraph)
        theirs = nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500, weight="weight")
        for v, score in theirs.items():
            assert ours[v] == pytest.approx(score, abs=1e-6)

    def test_star_graph_center_wins(self):
        # every vertex points to vertex 0
        n = 10
        dense = np.zeros((n, n))
        dense[1:, 0] = 1.0
        result = pagerank(CSRMatrix.from_dense(dense))
        assert np.argmax(result.scores) == 0

    def test_dangling_vertices_handled(self):
        # vertex 1 has no out-links; mass must not leak
        dense = np.array([[0.0, 1.0], [0.0, 0.0]])
        result = pagerank(CSRMatrix.from_dense(dense))
        assert result.scores.sum() == pytest.approx(1.0)

    def test_empty_graph(self):
        result = pagerank(CSRMatrix.empty(0, 0))
        assert result.converged

    def test_uniform_on_cycle(self):
        n = 6
        dense = np.zeros((n, n))
        for i in range(n):
            dense[i, (i + 1) % n] = 1.0
        result = pagerank(CSRMatrix.from_dense(dense))
        np.testing.assert_allclose(result.scores, 1.0 / n, atol=1e-8)

    def test_invalid_args(self):
        g = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            pagerank(g, damping=1.0)
        from repro.sparse.generators import random_csr

        with pytest.raises(ValueError):
            pagerank(random_csr(3, 4, 5, seed=1))
