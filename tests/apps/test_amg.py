"""Tests for the AMG building blocks."""

import numpy as np
import pytest

from repro.apps.amg import aggregation_prolongator, amg_hierarchy, galerkin_product
from repro.device.specs import v100_node
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded


@pytest.fixture
def fine_operator():
    return banded(200, 3, seed=21, fill=0.8)


class TestProlongator:
    def test_shape(self):
        p = aggregation_prolongator(10, 3)
        assert p.shape == (10, 4)

    def test_one_entry_per_row(self):
        p = aggregation_prolongator(20, 4)
        np.testing.assert_array_equal(p.row_nnz(), np.ones(20))

    def test_unit_column_norms(self):
        p = aggregation_prolongator(21, 4)  # uneven last aggregate
        d = p.to_dense()
        np.testing.assert_allclose(np.linalg.norm(d, axis=0), 1.0)

    def test_bad_agg_size(self):
        with pytest.raises(ValueError):
            aggregation_prolongator(10, 0)


class TestGalerkin:
    def test_matches_dense_triple_product(self, fine_operator):
        p = aggregation_prolongator(fine_operator.n_rows, 4)
        coarse = galerkin_product(fine_operator, p)
        expected = p.to_dense().T @ fine_operator.to_dense() @ p.to_dense()
        np.testing.assert_allclose(coarse.to_dense(), expected, atol=1e-9)

    def test_out_of_core_route(self, fine_operator):
        p = aggregation_prolongator(fine_operator.n_rows, 4)
        node = v100_node(1 << 30)
        in_core = galerkin_product(fine_operator, p)
        out_core = galerkin_product(fine_operator, p, node=node)
        assert in_core.allclose(out_core)

    def test_dimension_mismatch(self, fine_operator):
        with pytest.raises(ValueError):
            galerkin_product(fine_operator, aggregation_prolongator(999, 3))

    def test_preserves_symmetry(self):
        b = banded(100, 2, seed=5)
        sym = CSRMatrix.from_dense(b.to_dense() + b.to_dense().T)
        p = aggregation_prolongator(100, 5)
        coarse = galerkin_product(sym, p).to_dense()
        np.testing.assert_allclose(coarse, coarse.T, atol=1e-9)


class TestHierarchy:
    def test_levels_shrink(self, fine_operator):
        levels = amg_hierarchy(fine_operator, agg_size=4, min_size=10)
        sizes = [m.n_rows for m in levels]
        assert sizes[0] == 200
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= 13  # stops at/below min_size after one more coarsening

    def test_respects_max_levels(self, fine_operator):
        levels = amg_hierarchy(fine_operator, agg_size=2, min_size=1, max_levels=3)
        assert len(levels) == 3

    def test_nonsquare_rejected(self):
        from repro.sparse.generators import random_csr

        with pytest.raises(ValueError):
            amg_hierarchy(random_csr(10, 12, 20, seed=1))
