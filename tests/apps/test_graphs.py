"""Tests for graph utilities."""

import numpy as np
import pytest

from repro.apps.graphs import (
    hadamard,
    hadamard_sum,
    remove_diagonal,
    symmetrize,
    to_unweighted,
)
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr, rmat


class TestCleanup:
    def test_remove_diagonal(self):
        m = CSRMatrix.from_dense([[1.0, 2.0], [0.0, 3.0]])
        d = remove_diagonal(m)
        np.testing.assert_array_equal(d.to_dense(), [[0.0, 2.0], [0.0, 0.0]])

    def test_to_unweighted(self):
        m = CSRMatrix.from_dense([[0.0, 5.0], [7.0, 0.0]])
        u = to_unweighted(m)
        assert set(np.unique(u.data)) == {1.0}
        np.testing.assert_array_equal(u.col_ids, m.col_ids)

    def test_symmetrize_properties(self):
        g = rmat(7, 4.0, seed=3)
        s = symmetrize(g)
        dense = s.to_dense()
        np.testing.assert_array_equal(dense, dense.T)
        assert np.all(np.diag(dense) == 0)
        assert set(np.unique(s.data)) <= {1.0}

    def test_symmetrize_weighted(self):
        g = CSRMatrix.from_dense([[0.0, 2.0], [3.0, 0.0]])
        s = symmetrize(g, unweighted=False)
        np.testing.assert_array_equal(s.to_dense(), [[0.0, 5.0], [5.0, 0.0]])


class TestHadamard:
    def test_matches_dense(self):
        a = random_csr(8, 9, 25, seed=1)
        b = random_csr(8, 9, 25, seed=2)
        np.testing.assert_allclose(
            hadamard(a, b).to_dense(), a.to_dense() * b.to_dense(), atol=1e-12
        )

    def test_sum_matches_dense(self):
        a = random_csr(10, 10, 30, seed=3)
        b = random_csr(10, 10, 30, seed=4)
        assert hadamard_sum(a, b) == pytest.approx(
            float((a.to_dense() * b.to_dense()).sum())
        )

    def test_disjoint_structures(self):
        a = CSRMatrix.from_dense([[1.0, 0.0], [0.0, 0.0]])
        b = CSRMatrix.from_dense([[0.0, 1.0], [0.0, 0.0]])
        assert hadamard(a, b).nnz == 0
        assert hadamard_sum(a, b) == 0.0

    def test_shape_mismatch(self):
        a = CSRMatrix.empty(2, 2)
        b = CSRMatrix.empty(2, 3)
        with pytest.raises(ValueError):
            hadamard(a, b)
        with pytest.raises(ValueError):
            hadamard_sum(a, b)
