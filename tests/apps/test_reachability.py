"""Tests for semiring reachability / shortest paths / BFS."""

import numpy as np
import pytest

from repro.apps.reachability import bfs_levels, k_hop_distances, k_hop_reachability
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import rmat


@pytest.fixture
def path_graph():
    """Directed path 0 -> 1 -> 2 -> 3 -> 4 with weights 1, 2, 3, 4."""
    dense = np.zeros((5, 5))
    for i in range(4):
        dense[i, i + 1] = i + 1.0
    return CSRMatrix.from_dense(dense)


class TestReachability:
    def test_k_hop_on_path(self, path_graph):
        r2 = k_hop_reachability(path_graph, 2)
        d = r2.to_dense()
        assert d[0, 2] == 1 and d[0, 1] == 1
        assert d[0, 3] == 0  # needs 3 hops

    def test_k_covers_at_least_k(self, path_graph):
        # repeated squaring may overshoot k, never undershoot
        r3 = k_hop_reachability(path_graph, 3)
        assert r3.to_dense()[0, 3] == 1

    def test_full_closure(self, path_graph):
        r = k_hop_reachability(path_graph, 8)
        d = r.to_dense()
        for i in range(5):
            for j in range(i, 5):
                assert d[i, j] == 1

    def test_bad_k(self, path_graph):
        with pytest.raises(ValueError):
            k_hop_reachability(path_graph, 0)


class TestDistances:
    def test_path_distances(self, path_graph):
        d = k_hop_distances(path_graph, 4).to_dense()
        assert d[0, 1] == 1.0
        assert d[0, 2] == 3.0   # 1 + 2
        assert d[0, 4] == 10.0  # 1 + 2 + 3 + 4
        assert d[4, 0] == 0.0   # unreachable -> absent

    def test_shortcut_wins(self):
        dense = np.zeros((3, 3))
        dense[0, 1], dense[1, 2], dense[0, 2] = 1.0, 1.0, 5.0
        g = CSRMatrix.from_dense(dense)
        d = k_hop_distances(g, 2).to_dense()
        assert d[0, 2] == 2.0  # two hops beat the direct weight-5 edge

    def test_bad_k(self, path_graph):
        with pytest.raises(ValueError):
            k_hop_distances(path_graph, 0)


class TestBFS:
    def test_levels_on_path(self, path_graph):
        levels = bfs_levels(path_graph, 0)
        np.testing.assert_array_equal(levels, [0, 1, 2, 3, 4])

    def test_unreachable(self, path_graph):
        levels = bfs_levels(path_graph, 2)
        np.testing.assert_array_equal(levels, [-1, -1, 0, 1, 2])

    def test_matches_networkx(self):
        import networkx as nx

        g = rmat(7, 4.0, seed=17)
        levels = bfs_levels(g, 0)
        nxg = nx.from_scipy_sparse_array(g.to_scipy(), create_using=nx.DiGraph)
        expected = nx.single_source_shortest_path_length(nxg, 0)
        for v in range(g.n_rows):
            assert levels[v] == expected.get(v, -1)

    def test_bad_source(self, path_graph):
        with pytest.raises(IndexError):
            bfs_levels(path_graph, 99)
