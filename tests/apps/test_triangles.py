"""Tests for triangle counting."""

import numpy as np
import pytest

from repro.apps.graphs import symmetrize
from repro.apps.triangles import count_triangles, triangles_per_vertex
from repro.device.specs import v100_node
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import rmat


def dense_triangles(a: CSRMatrix) -> float:
    d = a.to_dense()
    return np.trace(d @ d @ d) / 6.0


@pytest.fixture
def triangle_graph():
    """4-clique plus an isolated edge: C(4,3) = 4 triangles."""
    dense = np.zeros((6, 6))
    dense[:4, :4] = 1.0 - np.eye(4)
    dense[4, 5] = dense[5, 4] = 1.0
    return CSRMatrix.from_dense(dense)


class TestCountTriangles:
    def test_clique(self, triangle_graph):
        assert count_triangles(triangle_graph, assume_canonical=True) == 4

    def test_triangle_free(self):
        # a path graph has no triangles
        dense = np.diag(np.ones(5), k=1)
        g = CSRMatrix.from_dense(dense + dense.T)
        assert count_triangles(g, assume_canonical=True) == 0

    def test_random_graph_matches_dense(self):
        g = symmetrize(rmat(7, 5.0, seed=11))
        assert count_triangles(g, assume_canonical=True) == int(
            round(dense_triangles(g))
        )

    def test_directed_input_is_symmetrized(self):
        g = rmat(7, 5.0, seed=12)
        sym = symmetrize(g)
        assert count_triangles(g) == count_triangles(sym, assume_canonical=True)

    def test_out_of_core_path(self, triangle_graph):
        node = v100_node(1 << 30)
        assert count_triangles(triangle_graph, node=node, assume_canonical=True) == 4

    def test_non_simple_graph_detected(self):
        weighted = CSRMatrix.from_dense([[0.0, 0.5, 0.5],
                                         [0.5, 0.0, 0.5],
                                         [0.5, 0.5, 0.0]])
        with pytest.raises(ValueError, match="non-integral"):
            count_triangles(weighted, assume_canonical=True)


class TestPerVertex:
    def test_clique(self, triangle_graph):
        per = triangles_per_vertex(triangle_graph, assume_canonical=True)
        np.testing.assert_array_equal(per[:4], [3, 3, 3, 3])
        np.testing.assert_array_equal(per[4:], [0, 0])

    def test_sums_to_three_times_total(self):
        g = symmetrize(rmat(7, 5.0, seed=13))
        per = triangles_per_vertex(g, assume_canonical=True)
        total = count_triangles(g, assume_canonical=True)
        assert per.sum() == pytest.approx(3 * total)
