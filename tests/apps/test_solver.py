"""Tests for SpMV, the AMG preconditioner, and PCG."""

import numpy as np
import pytest

from repro.apps.solver import AMGPreconditioner, conjugate_gradient, spmv
from repro.device.specs import v100_node
from repro.sparse.formats import CSRMatrix


def poisson_1d(n: int) -> CSRMatrix:
    """The SPD 1-D Poisson matrix tridiag(-1, 2, -1)."""
    dense = 2.0 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
    return CSRMatrix.from_dense(dense)


class TestSpmv:
    def test_matches_dense(self):
        from repro.sparse.generators import random_csr

        a = random_csr(15, 12, 50, seed=3)
        x = np.arange(12, dtype=float)
        np.testing.assert_allclose(spmv(a, x), a.to_dense() @ x, atol=1e-12)

    def test_empty_matrix(self):
        a = CSRMatrix.empty(4, 4)
        np.testing.assert_array_equal(spmv(a, np.ones(4)), np.zeros(4))

    def test_shape_check(self):
        a = CSRMatrix.identity(4)
        with pytest.raises(ValueError):
            spmv(a, np.ones(5))


class TestPreconditioner:
    def test_hierarchy_built(self):
        a = poisson_1d(400)
        pre = AMGPreconditioner(a, agg_size=4, max_levels=4, min_size=20)
        assert pre.num_levels >= 3
        sizes = [op.n_rows for op in pre.operators]
        assert all(x > y for x, y in zip(sizes, sizes[1:]))

    def test_vcycle_reduces_error(self):
        a = poisson_1d(256)
        pre = AMGPreconditioner(a)
        rng = np.random.default_rng(5)
        x_true = rng.random(256)
        b = spmv(a, x_true)
        x = pre.apply(b)  # one V-cycle from zero
        assert np.linalg.norm(b - spmv(a, x)) < np.linalg.norm(b)

    def test_out_of_core_setup(self):
        a = poisson_1d(300)
        node = v100_node(1 << 30)
        pre = AMGPreconditioner(a, node=node)
        assert pre.num_levels >= 2

    def test_nonsquare_rejected(self):
        from repro.sparse.generators import random_csr

        with pytest.raises(ValueError):
            AMGPreconditioner(random_csr(5, 6, 10, seed=1))


class TestConjugateGradient:
    def test_solves_poisson(self):
        a = poisson_1d(200)
        rng = np.random.default_rng(7)
        x_true = rng.random(200)
        b = spmv(a, x_true)
        result = conjugate_gradient(a, b, tol=1e-10, max_iterations=1000)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-5)

    def test_preconditioning_cuts_iterations(self):
        n = 600
        a = poisson_1d(n)
        rng = np.random.default_rng(8)
        b = rng.random(n)
        plain = conjugate_gradient(a, b, tol=1e-8, max_iterations=2000)
        pre = AMGPreconditioner(a, agg_size=4, max_levels=5, min_size=20)
        amg = conjugate_gradient(a, b, preconditioner=pre, tol=1e-8, max_iterations=2000)
        assert amg.converged and plain.converged
        assert amg.iterations < plain.iterations / 2

    def test_residual_history_decreases_overall(self):
        a = poisson_1d(100)
        result = conjugate_gradient(a, np.ones(100), tol=1e-10)
        assert result.residual_history[-1] < result.residual_history[0]

    def test_zero_rhs(self):
        a = poisson_1d(50)
        result = conjugate_gradient(a, np.zeros(50))
        np.testing.assert_array_equal(result.x, np.zeros(50))
        assert result.converged
