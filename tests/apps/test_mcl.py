"""Tests for Markov clustering."""

import numpy as np
import pytest

from repro.apps.mcl import column_normalize, markov_clustering
from repro.device.specs import v100_node
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import diagonal_blocks, random_csr


def two_communities(bridge: bool = True) -> CSRMatrix:
    """Two 6-vertex cliques, optionally joined by one weak edge."""
    n = 12
    dense = np.zeros((n, n))
    dense[:6, :6] = 1.0 - np.eye(6)
    dense[6:, 6:] = 1.0 - np.eye(6)
    if bridge:
        dense[5, 6] = dense[6, 5] = 1.0
    return CSRMatrix.from_dense(dense)


class TestColumnNormalize:
    def test_columns_sum_to_one(self):
        m = random_csr(10, 10, 40, seed=7)
        norm = column_normalize(m)
        sums = np.zeros(10)
        np.add.at(sums, norm.col_ids, norm.data)
        nonempty = np.unique(m.col_ids)
        np.testing.assert_allclose(sums[nonempty], 1.0)

    def test_empty_columns_stay_zero(self):
        m = CSRMatrix.from_dense([[1.0, 0.0], [1.0, 0.0]])
        norm = column_normalize(m)
        np.testing.assert_allclose(norm.to_dense()[:, 0], [0.5, 0.5])


class TestMarkovClustering:
    def test_separates_two_communities(self):
        result = markov_clustering(two_communities())
        labels = result.labels
        assert result.num_clusters == 2
        assert len(set(labels[:6])) == 1
        assert len(set(labels[6:])) == 1
        assert labels[0] != labels[11]

    def test_disconnected_blocks(self):
        g = diagonal_blocks(30, 10, seed=5, density=0.8)
        result = markov_clustering(g)
        labels = result.labels
        # vertices in different blocks never share a cluster
        for block in range(3):
            ids = set(labels[block * 10 : (block + 1) * 10])
            others = set(labels) - ids
            assert ids.isdisjoint(others)

    def test_converges(self):
        result = markov_clustering(two_communities(), max_iterations=60)
        assert result.converged
        assert result.iterations < 60

    def test_out_of_core_expansion(self):
        node = v100_node(1 << 30)
        result = markov_clustering(two_communities(), node=node)
        assert result.num_clusters == 2

    def test_higher_inflation_more_clusters(self):
        g = diagonal_blocks(24, 8, seed=9, density=0.6)
        low = markov_clustering(g, inflation=1.5, max_iterations=30)
        high = markov_clustering(g, inflation=4.0, max_iterations=30)
        assert high.num_clusters >= low.num_clusters

    def test_bad_inflation(self):
        with pytest.raises(ValueError):
            markov_clustering(two_communities(), inflation=1.0)
