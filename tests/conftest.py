"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, erdos_renyi, rmat
from repro.sparse.ops import drop_explicit_zeros
from repro.spgemm.reference import spgemm_scipy


@pytest.fixture
def small_dense():
    """A small dense matrix with a known sparsity pattern."""
    return np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 4.0, 0.0, 5.0],
            [0.0, 6.0, 0.0, 7.0],
        ]
    )


@pytest.fixture
def small_csr(small_dense):
    return CSRMatrix.from_dense(small_dense)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=["er", "rmat", "banded"])
def sample_matrix(request):
    """A family-parameterized small square matrix."""
    if request.param == "er":
        return erdos_renyi(200, 5.0, seed=7)
    if request.param == "rmat":
        return rmat(8, 6.0, seed=8)
    return banded(200, 3, seed=9, fill=0.7)


def random_csr_dense(rng, n_rows=12, n_cols=15, density=0.3):
    """A random dense array plus its CSR form, for oracle comparisons."""
    dense = rng.random((n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0.0
    return dense, CSRMatrix.from_dense(dense)


def assert_equals_scipy_product(candidate: CSRMatrix, a: CSRMatrix, b: CSRMatrix) -> None:
    """Assert ``candidate == A x B`` structurally and numerically."""
    expected = spgemm_scipy(a, b)
    got = drop_explicit_zeros(candidate)
    assert got.shape == expected.shape
    assert got.allclose(expected), (
        f"product mismatch: got nnz={got.nnz}, expected nnz={expected.nnz}"
    )
