"""Shared fixtures and helpers for the test suite.

Randomized tests derive their RNGs from one session seed so every run is
reproducible: the seed is printed in the pytest header, defaults to
:data:`DEFAULT_TEST_SEED`, and can be overridden with the
``REPRO_TEST_SEED`` environment variable to replay a failure.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, erdos_renyi, rmat
from repro.sparse.ops import drop_explicit_zeros
from repro.spgemm.reference import spgemm_scipy

DEFAULT_TEST_SEED = 20260806


def _session_seed() -> int:
    return int(os.environ.get("REPRO_TEST_SEED", DEFAULT_TEST_SEED))


def pytest_report_header(config):
    return (f"repro test seed: {_session_seed()} "
            "(override with REPRO_TEST_SEED=<int>)")


@pytest.fixture(scope="session")
def test_seed() -> int:
    """The session's base RNG seed (printed in the pytest header)."""
    return _session_seed()


@pytest.fixture
def make_rng(test_seed):
    """Factory for named, reproducible RNG streams: ``make_rng("x")``
    always yields the same stream for a given session seed, and distinct
    names yield independent streams.  (``zlib.crc32``, not ``hash()`` —
    python string hashing is salted per process.)"""
    import zlib

    def make(name: str = "", offset: int = 0):
        return np.random.default_rng(
            np.random.SeedSequence([test_seed, zlib.crc32(name.encode()), offset])
        )
    return make


@pytest.fixture
def small_dense():
    """A small dense matrix with a known sparsity pattern."""
    return np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0],
            [3.0, 4.0, 0.0, 5.0],
            [0.0, 6.0, 0.0, 7.0],
        ]
    )


@pytest.fixture
def small_csr(small_dense):
    return CSRMatrix.from_dense(small_dense)


@pytest.fixture
def rng(make_rng):
    """The default reproducible RNG stream (see :func:`make_rng`)."""
    return make_rng("default")


@pytest.fixture(params=["er", "rmat", "banded"])
def sample_matrix(request):
    """A family-parameterized small square matrix."""
    if request.param == "er":
        return erdos_renyi(200, 5.0, seed=7)
    if request.param == "rmat":
        return rmat(8, 6.0, seed=8)
    return banded(200, 3, seed=9, fill=0.7)


def random_csr_dense(rng, n_rows=12, n_cols=15, density=0.3):
    """A random dense array plus its CSR form, for oracle comparisons."""
    dense = rng.random((n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0.0
    return dense, CSRMatrix.from_dense(dense)


def assert_equals_scipy_product(candidate: CSRMatrix, a: CSRMatrix, b: CSRMatrix) -> None:
    """Assert ``candidate == A x B`` structurally and numerically."""
    expected = spgemm_scipy(a, b)
    got = drop_explicit_zeros(candidate)
    assert got.shape == expected.shape
    assert got.allclose(expected), (
        f"product mismatch: got nnz={got.nnz}, expected nnz={expected.nnz}"
    )
