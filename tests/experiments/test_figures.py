"""Integration tests: figure/table reproductions hold the paper's shapes.

These use the shared disk cache (built on first access), then assert the
qualitative claims of each figure on the cheap banded matrices plus one
representative graph matrix.
"""

import pytest

from repro.core.api import (
    simulate_cpu_baseline,
    simulate_hybrid,
    simulate_out_of_core,
)
from repro.experiments import fig10, table2, table3
from repro.experiments.runner import get_node, get_profile

CHEAP = ("stokes", "nlp", "uk-2002")


@pytest.fixture(scope="module", params=CHEAP)
def case(request):
    abbr = request.param
    return abbr, get_profile(abbr), get_node(abbr)


class TestFig4Shape:
    def test_transfer_dominates(self, case):
        _, profile, node = case
        res = simulate_out_of_core(profile, node, mode="sync", order="natural")
        assert 0.70 <= res.transfer_fraction <= 0.92  # paper: 77.5-89.7%


class TestFig7Shape:
    def test_gpu_beats_cpu_hybrid_beats_gpu(self, case):
        _, profile, node = case
        cpu = simulate_cpu_baseline(profile, node)
        gpu = simulate_out_of_core(profile, node)
        hyb = simulate_hybrid(profile, node)
        assert 1.5 <= gpu.speedup_over(cpu) <= 3.2       # paper 1.98-3.03
        assert 1.1 <= hyb.speedup_over(gpu) <= 1.65      # paper 1.16-1.57


class TestFig8Shape:
    def test_async_speedup_band(self, case):
        _, profile, node = case
        sync = simulate_out_of_core(profile, node, mode="sync", order="natural")
        asy = simulate_out_of_core(profile, node)
        s = asy.speedup_over(sync)
        assert 1.03 <= s <= 1.25  # paper 6.8-17.7%


class TestFig9Shape:
    def test_reordering_not_worse(self, case):
        _, profile, node = case
        reordered = simulate_hybrid(profile, node, reorder=True)
        default = simulate_hybrid(profile, node, reorder=False)
        assert reordered.elapsed <= default.elapsed * 1.02


class TestFig10Shape:
    def test_rise_then_drop(self):
        series = fig10.collect(matrices=("nlp",))[0]
        assert series.rises_then_drops()
        assert 0.55 <= series.peak_ratio <= 0.80  # paper: near 65%


class TestTable3Shape:
    def test_ratio_close_to_best(self):
        rows = [r for r in table3.collect() if r.abbr in CHEAP]
        for r in rows:
            assert abs(r.ratio_count - r.best_count) <= 1
            assert r.drop_percent <= 8.0


class TestTable2Shape:
    def test_compression_ratio_ranking(self):
        rows = {r.abbr: r for r in table2.collect()}
        assert rows["stokes"].cr < rows["uk-2002"].cr < rows["nlp"].cr
        assert rows["lj2008"].cr < rows["wiki0206"].cr

    def test_paper_reference_present(self):
        for r in table2.collect():
            assert r.paper_cr > 0
