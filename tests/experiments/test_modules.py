"""Unit tests for the experiment modules' data handling (suite-independent
pieces; the cache-backed integration paths are covered by the benches and
``test_figures.py``)."""

import numpy as np
import pytest

from repro.experiments import fig07, fig10, table2, table3
from repro.experiments.ablations import AblationRow
from repro.experiments.scaling import ScalingRow


class TestFig7Row:
    def test_derived_ratios(self):
        r = fig07.Fig7Row(
            abbr="x", compression_ratio=2.0,
            cpu_gflops=0.25, gpu_gflops=0.5, hybrid_gflops=0.75,
        )
        assert r.gpu_over_cpu == pytest.approx(2.0)
        assert r.hybrid_over_gpu == pytest.approx(1.5)
        assert r.hybrid_over_cpu == pytest.approx(3.0)

    def test_zero_division_guard(self):
        r = fig07.Fig7Row("x", 2.0, 0.0, 0.0, 0.0)
        assert r.gpu_over_cpu == 0.0
        assert r.hybrid_over_gpu == 0.0


class TestFig10Series:
    def test_peak_and_shape(self):
        s = fig10.Fig10Series(
            abbr="m", ratios=(0.3, 0.5, 0.7, 0.9), gflops=(1.0, 2.0, 3.0, 2.5)
        )
        assert s.peak_ratio == 0.7
        assert s.rises_then_drops()

    def test_monotone_is_not_rise_drop(self):
        s = fig10.Fig10Series(
            abbr="m", ratios=(0.3, 0.5, 0.7), gflops=(1.0, 2.0, 3.0)
        )
        assert not s.rises_then_drops()


class TestTable3Row:
    def test_match(self):
        assert table3.Table3Row("x", 3, 3, 0.0).matches
        assert not table3.Table3Row("x", 3, 4, 2.5).matches

    def test_paper_counts_cover_suite(self):
        from repro.experiments.runner import all_abbrs

        assert set(table3.PAPER_COUNTS) == set(all_abbrs())


class TestTable2:
    def test_paper_crs_cover_suite(self):
        from repro.experiments.runner import all_abbrs

        assert set(table2.PAPER_CR) == set(all_abbrs())

    def test_paper_crs_match_suite_entries(self):
        from repro.sparse.suite import SUITE

        for e in SUITE:
            assert table2.PAPER_CR[e.abbr] == e.paper_cr


class TestAblationRow:
    def test_penalty(self):
        assert AblationRow("x", 1.0, 1.5).penalty == pytest.approx(1.5)


class TestScalingRow:
    def test_speedup(self):
        r = ScalingRow("x", (4.0, 2.0, 1.0))
        assert r.speedup(0) == 1.0
        assert r.speedup(2) == 4.0
