"""Tests for the experiment runner (caching, device sizing)."""

import pytest

from repro.core.chunks import csr_bytes
from repro.experiments import runner


class TestRegistry:
    def test_nine_abbrs_in_paper_order(self):
        abbrs = runner.all_abbrs()
        assert len(abbrs) == 9
        assert abbrs[0] == "lj2008"
        assert abbrs[3] == "stokes"


class TestCaching:
    def test_matrix_cached_on_disk_and_memory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner._matrix_cache.clear()
        m1 = runner.get_matrix("stokes")
        assert (tmp_path / ".cache" / "matrix_stokes.npz").exists()
        m2 = runner.get_matrix("stokes")
        assert m1 is m2  # memory cache hit
        # force a disk reload
        runner._matrix_cache.clear()
        m3 = runner.get_matrix("stokes")
        assert m3 == m1
        runner._matrix_cache.clear()

    def test_features_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner._matrix_cache.clear()
        runner._features_cache.clear()
        f1 = runner.get_features("stokes")
        assert (tmp_path / ".cache" / "features_stokes.json").exists()
        runner._features_cache.clear()
        f2 = runner.get_features("stokes")
        assert f1 == f2
        runner._matrix_cache.clear()
        runner._features_cache.clear()


class TestDeviceSizing:
    def test_out_of_core_guarantee(self):
        """Device memory must hold the inputs but not the full working set."""
        from repro.core.planner import working_set_bytes

        feat = runner.get_features("stokes")
        dev = runner.device_memory_for("stokes")
        inputs = 2 * csr_bytes(feat.n, feat.nnz)
        ws = working_set_bytes(feat.n, feat.nnz, feat.flops, feat.nnz_out)
        assert dev > inputs
        assert dev < ws

    def test_node_uses_scaled_memory(self):
        node = runner.get_node("stokes")
        assert node.gpu.device_memory_bytes == runner.device_memory_for("stokes")


class TestProfile:
    def test_profile_consistent_with_features(self):
        feat = runner.get_features("stokes")
        profile = runner.get_profile("stokes")
        assert profile.total_flops == feat.flops
        assert profile.total_nnz_out == feat.nnz_out
        assert profile.name == "stokes"

    def test_profile_roundtrips_through_cache(self, tmp_path, monkeypatch):
        # copy through a fresh cache dir: profile is rebuilt, then reloaded
        profile = runner.get_profile("stokes")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner._profile_cache.clear()
        runner._matrix_cache.clear()
        runner._features_cache.clear()
        rebuilt = runner.get_profile("stokes")
        assert rebuilt.chunks == profile.chunks
        runner._profile_cache.clear()
        runner._matrix_cache.clear()
        runner._features_cache.clear()


class TestGridProfiles:
    def test_explicit_grid_cached(self, tmp_path, monkeypatch):
        profile = runner.get_profile_for_grid("stokes", 2, 2)
        assert profile.grid.num_chunks == 4
        assert profile.total_flops == runner.get_features("stokes").flops
        # second call hits the in-memory cache (same object)
        again = runner.get_profile_for_grid("stokes", 2, 2)
        assert again is profile

    def test_distinct_grids_distinct_profiles(self):
        p22 = runner.get_profile_for_grid("stokes", 2, 2)
        p33 = runner.get_profile_for_grid("stokes", 3, 3)
        assert len(p22.chunks) != len(p33.chunks)
        assert p22.total_flops == p33.total_flops


class TestCorruptCacheRecovery:
    """A truncated or garbage cache artifact must be discarded and rebuilt,
    never crash the run (the cache is disposable by design)."""

    def _fresh(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner._matrix_cache.clear()
        runner._features_cache.clear()
        runner._profile_cache.clear()

    def test_corrupt_matrix_npz_regenerated(self, tmp_path, monkeypatch):
        self._fresh(tmp_path, monkeypatch)
        good = runner.get_matrix("stokes")
        path = tmp_path / ".cache" / "matrix_stokes.npz"
        path.write_bytes(b"this is not a zip archive")
        runner._matrix_cache.clear()
        with pytest.warns(RuntimeWarning, match="corrupt cache"):
            rebuilt = runner.get_matrix("stokes")
        assert rebuilt == good
        # the replacement on disk is valid again
        runner._matrix_cache.clear()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            runner.get_matrix("stokes")
        self._fresh(tmp_path, monkeypatch)

    def test_corrupt_features_json_regenerated(self, tmp_path, monkeypatch):
        self._fresh(tmp_path, monkeypatch)
        good = runner.get_features("stokes")
        path = tmp_path / ".cache" / "features_stokes.json"
        path.write_text("{truncated")
        runner._features_cache.clear()
        with pytest.warns(RuntimeWarning, match="corrupt cache"):
            assert runner.get_features("stokes") == good
        self._fresh(tmp_path, monkeypatch)

    def test_corrupt_profile_json_regenerated(self, tmp_path, monkeypatch):
        self._fresh(tmp_path, monkeypatch)
        good = runner.get_profile_for_grid("stokes", 2, 2)
        path = tmp_path / ".cache" / "profile_stokes_2x2.json"
        path.write_text("not json at all")
        runner._profile_cache.clear()
        with pytest.warns(RuntimeWarning, match="corrupt cache"):
            rebuilt = runner.get_profile_for_grid("stokes", 2, 2)
        assert rebuilt.total_flops == good.total_flops
        assert len(rebuilt.chunks) == len(good.chunks)
        self._fresh(tmp_path, monkeypatch)


class TestKernelKeyedProfiles:
    """Profiles carry the kernel wire form that produced them; entries
    measured under another kernel are stale and must be invalidated."""

    def _fresh(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner._matrix_cache.clear()
        runner._features_cache.clear()
        runner._profile_cache.clear()

    def test_payload_records_current_kernel(self, tmp_path, monkeypatch):
        import json

        from repro.spgemm.kernels import resolved_wire

        self._fresh(tmp_path, monkeypatch)
        runner.get_profile("stokes")
        payload = json.loads(
            (tmp_path / ".cache" / "profile_stokes.json").read_text()
        )
        assert payload["kernel"] == resolved_wire()
        self._fresh(tmp_path, monkeypatch)

    def test_stale_kernel_entry_invalidated(self, tmp_path, monkeypatch):
        import json

        self._fresh(tmp_path, monkeypatch)
        good = runner.get_profile("stokes")
        path = tmp_path / ".cache" / "profile_stokes.json"
        payload = json.loads(path.read_text())
        payload["kernel"] = "some-retired-kernel"
        path.write_text(json.dumps(payload))
        runner._profile_cache.clear()
        with pytest.warns(RuntimeWarning, match="cached under kernel"):
            rebuilt = runner.get_profile("stokes")
        assert rebuilt.chunks == good.chunks
        # the rewritten entry is valid again
        assert json.loads(path.read_text())["kernel"] != "some-retired-kernel"
        self._fresh(tmp_path, monkeypatch)

    def test_pre_kernel_entry_invalidated(self, tmp_path, monkeypatch):
        """Entries from before kernel keying (no "kernel" field) are
        treated as stale, not trusted."""
        import json

        self._fresh(tmp_path, monkeypatch)
        good = runner.get_profile_for_grid("stokes", 2, 2)
        path = tmp_path / ".cache" / "profile_stokes_2x2.json"
        payload = json.loads(path.read_text())
        del payload["kernel"]
        path.write_text(json.dumps(payload))
        runner._profile_cache.clear()
        with pytest.warns(RuntimeWarning, match="cached under kernel"):
            rebuilt = runner.get_profile_for_grid("stokes", 2, 2)
        assert rebuilt.chunks == good.chunks
        self._fresh(tmp_path, monkeypatch)

    def test_memory_cache_keyed_per_kernel(self, tmp_path, monkeypatch):
        self._fresh(tmp_path, monkeypatch)
        auto = runner.get_profile("stokes")
        esc = runner.get_profile("stokes", kernel="esc")
        assert esc is not auto
        assert all(c.kernel == "esc" for c in esc.chunks)
        self._fresh(tmp_path, monkeypatch)
