"""Fixtures for out-of-core framework tests: a small out-of-core workload."""

import pytest

from repro.core.chunks import ChunkGrid, profile_chunks
from repro.device.kernels import default_cost_model
from repro.device.specs import v100_node
from repro.sparse.generators import rmat


@pytest.fixture(scope="package")
def workload():
    """A small skewed matrix with a fixed 3x3 grid, profiled once."""
    a = rmat(9, 8.0, seed=77)
    grid = ChunkGrid.regular(a.n_rows, a.n_cols, 3, 3)
    profile, outputs = profile_chunks(a, a, grid, keep_outputs=True, name="fixture")
    return a, grid, profile, outputs


@pytest.fixture(scope="package")
def node():
    return v100_node(device_memory_bytes=64 << 20)


@pytest.fixture(scope="package")
def cost(node):
    return default_cost_model(node)
