"""Tests for the memory-accounting replay."""

import pytest

from repro.core.memcheck import replay_dynamic, replay_pool


class TestReplayPool:
    def test_planned_workload_fits(self, workload, node):
        _, _, profile, _ = workload
        replay = replay_pool(profile, node.gpu.device_memory_bytes)
        assert replay.fits, replay
        assert 0 < replay.peak_bytes <= replay.capacity
        assert replay.allocator == "pool"

    def test_tiny_device_fails(self, workload):
        _, _, profile, _ = workload
        replay = replay_pool(profile, 1 << 20)
        assert not replay.fits
        assert replay.failed_chunk is not None

    def test_single_buffer_needs_less(self, workload, node):
        _, _, profile, _ = workload
        dbl = replay_pool(profile, node.gpu.device_memory_bytes, buffers=2)
        single = replay_pool(profile, node.gpu.device_memory_bytes, buffers=1)
        assert single.peak_bytes <= dbl.peak_bytes

    def test_utilization(self, workload, node):
        _, _, profile, _ = workload
        replay = replay_pool(profile, node.gpu.device_memory_bytes)
        assert 0.0 < replay.utilization <= 1.0


class TestPoolPrimitives:
    def test_undersized_pool_raises_typed_oom(self):
        from repro.device.memory import DeviceOutOfMemory, MemoryPool

        pool = MemoryPool(1024)
        pool.alloc(512, tag="a")
        with pytest.raises(DeviceOutOfMemory):
            pool.alloc(1024, tag="b")

    def test_replay_reports_failed_chunk_not_exception(self, workload):
        # the replay converts the pool's DeviceOutOfMemory into a
        # diagnosable verdict instead of letting it propagate
        _, _, profile, _ = workload
        replay = replay_pool(profile, 1 << 12)
        assert not replay.fits
        assert replay.failed_chunk == 0  # first chunk already overflows


class TestPoolGauges:
    def test_double_buffer_replay_emits_utilization_gauges(self, workload,
                                                           node):
        from repro.observability.tracer import Tracer

        _, _, profile, _ = workload
        tracer = Tracer()
        replay = replay_pool(profile, node.gpu.device_memory_bytes,
                             buffers=2, tracer=tracer)
        assert replay.fits
        samples = [g for g in tracer.gauges if g.name == "device_pool"]
        assert len(samples) == len(profile.chunks)  # one per chunk
        for g in samples:
            assert 0 < g.values["used"] <= g.values["high_water"]
            assert g.values["high_water"] <= g.values["capacity"]
            assert g.values["capacity"] == replay.capacity
        high_water = max(g.values["high_water"] for g in samples)
        assert high_water == replay.peak_bytes

    def test_null_tracer_emits_nothing(self, workload, node):
        from repro.observability.tracer import NULL_TRACER

        _, _, profile, _ = workload
        replay = replay_pool(profile, node.gpu.device_memory_bytes,
                             buffers=2, tracer=NULL_TRACER)
        assert replay.fits
        assert NULL_TRACER.gauges == ()


class TestReplayDynamic:
    def test_planned_workload_fits(self, workload, node):
        _, _, profile, _ = workload
        replay = replay_dynamic(profile, node.gpu.device_memory_bytes)
        assert replay.fits
        assert replay.allocator == "dynamic"

    def test_dynamic_peak_below_pool_peak(self, workload, node):
        """One chunk in flight (sync) needs less than double buffering."""
        _, _, profile, _ = workload
        pool = replay_pool(profile, node.gpu.device_memory_bytes, buffers=2)
        dyn = replay_dynamic(profile, node.gpu.device_memory_bytes)
        assert dyn.peak_bytes <= pool.peak_bytes

    def test_tiny_device_fails(self, workload):
        _, _, profile, _ = workload
        assert not replay_dynamic(profile, 1 << 20).fits


class TestPlannerConsistency:
    def test_planner_grid_passes_replay(self):
        """End-to-end: a grid the planner accepts must fit the replay."""
        from repro.core.chunks import profile_chunks
        from repro.core.planner import plan_grid
        from repro.device.specs import v100_node
        from repro.sparse.generators import rmat

        a = rmat(9, 8.0, seed=13)
        node = v100_node(48 << 20)
        report = plan_grid(a, a, node)
        profile, _ = profile_chunks(a, a, report.grid)
        replay = replay_pool(profile, node.gpu.device_memory_bytes)
        assert replay.fits, (report, replay)
