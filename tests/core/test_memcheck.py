"""Tests for the memory-accounting replay."""

import pytest

from repro.core.memcheck import replay_dynamic, replay_pool


class TestReplayPool:
    def test_planned_workload_fits(self, workload, node):
        _, _, profile, _ = workload
        replay = replay_pool(profile, node.gpu.device_memory_bytes)
        assert replay.fits, replay
        assert 0 < replay.peak_bytes <= replay.capacity
        assert replay.allocator == "pool"

    def test_tiny_device_fails(self, workload):
        _, _, profile, _ = workload
        replay = replay_pool(profile, 1 << 20)
        assert not replay.fits
        assert replay.failed_chunk is not None

    def test_single_buffer_needs_less(self, workload, node):
        _, _, profile, _ = workload
        dbl = replay_pool(profile, node.gpu.device_memory_bytes, buffers=2)
        single = replay_pool(profile, node.gpu.device_memory_bytes, buffers=1)
        assert single.peak_bytes <= dbl.peak_bytes

    def test_utilization(self, workload, node):
        _, _, profile, _ = workload
        replay = replay_pool(profile, node.gpu.device_memory_bytes)
        assert 0.0 < replay.utilization <= 1.0


class TestReplayDynamic:
    def test_planned_workload_fits(self, workload, node):
        _, _, profile, _ = workload
        replay = replay_dynamic(profile, node.gpu.device_memory_bytes)
        assert replay.fits
        assert replay.allocator == "dynamic"

    def test_dynamic_peak_below_pool_peak(self, workload, node):
        """One chunk in flight (sync) needs less than double buffering."""
        _, _, profile, _ = workload
        pool = replay_pool(profile, node.gpu.device_memory_bytes, buffers=2)
        dyn = replay_dynamic(profile, node.gpu.device_memory_bytes)
        assert dyn.peak_bytes <= pool.peak_bytes

    def test_tiny_device_fails(self, workload):
        _, _, profile, _ = workload
        assert not replay_dynamic(profile, 1 << 20).fits


class TestPlannerConsistency:
    def test_planner_grid_passes_replay(self):
        """End-to-end: a grid the planner accepts must fit the replay."""
        from repro.core.chunks import profile_chunks
        from repro.core.planner import plan_grid
        from repro.device.specs import v100_node
        from repro.sparse.generators import rmat

        a = rmat(9, 8.0, seed=13)
        node = v100_node(48 << 20)
        report = plan_grid(a, a, node)
        profile, _ = profile_chunks(a, a, report.grid)
        replay = replay_pool(profile, node.gpu.device_memory_bytes)
        assert replay.fits, (report, replay)
