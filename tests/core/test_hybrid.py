"""Tests for the hybrid CPU-GPU assignment (Algorithm 4)."""

import pytest

from repro.core.hybrid import (
    DEFAULT_RATIO,
    assign_chunks,
    assign_first_n,
    best_gpu_chunk_count,
    build_hybrid_engine,
)
from repro.core.schedule import CPU, D2H, GPU


class TestAssignChunks:
    def test_partition_is_complete(self, workload):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.65)
        all_ids = sorted(asn.gpu_chunks + asn.cpu_chunks)
        assert all_ids == profile.natural_order()

    def test_prefix_reaches_ratio(self, workload):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.65)
        assert asn.gpu_flop_share >= 0.65

    def test_smallest_such_prefix(self, workload):
        """Algorithm 4: num_gpu is the FIRST prefix crossing the ratio."""
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.65)
        without_last = sum(
            profile.chunks[c].flops for c in asn.gpu_chunks[:-1]
        )
        assert without_last / profile.total_flops < 0.65

    def test_reorder_true_takes_densest(self, workload):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.65, reorder=True)
        gpu_min = min(profile.chunks[c].flops for c in asn.gpu_chunks)
        cpu_max = max(profile.chunks[c].flops for c in asn.cpu_chunks)
        assert gpu_min >= cpu_max

    def test_reorder_false_natural_prefix(self, workload):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.65, reorder=False)
        assert list(asn.gpu_chunks) == list(range(asn.num_gpu))

    def test_ratio_zero(self, workload):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.0)
        assert asn.num_gpu == 0
        assert len(asn.cpu_chunks) == len(profile.chunks)

    def test_ratio_one(self, workload):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 1.0)
        assert len(asn.cpu_chunks) == 0

    def test_invalid_ratio(self, workload):
        _, _, profile, _ = workload
        with pytest.raises(ValueError):
            assign_chunks(profile, 1.5)

    def test_default_ratio_is_65(self):
        assert DEFAULT_RATIO == 0.65


class TestAssignFirstN:
    def test_explicit_count(self, workload):
        _, _, profile, _ = workload
        asn = assign_first_n(profile, 3)
        assert asn.num_gpu == 3
        assert asn.gpu_chunks == tuple(profile.order_by_flops_desc()[:3])

    def test_bounds(self, workload):
        _, _, profile, _ = workload
        with pytest.raises(ValueError):
            assign_first_n(profile, -1)
        with pytest.raises(ValueError):
            assign_first_n(profile, len(profile.chunks) + 1)

    def test_ratio_field_reflects_share(self, workload):
        _, _, profile, _ = workload
        asn = assign_first_n(profile, len(profile.chunks))
        assert asn.ratio == pytest.approx(1.0)


class TestHybridEngine:
    def test_both_devices_busy(self, workload, cost):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.65)
        tl = build_hybrid_engine(profile, cost, asn).run()
        assert tl.busy_time(GPU) > 0
        assert tl.busy_time(CPU) > 0

    def test_cpu_and_gpu_overlap(self, workload, cost):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.65)
        tl = build_hybrid_engine(profile, cost, asn).run()
        assert tl.overlap_time(CPU, D2H) > 0

    def test_all_cpu_assignment(self, workload, cost):
        _, _, profile, _ = workload
        asn = assign_chunks(profile, 0.0)
        tl = build_hybrid_engine(profile, cost, asn).run()
        assert tl.busy_time(GPU) == 0
        assert len(tl.ops_on(CPU)) == len(profile.chunks)

    def test_hybrid_beats_both_single_device(self, workload, cost):
        _, _, profile, _ = workload
        gpu_only = build_hybrid_engine(profile, cost, assign_chunks(profile, 1.0)).run()
        cpu_only = build_hybrid_engine(profile, cost, assign_chunks(profile, 0.0)).run()
        hybrid = build_hybrid_engine(profile, cost, assign_chunks(profile, 0.65)).run()
        assert hybrid.makespan() < gpu_only.makespan()
        assert hybrid.makespan() < cpu_only.makespan()


class TestBestCount:
    def test_search_covers_all_counts(self, workload, cost):
        _, _, profile, _ = workload
        best, times = best_gpu_chunk_count(profile, cost)
        assert len(times) == len(profile.chunks) + 1
        assert 0 <= best <= len(profile.chunks)

    def test_best_is_argmin(self, workload, cost):
        _, _, profile, _ = workload
        best, times = best_gpu_chunk_count(profile, cost)
        assert times[best] == min(times)

    def test_endpoints_match_single_device(self, workload, cost):
        _, _, profile, _ = workload
        _, times = best_gpu_chunk_count(profile, cost)
        cpu_only = build_hybrid_engine(profile, cost, assign_first_n(profile, 0)).run()
        gpu_only = build_hybrid_engine(
            profile, cost, assign_first_n(profile, len(profile.chunks))
        ).run()
        assert times[0] == pytest.approx(cpu_only.makespan())
        assert times[-1] == pytest.approx(gpu_only.makespan())
