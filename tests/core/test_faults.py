"""Fault-tolerance tests: retry policy, fault injection, chaos matrix.

The chaos matrix injects ``raise`` / ``delay`` / ``kill`` faults at every
pipeline stage (analysis / symbolic / numeric / sink) under every
backend and asserts the three recovery invariants of the executor:

1. the run completes (retries / respawns absorb the fault);
2. the product is bit-identical to an undisturbed serial run — recovery
   never changes results;
3. ``/dev/shm`` ends empty — recovery never leaks a shared segment.
"""

import os
import threading
import time
import warnings

import pytest

from repro.core.chunks import ChunkGrid
from repro.core.executor import (
    NO_RETRY,
    BackendDegradedWarning,
    BackendUnavailable,
    ChunkExecutionError,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    WorkerCrashed,
    execute_chunk_grid,
)
from repro.core.executor.faults import FAULT_STAGES, as_injector, default_retryable
from repro.sparse.generators import rmat

from .test_executor_backends import assert_outputs_identical, leaked_shm

#: fast backoff for tests — still exercises the sleep path (delay > 0)
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)

WORKER_STAGES = ("analysis", "symbolic", "numeric")


@pytest.fixture(scope="module")
def problem():
    a = rmat(9, 8.0, seed=21)
    b = rmat(9, 8.0, seed=22)
    grid = ChunkGrid.regular(a.shape[0], b.shape[1], 3, 3)
    return a, b, grid


@pytest.fixture(scope="module")
def baseline(problem):
    a, b, grid = problem
    _, outputs = execute_chunk_grid(a, b, grid, keep_outputs=True)
    return outputs


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_no_retry_default(self):
        assert NO_RETRY.max_attempts == 1
        assert not NO_RETRY.should_retry(RuntimeError("x"), 1)

    def test_should_retry_counts_total_attempts(self):
        pol = RetryPolicy(max_attempts=3)
        exc = RuntimeError("transient")
        assert pol.should_retry(exc, 1)
        assert pol.should_retry(exc, 2)
        assert not pol.should_retry(exc, 3)

    def test_base_exceptions_never_retried(self):
        pol = RetryPolicy(max_attempts=5)
        assert not pol.should_retry(KeyboardInterrupt(), 1)
        assert not pol.should_retry(SystemExit(1), 1)
        assert not default_retryable(KeyboardInterrupt())
        assert default_retryable(ValueError("v"))

    def test_custom_retryable_predicate(self):
        pol = RetryPolicy(max_attempts=3,
                          retryable=lambda e: isinstance(e, OSError))
        assert pol.should_retry(OSError("io"), 1)
        assert not pol.should_retry(ValueError("v"), 1)

    def test_delay_deterministic_and_growing(self):
        pol = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=10.0,
                          backoff=2.0, jitter=0.5)
        assert pol.delay_for(1, salt=7) == pol.delay_for(1, salt=7)
        # exponential growth: each delay (pre-jitter base doubles, jitter
        # stretches by at most 50%) strictly exceeds the previous base
        for attempt in range(1, 4):
            lo = 0.1 * 2.0 ** (attempt - 1)
            assert lo <= pol.delay_for(attempt) <= lo * 1.5

    def test_delay_capped_by_max_delay(self):
        pol = RetryPolicy(max_attempts=99, base_delay=1.0, max_delay=2.0,
                          jitter=0.0)
        assert pol.delay_for(50) == 2.0

    def test_jitter_desynchronizes_chunks(self):
        pol = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.5)
        delays = {pol.delay_for(1, salt=cid) for cid in range(16)}
        assert len(delays) > 1

    def test_delay_rejects_bad_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)


# ----------------------------------------------------------------------
# FaultSpec / FaultInjector
# ----------------------------------------------------------------------
class TestFaultSpec:
    @pytest.mark.parametrize("spec", [
        FaultSpec("numeric", "raise"),
        FaultSpec("analysis", "delay", delay=0.25),
        FaultSpec("symbolic", "kill", chunk=3),
        FaultSpec("sink", "raise", chunk=0, times=-1),
        FaultSpec("numeric", "raise", chunk=7, times=4, latch="/tmp/x.latch"),
    ])
    def test_encode_decode_roundtrip(self, spec):
        assert FaultSpec.decode(spec.encode()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("gpu", "raise")
        with pytest.raises(ValueError):
            FaultSpec("numeric", "explode")
        with pytest.raises(ValueError):
            FaultSpec("numeric", "raise", times=0)
        with pytest.raises(ValueError):
            FaultSpec("numeric", "raise", times=-2)

    def test_decode_malformed(self):
        with pytest.raises(ValueError):
            FaultSpec.decode("numeric")
        with pytest.raises(ValueError):
            FaultSpec.decode("numeric:raise:bogus=1")


class TestFaultInjector:
    def test_inert_injector(self):
        inj = FaultInjector()
        assert not inj.enabled
        assert inj.hook_for(0) is None
        inj.fire("numeric", 0)  # no-op

    def test_from_string_multiple_specs(self):
        inj = FaultInjector.from_string("numeric:raise:chunk=1;sink:delay")
        assert inj.enabled
        assert len(inj.specs) == 2
        assert FaultInjector.from_string(inj.encode()).specs == inj.specs

    def test_from_env(self):
        inj = FaultInjector.from_env({"REPRO_FAULTS": "numeric:raise"})
        assert inj.enabled
        assert not FaultInjector.from_env({}).enabled

    def test_as_injector_normalization(self):
        assert isinstance(as_injector("numeric:raise"), FaultInjector)
        inj = FaultInjector.from_string("numeric:raise")
        assert as_injector(inj) is inj
        assert as_injector([FaultSpec("sink", "raise")]).enabled

    def test_chunk_scoping(self):
        inj = FaultInjector.from_string("numeric:raise:chunk=3:times=-1")
        inj.fire("numeric", 2)   # other chunk: no fault
        inj.fire("symbolic", 3)  # other stage: no fault
        with pytest.raises(InjectedFault):
            inj.fire("numeric", 3)

    def test_times_counts_firings(self):
        inj = FaultInjector.from_string("numeric:raise:times=2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                inj.fire("numeric", 0)
        inj.fire("numeric", 0)  # dormant after two firings

    def test_latch_exactly_once_across_injectors(self, tmp_path):
        latch = str(tmp_path / "x.latch")
        spec = f"numeric:raise:times=-1:latch={latch}"
        first = FaultInjector.from_string(spec)
        with pytest.raises(InjectedFault):
            first.fire("numeric", 0)
        first.fire("numeric", 0)  # latched: never again in this injector
        # a second injector (a respawned worker process) sees the latch
        FaultInjector.from_string(spec).fire("numeric", 0)

    def test_delay_action_sleeps(self):
        inj = FaultInjector.from_string("numeric:delay:delay=0.05")
        t0 = time.perf_counter()
        inj.fire("numeric", 0)
        assert time.perf_counter() - t0 >= 0.05

    def test_thread_safe_times(self):
        inj = FaultInjector.from_string("numeric:raise:times=8")
        hits = []

        def worker():
            for _ in range(8):
                try:
                    inj.fire("numeric", 0)
                except InjectedFault:
                    hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == 8


class TestErrors:
    def test_chunk_execution_error_carries_context(self):
        exc = ChunkExecutionError(5, 2, "boom traceback", stage="numeric")
        assert exc.chunk_id == 5 and exc.attempt == 2
        assert exc.stage == "numeric"
        assert "chunk 5" in str(exc) and "attempt 2" in str(exc)
        assert "boom traceback" in str(exc)
        assert isinstance(exc, RuntimeError)

    def test_backend_unavailable_attrs(self):
        exc = BackendUnavailable("process", "spawn failed")
        assert exc.backend == "process" and exc.reason == "spawn failed"


# ----------------------------------------------------------------------
# chaos matrix: stage x action x backend
# ----------------------------------------------------------------------
def run_with_faults(problem, backend, spec, *, retry=FAST_RETRY,
                    crash_budget=0, tracer=None, governor=None):
    a, b, grid = problem
    workers = 1 if backend == "serial" else 2
    return execute_chunk_grid(
        a, b, grid, workers=workers, backend=backend, keep_outputs=True,
        retry=retry, crash_budget=crash_budget, faults=spec, tracer=tracer,
        governor=governor,
    )


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("action", ["raise", "delay"])
@pytest.mark.parametrize("stage", FAULT_STAGES)
def test_chaos_matrix(problem, baseline, tmp_path, stage, action, backend):
    """Every stage x action x backend combination recovers bit-identically.

    ``raise`` faults use a latch so they fire exactly once machine-wide —
    per-process ``times`` counters would re-fire on every worker under
    the process backend and could exhaust the retry budget.
    """
    spec = f"{stage}:{action}:chunk=4"
    if action == "raise":
        spec += f":latch={tmp_path / 'fault.latch'}"
    from repro.observability.tracer import Tracer

    tracer = Tracer()
    _, outputs = run_with_faults(problem, backend, spec, tracer=tracer)
    assert_outputs_identical(outputs, baseline)
    if action == "raise":
        retries = [s for s in tracer.spans if s.cat == "retry"]
        assert len(retries) == 1
        assert tracer.counters("faults").get("retries") == 1
    assert leaked_shm() == []


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("stage", FAULT_STAGES)
def test_chaos_matrix_oom(problem, baseline, tmp_path, stage, backend):
    """A DeviceOutOfMemory at any stage x backend recovers bit-identically
    — via adaptive re-splitting when the kernel overflowed, via a plain
    retry when the parent-side sink did."""
    from repro.observability.tracer import Tracer

    spec = f"{stage}:oom:chunk=4:latch={tmp_path / 'oom.latch'}"
    tracer = Tracer()
    _, outputs = run_with_faults(problem, backend, spec, tracer=tracer)
    assert_outputs_identical(outputs, baseline)
    counters = tracer.counters("faults")
    assert counters.get("resplits", 0) + counters.get("retries", 0) >= 1
    assert leaked_shm() == []


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("stage", FAULT_STAGES)
def test_chaos_matrix_corrupt(problem, baseline, tmp_path, stage, backend):
    """A ChunkCorruption at any stage x backend is retryable: the chunk is
    recomputed and the product stays bit-identical."""
    from repro.observability.tracer import Tracer

    spec = f"{stage}:corrupt:chunk=4:latch={tmp_path / 'corrupt.latch'}"
    tracer = Tracer()
    _, outputs = run_with_faults(problem, backend, spec, tracer=tracer)
    assert_outputs_identical(outputs, baseline)
    assert tracer.counters("faults").get("retries", 0) >= 1
    assert leaked_shm() == []


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("stage", WORKER_STAGES)
def test_chaos_matrix_hang(problem, baseline, tmp_path, stage, backend):
    """A hung chunk at any kernel stage is cancelled by the governor —
    cooperatively (deadline checks between stages, serial/thread) or by
    the parent watchdog killing the unresponsive worker (process) — and
    the retried attempt completes bit-identically.  Worker stages only:
    the sink runs on the parent's lane thread, where a hang would stall
    the driver itself rather than a cancellable chunk attempt."""
    from repro.core import Governor, GovernorConfig
    from repro.observability.tracer import Tracer

    spec = f"{stage}:hang:chunk=4:delay=30:latch={tmp_path / 'hang.latch'}"
    gov = Governor(GovernorConfig(deadline_seconds=0.4,
                                  heartbeat_interval=0.1))
    tracer = Tracer()
    _, outputs = run_with_faults(problem, backend, spec, tracer=tracer,
                                 crash_budget=1, governor=gov)
    assert_outputs_identical(outputs, baseline)
    assert tracer.counters("faults").get("timeouts", 0) >= 1
    assert leaked_shm() == []


@pytest.mark.parametrize("stage", WORKER_STAGES)
def test_kill_injection_respawns_and_completes(problem, baseline, tmp_path,
                                               stage):
    """A hard worker kill at any kernel stage is absorbed by the crash
    budget: the chunk is requeued, the worker respawned, and the product
    stays bit-identical with no leaked segments."""
    from repro.observability.tracer import Tracer

    spec = f"{stage}:kill:chunk=2:latch={tmp_path / 'kill.latch'}"
    tracer = Tracer()
    _, outputs = run_with_faults(problem, "process", spec, crash_budget=1,
                                 tracer=tracer)
    assert_outputs_identical(outputs, baseline)
    respawns = [s for s in tracer.spans if s.cat == "respawn"]
    assert len(respawns) == 1
    assert tracer.counters("faults").get("respawns") == 1
    assert leaked_shm() == []


def test_kill_without_budget_aborts(problem, tmp_path):
    spec = f"numeric:kill:chunk=2:latch={tmp_path / 'kill.latch'}"
    with pytest.raises(WorkerCrashed):
        run_with_faults(problem, "process", spec, crash_budget=0)
    assert leaked_shm() == []


def test_crash_budget_exhausted(problem):
    """An unlatched kill re-fires in every respawned worker; once crashes
    exceed the budget the run aborts (still without leaking)."""
    with pytest.raises(WorkerCrashed):
        run_with_faults(problem, "process", "numeric:kill:chunk=2:times=-1",
                        crash_budget=2)
    assert leaked_shm() == []


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_retries_exhausted_propagates(problem, backend):
    """A fault that outlives the retry budget fails the run with the
    original (or worker-wrapped) error."""
    spec = "numeric:raise:chunk=1:times=-1"
    with pytest.raises((InjectedFault, ChunkExecutionError)):
        run_with_faults(problem, backend, spec,
                        retry=RetryPolicy(max_attempts=2, base_delay=0.0))
    assert leaked_shm() == []


def test_no_retry_fails_on_first_fault(problem):
    with pytest.raises(InjectedFault):
        run_with_faults(problem, "serial", "numeric:raise:chunk=0",
                        retry=None)


def test_sink_fault_leaves_chunk_incomplete_without_retry(problem):
    """A sink-stage failure must not mark the chunk completed — under
    NO_RETRY it propagates instead of silently dropping the write."""
    with pytest.raises(InjectedFault):
        run_with_faults(problem, "process", "sink:raise:chunk=3",
                        retry=None)
    assert leaked_shm() == []


# ----------------------------------------------------------------------
# graceful degradation process -> thread -> serial
# ----------------------------------------------------------------------
def _break_backends(monkeypatch, broken):
    """Patch ``make_backend`` so the named backends fail to establish."""
    import repro.core.executor.backends as backends_mod
    import repro.core.executor.engine as engine_mod

    real = backends_mod.make_backend

    def fake(name):
        if name in broken:
            class _Broken:
                def execute(self, *a, **k):
                    raise BackendUnavailable(name, "simulated establishment failure")
            return _Broken()
        return real(name)

    monkeypatch.setattr(backends_mod, "make_backend", fake)
    return engine_mod


@pytest.mark.parametrize("broken,expected_fallback", [
    ({"process"}, "thread"),
    ({"process", "thread"}, "serial"),
])
def test_degradation_chain(problem, baseline, monkeypatch, broken,
                           expected_fallback):
    from repro.observability.tracer import Tracer

    _break_backends(monkeypatch, broken)
    a, b, grid = problem
    tracer = Tracer()
    with pytest.warns(BackendDegradedWarning):
        _, outputs = execute_chunk_grid(
            a, b, grid, workers=2, backend="process", keep_outputs=True,
            tracer=tracer,
        )
    assert_outputs_identical(outputs, baseline)
    degrades = [s for s in tracer.spans if s.cat == "degrade"]
    assert len(degrades) == len(broken)
    assert degrades[-1].name.endswith(f"->{expected_fallback}]")
    assert tracer.counters("faults").get("degraded") == len(broken)


def test_degrade_false_propagates(problem, monkeypatch):
    _break_backends(monkeypatch, {"process"})
    a, b, grid = problem
    with pytest.raises(BackendUnavailable):
        execute_chunk_grid(a, b, grid, workers=2, backend="process",
                           keep_outputs=True, degrade=False)


def test_serial_backend_unavailable_is_terminal(problem, monkeypatch):
    """Serial is the end of the chain — nothing left to degrade to."""
    _break_backends(monkeypatch, {"serial"})
    a, b, grid = problem
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no spurious degrade warning either
        with pytest.raises(BackendUnavailable):
            execute_chunk_grid(a, b, grid, keep_outputs=True,
                               backend="serial")


def test_real_process_spawn_failure_degrades(problem, baseline, monkeypatch):
    """An actual pool-establishment failure (not a patched backend) takes
    the same degradation path."""
    import repro.core.executor.backends as backends_mod

    def broken_pool(*a, **k):
        raise OSError("cannot spawn workers")

    monkeypatch.setattr(backends_mod, "ProcessLanePool", broken_pool)
    a, b, grid = problem
    with pytest.warns(BackendDegradedWarning):
        _, outputs = execute_chunk_grid(a, b, grid, workers=2,
                                        backend="process", keep_outputs=True)
    assert_outputs_identical(outputs, baseline)
    assert leaked_shm() == []
