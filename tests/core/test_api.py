"""Tests for the public API entry points."""

import pytest

from repro.core.api import (
    make_profile,
    run_hybrid,
    run_out_of_core,
    simulate_cpu_baseline,
    simulate_hybrid,
    simulate_out_of_core,
    spgemm,
)
from repro.sparse.generators import rmat
from repro.sparse.ops import drop_explicit_zeros
from repro.spgemm.reference import spgemm_scipy
from tests.conftest import assert_equals_scipy_product


@pytest.fixture(scope="module")
def matrix():
    return rmat(9, 6.0, seed=99)


class TestSpgemm:
    def test_in_core_product(self, matrix):
        assert_equals_scipy_product(spgemm(matrix, matrix), matrix, matrix)


class TestRunOutOfCore:
    def test_async_result_correct(self, matrix, node):
        res = run_out_of_core(matrix, matrix, node, name="t")
        assert_equals_scipy_product(res.matrix, matrix, matrix)
        assert res.mode == "async"
        assert res.name == "t"
        assert res.elapsed > 0
        assert res.gflops > 0

    def test_sync_mode(self, matrix, node):
        res = run_out_of_core(matrix, matrix, node, mode="sync", order="natural")
        assert_equals_scipy_product(res.matrix, matrix, matrix)
        assert res.mode == "sync"

    def test_keep_output_false(self, matrix, node):
        res = run_out_of_core(matrix, matrix, node, keep_output=False)
        assert res.matrix is None
        assert res.profile.total_flops > 0

    def test_explicit_grid(self, matrix, node):
        from repro.core.chunks import ChunkGrid

        grid = ChunkGrid.regular(matrix.n_rows, matrix.n_cols, 2, 2)
        res = run_out_of_core(matrix, matrix, node, grid=grid)
        assert len(res.profile.chunks) == 4
        assert_equals_scipy_product(res.matrix, matrix, matrix)

    def test_bad_mode(self, workload, node):
        _, _, profile, _ = workload
        with pytest.raises(ValueError, match="mode"):
            simulate_out_of_core(profile, node, mode="bogus")

    def test_bad_order(self, workload, node):
        _, _, profile, _ = workload
        with pytest.raises(ValueError, match="order"):
            simulate_out_of_core(profile, node, order="bogus")

    def test_explicit_order_sequence(self, workload, node):
        _, _, profile, _ = workload
        ids = list(reversed(profile.natural_order()))
        res = simulate_out_of_core(profile, node, order=ids)
        assert res.meta["order"] == "explicit"


class TestRunHybrid:
    def test_result_correct(self, matrix, node):
        res = run_hybrid(matrix, matrix, node)
        assert_equals_scipy_product(res.matrix, matrix, matrix)
        assert res.mode == "hybrid"
        assert 0 < res.meta["num_gpu_chunks"] <= len(res.profile.chunks)
        assert res.meta["gpu_flop_share"] >= 0.65

    def test_ratio_meta(self, workload, node):
        _, _, profile, _ = workload
        res = simulate_hybrid(profile, node, ratio=0.5)
        assert res.meta["ratio"] == 0.5


class TestSimulationConsistency:
    def test_async_faster_than_sync(self, workload, node):
        _, _, profile, _ = workload
        sync = simulate_out_of_core(profile, node, mode="sync", order="natural")
        asy = simulate_out_of_core(profile, node, mode="async")
        assert asy.elapsed < sync.elapsed
        assert asy.speedup_over(sync) > 1.0

    def test_hybrid_faster_than_gpu_only(self, workload, node):
        _, _, profile, _ = workload
        gpu = simulate_out_of_core(profile, node)
        hyb = simulate_hybrid(profile, node)
        assert hyb.elapsed < gpu.elapsed

    def test_gpu_faster_than_cpu(self, workload, node):
        _, _, profile, _ = workload
        gpu = simulate_out_of_core(profile, node)
        cpu = simulate_cpu_baseline(profile, node)
        assert gpu.elapsed < cpu.elapsed

    def test_simulations_deterministic(self, workload, node):
        _, _, profile, _ = workload
        a = simulate_out_of_core(profile, node)
        b = simulate_out_of_core(profile, node)
        assert a.elapsed == b.elapsed


class TestMakeProfile:
    def test_plans_when_no_grid(self, matrix, node):
        profile, outputs = make_profile(matrix, matrix, node, keep_outputs=True)
        assert profile.total_flops > 0
        assert outputs is not None

    def test_no_outputs_by_default(self, matrix, node):
        _, outputs = make_profile(matrix, matrix, node)
        assert outputs is None


class TestParallelWorkers:
    def test_out_of_core_workers_bit_identical(self, matrix, node):
        import numpy as np

        serial = run_out_of_core(matrix, matrix, node, name="w")
        par = run_out_of_core(matrix, matrix, node, name="w", workers=4)
        np.testing.assert_array_equal(serial.matrix.row_offsets, par.matrix.row_offsets)
        np.testing.assert_array_equal(serial.matrix.col_ids, par.matrix.col_ids)
        np.testing.assert_array_equal(serial.matrix.data, par.matrix.data)
        assert par.meta["workers"] == 4
        assert par.measured_wall_seconds >= 0
        assert "workers=4" in par.summary()

    def test_hybrid_workers_bit_identical(self, matrix, node):
        import numpy as np

        serial = run_hybrid(matrix, matrix, node, name="h")
        par = run_hybrid(matrix, matrix, node, name="h", workers=3)
        np.testing.assert_array_equal(serial.matrix.row_offsets, par.matrix.row_offsets)
        np.testing.assert_array_equal(serial.matrix.col_ids, par.matrix.col_ids)
        np.testing.assert_array_equal(serial.matrix.data, par.matrix.data)
        assert par.meta["workers"] == 3
        assert_equals_scipy_product(par.matrix, matrix, matrix)

    def test_make_profile_records_measurements(self, matrix, node):
        profile, _ = make_profile(matrix, matrix, node, workers=2)
        assert profile.has_measured_times
        assert all(c.measured for c in profile.chunks)
