"""Tests for panel-count planning."""

import pytest

from repro.core.planner import (
    chunk_footprint_bytes,
    plan_grid,
    resident_input_bytes,
    working_set_bytes,
)
from repro.device.specs import v100_node
from repro.sparse.generators import banded, rmat


@pytest.fixture(scope="module")
def matrix():
    return rmat(10, 8.0, seed=91)


class TestFootprints:
    def test_chunk_footprint_grows_with_flops(self):
        assert chunk_footprint_bytes(100, 2_000_000) > chunk_footprint_bytes(100, 1_000_000)

    def test_resident_inputs_grow_with_panels(self, matrix):
        assert resident_input_bytes(matrix, matrix, 8) > resident_input_bytes(matrix, matrix, 1)

    def test_working_set_exceeds_output(self):
        ws = working_set_bytes(1000, 5000, 200_000, 60_000)
        assert ws > 60_000 * 16


class TestPlanGrid:
    def test_plan_fits(self, matrix):
        node = v100_node(64 << 20)
        report = plan_grid(matrix, matrix, node)
        assert report.fits
        assert report.worst_chunk_bytes <= report.budget_bytes

    def test_more_memory_coarser_grid(self, matrix):
        small = plan_grid(matrix, matrix, v100_node(48 << 20))
        large = plan_grid(matrix, matrix, v100_node(1 << 30))
        assert large.grid.num_chunks <= small.grid.num_chunks

    def test_huge_memory_single_chunk(self, matrix):
        report = plan_grid(matrix, matrix, v100_node(8 << 30))
        assert report.grid.num_chunks == 1

    def test_too_small_device_raises(self, matrix):
        with pytest.raises(ValueError, match="no grid"):
            plan_grid(matrix, matrix, v100_node(1 << 20), max_panels=4)

    def test_banded_prefers_valid_rectangles(self):
        m = banded(2000, 6, seed=1, fill=0.8)
        report = plan_grid(m, m, v100_node(8 << 20))
        g = report.grid
        # aspect-ratio constraint holds
        assert max(g.num_row_panels, g.num_col_panels) <= 4 * min(
            g.num_row_panels, g.num_col_panels
        )

    def test_bad_safety(self, matrix):
        with pytest.raises(ValueError):
            plan_grid(matrix, matrix, v100_node(), safety=0.0)

    def test_buffers_halve_budget(self, matrix):
        one = plan_grid(matrix, matrix, v100_node(64 << 20), buffers=1)
        two = plan_grid(matrix, matrix, v100_node(64 << 20), buffers=2)
        assert two.budget_bytes <= one.budget_bytes
        assert two.grid.num_chunks >= one.grid.num_chunks


class TestEstimatedPlanning:
    """plan_grid with a sampled estimate: coarser grids, UB still a ceiling."""

    def _est(self, m):
        from repro.spgemm.estimate import estimate_row_nnz

        return estimate_row_nnz(m, m, seed=0)

    def test_estimate_never_coarsens_past_ub_ceiling(self):
        """Estimated worst-chunk bytes are capped by the UB footprint."""
        from repro.core.planner import (
            _worst_chunk,
            estimated_chunk_footprint_bytes,
        )
        from repro.core.chunks import ChunkGrid

        m = rmat(10, 8.0, seed=91)
        grid = ChunkGrid.regular(m.n_rows, m.n_cols, 3, 3)
        with_est = _worst_chunk(m, m, grid, self._est(m))
        without = _worst_chunk(m, m, grid)
        assert with_est <= without

    def test_estimated_grid_no_finer_than_ub_grid(self):
        m = rmat(11, 8.0, seed=91)
        node = v100_node(24 << 20)
        ub_report = plan_grid(m, m, node)
        est_report = plan_grid(m, m, node, estimate=self._est(m))
        assert est_report.grid.num_chunks <= ub_report.grid.num_chunks
        assert est_report.estimated
        assert not ub_report.estimated

    def test_estimated_worst_chunk_fits_budget(self):
        m = rmat(10, 8.0, seed=91)
        report = plan_grid(m, m, v100_node(24 << 20), estimate=self._est(m))
        assert report.worst_chunk_bytes <= report.budget_bytes

    def test_footprint_helper_monotone(self):
        from repro.core.planner import estimated_chunk_footprint_bytes

        assert estimated_chunk_footprint_bytes(10, 100.0) < (
            estimated_chunk_footprint_bytes(10, 10_000.0)
        )


class TestPlanAutotuned:
    def test_autotune_bundles_consistent_choices(self):
        from repro.core.planner import plan_autotuned

        m = rmat(10, 8.0, seed=91)
        node = v100_node(24 << 20)
        at = plan_autotuned(m, m, node, seed=0)
        assert at.report.estimated
        assert at.grid is at.report.grid
        assert 0.0 <= at.ratio <= 1.0
        assert at.kernel.kind in ("native", "dense", "esc", "auto")
        # same seed, same plan
        again = plan_autotuned(m, m, node, seed=0)
        assert again.grid.num_chunks == at.grid.num_chunks
        assert again.ratio == at.ratio

    def test_autotune_executes_identically(self):
        """The tuned grid/kernel must not change the assembled product."""
        import numpy as np

        from repro.core.assemble import assemble_chunks
        from repro.core.chunks import profile_chunks
        from repro.core.planner import plan_autotuned, plan_grid

        m = rmat(9, 8.0, seed=92)
        node = v100_node(24 << 20)
        default_grid = plan_grid(m, m, node).grid
        at = plan_autotuned(m, m, node, seed=0)
        _, base_out = profile_chunks(m, m, default_grid, keep_outputs=True)
        _, at_out = profile_chunks(
            m, m, at.grid, keep_outputs=True, kernel=at.kernel.encode()
        )
        c0 = assemble_chunks(base_out)
        c1 = assemble_chunks(at_out)
        assert np.array_equal(c0.row_offsets, c1.row_offsets)
        assert np.array_equal(c0.col_ids, c1.col_ids)
        assert np.array_equal(c0.data, c1.data)
