"""Tests for panel-count planning."""

import pytest

from repro.core.planner import (
    chunk_footprint_bytes,
    plan_grid,
    resident_input_bytes,
    working_set_bytes,
)
from repro.device.specs import v100_node
from repro.sparse.generators import banded, rmat


@pytest.fixture(scope="module")
def matrix():
    return rmat(10, 8.0, seed=91)


class TestFootprints:
    def test_chunk_footprint_grows_with_flops(self):
        assert chunk_footprint_bytes(100, 2_000_000) > chunk_footprint_bytes(100, 1_000_000)

    def test_resident_inputs_grow_with_panels(self, matrix):
        assert resident_input_bytes(matrix, matrix, 8) > resident_input_bytes(matrix, matrix, 1)

    def test_working_set_exceeds_output(self):
        ws = working_set_bytes(1000, 5000, 200_000, 60_000)
        assert ws > 60_000 * 16


class TestPlanGrid:
    def test_plan_fits(self, matrix):
        node = v100_node(64 << 20)
        report = plan_grid(matrix, matrix, node)
        assert report.fits
        assert report.worst_chunk_bytes <= report.budget_bytes

    def test_more_memory_coarser_grid(self, matrix):
        small = plan_grid(matrix, matrix, v100_node(48 << 20))
        large = plan_grid(matrix, matrix, v100_node(1 << 30))
        assert large.grid.num_chunks <= small.grid.num_chunks

    def test_huge_memory_single_chunk(self, matrix):
        report = plan_grid(matrix, matrix, v100_node(8 << 30))
        assert report.grid.num_chunks == 1

    def test_too_small_device_raises(self, matrix):
        with pytest.raises(ValueError, match="no grid"):
            plan_grid(matrix, matrix, v100_node(1 << 20), max_panels=4)

    def test_banded_prefers_valid_rectangles(self):
        m = banded(2000, 6, seed=1, fill=0.8)
        report = plan_grid(m, m, v100_node(8 << 20))
        g = report.grid
        # aspect-ratio constraint holds
        assert max(g.num_row_panels, g.num_col_panels) <= 4 * min(
            g.num_row_panels, g.num_col_panels
        )

    def test_bad_safety(self, matrix):
        with pytest.raises(ValueError):
            plan_grid(matrix, matrix, v100_node(), safety=0.0)

    def test_buffers_halve_budget(self, matrix):
        one = plan_grid(matrix, matrix, v100_node(64 << 20), buffers=1)
        two = plan_grid(matrix, matrix, v100_node(64 << 20), buffers=2)
        assert two.budget_bytes <= one.budget_bytes
        assert two.grid.num_chunks >= one.grid.num_chunks
