"""Tests for chunk assembly."""

import pytest

from repro.core.assemble import assemble_chunks
from repro.sparse.formats import CSRMatrix
from repro.spgemm.reference import spgemm_scipy
from repro.sparse.ops import drop_explicit_zeros


class TestAssemble:
    def test_reconstructs_full_product(self, workload):
        a, _, _, outputs = workload
        c = assemble_chunks(outputs)
        assert drop_explicit_zeros(c).allclose(spgemm_scipy(a, a))

    def test_single_chunk(self, workload):
        _, _, _, outputs = workload
        single = assemble_chunks([[outputs[0][0]]])
        assert single == outputs[0][0]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="no chunks"):
            assemble_chunks([])
        with pytest.raises(ValueError, match="no chunks"):
            assemble_chunks([[]])

    def test_ragged_grid_rejected(self, workload):
        _, _, _, outputs = workload
        ragged = [outputs[0], outputs[1][:2]]
        with pytest.raises(ValueError, match="ragged"):
            assemble_chunks(ragged)

    def test_inconsistent_widths_rejected(self, workload):
        _, _, _, outputs = workload
        bad = [list(outputs[0]), list(outputs[1])]
        wrong = CSRMatrix.empty(outputs[1][0].n_rows, outputs[1][0].n_cols + 1)
        bad[1][0] = wrong
        with pytest.raises(ValueError, match="widths"):
            assemble_chunks(bad)
