"""Tests for the verification helpers."""

import pytest

from repro.core.api import run_out_of_core
from repro.core.chunks import ChunkGrid
from repro.core.spill import MemoryChunkStore
from repro.core.verify import verify_product, verify_run, verify_store
from repro.device.specs import v100_node
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr


@pytest.fixture(scope="module")
def setup():
    a = random_csr(30, 30, 100, seed=41)
    node = v100_node(1 << 30)
    grid = ChunkGrid.regular(30, 30, 2, 2)
    return a, node, grid


class TestVerify:
    def test_good_run_passes(self, setup):
        a, node, grid = setup
        result = run_out_of_core(a, a, node, grid=grid)
        assert verify_run(result, a, a)

    def test_corruption_detected(self, setup):
        a, node, grid = setup
        result = run_out_of_core(a, a, node, grid=grid)
        bad = CSRMatrix(
            result.matrix.n_rows, result.matrix.n_cols,
            result.matrix.row_offsets, result.matrix.col_ids,
            result.matrix.data * 2.0, check=False,
        )
        assert not verify_product(bad, a, a)

    def test_no_output_rejected(self, setup):
        a, node, grid = setup
        result = run_out_of_core(a, a, node, grid=grid, keep_output=False)
        with pytest.raises(ValueError, match="keep_output"):
            verify_run(result, a, a)

    def test_store_verification(self, setup):
        a, node, grid = setup
        store = MemoryChunkStore()
        run_out_of_core(a, a, node, grid=grid, keep_output=False, chunk_store=store)
        assert verify_store(store, a, a)
