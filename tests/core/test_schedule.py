"""Tests for the schedule builders — the paper's Sections III-IV semantics."""

import pytest

from repro.core.schedule import (
    CPU,
    D2H,
    GPU,
    H2D,
    add_cpu_chunks,
    build_async_schedule,
    build_sync_schedule,
    new_engine,
)


class TestSyncSchedule:
    def test_fully_serialized(self, workload, cost):
        _, _, profile, _ = workload
        tl = build_sync_schedule(profile, cost).run()
        # one stream: nothing ever overlaps
        assert tl.overlap_time(GPU, D2H) == pytest.approx(0.0, abs=1e-12)
        assert tl.overlap_time(GPU, H2D) == pytest.approx(0.0, abs=1e-12)

    def test_per_chunk_phase_order(self, workload, cost):
        _, _, profile, _ = workload
        tl = build_sync_schedule(profile, cost).run()
        for cid in range(len(profile.chunks)):
            labels = [
                f"analysis[{cid}]", f"d2h_info1[{cid}]", f"symbolic[{cid}]",
                f"d2h_info2[{cid}]", f"numeric[{cid}]", f"d2h_out[{cid}]",
            ]
            assert tl.order_of(labels) == labels

    def test_has_malloc_ops(self, workload, cost):
        """The sync baseline keeps spECK's dynamic allocations."""
        _, _, profile, _ = workload
        tl = build_sync_schedule(profile, cost).run()
        mallocs = [r for r in tl.records if r.meta.get("kind") == "malloc"]
        assert len(mallocs) == 3 * len(profile.chunks)

    def test_input_loads_off_by_default(self, workload, cost):
        _, _, profile, _ = workload
        tl = build_sync_schedule(profile, cost).run()
        assert len(tl.ops_on(H2D)) == 0

    def test_resident_mode_loads_once_per_panel(self, workload, cost):
        _, grid, profile, _ = workload
        tl = build_sync_schedule(profile, cost, input_mode="resident").run()
        h2d = tl.ops_on(H2D)
        assert len(h2d) == grid.num_row_panels + grid.num_col_panels

    def test_streamed_mode_reloads_panels(self, workload, cost):
        """Row-major order re-loads the B panel at every chunk but keeps
        the A panel across a row of chunks (single-panel cache)."""
        _, grid, profile, _ = workload
        tl = build_sync_schedule(profile, cost, input_mode="streamed").run()
        b_loads = [r for r in tl.records if r.meta.get("kind") == "h2d_b"]
        a_loads = [r for r in tl.records if r.meta.get("kind") == "h2d_a"]
        assert len(b_loads) == grid.num_chunks
        assert len(a_loads) == grid.num_row_panels

    def test_streamed_slower_than_resident(self, workload, cost):
        _, _, profile, _ = workload
        resident = build_sync_schedule(profile, cost, input_mode="resident").run()
        streamed = build_sync_schedule(profile, cost, input_mode="streamed").run()
        assert streamed.makespan() > resident.makespan()

    def test_bad_input_mode(self, workload, cost):
        _, _, profile, _ = workload
        with pytest.raises(ValueError, match="input mode"):
            build_sync_schedule(profile, cost, input_mode="bogus")

    def test_rejects_unexecuted_profile(self, workload, cost):
        from repro.core.chunks import ChunkProfile, ChunkStats

        _, grid, _, _ = workload
        raw = ChunkProfile(
            grid=grid,
            chunks=(ChunkStats(0, 0, 0, 5, 5, 10, 0, 0, 0),),
        )
        with pytest.raises(ValueError, match="executed"):
            build_sync_schedule(raw, cost)


class TestAsyncSchedule:
    def test_overlaps_compute_with_transfers(self, workload, cost):
        _, _, profile, _ = workload
        tl = build_async_schedule(profile, cost).run()
        assert tl.overlap_time(GPU, D2H) > 0.0

    def test_faster_than_sync(self, workload, cost):
        _, _, profile, _ = workload
        sync = build_sync_schedule(profile, cost).run()
        asy = build_async_schedule(profile, cost).run()
        assert asy.makespan() < sync.makespan()

    def test_fig6_divided_transfer_order(self, workload, cost):
        """Fig. 6 on the D2H engine: info1(i), out-part1(i-1), info2(i),
        out-part2(i-1)."""
        _, _, profile, _ = workload
        order = profile.order_by_flops_desc()
        tl = build_async_schedule(profile, cost, order=order).run()
        c_prev, c_cur = order[0], order[1]
        expected = [
            f"d2h_info1[{c_cur}]",
            f"d2h_out1[{c_prev}]",
            f"d2h_info2[{c_cur}]",
            f"d2h_out2[{c_prev}]",
        ]
        assert tl.order_of(expected) == expected

    def test_result_transfer_after_numeric(self, workload, cost):
        _, _, profile, _ = workload
        order = profile.order_by_flops_desc()
        tl = build_async_schedule(profile, cost, order=order).run()
        recs = {r.label: r for r in tl.records}
        for cid in order:
            assert recs[f"d2h_out1[{cid}]"].start >= recs[f"numeric[{cid}]"].end

    def test_pool_mode_has_no_mallocs(self, workload, cost):
        _, _, profile, _ = workload
        tl = build_async_schedule(profile, cost, allocator="pool").run()
        assert not [r for r in tl.records if r.meta.get("kind") == "malloc"]

    def test_dynamic_allocator_serializes(self, workload, cost):
        """Malloc barriers destroy the overlap (the paper's motivation for
        pre-allocation)."""
        _, _, profile, _ = workload
        pool = build_async_schedule(profile, cost, allocator="pool").run()
        dyn = build_async_schedule(profile, cost, allocator="dynamic").run()
        assert dyn.makespan() > pool.makespan()
        assert dyn.overlap_time(GPU, D2H) < pool.overlap_time(GPU, D2H)

    def test_monolithic_transfers_slower(self, workload, cost):
        """Fig. 5: one big result transfer blocks the next chunk's info
        transfers on the single D2H engine.  Compared at zero per-transfer
        latency so the structural blocking effect is isolated (dividing a
        transfer otherwise costs one extra latency per chunk)."""
        from dataclasses import replace

        _, _, profile, _ = workload
        cm = replace(cost, node=replace(cost.node, transfer_latency=0.0))
        divided = build_async_schedule(profile, cm, divided_transfers=True).run()
        mono = build_async_schedule(profile, cm, divided_transfers=False).run()
        assert mono.makespan() >= divided.makespan()

    def test_split_bytes_conserved(self, workload, cost):
        _, _, profile, _ = workload
        tl = build_async_schedule(profile, cost, split=0.33).run()
        for ch in profile.chunks:
            parts = [
                r.meta["bytes"] for r in tl.records
                if r.meta.get("kind") == "output" and r.meta.get("chunk") == ch.chunk_id
            ]
            assert sum(parts) == ch.output_bytes

    def test_default_order_is_flops_desc(self, workload, cost):
        _, _, profile, _ = workload
        tl = build_async_schedule(profile, cost).run()
        order = profile.order_by_flops_desc()
        labels = [f"numeric[{cid}]" for cid in order]
        assert tl.order_of(labels) == labels

    def test_invalid_args(self, workload, cost):
        _, _, profile, _ = workload
        with pytest.raises(ValueError):
            build_async_schedule(profile, cost, num_streams=0)
        with pytest.raises(ValueError):
            build_async_schedule(profile, cost, split=0.0)
        with pytest.raises(ValueError):
            build_async_schedule(profile, cost, allocator="bogus")

    def test_single_chunk_workload(self, cost):
        from repro.core.chunks import ChunkGrid, profile_chunks
        from repro.sparse.generators import random_csr

        a = random_csr(40, 40, 200, seed=5)
        grid = ChunkGrid.regular(40, 40, 1, 1)
        profile, _ = profile_chunks(a, a, grid)
        tl = build_async_schedule(profile, cost).run()
        assert tl.makespan() > 0

    def test_double_buffering_constraint(self, workload, cost):
        """Chunk t reuses the stream (buffer) of chunk t-2, so its first op
        cannot start before chunk t-2's result transfer completes."""
        _, _, profile, _ = workload
        order = profile.order_by_flops_desc()
        tl = build_async_schedule(profile, cost, order=order).run()
        recs = {r.label: r for r in tl.records}
        for pos in range(2, len(order)):
            freed = recs[f"d2h_out2[{order[pos - 2]}]"].end
            assert recs[f"analysis[{order[pos]}]"].start >= freed - 1e-12


class TestCpuChunks:
    def test_cpu_chunks_on_cpu_resource(self, workload, cost):
        _, _, profile, _ = workload
        eng = new_engine()
        add_cpu_chunks(eng, profile, cost, [0, 1, 2])
        tl = eng.run()
        assert len(tl.ops_on(CPU)) == 3

    def test_cpu_serial(self, workload, cost):
        _, _, profile, _ = workload
        eng = new_engine()
        add_cpu_chunks(eng, profile, cost, range(len(profile.chunks)))
        tl = eng.run()
        total = sum(r.duration for r in tl.ops_on(CPU))
        assert tl.makespan() == pytest.approx(total)
