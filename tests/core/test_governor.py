"""Runtime governor tests: deadlines, host-memory backpressure, OOM
re-splitting, and the process watchdog.

Covers the four governor subsystems end to end:

1. **Watchdog / deadlines** — a delayed chunk trips its cooperative
   deadline (serial/thread) or the parent watchdog (process), the
   attempt is retried, and the product stays bit-identical.  A genuinely
   frozen worker (``SIGSTOP``) is detected from stalled heartbeats
   within the 2x-heartbeat grace window.
2. **Host-memory admission** — reservations + store bytes never exceed
   the budget, blocked dispatch wakes on release, and pressure squeezes
   a spillable store to disk instead of overcommitting.
3. **Device-OOM re-splitting** — chunks whose predicted footprint
   overflows the device pool are recursively halved and reassembled
   bit-identically on every backend.
4. **Stale-death dedupe** — a worker dying *after* its result was
   delivered is respawned without charging the crash budget.
"""

import os
import signal
import threading
import time

import pytest

from repro.core import (
    ChunkGrid,
    Governor,
    GovernorConfig,
    SpillableChunkStore,
    assemble_chunks,
    execute_chunk_grid,
    make_profile,
)
from repro.core.chunks import chunk_flops
from repro.core.executor import RetryPolicy
from repro.core.executor.plan import chunk_output_estimates
from repro.core.executor.procpool import ProcessLanePool, resolve_mp_context
from repro.core.executor.procworker import KILL_AFTER_RESULT_ENV
from repro.core.governor import as_governor
from repro.core.governor.hostmem import HostMemoryGovernor
from repro.core.governor.watchdog import ChunkTimeout
from repro.core.memcheck import chunk_device_bytes
from repro.observability.tracer import Tracer
from repro.sparse.generators import rmat
from repro.sparse.shm import SharedCSR, cleanup_segments, run_prefix

from .test_executor_backends import assert_outputs_identical, leaked_shm

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)

ALL_BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def problem():
    a = rmat(9, 8.0, seed=21)
    b = rmat(9, 8.0, seed=22)
    grid = ChunkGrid.regular(a.shape[0], b.shape[1], 3, 3)
    return a, b, grid


@pytest.fixture(scope="module")
def baseline(problem):
    a, b, grid = problem
    _, outputs = execute_chunk_grid(a, b, grid, keep_outputs=True)
    return outputs


def governed_run(problem, backend, gov, *, retry=FAST_RETRY, faults=None,
                 crash_budget=0, tracer=None):
    a, b, grid = problem
    workers = 1 if backend == "serial" else 2
    return execute_chunk_grid(
        a, b, grid, workers=workers, backend=backend, keep_outputs=True,
        retry=retry, crash_budget=crash_budget, faults=faults,
        tracer=tracer, governor=gov,
    )


# ----------------------------------------------------------------------
# GovernorConfig / Governor plumbing
# ----------------------------------------------------------------------
class TestGovernorConfig:
    def test_defaults_disabled(self):
        cfg = GovernorConfig()
        assert not cfg.enabled
        assert Governor(cfg).hostmem is None

    def test_any_limit_enables(self):
        assert GovernorConfig(deadline_seconds=1.0).enabled
        assert GovernorConfig(heartbeat_interval=0.1).enabled
        assert GovernorConfig(host_mem_budget_bytes=1 << 20).enabled
        assert GovernorConfig(device_pool_bytes=1 << 20).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            GovernorConfig(deadline_seconds=0.0)
        with pytest.raises(ValueError):
            GovernorConfig(heartbeat_interval=-1.0)
        with pytest.raises(ValueError):
            GovernorConfig(host_mem_budget_bytes=0)
        with pytest.raises(ValueError):
            GovernorConfig(device_pool_bytes=-1)
        with pytest.raises(ValueError):
            GovernorConfig(max_resplit_depth=0)

    def test_as_governor_normalization(self):
        assert as_governor(None) is None
        gov = Governor(GovernorConfig(deadline_seconds=1.0))
        assert as_governor(gov) is gov
        cfg = GovernorConfig(host_mem_budget_bytes=1 << 20)
        wrapped = as_governor(cfg)
        assert isinstance(wrapped, Governor)
        assert wrapped.hostmem is not None
        with pytest.raises(TypeError):
            as_governor(object())

    def test_hostmem_created_iff_budget(self):
        assert Governor(GovernorConfig(deadline_seconds=1.0)).hostmem is None
        gov = Governor(GovernorConfig(host_mem_budget_bytes=4096))
        assert gov.hostmem is not None
        assert gov.hostmem.budget_bytes == 4096

    def test_device_fits(self):
        gov = Governor(GovernorConfig(device_pool_bytes=1 << 30))
        assert gov.device_fits(10, 100)
        tight = Governor(GovernorConfig(device_pool_bytes=64))
        assert not tight.device_fits(10, 100)
        # no pool configured -> everything "fits" (no re-split pressure)
        assert Governor(GovernorConfig()).device_fits(10 ** 6, 10 ** 9)


# ----------------------------------------------------------------------
# Host-memory admission control (unit)
# ----------------------------------------------------------------------
class TestHostMemoryGovernor:
    def test_admit_reserves_and_release_frees(self):
        gov = HostMemoryGovernor(1000)
        assert gov.admit(0, 400, may_wait=False)
        assert gov.admit(1, 400, may_wait=False)
        assert gov.held_bytes() == 800
        gov.release(0)
        assert gov.held_bytes() == 400
        gov.release(1)
        assert gov.held_bytes() == 0

    def test_admit_idempotent_per_chunk(self):
        gov = HostMemoryGovernor(1000)
        assert gov.admit(0, 400, may_wait=False)
        assert gov.admit(0, 400, may_wait=False)
        assert gov.held_bytes() == 400
        gov.release(0)
        # releasing twice is harmless
        gov.release(0)
        assert gov.held_bytes() == 0

    def test_backpressure_denial_without_wait(self):
        gov = HostMemoryGovernor(1000)
        assert gov.admit(0, 800, may_wait=False)
        # would overflow and the ledger is non-empty: deny, do not block
        assert not gov.admit(1, 800, may_wait=False)
        assert gov.held_bytes() == 800

    def test_oversized_chunk_force_admitted_on_empty_ledger(self):
        # a single chunk larger than the whole budget must not deadlock:
        # with nothing left to wait for it is admitted as an overcommit
        gov = HostMemoryGovernor(100)
        assert gov.admit(0, 5000, may_wait=True)
        assert gov.overcommits == 1
        gov.release(0)

    def test_blocked_admit_woken_by_release(self):
        gov = HostMemoryGovernor(1000)
        assert gov.admit(0, 900, may_wait=False)
        admitted = threading.Event()

        def blocked():
            assert gov.admit(1, 900, may_wait=True)
            admitted.set()

        t = threading.Thread(target=blocked)
        t.start()
        # the waiter must actually block while chunk 0 holds the budget
        assert not admitted.wait(0.15)
        gov.release(0)
        assert admitted.wait(2.0), "release did not wake the blocked admit"
        t.join()
        assert gov.held_bytes() == 900

    def test_pressure_spills_attached_store(self, tmp_path, baseline):
        store = SpillableChunkStore(tmp_path / "spill")
        for rp, row in enumerate(baseline):
            for cp, chunk in enumerate(row):
                store.put(rp, cp, chunk)
        stored = store.held_bytes
        assert stored > 0
        gov = HostMemoryGovernor(stored + 64)
        gov.attach_store(store)
        # admission would overflow -> the governor squeezes the store
        # to disk instead of blocking or overcommitting
        assert gov.admit(0, stored // 2, may_wait=True)
        assert gov.overcommits == 0
        assert gov.spill_requests >= 1
        assert store.spilled_bytes_total > 0
        # spilled chunks are still served transparently
        assert_outputs_identical(
            [[store.get(rp, cp) for cp in range(3)] for rp in range(3)],
            baseline,
        )


# ----------------------------------------------------------------------
# Deadlines end to end
# ----------------------------------------------------------------------
class TestDeadlines:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_cooperative_deadline_retried(self, problem, baseline, backend):
        # the symbolic-stage delay outlives the deadline; the next stage
        # hook notices and raises ChunkTimeout, which is retryable
        gov = Governor(GovernorConfig(deadline_seconds=0.15))
        tracer = Tracer()
        _, outputs = governed_run(
            problem, backend, gov, tracer=tracer,
            faults="symbolic:delay:chunk=4:delay=0.4",
        )
        assert_outputs_identical(outputs, baseline)
        assert tracer.counters("faults").get("timeouts", 0) >= 1
        assert tracer.counters("faults").get("retries", 0) >= 1

    def test_deadline_exhausts_retries(self, problem):
        gov = Governor(GovernorConfig(deadline_seconds=0.1))
        with pytest.raises(ChunkTimeout) as exc_info:
            governed_run(
                problem, "serial", gov, retry=None,
                faults="symbolic:delay:chunk=4:delay=0.3",
            )
        assert exc_info.value.chunk_id == 4

    def test_watchdog_kills_hung_worker_process(self, problem, baseline,
                                                tmp_path):
        # the worker sleeps past the deadline; the parent watchdog kills
        # it, surfaces ChunkTimeout, and the retry completes cleanly
        # (latch: exactly once machine-wide, so the respawn is clean)
        gov = Governor(GovernorConfig(deadline_seconds=0.3,
                                      heartbeat_interval=0.1))
        tracer = Tracer()
        spec = f"numeric:delay:chunk=4:delay=5.0:latch={tmp_path / 'd.latch'}"
        _, outputs = governed_run(
            problem, "process", gov, tracer=tracer, faults=spec,
            crash_budget=1,
        )
        assert_outputs_identical(outputs, baseline)
        counters = tracer.counters("faults")
        assert counters.get("timeouts", 0) >= 1
        assert counters.get("respawns", 0) >= 1
        assert leaked_shm() == []


class TestDeadlineReentrancy:
    """Concurrent runs share chunk ids; the registry keys on the
    executing thread so one run's deadline can never trip another's."""

    def test_same_chunk_id_on_two_threads_is_independent(self):
        from repro.core.governor import watchdog

        results = {}
        barrier = threading.Barrier(2)

        def tight(cid=4):
            # armed with no budget at all: must time out immediately
            watchdog.arm_deadline(cid, 0.0)
            barrier.wait(timeout=10)
            time.sleep(0.02)
            try:
                watchdog.check_deadline(cid)
                results["tight"] = None
            except ChunkTimeout as exc:
                results["tight"] = exc
            finally:
                watchdog.disarm_deadline(cid)

        def roomy(cid=4):
            # same chunk id, generous budget: must NOT see the other
            # thread's expired deadline
            watchdog.arm_deadline(cid, 60.0)
            barrier.wait(timeout=10)
            time.sleep(0.02)
            try:
                watchdog.check_deadline(cid)
                results["roomy"] = None
            except ChunkTimeout as exc:
                results["roomy"] = exc
            finally:
                watchdog.disarm_deadline(cid)

        threads = [threading.Thread(target=tight),
                   threading.Thread(target=roomy)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert isinstance(results["tight"], ChunkTimeout)
        assert results["roomy"] is None, \
            "a thread tripped another run's deadline for the same chunk id"

    def test_check_on_foreign_thread_is_a_noop(self):
        from repro.core.governor import watchdog

        watchdog.arm_deadline(7, 0.0)
        try:
            time.sleep(0.01)
            done = threading.Event()
            errors = []

            def other():
                try:
                    watchdog.check_deadline(7)  # armed by another thread
                except ChunkTimeout as exc:
                    errors.append(exc)
                finally:
                    done.set()

            t = threading.Thread(target=other)
            t.start()
            t.join(timeout=10)
            assert done.is_set() and not errors
            with pytest.raises(ChunkTimeout):
                watchdog.check_deadline(7)  # arming thread still trips
        finally:
            watchdog.disarm_deadline(7)

    def test_concurrent_engine_runs_with_tight_and_loose_deadlines(
            self, problem, baseline):
        # end-to-end: two overlapping in-process runs, one hung chunk
        # under a tight deadline; the healthy run with no deadline at
        # all must finish untouched
        results = {}

        def hung_run():
            gov = Governor(GovernorConfig(deadline_seconds=0.15))
            try:
                governed_run(problem, "serial", gov, retry=None,
                             faults="symbolic:delay:chunk=4:delay=0.4")
                results["hung"] = None
            except ChunkTimeout as exc:
                results["hung"] = exc

        def healthy_run():
            a, b, grid = problem
            _, outputs = execute_chunk_grid(a, b, grid, workers=2,
                                            keep_outputs=True,
                                            backend="thread")
            results["healthy"] = outputs

        threads = [threading.Thread(target=hung_run),
                   threading.Thread(target=healthy_run)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert isinstance(results["hung"], ChunkTimeout)
        assert results["hung"].chunk_id == 4
        assert_outputs_identical(results["healthy"], baseline)


# ----------------------------------------------------------------------
# Frozen-worker detection (pool level, SIGSTOP)
# ----------------------------------------------------------------------
class TestWatchdogHeartbeats:
    def test_sigstop_detected_within_grace(self):
        """A worker frozen mid-chunk (SIGSTOP — heartbeat thread stops
        with it) is detected from stalled heartbeats and killed within
        the 2x-heartbeat grace window, even with no chunk deadline."""
        a = rmat(6, 4.0, seed=3)
        b = rmat(6, 4.0, seed=4)
        prefix = run_prefix()
        heartbeat = 0.05
        segments, pool = [], None
        try:
            seg_a = SharedCSR.create(a, f"{prefix}-a0")
            seg_b = SharedCSR.create(b, f"{prefix}-b0")
            segments = [seg_a, seg_b]
            ctx = resolve_mp_context(None)
            pool = ProcessLanePool(
                ctx, 1, "lane0", [seg_a.descriptor], [seg_b.descriptor],
                prefix, False, None, crash_budget=1,
                # the hang fault parks the worker mid-numeric so there
                # is a window to freeze it; its heartbeat keeps beating
                # until SIGSTOP stops the whole process
                faults_spec="numeric:hang:chunk=0:delay=30",
                deadline=None, heartbeat_interval=heartbeat,
            )
            pool.wait_ready()
            pool.submit(0, 0, 0, None, 1)
            deadline = time.monotonic() + 5.0
            while pool._claims[0] != 0:  # wait for the worker to claim
                assert time.monotonic() < deadline, "worker never claimed"
                time.sleep(0.005)
            os.kill(pool._procs[0].pid, signal.SIGSTOP)
            frozen_at = time.monotonic()
            result = pool.next_result()
            detected = time.monotonic() - frozen_at
            assert result[:2] == ("hung", 0)
            # 2x-heartbeat grace + poll slop; generous CI margin
            assert detected < 10 * heartbeat * 2.0, (
                f"stall detection took {detected:.2f}s"
            )
        finally:
            if pool is not None:
                pool.shutdown()
            for seg in segments:
                seg.close()
                seg.unlink()
            cleanup_segments(prefix)
        assert leaked_shm() == []


# ----------------------------------------------------------------------
# Device-OOM re-splitting end to end
# ----------------------------------------------------------------------
class TestResplit:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_undersized_pool_resplits_bit_identical(self, problem, baseline,
                                                    backend):
        a, b, grid = problem
        products = (chunk_flops(a, b, grid) // 2).ravel()
        import numpy as np

        rows = np.diff(grid.row_bounds)
        per_chunk = sorted(
            chunk_device_bytes(int(rows[cid // grid.num_col_panels]),
                               int(products[cid]))
            for cid in range(grid.num_chunks)
        )
        # pool below the largest chunk's footprint: at least one chunk
        # must re-split, smaller ones still run whole
        pool_bytes = max(per_chunk[len(per_chunk) // 2], 256)
        gov = Governor(GovernorConfig(device_pool_bytes=pool_bytes))
        tracer = Tracer()
        _, outputs = governed_run(problem, backend, gov, tracer=tracer)
        assert_outputs_identical(outputs, baseline)
        assert tracer.counters("faults").get("resplits", 0) >= 1
        if backend == "process":
            assert leaked_shm() == []

    def test_injected_device_oom_recovers(self, problem, baseline, tmp_path):
        # no device pool configured at all: a *raised* DeviceOutOfMemory
        # (driver-level OOM) still diverts through the re-split path
        tracer = Tracer()
        spec = f"numeric:oom:chunk=4:latch={tmp_path / 'oom.latch'}"
        gov = Governor(GovernorConfig(device_pool_bytes=1 << 30))
        _, outputs = governed_run(problem, "serial", gov, tracer=tracer,
                                  faults=spec)
        assert_outputs_identical(outputs, baseline)
        assert tracer.counters("faults").get("resplits", 0) >= 1


# ----------------------------------------------------------------------
# Host-memory budget end to end
# ----------------------------------------------------------------------
class TestHostBudgetEndToEnd:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_run_completes_under_budget_via_spill(self, problem, baseline,
                                                  tmp_path, backend):
        a, b, grid = problem
        estimates = chunk_output_estimates(a, b, grid)
        # room for the two largest chunks in flight, far below the total
        # output: completing at all requires spilling the store
        budget = 2 * max(estimates)
        assert budget < sum(estimates)
        tracer = Tracer()
        store = SpillableChunkStore(tmp_path / f"spill-{backend}",
                                    tracer=tracer)
        gov = Governor(GovernorConfig(host_mem_budget_bytes=budget))
        workers = 2
        profile, _ = make_profile(
            a, b, grid=grid, chunk_store=store, workers=workers,
            backend=backend, tracer=tracer, governor=gov,
        )
        assert len(profile.chunks) == grid.num_chunks
        # the budget held: every ledger sample stayed under it, with no
        # overcommit escape hatch taken
        assert gov.hostmem.overcommits == 0
        assert gov.hostmem.peak_bytes <= budget
        for sample in tracer.gauges:
            if sample.name == "host_mem":
                held = sample.values["reserved"] + sample.values["stored"]
                assert held <= budget + 1e-9
        # completion required the pressure valve
        assert store.spilled_bytes_total > 0
        assert gov.hostmem.spill_requests >= 1
        # and spilled chunks reassemble bit-identically
        assert_outputs_identical(
            [[store.get(rp, cp) for cp in range(3)] for rp in range(3)],
            baseline,
        )
        expected = assemble_chunks(baseline)
        got = store.assemble()
        assert got == expected
        if backend == "process":
            assert leaked_shm() == []


# ----------------------------------------------------------------------
# Stale-death dedupe (satellite: death after delivery is not a crash)
# ----------------------------------------------------------------------
class TestStaleDeath:
    def test_death_after_delivery_needs_no_crash_budget(self, problem,
                                                        baseline,
                                                        monkeypatch):
        """A worker that dies *after* its result hit the queue is
        respawned without charging the crash budget — with budget 0 the
        run still completes, because nothing was actually lost."""
        monkeypatch.setenv(KILL_AFTER_RESULT_ENV, "4")
        a, b, grid = problem
        tracer = Tracer()
        _, outputs = execute_chunk_grid(
            a, b, grid, workers=2, backend="process", keep_outputs=True,
            retry=FAST_RETRY, crash_budget=0, tracer=tracer,
        )
        assert_outputs_identical(outputs, baseline)
        assert leaked_shm() == []


# ----------------------------------------------------------------------
# Estimation-gated device pre-check (avoided re-splits)
# ----------------------------------------------------------------------
class TestEstimatedPrecheck:
    """A sampled estimate between the true footprint and the UB lets
    chunks that *would* have been spuriously re-split run whole."""

    def _est(self, problem):
        from repro.spgemm.estimate import estimate_chunks, estimate_row_nnz

        a, b, grid = problem
        est = estimate_row_nnz(a, b, seed=0)
        return est, estimate_chunks(a, b, grid, est)

    def test_pool_between_estimate_and_ub_avoids_resplits(self, problem,
                                                          baseline):
        import numpy as np

        a, b, grid = problem
        est, chunk_est = self._est(problem)
        products = (chunk_flops(a, b, grid) // 2).ravel()
        rows = np.diff(grid.row_bounds)
        ub_dev = np.array([
            chunk_device_bytes(int(rows[cid // grid.num_col_panels]),
                               int(products[cid]))
            for cid in range(grid.num_chunks)
        ])
        est_dev = chunk_est.device_bytes()
        assert est_dev.max() < ub_dev.max(), "fixture must compress"
        # pool admits every estimated footprint but not every UB one
        pool = int(est_dev.max())
        assert (ub_dev > pool).any()
        gov = Governor(GovernorConfig(device_pool_bytes=pool))
        tracer = Tracer()
        _, outputs = execute_chunk_grid(
            a, b, grid, keep_outputs=True, retry=FAST_RETRY,
            tracer=tracer, governor=gov, estimate=est,
        )
        assert_outputs_identical(outputs, baseline)
        faults = tracer.counters("faults")
        assert faults.get("resplits", 0) == 0
        assert faults.get("avoided_resplits", 0) >= 1

    def test_pool_below_estimate_still_resplits(self, problem, baseline):
        est, chunk_est = self._est(problem)
        a, b, grid = problem
        pool = max(int(chunk_est.device_bytes().max()) // 2, 256)
        gov = Governor(GovernorConfig(device_pool_bytes=pool))
        tracer = Tracer()
        _, outputs = execute_chunk_grid(
            a, b, grid, keep_outputs=True, retry=FAST_RETRY,
            tracer=tracer, governor=gov, estimate=est,
        )
        assert_outputs_identical(outputs, baseline)
        assert tracer.counters("faults").get("resplits", 0) >= 1

    def test_estimated_run_is_bit_identical_without_governor(self, problem,
                                                             baseline):
        """Density hints refine dispatch only — never the product."""
        from repro.spgemm.estimate import estimate_row_nnz

        a, b, grid = problem
        est = estimate_row_nnz(a, b, seed=0)
        _, outputs = execute_chunk_grid(
            a, b, grid, keep_outputs=True, estimate=est,
        )
        assert_outputs_identical(outputs, baseline)


class TestHeartbeatLease:
    def test_beat_renews_lease(self):
        from repro.core.governor.watchdog import HeartbeatLease

        lease = HeartbeatLease(0.05, grace=2.0)
        time.sleep(0.15)  # > interval x grace: silent long enough to die
        assert lease.expired()
        lease.beat()
        assert not lease.expired()
        assert lease.beats == 1
        assert lease.remaining() == pytest.approx(0.1, abs=0.05)

    def test_expires_after_interval_times_grace_silence(self):
        from repro.core.governor.watchdog import HeartbeatLease

        lease = HeartbeatLease(1.0, grace=3.0)
        # drive the clock explicitly instead of sleeping
        now = time.monotonic()
        assert not lease.expired(now + 2.9)
        assert lease.expired(now + 3.1)

    def test_counter_regression_renews_but_is_counted(self):
        from repro.core.governor.watchdog import HeartbeatLease

        lease = HeartbeatLease(0.05, grace=2.0)
        lease.beat(counter=5)
        time.sleep(0.15)
        assert lease.expired()
        # a stale frame from before a reconnect: bytes arrived, so the
        # peer is alive — renew, but record the anomaly
        lease.beat(counter=3)
        assert not lease.expired()
        assert lease.regressions == 1
        lease.beat(counter=6)
        assert lease.regressions == 1

    def test_reset_rearms_after_reconnect(self):
        from repro.core.governor.watchdog import HeartbeatLease

        lease = HeartbeatLease(0.05, grace=2.0)
        time.sleep(0.15)
        assert lease.expired()
        lease.reset()
        assert not lease.expired()

    def test_validation(self):
        from repro.core.governor.watchdog import HeartbeatLease

        with pytest.raises(ValueError, match="interval"):
            HeartbeatLease(0.0)
        with pytest.raises(ValueError, match="grace"):
            HeartbeatLease(1.0, grace=0.5)
