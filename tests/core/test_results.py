"""Tests for RunResult metrics."""

import pytest

from repro.core.api import simulate_out_of_core


@pytest.fixture
def result(workload, node):
    _, _, profile, _ = workload
    return simulate_out_of_core(profile, node)


class TestRunResult:
    def test_gflops_definition(self, result):
        assert result.gflops == pytest.approx(
            result.total_flops / result.elapsed / 1e9
        )

    def test_total_flops_from_profile(self, result):
        assert result.total_flops == result.profile.total_flops

    def test_transfer_fraction_in_unit_interval(self, result):
        assert 0.0 < result.transfer_fraction <= 1.0
        assert 0.0 < result.d2h_fraction <= 1.0

    def test_gpu_busy_fraction(self, result):
        assert 0.0 < result.gpu_busy_fraction < 1.0

    def test_speedup_over_self(self, result):
        assert result.speedup_over(result) == pytest.approx(1.0)

    def test_summary_contains_key_fields(self, result):
        s = result.summary()
        assert "GFLOPS" in s and "async" in s
