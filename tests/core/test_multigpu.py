"""Tests for the multi-GPU scaling extension."""

import pytest

from repro.core.multigpu import (
    MultiGPUAssignment,
    assign_lpt,
    build_multi_gpu_engine,
    estimate_chunk_gpu_time,
    simulate_multi_gpu,
)


class TestAssignLPT:
    def test_partition_complete(self, workload, cost):
        _, _, profile, _ = workload
        asn = assign_lpt(profile, cost, 3)
        seen = sorted(c for bucket in asn.per_gpu for c in bucket)
        assert seen == profile.natural_order()
        assert asn.cpu_chunks == ()

    def test_loads_balanced(self, workload, cost):
        _, _, profile, _ = workload
        asn = assign_lpt(profile, cost, 2)
        loads = [
            sum(estimate_chunk_gpu_time(cost, profile.chunks[c]) for c in bucket)
            for bucket in asn.per_gpu
        ]
        assert max(loads) <= 2.0 * min(loads)

    def test_cpu_share_peels_sparsest(self, workload, cost):
        _, _, profile, _ = workload
        asn = assign_lpt(profile, cost, 2, cpu_share=0.2)
        assert asn.cpu_chunks
        cpu_max = max(profile.chunks[c].flops for c in asn.cpu_chunks)
        gpu_min = min(
            profile.chunks[c].flops for b in asn.per_gpu for c in b
        )
        assert cpu_max <= gpu_min

    def test_invalid_args(self, workload, cost):
        _, _, profile, _ = workload
        with pytest.raises(ValueError):
            assign_lpt(profile, cost, 0)
        with pytest.raises(ValueError):
            assign_lpt(profile, cost, 2, cpu_share=1.0)


class TestMultiGPURun:
    def test_two_gpus_faster_than_one(self, workload, cost):
        _, _, profile, _ = workload
        one = simulate_multi_gpu(profile, cost, 1)
        two = simulate_multi_gpu(profile, cost, 2)
        assert two.makespan() < one.makespan()

    def test_scaling_is_sublinear(self, workload, cost):
        _, _, profile, _ = workload
        one = simulate_multi_gpu(profile, cost, 1)
        four = simulate_multi_gpu(profile, cost, 4)
        speedup = one.makespan() / four.makespan()
        assert 1.0 < speedup <= 4.0

    def test_one_gpu_matches_single_device_pipeline(self, workload, cost):
        """With one device, the multi-GPU path is the ordinary pipeline."""
        from repro.core.schedule import build_async_schedule

        _, _, profile, _ = workload
        single = build_async_schedule(profile, cost).run()
        multi = simulate_multi_gpu(profile, cost, 1)
        assert multi.makespan() == pytest.approx(single.makespan())

    def test_all_devices_busy(self, workload, cost):
        _, _, profile, _ = workload
        tl = simulate_multi_gpu(profile, cost, 2)
        assert tl.busy_time("gpu0") > 0
        assert tl.busy_time("gpu1") > 0
        assert tl.busy_time("d2h0") > 0
        assert tl.busy_time("d2h1") > 0

    def test_cpu_participates_when_shared(self, workload, cost):
        _, _, profile, _ = workload
        tl = simulate_multi_gpu(profile, cost, 2, cpu_share=0.2)
        assert tl.busy_time("cpu") > 0

    def test_more_gpus_than_chunks(self, workload, cost):
        _, _, profile, _ = workload
        n = len(profile.chunks)
        tl = simulate_multi_gpu(profile, cost, n + 3)
        assert tl.makespan() > 0

    def test_assignment_dataclass(self):
        asn = MultiGPUAssignment(per_gpu=((0, 1), (2,)), cpu_chunks=())
        assert asn.num_gpus == 2
