"""Checkpoint/resume tests: run manifests, partial-run resume, CLI flow.

The contract under test: a run interrupted after ``k`` of ``n`` chunks
resumes by recomputing exactly ``n - k`` chunks (counted via executed
kernel spans) and produces a product bit-identical to an uninterrupted
run.
"""

import json

import numpy as np
import pytest

from repro.core.api import run_out_of_core
from repro.core.assemble import assemble_chunks
from repro.core.chunks import ChunkGrid, profile_chunks
from repro.core.spill import (
    DiskChunkStore,
    ManifestMismatch,
    RunManifest,
    operand_grid_hash,
)
from repro.observability.tracer import Tracer
from repro.sparse.generators import banded, rmat


@pytest.fixture(scope="module")
def problem():
    a = rmat(9, 7.0, seed=31)
    b = rmat(9, 7.0, seed=32)
    grid = ChunkGrid.regular(a.shape[0], b.shape[1], 3, 2)
    return a, b, grid


def numeric_spans(tracer):
    """One kernel execution per chunk — the executed-chunk counter."""
    return [s for s in tracer.spans if s.cat == "numeric"]


# ----------------------------------------------------------------------
# operand/grid fingerprint
# ----------------------------------------------------------------------
def test_operand_grid_hash_is_deterministic(problem):
    a, b, grid = problem
    assert operand_grid_hash(a, b, grid) == operand_grid_hash(a, b, grid)


def test_operand_grid_hash_sees_values_and_grid(problem):
    a, b, grid = problem
    base = operand_grid_hash(a, b, grid)
    mutated = rmat(9, 7.0, seed=99)
    assert operand_grid_hash(mutated, b, grid) != base
    other_grid = ChunkGrid.regular(a.shape[0], b.shape[1], 2, 3)
    assert operand_grid_hash(a, b, other_grid) != base


# ----------------------------------------------------------------------
# RunManifest persistence
# ----------------------------------------------------------------------
def test_manifest_roundtrip(problem, tmp_path):
    a, b, grid = problem
    path = tmp_path / "run.manifest.json"
    manifest = RunManifest.create(path, a, b, grid, store_dir=tmp_path / "chunks")
    assert path.exists()
    assert manifest.completed_count == 0 and not manifest.is_complete

    profile, _ = profile_chunks(a, b, grid)
    for stats in profile.chunks[:2]:
        manifest.mark_done(stats)

    loaded = RunManifest.load(path)
    assert loaded.run_id == manifest.run_id
    assert loaded.num_chunks == grid.num_chunks
    assert loaded.store_dir == str(tmp_path / "chunks")
    assert loaded.completed_count == 2
    assert set(loaded.completed_stats()) == {profile.chunks[0].chunk_id,
                                             profile.chunks[1].chunk_id}
    # the rebuilt ChunkStats carry every recorded field
    st = loaded.completed_stats()[profile.chunks[0].chunk_id]
    assert st.nnz_out == profile.chunks[0].nnz_out
    assert st.flops == profile.chunks[0].flops
    # the grid round-trips exactly
    np.testing.assert_array_equal(loaded.grid.row_bounds, grid.row_bounds)
    np.testing.assert_array_equal(loaded.grid.col_bounds, grid.col_bounds)
    loaded.validate(a, b, grid)


def test_manifest_rejects_wrong_operands(problem, tmp_path):
    a, b, grid = problem
    manifest = RunManifest.create(tmp_path / "m.json", a, b, grid)
    with pytest.raises(ManifestMismatch):
        manifest.validate(rmat(9, 7.0, seed=77), b, grid)
    with pytest.raises(ManifestMismatch):
        manifest.validate(a, b, ChunkGrid.regular(a.shape[0], b.shape[1], 2, 2))


def test_manifest_rejects_unknown_version(problem, tmp_path):
    a, b, grid = problem
    path = tmp_path / "m.json"
    RunManifest.create(path, a, b, grid)
    payload = json.loads(path.read_text())
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ManifestMismatch):
        RunManifest.load(path)


def test_manifest_updates_are_atomic(problem, tmp_path):
    """Every mark_done leaves a loadable manifest on disk (tmp + rename)."""
    a, b, grid = problem
    path = tmp_path / "m.json"
    manifest = RunManifest.create(path, a, b, grid)
    profile, _ = profile_chunks(a, b, grid)
    for i, stats in enumerate(profile.chunks, 1):
        manifest.mark_done(stats)
        assert RunManifest.load(path).completed_count == i
    assert RunManifest.load(path).is_complete
    assert not path.with_name(path.name + ".tmp").exists()


# ----------------------------------------------------------------------
# engine-level resume: skip completed chunks, recompute the rest
# ----------------------------------------------------------------------
def test_resume_recomputes_only_missing_chunks(problem, tmp_path):
    a, b, grid = problem
    n = grid.num_chunks
    store_dir = tmp_path / "chunks"

    # the uninterrupted reference
    ref = run_out_of_core(a, b, grid=grid)

    # a "crashed" first run: checkpoint every chunk, then keep only the
    # first k completion records (a manifest is always a consistent
    # prefix of the run, so truncating it simulates any interrupt point)
    manifest_path = tmp_path / "run.manifest.json"
    store = DiskChunkStore(store_dir)
    first = run_out_of_core(a, b, grid=grid, keep_output=False,
                            chunk_store=store, checkpoint=manifest_path)
    assert first.resumed_chunks == 0
    full = RunManifest.load(manifest_path)
    assert full.is_complete
    k = 2
    done = dict(sorted(full.completed_stats().items())[:k])
    partial = RunManifest(manifest_path, full._header, done)
    partial._write()

    # resume: only n - k chunks execute, the product is bit-identical
    tracer = Tracer()
    resumed = run_out_of_core(a, b, grid=grid,
                              chunk_store=DiskChunkStore(store_dir),
                              resume=manifest_path, tracer=tracer)
    assert resumed.resumed_chunks == k
    assert resumed.meta["run_id"] == full.run_id
    assert len(numeric_spans(tracer)) == n - k
    resume_marks = [s for s in tracer.spans if s.cat == "resume"]
    assert len(resume_marks) == 1
    assert resume_marks[0].args == {"skipped": k, "remaining": n - k}

    got, want = resumed.matrix, ref.matrix
    np.testing.assert_array_equal(got.row_offsets, want.row_offsets)
    np.testing.assert_array_equal(got.col_ids, want.col_ids)
    np.testing.assert_array_equal(got.data, want.data)

    # the resumed run extends the same manifest to completion
    assert RunManifest.load(manifest_path).is_complete


def test_resume_of_complete_run_recomputes_nothing(problem, tmp_path):
    a, b, grid = problem
    manifest_path = tmp_path / "m.json"
    store = DiskChunkStore(tmp_path / "chunks")
    run_out_of_core(a, b, grid=grid, keep_output=False, chunk_store=store,
                    checkpoint=manifest_path)
    tracer = Tracer()
    resumed = run_out_of_core(a, b, grid=grid,
                              chunk_store=DiskChunkStore(tmp_path / "chunks"),
                              resume=manifest_path, tracer=tracer)
    assert resumed.resumed_chunks == grid.num_chunks
    assert numeric_spans(tracer) == []
    ref = run_out_of_core(a, b, grid=grid)
    np.testing.assert_array_equal(resumed.matrix.data, ref.matrix.data)


def test_resume_requires_matching_operands(problem, tmp_path):
    a, b, grid = problem
    manifest_path = tmp_path / "m.json"
    run_out_of_core(a, b, grid=grid, keep_output=False,
                    chunk_store=DiskChunkStore(tmp_path / "chunks"),
                    checkpoint=manifest_path)
    with pytest.raises(ManifestMismatch):
        run_out_of_core(rmat(9, 7.0, seed=55), b, grid=grid,
                        chunk_store=DiskChunkStore(tmp_path / "chunks"),
                        resume=manifest_path)


def test_resume_with_keep_output_requires_chunk_store(problem, tmp_path):
    a, b, grid = problem
    manifest_path = tmp_path / "m.json"
    run_out_of_core(a, b, grid=grid, keep_output=False,
                    chunk_store=DiskChunkStore(tmp_path / "chunks"),
                    checkpoint=manifest_path)
    with pytest.raises(ValueError, match="chunk_store"):
        run_out_of_core(a, b, grid=grid, resume=manifest_path)


def test_resume_grid_defaults_to_manifest_grid(problem, tmp_path):
    a, b, grid = problem
    manifest_path = tmp_path / "m.json"
    run_out_of_core(a, b, grid=grid, keep_output=False,
                    chunk_store=DiskChunkStore(tmp_path / "chunks"),
                    checkpoint=manifest_path)
    resumed = run_out_of_core(a, b,  # no grid argument
                              chunk_store=DiskChunkStore(tmp_path / "chunks"),
                              resume=manifest_path)
    assert resumed.profile.grid.num_chunks == grid.num_chunks


def test_disk_store_adopts_existing_chunks(problem, tmp_path):
    a, b, grid = problem
    first = DiskChunkStore(tmp_path / "chunks")
    _, outputs = profile_chunks(a, b, grid, keep_outputs=True,
                                chunk_sink=first.put)

    adopted = DiskChunkStore(tmp_path / "chunks")
    assert adopted.grid_shape() == (grid.num_row_panels, grid.num_col_panels)
    for rp in range(grid.num_row_panels):
        for cp in range(grid.num_col_panels):
            np.testing.assert_array_equal(adopted.get(rp, cp).data,
                                          outputs[rp][cp].data)


def test_resume_summary_reports_resumed_chunks(problem, tmp_path):
    a, b, grid = problem
    manifest_path = tmp_path / "m.json"
    run_out_of_core(a, b, grid=grid, keep_output=False,
                    chunk_store=DiskChunkStore(tmp_path / "chunks"),
                    checkpoint=manifest_path)
    resumed = run_out_of_core(a, b, grid=grid,
                              chunk_store=DiskChunkStore(tmp_path / "chunks"),
                              resume=manifest_path)
    assert f"resumed={grid.num_chunks} chunks" in resumed.summary()
    fresh = run_out_of_core(a, b, grid=grid)
    assert fresh.resumed_chunks == 0
    assert "resumed=" not in fresh.summary()


def test_checkpoint_resume_with_faults_and_retries(problem, tmp_path):
    """The full story: a faulty run under retries still checkpoints every
    chunk it completes, and resume finishes the job bit-identically."""
    from repro.core.executor import RetryPolicy

    a, b, grid = problem
    ref = run_out_of_core(a, b, grid=grid)
    manifest_path = tmp_path / "m.json"
    store = DiskChunkStore(tmp_path / "chunks")
    run_out_of_core(a, b, grid=grid, keep_output=False, chunk_store=store,
                    checkpoint=manifest_path,
                    retry=RetryPolicy(max_attempts=3, base_delay=0.001),
                    faults="numeric:raise:chunk=1:times=2")
    resumed = run_out_of_core(a, b, grid=grid,
                              chunk_store=DiskChunkStore(tmp_path / "chunks"),
                              resume=manifest_path)
    assert resumed.resumed_chunks == grid.num_chunks
    np.testing.assert_array_equal(resumed.matrix.data, ref.matrix.data)


def test_resume_recomputes_corrupt_checkpoints(problem, tmp_path):
    """The --resume integrity gate: checkpointed chunks that fail their
    CRC — truncated on disk or silently overwritten — are evicted and
    recomputed instead of being resumed into a wrong product."""
    a, b, grid = problem
    ref = run_out_of_core(a, b, grid=grid)
    manifest_path = tmp_path / "m.json"
    store = DiskChunkStore(tmp_path / "chunks")
    run_out_of_core(a, b, grid=grid, keep_output=False, chunk_store=store,
                    checkpoint=manifest_path)

    # truncate one chunk file (unreadable) ...
    truncated = store._path(0, 0)
    truncated.write_bytes(truncated.read_bytes()[:40])
    # ... and silently replace another with a *valid* chunk file whose
    # content is not what the manifest checkpointed (wrong CRC)
    swapped_src = store._path(1, 0)
    swapped_dst = store._path(0, 1)
    swapped_dst.write_bytes(swapped_src.read_bytes())

    tracer = Tracer()
    resumed = run_out_of_core(a, b, grid=grid,
                              chunk_store=DiskChunkStore(tmp_path / "chunks"),
                              resume=manifest_path, tracer=tracer)
    assert resumed.meta["corrupt_recomputed"] == 2
    assert resumed.resumed_chunks == grid.num_chunks - 2
    assert len(numeric_spans(tracer)) == 2  # only the evicted pair re-ran
    np.testing.assert_array_equal(resumed.matrix.data, ref.matrix.data)
    assert RunManifest.load(manifest_path).is_complete


# ----------------------------------------------------------------------
# CLI checkpoint / resume
# ----------------------------------------------------------------------
@pytest.fixture
def cli_matrix(tmp_path):
    from repro.sparse.io import save_npz

    a = banded(40, 3, seed=3, fill=0.8)
    path = tmp_path / "a.npz"
    save_npz(path, a)
    return a, path


def test_cli_checkpoint_then_resume(cli_matrix, tmp_path, capsys):
    from repro.cli import main
    from repro.sparse.io import load_npz

    _, mat_path = cli_matrix
    manifest = tmp_path / "run.manifest.json"
    out1, out2 = tmp_path / "c1.npz", tmp_path / "c2.npz"

    assert main(["run", str(mat_path), "--checkpoint", str(manifest),
                 "--out", str(out1)]) == 0
    assert "checkpoint manifest" in capsys.readouterr().out
    assert RunManifest.load(manifest).is_complete

    assert main(["run", str(mat_path), "--resume", str(manifest),
                 "--out", str(out2)]) == 0
    printed = capsys.readouterr().out
    assert "recomputed 0" in printed

    c1, c2 = load_npz(out1), load_npz(out2)
    np.testing.assert_array_equal(c1.row_offsets, c2.row_offsets)
    np.testing.assert_array_equal(c1.col_ids, c2.col_ids)
    np.testing.assert_array_equal(c1.data, c2.data)


def test_cli_resume_after_partial_run(cli_matrix, tmp_path, capsys):
    from repro.cli import main

    a, mat_path = cli_matrix
    manifest_path = tmp_path / "run.manifest.json"
    assert main(["run", str(mat_path), "--checkpoint", str(manifest_path),
                 "--out", str(tmp_path / "c1.npz")]) == 0
    capsys.readouterr()

    # truncate the manifest to simulate an interrupt mid-run
    full = RunManifest.load(manifest_path)
    k = max(1, full.num_chunks // 2)
    done = dict(sorted(full.completed_stats().items())[:k])
    RunManifest(manifest_path, full._header, done)._write()

    assert main(["run", str(mat_path), "--resume", str(manifest_path),
                 "--out", str(tmp_path / "c2.npz")]) == 0
    printed = capsys.readouterr().out
    assert f"resumed {k} chunks" in printed
    assert f"recomputed {full.num_chunks - k}" in printed
    assert RunManifest.load(manifest_path).is_complete


def test_cli_rejects_checkpoint_in_hybrid_mode(cli_matrix, tmp_path):
    from repro.cli import main

    _, mat_path = cli_matrix
    with pytest.raises(SystemExit):
        main(["run", str(mat_path), "--hybrid",
              "--checkpoint", str(tmp_path / "m.json"),
              "--out", str(tmp_path / "c.npz")])
