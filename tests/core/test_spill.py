"""Tests for the chunk stores (host-side spill)."""

import numpy as np
import pytest

from repro.core.api import run_out_of_core
from repro.core.chunks import ChunkGrid
from repro.core.governor.integrity import ChunkCorruption
from repro.core.spill import (
    CHUNK_CRC_KEY,
    DiskChunkStore,
    MemoryChunkStore,
    SpillableChunkStore,
)
from repro.device.specs import v100_node
from repro.sparse.generators import random_csr
from repro.spgemm.reference import spgemm_scipy
from repro.sparse.ops import drop_explicit_zeros


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryChunkStore()
    else:
        s = DiskChunkStore(tmp_path / "chunks")
    yield s
    s.close()


class TestStores:
    def test_put_get_roundtrip(self, store):
        m = random_csr(10, 10, 20, seed=1)
        store.put(0, 0, m)
        assert store.get(0, 0) == m
        assert len(store) == 1

    def test_assemble_from_run(self, store):
        a = random_csr(40, 40, 160, seed=2)
        node = v100_node(1 << 30)
        grid = ChunkGrid.regular(40, 40, 2, 3)
        result = run_out_of_core(
            a, a, node, grid=grid, keep_output=False, chunk_store=store
        )
        assert result.matrix is None
        assert len(store) == 6
        c = store.assemble()
        assert drop_explicit_zeros(c).allclose(spgemm_scipy(a, a))

    def test_incomplete_grid_rejected(self, store):
        store.put(0, 0, random_csr(5, 5, 5, seed=3))
        store.put(1, 1, random_csr(5, 5, 5, seed=4))
        with pytest.raises(ValueError, match="incomplete"):
            store.assemble()

    def test_empty_store(self, store):
        with pytest.raises(ValueError, match="empty"):
            store.grid_shape()

    def test_nbytes_positive(self, store):
        store.put(0, 0, random_csr(30, 30, 100, seed=5))
        assert store.nbytes() > 0

    def test_keys_sorted(self, store):
        store.put(1, 0, random_csr(4, 4, 4, seed=6))
        store.put(0, 1, random_csr(4, 4, 4, seed=7))
        assert list(store.keys()) == [(0, 1), (1, 0)]


class TestDiskSpecifics:
    def test_files_created_and_removed(self, tmp_path):
        store = DiskChunkStore(tmp_path / "spill")
        store.put(0, 0, random_csr(8, 8, 10, seed=8))
        files = list((tmp_path / "spill").glob("*.npz"))
        assert len(files) == 1
        store.close()
        assert not list((tmp_path / "spill").glob("*.npz"))

    def test_temp_dir_default(self):
        store = DiskChunkStore()
        store.put(0, 0, random_csr(4, 4, 4, seed=9))
        assert store.get(0, 0).nnz > 0
        store.close()


class TestIntegrity:
    """Every chunk at rest carries a CRC32; ``get`` raises a *typed*
    :class:`ChunkCorruption` — with the file path and panel coords — on
    anything from a truncated file to a silent bit flip."""

    def _stored(self, tmp_path, rp=1, cp=2):
        store = DiskChunkStore(tmp_path / "chunks")
        self.chunk = random_csr(12, 12, 30, seed=10)
        store.put(rp, cp, self.chunk)
        return store, store._path(rp, cp)

    def test_truncated_file_raises_typed_corruption(self, tmp_path):
        store, path = self._stored(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ChunkCorruption) as exc_info:
            store.get(1, 2)
        err = exc_info.value
        assert str(err.path) == str(path)
        assert (err.row_panel, err.col_panel) == (1, 2)

    def test_garbage_file_raises_typed_corruption(self, tmp_path):
        store, path = self._stored(tmp_path)
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(ChunkCorruption):
            store.get(1, 2)

    def test_silent_bit_flip_caught_by_crc(self, tmp_path):
        # the file stays perfectly parseable — only the checksum can
        # tell the payload is not the chunk that was checkpointed
        store, path = self._stored(tmp_path)
        with np.load(path) as archive:
            arrays = {k: archive[k].copy() for k in archive.files}
        arrays["data"][0] += 1.0
        np.savez_compressed(path, **arrays)
        with pytest.raises(ChunkCorruption, match="checksum mismatch"):
            store.get(1, 2)

    def test_legacy_file_without_crc_still_loads(self, tmp_path):
        store, path = self._stored(tmp_path)
        with np.load(path) as archive:
            arrays = {k: archive[k].copy() for k in archive.files
                      if k != CHUNK_CRC_KEY}
        np.savez_compressed(path, **arrays)
        assert store.get(1, 2) == self.chunk


class TestSpillableStore:
    def test_spill_moves_largest_chunks_to_disk(self, tmp_path):
        store = SpillableChunkStore(tmp_path / "spill")
        small = random_csr(6, 6, 8, seed=11)
        big = random_csr(40, 40, 400, seed=12)
        store.put(0, 0, small)
        store.put(0, 1, big)
        before = store.held_bytes
        freed = store.spill(1)
        assert freed >= big.nbytes()
        assert store.held_bytes < before
        assert store.spilled_bytes_total == freed
        # served transparently from disk, bit-identical
        assert store.get(0, 1) == big
        assert store.get(0, 0) == small

    def test_put_replaces_stale_disk_copy(self, tmp_path):
        store = SpillableChunkStore(tmp_path / "spill")
        first = random_csr(20, 20, 100, seed=13)
        store.put(0, 0, first)
        store.spill(first.nbytes())
        second = random_csr(20, 20, 100, seed=14)
        store.put(0, 0, second)
        assert store.get(0, 0) == second

    def test_adopts_previous_runs_spill_dir(self, tmp_path):
        chunk = random_csr(10, 10, 25, seed=15)
        first = SpillableChunkStore(tmp_path / "spill")
        first.put(0, 0, chunk)
        first.spill(chunk.nbytes())  # now durably on disk
        adopted = SpillableChunkStore(tmp_path / "spill")
        assert len(adopted) >= 1
        assert adopted.get(0, 0) == chunk
