"""Tests for the chunk stores (host-side spill)."""

import numpy as np
import pytest

from repro.core.api import run_out_of_core
from repro.core.chunks import ChunkGrid
from repro.core.spill import DiskChunkStore, MemoryChunkStore
from repro.device.specs import v100_node
from repro.sparse.generators import random_csr
from repro.spgemm.reference import spgemm_scipy
from repro.sparse.ops import drop_explicit_zeros


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryChunkStore()
    else:
        s = DiskChunkStore(tmp_path / "chunks")
    yield s
    s.close()


class TestStores:
    def test_put_get_roundtrip(self, store):
        m = random_csr(10, 10, 20, seed=1)
        store.put(0, 0, m)
        assert store.get(0, 0) == m
        assert len(store) == 1

    def test_assemble_from_run(self, store):
        a = random_csr(40, 40, 160, seed=2)
        node = v100_node(1 << 30)
        grid = ChunkGrid.regular(40, 40, 2, 3)
        result = run_out_of_core(
            a, a, node, grid=grid, keep_output=False, chunk_store=store
        )
        assert result.matrix is None
        assert len(store) == 6
        c = store.assemble()
        assert drop_explicit_zeros(c).allclose(spgemm_scipy(a, a))

    def test_incomplete_grid_rejected(self, store):
        store.put(0, 0, random_csr(5, 5, 5, seed=3))
        store.put(1, 1, random_csr(5, 5, 5, seed=4))
        with pytest.raises(ValueError, match="incomplete"):
            store.assemble()

    def test_empty_store(self, store):
        with pytest.raises(ValueError, match="empty"):
            store.grid_shape()

    def test_nbytes_positive(self, store):
        store.put(0, 0, random_csr(30, 30, 100, seed=5))
        assert store.nbytes() > 0

    def test_keys_sorted(self, store):
        store.put(1, 0, random_csr(4, 4, 4, seed=6))
        store.put(0, 1, random_csr(4, 4, 4, seed=7))
        assert list(store.keys()) == [(0, 1), (1, 0)]


class TestDiskSpecifics:
    def test_files_created_and_removed(self, tmp_path):
        store = DiskChunkStore(tmp_path / "spill")
        store.put(0, 0, random_csr(8, 8, 10, seed=8))
        files = list((tmp_path / "spill").glob("*.npz"))
        assert len(files) == 1
        store.close()
        assert not list((tmp_path / "spill").glob("*.npz"))

    def test_temp_dir_default(self):
        store = DiskChunkStore()
        store.put(0, 0, random_csr(4, 4, 4, seed=9))
        assert store.get(0, 0).nnz > 0
        store.close()
