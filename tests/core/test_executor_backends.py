"""Tests for the pluggable executor backends (serial / thread / process).

The load-bearing property is three-way equivalence: every backend must
produce bit-identical chunk matrices and identical profiles (up to the
wall-clock fields) for any worker count, window, lane split, and sink
configuration.  The process backend additionally must not leak a single
shared-memory segment — even when a worker is hard-killed mid-chunk.
"""

import glob
import threading

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid, chunk_flops
from repro.core.executor import (
    EXECUTOR_BACKENDS,
    WorkerCrashed,
    execute_chunk_grid,
    plan_hybrid_lanes,
    resolve_backend_name,
)
from repro.core.executor.procworker import KILL_CHUNK_ENV
from repro.sparse.generators import rmat

PARALLEL_BACKENDS = ("thread", "process")


def assert_outputs_identical(lhs, rhs):
    for row_l, row_r in zip(lhs, rhs):
        for m_l, m_r in zip(row_l, row_r):
            np.testing.assert_array_equal(m_l.row_offsets, m_r.row_offsets)
            np.testing.assert_array_equal(m_l.col_ids, m_r.col_ids)
            np.testing.assert_array_equal(m_l.data, m_r.data)


def assert_profiles_identical(lhs, rhs):
    """Chunk sets equal in everything but the measured wall clocks."""
    assert len(lhs.chunks) == len(rhs.chunks)
    for s, p in zip(lhs.chunks, rhs.chunks):
        assert s.chunk_id == p.chunk_id
        assert (s.row_panel, s.col_panel) == (p.row_panel, p.col_panel)
        assert s.flops == p.flops
        assert s.input_nnz == p.input_nnz
        assert s.nnz_out == p.nnz_out
        assert s.output_bytes == p.output_bytes
        assert s.analysis_bytes == p.analysis_bytes
        assert s.symbolic_bytes == p.symbolic_bytes
        assert s.symbolic_kernels == p.symbolic_kernels
        assert s.numeric_kernels == p.numeric_kernels


def leaked_shm():
    return glob.glob("/dev/shm/repro-*")


@pytest.fixture(scope="module")
def problem():
    a = rmat(10, 8.0, seed=5)
    grid = ChunkGrid.regular(a.n_rows, a.n_cols, 3, 3)
    return a, grid


@pytest.fixture(scope="module")
def serial(problem):
    a, grid = problem
    return execute_chunk_grid(a, a, grid, backend="serial", keep_outputs=True)


class TestBackendResolution:
    def test_legacy_defaults(self):
        assert resolve_backend_name(None, 1, False) == "serial"
        assert resolve_backend_name(None, 4, False) == "thread"
        assert resolve_backend_name(None, 1, True) == "thread"

    def test_explicit_names_pass_through(self):
        for name in EXECUTOR_BACKENDS:
            assert resolve_backend_name(name, 2, False) == name

    def test_unknown_backend_rejected(self, problem):
        a, grid = problem
        with pytest.raises(ValueError, match="backend"):
            execute_chunk_grid(a, a, grid, backend="gpu")

    def test_serial_rejects_multiple_workers(self, problem):
        a, grid = problem
        with pytest.raises(ValueError, match="serial"):
            execute_chunk_grid(a, a, grid, backend="serial", workers=4)


class TestThreeWayEquivalence:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_outputs_and_profiles_match_serial(self, problem, serial, backend):
        a, grid = problem
        serial_profile, serial_out = serial
        profile, out = execute_chunk_grid(
            a, a, grid, workers=3, backend=backend, keep_outputs=True
        )
        assert_outputs_identical(serial_out, out)
        assert_profiles_identical(serial_profile, profile)
        assert not leaked_shm()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_tiny_window_matches_serial(self, problem, serial, backend):
        a, grid = problem
        _, serial_out = serial
        _, out = execute_chunk_grid(
            a, a, grid, workers=2, window=1, backend=backend, keep_outputs=True
        )
        assert_outputs_identical(serial_out, out)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_hybrid_lanes_match_serial(self, problem, serial, backend):
        a, grid = problem
        serial_profile, serial_out = serial
        planned = plan_hybrid_lanes(chunk_flops(a, a, grid), 2, 0.65)
        profile, out = execute_chunk_grid(
            a, a, grid, keep_outputs=True, backend=backend,
            lanes=[(ids, w) for ids, w, _ in planned],
            lane_names=[n for _, _, n in planned],
        )
        assert_outputs_identical(serial_out, out)
        assert_profiles_identical(serial_profile, profile)
        assert not leaked_shm()

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_chunk_sink_sees_every_chunk_once(self, problem, backend):
        a, grid = problem
        seen = []
        lock = threading.Lock()

        def sink(rp, cp, matrix):
            with lock:
                seen.append((rp, cp))

        workers = 1 if backend == "serial" else 2
        execute_chunk_grid(a, a, grid, workers=workers, backend=backend,
                           chunk_sink=sink)
        assert sorted(seen) == [
            (rp, cp)
            for rp in range(grid.num_row_panels)
            for cp in range(grid.num_col_panels)
        ]
        assert not leaked_shm()

    def test_process_backend_single_worker(self, problem, serial):
        a, grid = problem
        _, serial_out = serial
        _, out = execute_chunk_grid(
            a, a, grid, workers=1, backend="process", keep_outputs=True
        )
        assert_outputs_identical(serial_out, out)


class TestProcessTracing:
    def test_worker_spans_merged_into_parent_trace(self, problem):
        from repro.observability import Tracer

        a, grid = problem
        tracer = Tracer()
        execute_chunk_grid(a, a, grid, workers=2, backend="process",
                           tracer=tracer)
        cats = {s.cat for s in tracer.spans}
        # kernel phases run inside workers; their spans must still appear
        assert {"analysis", "symbolic", "numeric", "queue"} <= cats
        # every chunk's numeric phase made it back
        numeric = [s for s in tracer.spans if s.cat == "numeric"]
        assert len(numeric) == grid.num_chunks
        assert all(s.end >= s.start >= 0.0 for s in tracer.spans)
        # worker slice-cache gauges and parent shm occupancy gauges merged
        gauge_names = {g.name for g in tracer.gauges}
        assert any(n.startswith("slice_cache[") for n in gauge_names)
        assert any(n.startswith("shm[") for n in gauge_names)

    def test_tracing_does_not_change_results(self, problem, serial):
        from repro.observability import Tracer

        a, grid = problem
        _, serial_out = serial
        _, out = execute_chunk_grid(a, a, grid, workers=2, backend="process",
                                    keep_outputs=True, tracer=Tracer())
        assert_outputs_identical(serial_out, out)


class TestCrashCleanup:
    def test_worker_crash_aborts_run_without_leaking(self, problem, monkeypatch):
        """A worker hard-killed mid-chunk (after creating its result
        segment) must abort the run with WorkerCrashed and leave zero
        segments in /dev/shm — the run-prefix sweep reclaims the one the
        dead worker could not."""
        a, grid = problem
        monkeypatch.setenv(KILL_CHUNK_ENV, "0")
        with pytest.raises(WorkerCrashed):
            execute_chunk_grid(a, a, grid, workers=2, backend="process")
        assert not leaked_shm()

    def test_sink_exception_cleans_up(self, problem):
        a, grid = problem

        def sink(rp, cp, matrix):
            raise RuntimeError("sink boom")

        with pytest.raises(RuntimeError, match="sink boom"):
            execute_chunk_grid(a, a, grid, workers=2, backend="process",
                               chunk_sink=sink)
        assert not leaked_shm()

    def test_normal_run_leaves_no_segments(self, problem):
        a, grid = problem
        execute_chunk_grid(a, a, grid, workers=2, backend="process")
        assert not leaked_shm()


class TestPublicThreading:
    def test_profile_chunks_backend_param(self, problem, serial):
        from repro.core.chunks import profile_chunks

        a, grid = problem
        _, serial_out = serial
        _, out = profile_chunks(a, a, grid, keep_outputs=True, workers=2,
                                backend="process")
        assert_outputs_identical(serial_out, out)

    def test_run_hybrid_backend_param(self, problem):
        from repro.core.api import run_hybrid
        from repro.device.specs import v100_node

        a, grid = problem
        base = run_hybrid(a, a, v100_node(), grid=grid, workers=1)
        result = run_hybrid(a, a, v100_node(), grid=grid, workers=2,
                            backend="process")
        np.testing.assert_array_equal(base.matrix.data, result.matrix.data)
        np.testing.assert_array_equal(base.matrix.col_ids, result.matrix.col_ids)
        assert not leaked_shm()
