"""End-to-end property test: the out-of-core framework is exact.

For random matrices, random grids, and every executor, the assembled
product must equal scipy's — the framework's core contract.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import run_hybrid, run_out_of_core
from repro.core.chunks import ChunkGrid
from repro.device.specs import v100_node
from repro.sparse.generators import random_csr
from tests.conftest import assert_equals_scipy_product


@st.composite
def workloads(draw):
    n = draw(st.integers(4, 60))
    nnz = draw(st.integers(0, 4 * n))
    seed = draw(st.integers(0, 10_000))
    rows = draw(st.integers(1, min(4, n)))
    cols = draw(st.integers(1, min(4, n)))
    return n, nnz, seed, rows, cols


NODE = v100_node(1 << 30)


class TestEndToEnd:
    @given(w=workloads())
    @settings(max_examples=25, deadline=None)
    def test_out_of_core_exact(self, w):
        n, nnz, seed, rows, cols = w
        a = random_csr(n, n, nnz, seed=seed)
        grid = ChunkGrid.regular(n, n, rows, cols)
        res = run_out_of_core(a, a, NODE, grid=grid)
        assert_equals_scipy_product(res.matrix, a, a)

    @given(w=workloads())
    @settings(max_examples=15, deadline=None)
    def test_hybrid_exact(self, w):
        n, nnz, seed, rows, cols = w
        a = random_csr(n, n, nnz, seed=seed)
        grid = ChunkGrid.regular(n, n, rows, cols)
        res = run_hybrid(a, a, NODE, grid=grid)
        assert_equals_scipy_product(res.matrix, a, a)

    @given(
        seed=st.integers(0, 5000),
        rows_a=st.integers(3, 30),
        inner=st.integers(3, 30),
        cols_b=st.integers(3, 30),
    )
    @settings(max_examples=20, deadline=None)
    def test_rectangular_exact(self, seed, rows_a, inner, cols_b):
        a = random_csr(rows_a, inner, 3 * rows_a, seed=seed)
        b = random_csr(inner, cols_b, 3 * inner, seed=seed + 1)
        grid = ChunkGrid.regular(
            rows_a, cols_b, min(2, rows_a), min(3, cols_b)
        )
        res = run_out_of_core(a, b, NODE, grid=grid)
        assert_equals_scipy_product(res.matrix, a, b)
