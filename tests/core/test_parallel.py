"""Tests for the parallel chunk execution engine.

The load-bearing property is bit-identity: any worker count, window
size, or lane split must reproduce the serial result exactly — chunks
touch disjoint output regions and every kernel is deterministic.
"""

import threading

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid, chunk_flops, profile_chunks
from repro.core.parallel import (
    default_window,
    execute_chunk_grid,
    flops_desc_order,
    plan_hybrid_lanes,
    split_by_flop_ratio,
    split_workers,
)
from repro.sparse.generators import rmat


def assert_outputs_identical(lhs, rhs):
    """Every chunk matrix bitwise-equal between two output grids."""
    for row_l, row_r in zip(lhs, rhs):
        for m_l, m_r in zip(row_l, row_r):
            np.testing.assert_array_equal(m_l.row_offsets, m_r.row_offsets)
            np.testing.assert_array_equal(m_l.col_ids, m_r.col_ids)
            np.testing.assert_array_equal(m_l.data, m_r.data)


@pytest.fixture(scope="module")
def problem():
    a = rmat(10, 8.0, seed=5)
    grid = ChunkGrid.regular(a.n_rows, a.n_cols, 3, 3)
    return a, grid


@pytest.fixture(scope="module")
def serial(problem):
    a, grid = problem
    return execute_chunk_grid(a, a, grid, workers=1, keep_outputs=True)


class TestDispatchHelpers:
    def test_default_window_two_buffers_per_worker(self):
        assert default_window(1) == 2
        assert default_window(4) == 8
        assert default_window(0) == 2

    def test_flops_desc_order_stable(self):
        order = flops_desc_order(np.array([3, 9, 9, 1]))
        assert order == [1, 2, 0, 3]  # ties broken by chunk id

    def test_split_by_flop_ratio_prefix(self):
        gpu, cpu = split_by_flop_ratio(np.array([10, 40, 30, 20]), 0.65)
        assert gpu == [1, 2]  # 70 of 100 flops, densest first
        assert cpu == [3, 0]

    def test_split_extremes(self):
        flops = np.array([5, 5])
        assert split_by_flop_ratio(flops, 0.0) == ([], [0, 1])
        assert split_by_flop_ratio(flops, 1.0) == ([0, 1], [])
        with pytest.raises(ValueError):
            split_by_flop_ratio(flops, 1.5)

    def test_split_zero_total_flops(self):
        """Empty work goes entirely to the CPU lane — no spurious split."""
        for ratio in (0.1, 0.65, 1.0):
            gpu, cpu = split_by_flop_ratio(np.zeros(3, dtype=np.int64), ratio)
            assert gpu == []
            assert sorted(cpu) == [0, 1, 2]

    def test_split_workers_both_lanes_nonempty(self):
        first, second = split_workers(4, 0.65, both_nonempty=True)
        assert first + second == 4
        assert first >= 1 and second >= 1

    def test_split_workers_single_lane_keeps_pool(self):
        assert split_workers(4, 0.65, both_nonempty=False) == (4, 4)
        with pytest.raises(ValueError):
            split_workers(0, 0.5, both_nonempty=True)

    def test_split_workers_single_worker_does_not_oversubscribe(self):
        """One worker cannot serve two concurrent lanes: the second lane
        gets no share and the caller must serialize."""
        assert split_workers(1, 0.65, both_nonempty=True) == (1, 0)
        assert split_workers(1, 0.65, both_nonempty=False) == (1, 1)

    def test_plan_hybrid_lanes_serializes_single_worker(self):
        flops = np.array([10, 40, 30, 20])
        lanes = plan_hybrid_lanes(flops, 1, 0.65)
        assert len(lanes) == 1
        ids, workers, name = lanes[0]
        assert sorted(ids) == [0, 1, 2, 3]
        assert ids[:2] == [1, 2]  # gpu (flop-dense) prefix drains first
        assert workers == 1
        assert name == "gpu+cpu"

    def test_plan_hybrid_lanes_splits_pool(self):
        flops = np.array([10, 40, 30, 20])
        lanes = plan_hybrid_lanes(flops, 4, 0.65)
        assert [name for _, _, name in lanes] == ["gpu", "cpu"]
        assert sum(w for _, w, _ in lanes) == 4
        assert all(w >= 1 for _, w, _ in lanes)

    def test_plan_hybrid_lanes_zero_flops_single_lane(self):
        lanes = plan_hybrid_lanes(np.zeros(4, dtype=np.int64), 4, 0.65)
        assert len(lanes) == 1
        ids, workers, name = lanes[0]
        assert sorted(ids) == [0, 1, 2, 3]
        assert workers == 4  # sole lane gets the whole pool
        assert name == "cpu"


class TestBitIdentity:
    def test_workers4_matches_serial(self, problem, serial):
        a, grid = problem
        _, serial_out = serial
        _, par_out = execute_chunk_grid(a, a, grid, workers=4, keep_outputs=True)
        assert_outputs_identical(serial_out, par_out)

    def test_tiny_window_matches_serial(self, problem, serial):
        a, grid = problem
        _, serial_out = serial
        _, par_out = execute_chunk_grid(
            a, a, grid, workers=3, window=1, keep_outputs=True
        )
        assert_outputs_identical(serial_out, par_out)

    def test_hybrid_lanes_match_serial(self, problem, serial):
        a, grid = problem
        _, serial_out = serial
        gpu, cpu = split_by_flop_ratio(chunk_flops(a, a, grid), 0.65)
        _, par_out = execute_chunk_grid(
            a, a, grid, keep_outputs=True, lanes=[(gpu, 3), (cpu, 1)]
        )
        assert_outputs_identical(serial_out, par_out)

    def test_profile_stats_deterministic(self, problem, serial):
        """Everything but the wall-clock fields is completion-order free."""
        a, grid = problem
        serial_profile, _ = serial
        par_profile, _ = execute_chunk_grid(a, a, grid, workers=4)
        for s, p in zip(serial_profile.chunks, par_profile.chunks):
            assert s.chunk_id == p.chunk_id
            assert s.flops == p.flops
            assert s.nnz_out == p.nnz_out
            assert s.symbolic_kernels == p.symbolic_kernels
            assert s.numeric_kernels == p.numeric_kernels


class TestMeasuredTimes:
    def test_per_chunk_and_wall_times_recorded(self, serial):
        profile, _ = serial
        assert profile.has_measured_times
        assert all(c.measured and c.measured_seconds >= 0 for c in profile.chunks)
        assert profile.measured_wall_seconds >= 0
        assert profile.total_measured_seconds > 0
        assert profile.measured_gflops > 0

    def test_roundtrip_preserves_measurements(self, serial):
        from repro.core.chunks import ChunkProfile

        profile, _ = serial
        back = ChunkProfile.from_dict(profile.to_dict())
        assert back.measured_wall_seconds == profile.measured_wall_seconds
        assert [c.measured_seconds for c in back.chunks] == [
            c.measured_seconds for c in profile.chunks
        ]

    def test_legacy_payload_has_no_measurements(self, serial):
        """Profiles cached before measurement existed must still load."""
        from repro.core.chunks import ChunkProfile

        profile, _ = serial
        payload = profile.to_dict()
        del payload["measured_wall_seconds"]
        for chunk in payload["chunks"]:
            del chunk["measured_seconds"]
        back = ChunkProfile.from_dict(payload)
        assert not back.has_measured_times
        assert back.measured_wall_seconds == -1.0
        assert back.measured_gflops == 0.0


class TestStreaming:
    def test_sink_sees_every_chunk_once(self, problem):
        a, grid = problem
        seen = []
        lock = threading.Lock()

        def sink(rp, cp, matrix):
            with lock:
                seen.append((rp, cp))

        execute_chunk_grid(a, a, grid, workers=4, chunk_sink=sink)
        assert sorted(seen) == [
            (rp, cp)
            for rp in range(grid.num_row_panels)
            for cp in range(grid.num_col_panels)
        ]

    def test_sink_exception_propagates(self, problem):
        a, grid = problem

        def sink(rp, cp, matrix):
            raise RuntimeError("sink boom")

        with pytest.raises(RuntimeError, match="sink boom"):
            execute_chunk_grid(a, a, grid, workers=4, chunk_sink=sink)


class TestValidation:
    def test_rejects_bad_worker_count(self, problem):
        a, grid = problem
        with pytest.raises(ValueError, match="workers"):
            execute_chunk_grid(a, a, grid, workers=0)

    @pytest.mark.parametrize("window", [0, -1, -100])
    def test_rejects_nonpositive_window(self, problem, window):
        """window=0 used to silently fall back to the default and a
        negative window made the dispatch loop spin forever."""
        a, grid = problem
        with pytest.raises(ValueError, match="window"):
            execute_chunk_grid(a, a, grid, workers=2, window=window)

    def test_window_none_uses_default(self, problem, serial):
        a, grid = problem
        _, serial_out = serial
        _, par_out = execute_chunk_grid(
            a, a, grid, workers=2, window=None, keep_outputs=True
        )
        assert_outputs_identical(serial_out, par_out)

    def test_rejects_zero_worker_lane(self, problem):
        """A 0-worker lane is the serialize-me signal from split_workers;
        passing it through is a caller bug, not 2x oversubscription."""
        a, grid = problem
        ids = list(range(grid.num_chunks))
        with pytest.raises(ValueError, match="lane"):
            execute_chunk_grid(a, a, grid, lanes=[(ids[:1], 1), (ids[1:], 0)])

    def test_single_worker_hybrid_lanes_serialized(self, problem, serial):
        """plan_hybrid_lanes(workers=1) + execute = serial result."""
        from repro.core.chunks import chunk_flops

        a, grid = problem
        _, serial_out = serial
        planned = plan_hybrid_lanes(chunk_flops(a, a, grid).ravel(), 1, 0.65)
        _, out = execute_chunk_grid(
            a, a, grid, keep_outputs=True,
            lanes=[(ids, w) for ids, w, _ in planned],
            lane_names=[n for _, _, n in planned],
        )
        assert_outputs_identical(serial_out, out)

    def test_rejects_incomplete_lanes(self, problem):
        a, grid = problem
        with pytest.raises(ValueError, match="exactly once"):
            execute_chunk_grid(a, a, grid, lanes=[([0, 1], 1)])

    def test_rejects_duplicate_lane_ids(self, problem):
        a, grid = problem
        ids = list(range(grid.num_chunks))
        with pytest.raises(ValueError, match="exactly once"):
            execute_chunk_grid(a, a, grid, lanes=[(ids, 1), ([0], 1)])


class TestProfileChunksDelegation:
    def test_profile_chunks_parallel_matches_serial(self, problem):
        """The public profiling entry point threads workers through."""
        a, grid = problem
        serial_profile, serial_out = profile_chunks(
            a, a, grid, keep_outputs=True, name="x"
        )
        par_profile, par_out = profile_chunks(
            a, a, grid, keep_outputs=True, name="x", workers=4
        )
        assert_outputs_identical(serial_out, par_out)
        assert par_profile.name == "x"
        assert par_profile.total_flops == serial_profile.total_flops
