"""Property-based equivalence sweep across backends, faults, and resume.

Every (workload shape) x (backend) x (execution mode) combination must
produce exactly ``A x B`` per the scipy oracle — including degenerate
shapes (empty rows, empty panels, all-zero, duplicate-entry COO inputs)
and adversarial modes (fault injection mid-run, resume from a partial
checkpoint).  All randomness derives from the session seed printed in
the pytest header, so any failure replays with ``REPRO_TEST_SEED``.
"""

import numpy as np
import pytest

from repro.core.api import run_out_of_core
from repro.core.chunks import ChunkGrid
from repro.core.executor import RetryPolicy
from repro.core.spill import DiskChunkStore, RunManifest
from repro.sparse.coo import COOMatrix
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded
from tests.conftest import assert_equals_scipy_product

BACKENDS = ("serial", "thread", "process")
MODES = ("plain", "faults", "resume")

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


def _random_dense(rng, n_rows, n_cols, density):
    dense = rng.random((n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0.0
    return dense


def make_case(name, rng):
    """One named degenerate workload: ``(A, B)`` operand pair."""
    if name == "dense_ish":
        return (CSRMatrix.from_dense(_random_dense(rng, 41, 37, 0.5)),
                CSRMatrix.from_dense(_random_dense(rng, 37, 44, 0.5)))
    if name == "very_sparse":
        return (CSRMatrix.from_dense(_random_dense(rng, 60, 60, 0.02)),
                CSRMatrix.from_dense(_random_dense(rng, 60, 60, 0.02)))
    if name == "empty_rows":
        d_a = _random_dense(rng, 48, 48, 0.2)
        d_a[rng.integers(0, 48, size=20)] = 0.0  # many all-zero rows
        d_b = _random_dense(rng, 48, 48, 0.2)
        d_b[:, rng.integers(0, 48, size=20)] = 0.0  # and all-zero columns
        return CSRMatrix.from_dense(d_a), CSRMatrix.from_dense(d_b)
    if name == "empty_panels":
        # nonzeros confined to the top-left quadrant: whole row/column
        # panels of the grid (and of the output) are structurally empty
        d = np.zeros((50, 50))
        d[:20, :20] = _random_dense(rng, 20, 20, 0.4)
        return CSRMatrix.from_dense(d), CSRMatrix.from_dense(d)
    if name == "duplicate_coo":
        # CSR built from a COO with repeated (row, col) triplets — the
        # duplicate-combining path must feed the pipeline a clean matrix
        n, triplets = 40, 600
        rows = rng.integers(0, n, size=triplets)
        cols = rng.integers(0, n, size=triplets)
        data = rng.random(triplets) - 0.5
        a = COOMatrix(n, n, rows, cols, data).to_csr()
        return a, a
    if name == "all_zero":
        return (CSRMatrix.from_dense(np.zeros((30, 35))),
                CSRMatrix.from_dense(np.zeros((35, 25))))
    raise AssertionError(name)


CASES = ("dense_ish", "very_sparse", "empty_rows", "empty_panels",
         "duplicate_coo", "all_zero")


def run_mode(a, b, grid, backend, mode, tmp_path):
    workers = 1 if backend == "serial" else 2
    common = dict(grid=grid, workers=workers, backend=backend)
    if mode == "plain":
        return run_out_of_core(a, b, **common)
    if mode == "faults":
        latch = tmp_path / "fault.latch"
        return run_out_of_core(
            a, b, retry=FAST_RETRY,
            faults=f"numeric:raise:latch={latch}", **common,
        )
    # resume: checkpoint a full run, truncate its manifest to half, and
    # resume from the partial state
    manifest_path = tmp_path / "m.json"
    store_dir = tmp_path / "chunks"
    run_out_of_core(a, b, keep_output=False,
                    chunk_store=DiskChunkStore(store_dir),
                    checkpoint=manifest_path, **common)
    full = RunManifest.load(manifest_path)
    keep = dict(sorted(full.completed_stats().items())[: full.num_chunks // 2])
    RunManifest(manifest_path, full._header, keep)._write()
    result = run_out_of_core(a, b, chunk_store=DiskChunkStore(store_dir),
                             resume=manifest_path, **common)
    assert result.resumed_chunks == len(keep)
    return result


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("case", CASES)
def test_equivalence_sweep(make_rng, tmp_path, case, mode, backend):
    rng = make_rng(f"sweep:{case}")
    a, b = make_case(case, rng)
    grid = ChunkGrid.regular(a.n_rows, b.n_cols, 3, 3)
    result = run_mode(a, b, grid, backend, mode, tmp_path)
    assert_equals_scipy_product(result.matrix, a, b)


@pytest.mark.slow
@pytest.mark.parametrize("backend", ("serial", "process"))
def test_int32_adjacent_nnz(backend):
    """A matrix big enough that chunk flop counts and byte sizes leave
    comfortable int32 territory if ever mis-typed — the product must
    still be exact."""
    a = banded(70_000, 40, seed=13)
    grid = ChunkGrid.regular(a.n_rows, a.n_cols, 4, 4)
    workers = 1 if backend == "serial" else 2
    result = run_out_of_core(a, a, grid=grid, workers=workers, backend=backend)
    assert_equals_scipy_product(result.matrix, a, a)
    assert result.profile.total_flops > np.iinfo(np.int32).max // 8


@pytest.mark.soak
def test_soak_randomized_chaos_sweep(make_rng, tmp_path):
    """High-iteration randomized sweep (opt-in via ``-m soak``): random
    shapes, densities, grids, backends, and fault sites, all oracle-
    checked.  The per-iteration seed is printed on failure."""
    for i in range(40):
        rng = make_rng("soak", offset=i)
        n_rows = int(rng.integers(5, 80))
        inner = int(rng.integers(5, 80))
        n_cols = int(rng.integers(5, 80))
        density = float(rng.uniform(0.01, 0.5))
        a = CSRMatrix.from_dense(_random_dense(rng, n_rows, inner, density))
        b = CSRMatrix.from_dense(_random_dense(rng, inner, n_cols, density))
        grid = ChunkGrid.regular(
            n_rows, n_cols,
            int(rng.integers(1, min(4, n_rows) + 1)),
            int(rng.integers(1, min(4, n_cols) + 1)),
        )
        backend = BACKENDS[int(rng.integers(0, len(BACKENDS)))]
        stage = ("analysis", "symbolic", "numeric", "sink")[int(rng.integers(0, 4))]
        latch = tmp_path / f"latch.{i}"
        try:
            result = run_out_of_core(
                a, b, grid=grid, backend=backend,
                workers=1 if backend == "serial" else 2,
                retry=FAST_RETRY, faults=f"{stage}:raise:latch={latch}",
            )
            assert_equals_scipy_product(result.matrix, a, b)
        except AssertionError:
            raise AssertionError(
                f"soak iteration {i} failed: {n_rows}x{inner}x{n_cols} "
                f"density={density:.3f} grid={grid.num_row_panels}x"
                f"{grid.num_col_panels} backend={backend} stage={stage}"
            )
