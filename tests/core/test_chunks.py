"""Tests for the chunk grid and profiling."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid, ChunkProfile, chunk_flops, csr_bytes, profile_chunks
from repro.sparse.generators import random_csr
from repro.spgemm.flops import total_flops
from repro.spgemm.reference import spgemm_scipy


class TestGrid:
    def test_regular_grid(self):
        g = ChunkGrid.regular(10, 12, 2, 3)
        np.testing.assert_array_equal(g.row_bounds, [0, 5, 10])
        np.testing.assert_array_equal(g.col_bounds, [0, 4, 8, 12])
        assert g.num_chunks == 6

    def test_chunk_id_row_major(self):
        g = ChunkGrid.regular(10, 10, 2, 3)
        assert g.chunk_id(1, 2) == 5
        assert g.panel_of(5) == (1, 2)

    def test_roundtrip_ids(self):
        g = ChunkGrid.regular(20, 20, 4, 5)
        for cid in range(g.num_chunks):
            rp, cp = g.panel_of(cid)
            assert g.chunk_id(rp, cp) == cid


class TestChunkFlops:
    def test_sums_to_total(self, workload):
        a, grid, profile, _ = workload
        f = chunk_flops(a, a, grid)
        assert f.sum() == total_flops(a, a)

    def test_matches_profile(self, workload):
        a, grid, profile, _ = workload
        f = chunk_flops(a, a, grid)
        for ch in profile.chunks:
            assert f[ch.row_panel, ch.col_panel] == ch.flops

    def test_single_chunk_grid(self):
        a = random_csr(10, 10, 30, seed=81)
        g = ChunkGrid.regular(10, 10, 1, 1)
        assert chunk_flops(a, a, g)[0, 0] == total_flops(a, a)


class TestProfile:
    def test_chunk_nnz_sums_to_product_nnz(self, workload):
        a, _, profile, _ = workload
        assert profile.total_nnz_out == spgemm_scipy(a, a).nnz

    def test_total_flops(self, workload):
        a, _, profile, _ = workload
        assert profile.total_flops == total_flops(a, a)

    def test_chunk_stats_filled(self, workload):
        _, _, profile, _ = workload
        for ch in profile.chunks:
            assert ch.executed
            assert ch.output_bytes >= 0
            assert ch.analysis_bytes == ch.rows * 8

    def test_outputs_grid_shape(self, workload):
        _, grid, _, outputs = workload
        assert len(outputs) == grid.num_row_panels
        assert all(len(row) == grid.num_col_panels for row in outputs)

    def test_compression_ratio(self, workload):
        _, _, profile, _ = workload
        assert profile.compression_ratio() == pytest.approx(
            profile.total_flops / profile.total_nnz_out
        )

    def test_orders(self, workload):
        _, _, profile, _ = workload
        desc = profile.order_by_flops_desc()
        flops = [profile.chunks[i].flops for i in desc]
        assert flops == sorted(flops, reverse=True)
        assert sorted(desc) == profile.natural_order()

    def test_cr_requires_execution(self):
        from repro.core.chunks import ChunkStats

        ch = ChunkStats(
            chunk_id=0, row_panel=0, col_panel=0, rows=5, width=5, flops=10,
            a_panel_bytes=0, b_panel_bytes=0, input_nnz=0,
        )
        assert not ch.executed
        with pytest.raises(ValueError):
            _ = ch.cr

    def test_serialization_roundtrip(self, workload):
        _, _, profile, _ = workload
        back = ChunkProfile.from_dict(profile.to_dict())
        assert back.name == profile.name
        np.testing.assert_array_equal(back.grid.row_bounds, profile.grid.row_bounds)
        assert back.chunks == profile.chunks

    def test_json_compatible(self, workload):
        import json

        _, _, profile, _ = workload
        payload = json.loads(json.dumps(profile.to_dict()))
        assert ChunkProfile.from_dict(payload).chunks == profile.chunks


class TestCsrBytes:
    def test_formula(self):
        assert csr_bytes(10, 100) == 11 * 8 + 100 * 16
