"""Tests for the CSC format and CSR<->CSC conversions."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix, csr_to_csc_arrays
from repro.sparse.formats import CSRMatrix


class TestConversion:
    def test_csc_arrays_match_dense(self, small_csr, small_dense):
        col_offsets, row_ids, data = csr_to_csc_arrays(small_csr)
        for c in range(small_csr.n_cols):
            lo, hi = col_offsets[c], col_offsets[c + 1]
            expected_rows = np.nonzero(small_dense[:, c])[0]
            np.testing.assert_array_equal(row_ids[lo:hi], expected_rows)
            np.testing.assert_array_equal(data[lo:hi], small_dense[expected_rows, c])

    def test_roundtrip(self, small_csr):
        assert CSCMatrix.from_csr(small_csr).to_csr() == small_csr

    def test_roundtrip_families(self, sample_matrix):
        assert CSCMatrix.from_csr(sample_matrix).to_csr() == sample_matrix

    def test_rows_sorted_within_columns(self, sample_matrix):
        csc = CSCMatrix.from_csr(sample_matrix)
        for c in range(csc.n_cols):
            rows, _ = csc.col(c)
            assert np.all(np.diff(rows) > 0)

    def test_empty_matrix(self):
        csc = CSCMatrix.from_csr(CSRMatrix.empty(3, 4))
        assert csc.nnz == 0
        assert csc.shape == (3, 4)
        assert csc.to_csr().nnz == 0


class TestAccessors:
    def test_col_view(self, small_csr, small_dense):
        csc = CSCMatrix.from_csr(small_csr)
        rows, vals = csc.col(1)
        np.testing.assert_array_equal(rows, [2, 3])
        np.testing.assert_array_equal(vals, [4.0, 6.0])

    def test_col_out_of_range(self, small_csr):
        csc = CSCMatrix.from_csr(small_csr)
        with pytest.raises(IndexError):
            csc.col(10)

    def test_col_slice_matches_dense(self, small_csr, small_dense):
        csc = CSCMatrix.from_csr(small_csr)
        panel = csc.col_slice(1, 3)
        np.testing.assert_array_equal(panel.to_csr().to_dense(), small_dense[:, 1:3])

    def test_col_slice_invalid(self, small_csr):
        csc = CSCMatrix.from_csr(small_csr)
        with pytest.raises(IndexError):
            csc.col_slice(3, 1)

    def test_repr(self, small_csr):
        assert "CSCMatrix" in repr(CSCMatrix.from_csr(small_csr))


class TestValidation:
    def test_bad_offsets_length(self):
        with pytest.raises(ValueError, match="n_cols"):
            CSCMatrix(2, 2, [0, 1], [0], [1.0])

    def test_bad_span(self):
        with pytest.raises(ValueError, match="span"):
            CSCMatrix(2, 2, [0, 1, 5], [0], [1.0])

    def test_non_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSCMatrix(3, 3, [0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_row_ids_out_of_range(self):
        with pytest.raises(ValueError, match="row_ids"):
            CSCMatrix(2, 2, [0, 1, 1], [7], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths differ"):
            CSCMatrix(2, 2, [0, 1, 2], [0, 1], [1.0])
