"""Differential fuzzing: random CSR operation chains vs a dense mirror.

Every public structural operation is applied in random sequences to a
CSR matrix and, in parallel, to a dense numpy mirror; after each step the
two must agree.  Interactions between operations (e.g. transpose of a
column slice of a sum) are exactly what unit tests miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.sparse.ops import (
    add,
    drop_explicit_zeros,
    extract_columns,
    hstack,
    scale,
    take_rows,
    transpose,
    vstack,
)


def apply_op(op_name, draw, mat: CSRMatrix, dense: np.ndarray):
    """Apply one random op to both representations."""
    if op_name == "transpose":
        return transpose(mat), dense.T
    if op_name == "scale":
        alpha = draw(st.floats(-3, 3))
        return scale(mat, alpha), alpha * dense
    if op_name == "add_random":
        seed = draw(st.integers(0, 100))
        other = random_csr(mat.n_rows, mat.n_cols, mat.n_rows * 2, seed=seed)
        return add(mat, other), dense + other.to_dense()
    if op_name == "row_slice":
        lo = draw(st.integers(0, mat.n_rows))
        hi = draw(st.integers(lo, mat.n_rows))
        return mat.row_slice(lo, hi), dense[lo:hi]
    if op_name == "extract_columns":
        lo = draw(st.integers(0, mat.n_cols))
        hi = draw(st.integers(lo, mat.n_cols))
        return extract_columns(mat, lo, hi), dense[:, lo:hi]
    if op_name == "take_rows":
        k = draw(st.integers(0, mat.n_rows))
        rows = draw(
            st.lists(st.integers(0, max(mat.n_rows - 1, 0)), min_size=k, max_size=k)
        ) if mat.n_rows else []
        rows = np.asarray(rows, dtype=np.int64)
        return take_rows(mat, rows), dense[rows] if rows.size else dense[:0]
    if op_name == "self_vstack":
        return vstack([mat, mat]), np.vstack([dense, dense])
    if op_name == "self_hstack":
        return hstack([mat, mat]), np.hstack([dense, dense])
    if op_name == "drop_zeros":
        return drop_explicit_zeros(mat), dense
    raise AssertionError(op_name)


OPS = [
    "transpose", "scale", "add_random", "row_slice", "extract_columns",
    "take_rows", "self_vstack", "self_hstack", "drop_zeros",
]

MAX_CELLS = 4000  # keep the dense mirror small


class TestDifferential:
    @given(data=st.data(), seed=st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_op_chains_match_dense(self, data, seed):
        mat = random_csr(10, 8, 25, seed=seed)
        dense = mat.to_dense()
        for _ in range(data.draw(st.integers(1, 5))):
            if mat.n_rows * max(mat.n_cols, 1) > MAX_CELLS:
                break
            op = data.draw(st.sampled_from(OPS))
            mat, dense = apply_op(op, data.draw, mat, dense)
            mat.validate()
            np.testing.assert_allclose(
                mat.to_dense(), dense, atol=1e-9,
                err_msg=f"divergence after {op}",
            )

    @given(data=st.data(), seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_product_after_chain(self, data, seed):
        """After a random chain, the SpGEMM of the result still matches."""
        from repro.spgemm.twophase import spgemm_twophase

        mat = random_csr(8, 8, 20, seed=seed)
        dense = mat.to_dense()
        for _ in range(data.draw(st.integers(0, 3))):
            op = data.draw(st.sampled_from(["transpose", "scale", "add_random", "drop_zeros"]))
            mat, dense = apply_op(op, data.draw, mat, dense)
        product = spgemm_twophase(mat, mat).matrix
        np.testing.assert_allclose(product.to_dense(), dense @ dense, atol=1e-8)
