"""Tests for panel partitioning (paper Section III.D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr, rmat
from repro.sparse.ops import extract_columns, hstack, vstack
from repro.sparse.partition import (
    build_col_offsets,
    panel_boundaries,
    partition_columns,
    partition_columns_naive,
    partition_rows,
)


class TestBoundaries:
    def test_even_split(self):
        np.testing.assert_array_equal(panel_boundaries(10, 5), [0, 2, 4, 6, 8, 10])

    def test_remainder_goes_first(self):
        np.testing.assert_array_equal(panel_boundaries(10, 3), [0, 4, 7, 10])

    def test_single_panel(self):
        np.testing.assert_array_equal(panel_boundaries(7, 1), [0, 7])

    def test_too_many_panels(self):
        with pytest.raises(ValueError, match="cannot split"):
            panel_boundaries(3, 5)

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            panel_boundaries(3, 0)


class TestRowPanels:
    def test_roundtrip(self, sample_matrix):
        ps = partition_rows(sample_matrix, 4)
        assert len(ps) == 4
        assert vstack(list(ps.panels)) == sample_matrix

    def test_sizes(self, sample_matrix):
        ps = partition_rows(sample_matrix, 3)
        assert ps.sizes().sum() == sample_matrix.n_rows

    def test_axis_label(self, sample_matrix):
        assert partition_rows(sample_matrix, 2).axis == "rows"


class TestColumnPanels:
    @pytest.mark.parametrize("num_panels", [1, 2, 3, 7])
    def test_optimized_matches_reference(self, sample_matrix, num_panels):
        ps = partition_columns(sample_matrix, num_panels)
        bounds = ps.boundaries
        for i, panel in enumerate(ps.panels):
            ref = extract_columns(sample_matrix, int(bounds[i]), int(bounds[i + 1]))
            assert panel == ref

    @pytest.mark.parametrize("num_panels", [1, 3, 5])
    def test_naive_matches_optimized(self, sample_matrix, num_panels):
        fast = partition_columns(sample_matrix, num_panels)
        slow = partition_columns_naive(sample_matrix, num_panels)
        np.testing.assert_array_equal(fast.boundaries, slow.boundaries)
        for f, s in zip(fast.panels, slow.panels):
            assert f == s

    def test_hstack_roundtrip(self, sample_matrix):
        ps = partition_columns(sample_matrix, 5)
        assert hstack(list(ps.panels)) == sample_matrix

    def test_empty_matrix(self):
        ps = partition_columns(CSRMatrix.empty(4, 8), 2)
        assert all(p.nnz == 0 for p in ps.panels)


class TestColOffsets:
    def test_split_matrix_shape(self, sample_matrix):
        bounds = panel_boundaries(sample_matrix.n_cols, 4)
        splits = build_col_offsets(sample_matrix, bounds)
        assert splits.shape == (sample_matrix.n_rows, 5)

    def test_splits_bracket_rows(self, sample_matrix):
        bounds = panel_boundaries(sample_matrix.n_cols, 4)
        splits = build_col_offsets(sample_matrix, bounds)
        np.testing.assert_array_equal(splits[:, 0], sample_matrix.row_offsets[:-1])
        np.testing.assert_array_equal(splits[:, -1], sample_matrix.row_offsets[1:])
        assert np.all(np.diff(splits, axis=1) >= 0)

    def test_splits_classify_correctly(self, sample_matrix):
        bounds = panel_boundaries(sample_matrix.n_cols, 3)
        splits = build_col_offsets(sample_matrix, bounds)
        for r in range(sample_matrix.n_rows):
            cols, _ = sample_matrix.row(r)
            for p in range(3):
                lo = splits[r, p] - sample_matrix.row_offsets[r]
                hi = splits[r, p + 1] - sample_matrix.row_offsets[r]
                seg = cols[lo:hi]
                assert np.all(seg >= bounds[p]) and np.all(seg < bounds[p + 1])

    def test_bad_boundaries(self, sample_matrix):
        with pytest.raises(ValueError, match="boundaries"):
            build_col_offsets(sample_matrix, [1, sample_matrix.n_cols])
        with pytest.raises(ValueError, match="boundaries"):
            build_col_offsets(sample_matrix, [0, 5, 5, sample_matrix.n_cols])


class TestProperties:
    @given(
        seed=st.integers(0, 500),
        rows=st.integers(1, 30),
        cols=st.integers(2, 30),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_roundtrip_random(self, seed, rows, cols, data):
        m = random_csr(rows, cols, rows * 3, seed=seed)
        panels = data.draw(st.integers(1, cols))
        ps = partition_columns(m, panels)
        assert hstack(list(ps.panels)) == m

    @given(seed=st.integers(0, 200), panels=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_banded_partition_roundtrip(self, seed, panels):
        m = banded(40, 4, seed=seed, fill=0.6)
        assert hstack(list(partition_columns(m, panels).panels)) == m
