"""Tests for the CSR matrix substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        assert csr.shape == small_dense.shape
        assert csr.nnz == np.count_nonzero(small_dense)
        np.testing.assert_array_equal(csr.to_dense(), small_dense)

    def test_empty(self):
        m = CSRMatrix.empty(3, 5)
        assert m.shape == (3, 5)
        assert m.nnz == 0
        np.testing.assert_array_equal(m.to_dense(), np.zeros((3, 5)))

    def test_zero_dimensions(self):
        m = CSRMatrix.empty(0, 0)
        assert m.nnz == 0
        assert m.density() == 0.0

    def test_identity(self):
        m = CSRMatrix.identity(4)
        np.testing.assert_array_equal(m.to_dense(), np.eye(4))

    def test_dtypes_coerced(self):
        m = CSRMatrix(2, 3, [0, 1, 2], np.array([0, 2], dtype=np.int32),
                      np.array([1, 2], dtype=np.float32))
        assert m.row_offsets.dtype == INDEX_DTYPE
        assert m.col_ids.dtype == INDEX_DTYPE
        assert m.data.dtype == VALUE_DTYPE

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            CSRMatrix.from_dense(np.arange(5.0))

    def test_scipy_roundtrip(self, small_csr):
        back = CSRMatrix.from_scipy(small_csr.to_scipy())
        assert back == small_csr

    def test_sort_rows_flag(self):
        m = CSRMatrix(1, 4, [0, 3], [2, 0, 3], [1.0, 2.0, 3.0], sort_rows=True)
        np.testing.assert_array_equal(m.col_ids, [0, 2, 3])
        np.testing.assert_array_equal(m.data, [2.0, 1.0, 3.0])

    def test_copy_is_independent(self, small_csr):
        c = small_csr.copy()
        c.data[0] = 999.0
        assert small_csr.data[0] != 999.0


class TestValidation:
    def test_bad_row_offsets_length(self):
        with pytest.raises(ValueError, match="row_offsets"):
            CSRMatrix(3, 3, [0, 1], [0], [1.0])

    def test_row_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRMatrix(1, 3, [1, 1], [], [])

    def test_row_offsets_must_end_at_nnz(self):
        with pytest.raises(ValueError, match="end at nnz"):
            CSRMatrix(1, 3, [0, 2], [0], [1.0])

    def test_row_offsets_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(3, 3, [0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_col_out_of_range(self):
        with pytest.raises(ValueError, match="col_ids out of range"):
            CSRMatrix(1, 2, [0, 1], [5], [1.0])

    def test_negative_col(self):
        with pytest.raises(ValueError, match="col_ids out of range"):
            CSRMatrix(1, 2, [0, 1], [-1], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths differ"):
            CSRMatrix(1, 3, [0, 2], [0, 1], [1.0])

    def test_negative_dims(self):
        with pytest.raises(ValueError):
            CSRMatrix(-1, 3, [0], [], [])

    def test_check_false_skips_validation(self):
        # deliberately broken matrix accepted when check=False
        m = CSRMatrix(1, 2, [0, 1], [5], [1.0], check=False)
        assert m.col_ids[0] == 5


class TestAccessors:
    def test_row_view(self, small_csr):
        cols, vals = small_csr.row(2)
        np.testing.assert_array_equal(cols, [0, 1, 3])
        np.testing.assert_array_equal(vals, [3.0, 4.0, 5.0])

    def test_empty_row(self, small_csr):
        cols, vals = small_csr.row(1)
        assert cols.size == 0 and vals.size == 0

    def test_row_out_of_range(self, small_csr):
        with pytest.raises(IndexError):
            small_csr.row(4)
        with pytest.raises(IndexError):
            small_csr.row(-1)

    def test_iter_rows(self, small_csr, small_dense):
        for r, cols, vals in small_csr.iter_rows():
            dense_row = small_dense[r]
            np.testing.assert_array_equal(cols, np.nonzero(dense_row)[0])
            np.testing.assert_array_equal(vals, dense_row[dense_row != 0])

    def test_row_nnz(self, small_csr):
        np.testing.assert_array_equal(small_csr.row_nnz(), [2, 0, 3, 2])

    def test_expand_row_ids(self, small_csr):
        np.testing.assert_array_equal(
            small_csr.expand_row_ids(), [0, 0, 2, 2, 2, 3, 3]
        )

    def test_nbytes_counts_all_arrays(self, small_csr):
        expected = (
            small_csr.row_offsets.nbytes
            + small_csr.col_ids.nbytes
            + small_csr.data.nbytes
        )
        assert small_csr.nbytes() == expected

    def test_density(self, small_csr):
        assert small_csr.density() == pytest.approx(7 / 16)

    def test_has_sorted_rows(self, small_csr):
        assert small_csr.has_sorted_rows()
        unsorted = CSRMatrix(1, 4, [0, 2], [3, 1], [1.0, 2.0], check=False)
        assert not unsorted.has_sorted_rows()

    def test_repr(self, small_csr):
        s = repr(small_csr)
        assert "4x4" in s and "nnz=7" in s


class TestRowSlice:
    def test_row_slice_matches_dense(self, small_csr, small_dense):
        panel = small_csr.row_slice(1, 3)
        np.testing.assert_array_equal(panel.to_dense(), small_dense[1:3])

    def test_full_slice(self, small_csr):
        assert small_csr.row_slice(0, 4) == small_csr

    def test_empty_slice(self, small_csr):
        panel = small_csr.row_slice(2, 2)
        assert panel.n_rows == 0 and panel.nnz == 0

    def test_slice_is_copy(self, small_csr):
        panel = small_csr.row_slice(2, 4)
        panel.data[0] = -1.0
        assert small_csr.data[2] != -1.0

    def test_invalid_slice(self, small_csr):
        with pytest.raises(IndexError):
            small_csr.row_slice(3, 1)
        with pytest.raises(IndexError):
            small_csr.row_slice(0, 10)


class TestEquality:
    def test_eq_and_allclose(self, small_csr):
        other = small_csr.copy()
        assert small_csr == other
        assert small_csr.allclose(other)
        other.data[0] += 1e-15
        assert small_csr.allclose(other)
        assert small_csr != other

    def test_shape_mismatch(self, small_csr):
        assert not small_csr.allclose(CSRMatrix.empty(4, 5))

    def test_eq_non_matrix(self, small_csr):
        assert small_csr != "nope"

    def test_unhashable(self, small_csr):
        with pytest.raises(TypeError):
            hash(small_csr)


@st.composite
def dense_matrices(draw):
    n_rows = draw(st.integers(1, 8))
    n_cols = draw(st.integers(1, 8))
    values = draw(
        st.lists(
            st.floats(-10, 10).map(lambda v: 0.0 if abs(v) < 2 else v),
            min_size=n_rows * n_cols,
            max_size=n_rows * n_cols,
        )
    )
    return np.asarray(values).reshape(n_rows, n_cols)


class TestProperties:
    @given(dense=dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_dense_roundtrip(self, dense):
        csr = CSRMatrix.from_dense(dense)
        csr.validate()
        assert csr.has_sorted_rows()
        np.testing.assert_array_equal(csr.to_dense(), dense)

    @given(dense=dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_scipy_agrees(self, dense):
        csr = CSRMatrix.from_dense(dense)
        sp = csr.to_scipy()
        np.testing.assert_array_equal(np.asarray(sp.todense()), dense)


class TestMatmulOperator:
    def test_operator_matches_scipy(self, small_csr):
        from repro.spgemm.reference import spgemm_scipy
        from repro.sparse.ops import drop_explicit_zeros

        product = small_csr @ small_csr
        assert drop_explicit_zeros(product).allclose(spgemm_scipy(small_csr, small_csr))

    def test_operator_rejects_non_matrix(self, small_csr):
        import pytest

        with pytest.raises(TypeError):
            small_csr @ 3.0
