"""Tests for shared-memory CSR transport (repro.sparse.shm)."""

import glob

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.sparse.shm import (
    SharedCSR,
    SharedCSRDescriptor,
    cleanup_segments,
    register_cleanup_prefix,
    run_prefix,
    unregister_cleanup_prefix,
)


def leaked(prefix):
    return glob.glob(f"/dev/shm/{prefix}*")


class TestRoundtrip:
    def test_create_attach_roundtrip(self):
        m = random_csr(30, 20, 100, seed=7)
        prefix = run_prefix()
        with SharedCSR.create(m, f"{prefix}-x") as shared:
            attached = SharedCSR.attach(shared.descriptor)
            try:
                got = attached.matrix
                assert got.shape == m.shape
                np.testing.assert_array_equal(got.row_offsets, m.row_offsets)
                np.testing.assert_array_equal(got.col_ids, m.col_ids)
                np.testing.assert_array_equal(got.data, m.data)
                copy = attached.copy_matrix()
            finally:
                attached.close()
        assert not leaked(prefix)
        # the copy is independent of the (now unlinked) segment
        assert copy == m

    def test_attach_is_zero_copy(self):
        m = random_csr(10, 10, 30, seed=1)
        prefix = run_prefix()
        with SharedCSR.create(m, f"{prefix}-z") as shared:
            attached = SharedCSR.attach(shared.descriptor)
            try:
                view = attached.matrix
                # a view aliases the mapping; a copy would own its data
                assert view.data.base is not None
                assert not view.data.flags.owndata
            finally:
                attached.close()
        assert not leaked(prefix)

    def test_empty_matrix(self):
        m = CSRMatrix.empty(5, 4)
        prefix = run_prefix()
        with SharedCSR.create(m, f"{prefix}-e") as shared:
            attached = SharedCSR.attach(shared.descriptor)
            try:
                assert attached.copy_matrix() == m
            finally:
                attached.close()
        assert not leaked(prefix)

    def test_descriptor_nbytes(self):
        d = SharedCSRDescriptor(name="x", n_rows=10, n_cols=8, nnz=25)
        assert d.nbytes == (10 + 1) * 8 + 25 * (8 + 8)


class TestLifecycle:
    def test_unlink_idempotent(self):
        m = random_csr(5, 5, 10, seed=2)
        prefix = run_prefix()
        shared = SharedCSR.create(m, f"{prefix}-u")
        shared.close()
        shared.unlink()
        shared.unlink()  # second call is a no-op, not an error
        assert not leaked(prefix)

    def test_cleanup_segments_sweeps_prefix(self):
        m = random_csr(5, 5, 10, seed=3)
        prefix = run_prefix()
        segs = [SharedCSR.create(m, f"{prefix}-{i}") for i in range(3)]
        for s in segs:
            s.close()  # closed but *not* unlinked: simulated crash
        removed = cleanup_segments(prefix)
        assert len(removed) == 3
        assert not leaked(prefix)
        assert cleanup_segments(prefix) == []  # second sweep: nothing left

    def test_cleanup_prefix_registry(self):
        # register/unregister must tolerate unknown prefixes and not throw
        register_cleanup_prefix("repro-test-nonexistent")
        unregister_cleanup_prefix("repro-test-nonexistent")
        unregister_cleanup_prefix("repro-never-registered")

    def test_run_prefixes_unique(self):
        assert run_prefix() != run_prefix()

    def test_run_prefix_embeds_pid_and_run_id(self):
        import os

        prefix = run_prefix("serve")
        assert prefix.startswith(f"repro-serve-{os.getpid()}-")
        assert run_prefix().startswith(f"repro-{os.getpid()}-")

    def test_exit_sweep_is_pid_guarded(self):
        # a child inheriting the parent's registration must not sweep
        # the parent's segments on exit; its own registrations it must
        import os

        from repro.sparse.shm import _atexit_sweep, _CLEANUP_PREFIXES

        m = random_csr(5, 5, 10, seed=9)
        parent_prefix = run_prefix("parent")
        register_cleanup_prefix(parent_prefix)
        seg = SharedCSR.create(m, f"{parent_prefix}-0")
        seg.close()  # closed but not unlinked: the sweep's target
        try:
            # simulate the child's inherited registry: same prefix dict,
            # foreign owner pid — the sweep must skip it
            _CLEANUP_PREFIXES[parent_prefix] = os.getpid() + 1
            _atexit_sweep()
            assert leaked(parent_prefix), "sweep unlinked a foreign prefix"
            # restored to this pid, the sweep reaps it
            _CLEANUP_PREFIXES[parent_prefix] = os.getpid()
            _atexit_sweep()
            assert not leaked(parent_prefix)
        finally:
            unregister_cleanup_prefix(parent_prefix)
            cleanup_segments(parent_prefix)

    def test_child_process_sweeps_only_its_own_registrations(self):
        # end-to-end pid guard: a child process whose registry holds an
        # entry owned by the parent's pid (the inherited-after-fork
        # shape) plus one of its own sweeps only its own at exit
        import os
        import subprocess
        import sys

        m = random_csr(5, 5, 10, seed=10)
        parent_prefix = run_prefix("par")
        register_cleanup_prefix(parent_prefix)
        seg = SharedCSR.create(m, f"{parent_prefix}-0")
        seg.close()
        child_script = f"""
import os
from repro.sparse import shm
from repro.sparse.generators import random_csr

# the inherited-registry shape: parent's prefix, parent's owner pid
shm._CLEANUP_PREFIXES[{parent_prefix!r}] = {os.getpid()}
child_prefix = shm.run_prefix("child")
shm.register_cleanup_prefix(child_prefix)
seg = shm.SharedCSR.create(random_csr(4, 4, 6, seed=11), child_prefix + "-0")
seg.close()  # not unlinked: only the exit sweep can reap it
print(child_prefix)
"""
        try:
            proc = subprocess.run(
                [sys.executable, "-c", child_script],
                capture_output=True, text=True, timeout=60,
                env=dict(os.environ),
            )
            assert proc.returncode == 0, proc.stderr
            child_prefix = proc.stdout.strip()
            assert not leaked(child_prefix), \
                "child exit left its own segments behind"
            assert leaked(parent_prefix), \
                "child exit swept the parent's segments"
        finally:
            unregister_cleanup_prefix(parent_prefix)
            cleanup_segments(parent_prefix)
        assert not leaked(parent_prefix)
