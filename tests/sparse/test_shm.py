"""Tests for shared-memory CSR transport (repro.sparse.shm)."""

import glob

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.sparse.shm import (
    SharedCSR,
    SharedCSRDescriptor,
    cleanup_segments,
    register_cleanup_prefix,
    run_prefix,
    unregister_cleanup_prefix,
)


def leaked(prefix):
    return glob.glob(f"/dev/shm/{prefix}*")


class TestRoundtrip:
    def test_create_attach_roundtrip(self):
        m = random_csr(30, 20, 100, seed=7)
        prefix = run_prefix()
        with SharedCSR.create(m, f"{prefix}-x") as shared:
            attached = SharedCSR.attach(shared.descriptor)
            try:
                got = attached.matrix
                assert got.shape == m.shape
                np.testing.assert_array_equal(got.row_offsets, m.row_offsets)
                np.testing.assert_array_equal(got.col_ids, m.col_ids)
                np.testing.assert_array_equal(got.data, m.data)
                copy = attached.copy_matrix()
            finally:
                attached.close()
        assert not leaked(prefix)
        # the copy is independent of the (now unlinked) segment
        assert copy == m

    def test_attach_is_zero_copy(self):
        m = random_csr(10, 10, 30, seed=1)
        prefix = run_prefix()
        with SharedCSR.create(m, f"{prefix}-z") as shared:
            attached = SharedCSR.attach(shared.descriptor)
            try:
                view = attached.matrix
                # a view aliases the mapping; a copy would own its data
                assert view.data.base is not None
                assert not view.data.flags.owndata
            finally:
                attached.close()
        assert not leaked(prefix)

    def test_empty_matrix(self):
        m = CSRMatrix.empty(5, 4)
        prefix = run_prefix()
        with SharedCSR.create(m, f"{prefix}-e") as shared:
            attached = SharedCSR.attach(shared.descriptor)
            try:
                assert attached.copy_matrix() == m
            finally:
                attached.close()
        assert not leaked(prefix)

    def test_descriptor_nbytes(self):
        d = SharedCSRDescriptor(name="x", n_rows=10, n_cols=8, nnz=25)
        assert d.nbytes == (10 + 1) * 8 + 25 * (8 + 8)


class TestLifecycle:
    def test_unlink_idempotent(self):
        m = random_csr(5, 5, 10, seed=2)
        prefix = run_prefix()
        shared = SharedCSR.create(m, f"{prefix}-u")
        shared.close()
        shared.unlink()
        shared.unlink()  # second call is a no-op, not an error
        assert not leaked(prefix)

    def test_cleanup_segments_sweeps_prefix(self):
        m = random_csr(5, 5, 10, seed=3)
        prefix = run_prefix()
        segs = [SharedCSR.create(m, f"{prefix}-{i}") for i in range(3)]
        for s in segs:
            s.close()  # closed but *not* unlinked: simulated crash
        removed = cleanup_segments(prefix)
        assert len(removed) == 3
        assert not leaked(prefix)
        assert cleanup_segments(prefix) == []  # second sweep: nothing left

    def test_cleanup_prefix_registry(self):
        # register/unregister must tolerate unknown prefixes and not throw
        register_cleanup_prefix("repro-test-nonexistent")
        unregister_cleanup_prefix("repro-test-nonexistent")
        unregister_cleanup_prefix("repro-never-registered")

    def test_run_prefixes_unique(self):
        assert run_prefix() != run_prefix()
