"""Tests for structural/element-wise CSR operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.sparse.ops import (
    RowSliceCache,
    add,
    drop_explicit_zeros,
    extract_columns,
    hstack,
    row_stats,
    scale,
    take_rows,
    transpose,
    vstack,
)


class TestTranspose:
    def test_matches_dense(self, small_csr, small_dense):
        np.testing.assert_array_equal(transpose(small_csr).to_dense(), small_dense.T)

    def test_double_transpose(self, sample_matrix):
        assert transpose(transpose(sample_matrix)) == sample_matrix

    def test_empty(self):
        t = transpose(CSRMatrix.empty(2, 5))
        assert t.shape == (5, 2)


class TestAddScale:
    def test_add_matches_dense(self, rng):
        a = random_csr(10, 12, 30, seed=1)
        b = random_csr(10, 12, 30, seed=2)
        np.testing.assert_allclose(
            add(a, b).to_dense(), a.to_dense() + b.to_dense(), atol=1e-12
        )

    def test_add_shape_mismatch(self, small_csr):
        with pytest.raises(ValueError, match="shape"):
            add(small_csr, CSRMatrix.empty(2, 2))

    def test_scale(self, small_csr, small_dense):
        np.testing.assert_array_equal(scale(small_csr, -2.0).to_dense(), -2.0 * small_dense)

    def test_scale_preserves_structure(self, small_csr):
        s = scale(small_csr, 0.0)
        assert s.nnz == small_csr.nnz  # explicit zeros retained


class TestDropZeros:
    def test_drops_stored_zeros(self):
        m = CSRMatrix(2, 2, [0, 2, 3], [0, 1, 0], [1.0, 0.0, 2.0], check=False)
        d = drop_explicit_zeros(m)
        assert d.nnz == 2
        np.testing.assert_array_equal(d.to_dense(), [[1.0, 0.0], [2.0, 0.0]])

    def test_tolerance(self):
        m = CSRMatrix(1, 2, [0, 2], [0, 1], [1e-15, 1.0], check=False)
        assert drop_explicit_zeros(m, tol=1e-12).nnz == 1

    def test_noop_when_no_zeros(self, small_csr):
        assert drop_explicit_zeros(small_csr) == small_csr


class TestStack:
    def test_hstack_matches_dense(self, rng):
        parts = [random_csr(6, w, 10, seed=i) for i, w in enumerate([3, 5, 2])]
        stacked = hstack(parts)
        np.testing.assert_array_equal(
            stacked.to_dense(), np.hstack([p.to_dense() for p in parts])
        )

    def test_vstack_matches_dense(self, rng):
        parts = [random_csr(h, 7, 10, seed=i) for i, h in enumerate([2, 4, 3])]
        stacked = vstack(parts)
        np.testing.assert_array_equal(
            stacked.to_dense(), np.vstack([p.to_dense() for p in parts])
        )

    def test_hstack_row_mismatch(self):
        with pytest.raises(ValueError, match="equal row counts"):
            hstack([CSRMatrix.empty(2, 2), CSRMatrix.empty(3, 2)])

    def test_vstack_col_mismatch(self):
        with pytest.raises(ValueError, match="equal column counts"):
            vstack([CSRMatrix.empty(2, 2), CSRMatrix.empty(2, 3)])

    def test_empty_input(self):
        with pytest.raises(ValueError):
            hstack([])
        with pytest.raises(ValueError):
            vstack([])

    def test_single_matrix(self, small_csr):
        assert hstack([small_csr]) == small_csr
        assert vstack([small_csr]) == small_csr

    def test_hstack_with_empty_panels(self, small_csr):
        stacked = hstack([small_csr, CSRMatrix.empty(4, 3)])
        assert stacked.n_cols == 7
        assert stacked.nnz == small_csr.nnz


class TestExtractColumns:
    def test_matches_dense_slice(self, small_csr, small_dense):
        sub = extract_columns(small_csr, 1, 3)
        np.testing.assert_array_equal(sub.to_dense(), small_dense[:, 1:3])

    def test_full_range(self, small_csr):
        assert extract_columns(small_csr, 0, small_csr.n_cols) == small_csr

    def test_invalid_range(self, small_csr):
        with pytest.raises(IndexError):
            extract_columns(small_csr, 3, 1)


class TestTakeRows:
    def test_order_preserved(self, small_csr, small_dense):
        sub = take_rows(small_csr, np.array([3, 0, 2]))
        np.testing.assert_array_equal(sub.to_dense(), small_dense[[3, 0, 2]])

    def test_repeats_allowed(self, small_csr, small_dense):
        sub = take_rows(small_csr, np.array([2, 2]))
        np.testing.assert_array_equal(sub.to_dense(), small_dense[[2, 2]])

    def test_empty_selection(self, small_csr):
        sub = take_rows(small_csr, np.array([], dtype=np.int64))
        assert sub.n_rows == 0 and sub.nnz == 0

    def test_out_of_range(self, small_csr):
        with pytest.raises(IndexError):
            take_rows(small_csr, np.array([9]))


class TestRowStats:
    def test_regular_matrix_low_gini(self):
        m = CSRMatrix.identity(50)
        s = row_stats(m)
        assert s["min"] == s["max"] == 1
        assert s["gini"] == pytest.approx(0.0, abs=1e-9)

    def test_skewed_matrix_high_gini(self):
        # one dense row among empty rows
        m = CSRMatrix(10, 10, [0] + [10] * 10, np.arange(10), np.ones(10), check=False)
        s = row_stats(m)
        assert s["gini"] > 0.8

    def test_empty(self):
        s = row_stats(CSRMatrix.empty(0, 0))
        assert s["mean"] == 0.0


class TestProperties:
    @given(seed=st.integers(0, 1000), panels=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_hstack_of_extracted_columns_roundtrips(self, seed, panels):
        m = random_csr(15, 20, 60, seed=seed)
        bounds = np.linspace(0, 20, panels + 1).astype(int)
        parts = [extract_columns(m, bounds[i], bounds[i + 1]) for i in range(panels)]
        assert hstack(parts) == m


class TestRowSliceCache:
    def test_matches_take_rows(self):
        m = random_csr(20, 15, 70, seed=3)
        cache = RowSliceCache(m)
        rows = np.array([2, 7, 11])
        assert cache.take(rows) == take_rows(m, rows)

    def test_repeat_lookup_hits(self):
        m = random_csr(20, 15, 70, seed=3)
        cache = RowSliceCache(m)
        rows = np.array([1, 4, 9])
        first = cache.take(rows)
        second = cache.take(rows.copy())  # distinct array, same bytes
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_keys_distinct_entries(self):
        m = random_csr(20, 15, 70, seed=3)
        cache = RowSliceCache(m)
        cache.take(np.array([0, 1]))
        cache.take(np.array([0, 2]))
        assert len(cache) == 2 and cache.misses == 2

    def test_lru_eviction_bounds_footprint(self):
        m = random_csr(30, 10, 80, seed=5)
        cache = RowSliceCache(m, max_entries=2)
        for r in range(4):
            cache.take(np.array([r]))
        assert len(cache) == 2
        # oldest entry was evicted: looking it up again is a miss
        cache.take(np.array([0]))
        assert cache.misses == 5

    def test_matrix_property_and_validation(self):
        m = random_csr(10, 10, 20, seed=1)
        assert RowSliceCache(m).matrix is m
        with pytest.raises(ValueError):
            RowSliceCache(m, max_entries=0)
        with pytest.raises(ValueError):
            RowSliceCache(m, max_bytes=0)

    def test_byte_budget_evicts_lru(self):
        m = random_csr(30, 10, 120, seed=5)
        one_slice = take_rows(m, np.array([0])).nbytes()
        # room for roughly two single-row slices, never four
        cache = RowSliceCache(m, max_bytes=2 * one_slice + 1)
        for r in range(4):
            cache.take(np.array([r]))
        assert cache.evictions > 0
        assert cache.held_bytes <= cache.max_bytes
        # the oldest entry is gone: re-taking it misses
        misses = cache.misses
        cache.take(np.array([0]))
        assert cache.misses == misses + 1

    def test_freshest_entry_survives_oversized_budget(self):
        """A slice bigger than the whole budget is still cached — evicting
        it immediately would defeat memoization for large panels."""
        m = random_csr(20, 10, 80, seed=6)
        cache = RowSliceCache(m, max_bytes=1)
        rows = np.arange(10)
        first = cache.take(rows)
        assert len(cache) == 1
        assert cache.take(rows) is first  # still a hit
        assert cache.hits == 1

    def test_held_bytes_tracks_entries(self):
        m = random_csr(20, 10, 80, seed=7)
        cache = RowSliceCache(m, max_bytes=None)  # unbounded
        assert cache.held_bytes == 0
        s1 = cache.take(np.array([0, 1]))
        s2 = cache.take(np.array([2, 3]))
        assert cache.held_bytes == s1.nbytes() + s2.nbytes()
        assert cache.evictions == 0

    def test_entry_cap_counts_evictions(self):
        m = random_csr(30, 10, 80, seed=5)
        cache = RowSliceCache(m, max_entries=2)
        for r in range(5):
            cache.take(np.array([r]))
        assert cache.evictions == 3
        assert len(cache) == 2

    def test_thread_safety_under_contention(self):
        import threading

        m = random_csr(40, 12, 150, seed=8)
        cache = RowSliceCache(m, max_entries=8)
        expected = {r: take_rows(m, np.array([r])) for r in range(10)}
        failures = []

        def worker():
            for r in list(range(10)) * 20:
                if cache.take(np.array([r])) != expected[r]:
                    failures.append(r)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
