"""Tests for matrix reordering."""

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr, rmat
from repro.sparse.reordering import bandwidth, degree_order, permute_symmetric, rcm_order


class TestDegreeOrder:
    def test_descending(self):
        a = rmat(7, 4.0, seed=5)
        perm = degree_order(a)
        degs = a.row_nnz()[perm]
        assert np.all(np.diff(degs) <= 0)

    def test_ascending(self):
        a = rmat(7, 4.0, seed=5)
        perm = degree_order(a, descending=False)
        degs = a.row_nnz()[perm]
        assert np.all(np.diff(degs) >= 0)

    def test_is_permutation(self):
        a = random_csr(20, 20, 60, seed=1)
        perm = degree_order(a)
        np.testing.assert_array_equal(np.sort(perm), np.arange(20))


class TestPermuteSymmetric:
    def test_matches_dense(self):
        a = random_csr(12, 12, 40, seed=2)
        perm = degree_order(a)
        permuted = permute_symmetric(a, perm)
        expected = a.to_dense()[np.ix_(perm, perm)]
        np.testing.assert_array_equal(permuted.to_dense(), expected)

    def test_identity_permutation(self):
        a = random_csr(10, 10, 30, seed=3)
        assert permute_symmetric(a, np.arange(10)) == a

    def test_preserves_spectrum_symmetric_case(self):
        b = banded(30, 2, seed=4)
        sym = CSRMatrix.from_dense(b.to_dense() + b.to_dense().T)
        perm = rcm_order(sym)
        permuted = permute_symmetric(sym, perm)
        ev_a = np.sort(np.linalg.eigvalsh(sym.to_dense()))
        ev_b = np.sort(np.linalg.eigvalsh(permuted.to_dense()))
        np.testing.assert_allclose(ev_a, ev_b, atol=1e-9)

    def test_rejects_nonsquare(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError):
            permute_symmetric(a, np.arange(4))

    def test_rejects_bad_perm(self):
        a = random_csr(4, 4, 8, seed=1)
        with pytest.raises(ValueError, match="permutation"):
            permute_symmetric(a, np.array([0, 0, 1, 2]))


class TestRCM:
    def shuffled_band(self, n=120, bw=3, seed=9):
        rng = np.random.default_rng(seed)
        band = banded(n, bw, seed=seed)
        sym = CSRMatrix.from_dense(band.to_dense() + band.to_dense().T)
        shuffle = rng.permutation(n)
        return permute_symmetric(sym, shuffle)

    def test_is_permutation(self):
        a = self.shuffled_band()
        perm = rcm_order(a)
        np.testing.assert_array_equal(np.sort(perm), np.arange(a.n_rows))

    def test_reduces_bandwidth(self):
        a = self.shuffled_band()
        before = bandwidth(a)
        after = bandwidth(permute_symmetric(a, rcm_order(a)))
        assert after < before / 3  # a shuffled band recovers a narrow band

    def test_competitive_with_scipy(self):
        from scipy.sparse.csgraph import reverse_cuthill_mckee

        a = self.shuffled_band()
        ours = bandwidth(permute_symmetric(a, rcm_order(a)))
        sp_perm = np.asarray(reverse_cuthill_mckee(a.to_scipy(), symmetric_mode=True))
        theirs = bandwidth(permute_symmetric(a, sp_perm))
        assert ours <= 2 * max(theirs, 1)

    def test_disconnected_components_covered(self):
        from repro.sparse.generators import diagonal_blocks

        a = diagonal_blocks(40, 10, seed=6, density=0.5)
        perm = rcm_order(a)
        np.testing.assert_array_equal(np.sort(perm), np.arange(40))

    def test_rejects_nonsquare(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError):
            rcm_order(a)


class TestBandwidth:
    def test_banded(self):
        assert bandwidth(banded(50, 4, seed=1, fill=1.0)) == 4

    def test_diagonal(self):
        assert bandwidth(CSRMatrix.identity(10)) == 0

    def test_empty(self):
        assert bandwidth(CSRMatrix.empty(5, 5)) == 0
