"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.sparse.generators import (
    banded,
    diagonal_blocks,
    erdos_renyi,
    kronecker_power,
    random_csr,
    rmat,
)
from repro.sparse.ops import row_stats


class TestRandomCsr:
    def test_deterministic(self):
        a = random_csr(50, 60, 200, seed=3)
        b = random_csr(50, 60, 200, seed=3)
        assert a == b

    def test_seed_changes_output(self):
        assert random_csr(50, 60, 200, seed=3) != random_csr(50, 60, 200, seed=4)

    def test_nnz_close_to_requested(self):
        m = random_csr(100, 100, 500, seed=1)
        assert 400 <= m.nnz <= 500  # duplicates merged

    def test_valid(self):
        random_csr(30, 40, 100, seed=0).validate()

    def test_ones_values(self):
        # duplicate draws are summed, so values are positive integers
        m = random_csr(20, 20, 50, seed=1, values="ones")
        assert np.all(m.data >= 1.0)
        assert np.all(m.data == np.round(m.data))

    def test_bad_value_kind(self):
        with pytest.raises(ValueError, match="value kind"):
            random_csr(5, 5, 5, seed=0, values="bogus")


class TestErdosRenyi:
    def test_average_degree(self):
        m = erdos_renyi(1000, 8.0, seed=5)
        assert 6.5 <= m.nnz / m.n_rows <= 8.0

    def test_square(self):
        m = erdos_renyi(64, 3.0, seed=1)
        assert m.n_rows == m.n_cols == 64


class TestBanded:
    def test_band_structure(self):
        m = banded(50, 3, seed=1)
        rows = m.expand_row_ids()
        assert np.all(np.abs(m.col_ids - rows) <= 3)

    def test_full_band_count(self):
        m = banded(100, 2, seed=1, fill=1.0)
        # interior rows have exactly 5 entries
        assert m.row_nnz()[10] == 5
        # boundary rows clipped
        assert m.row_nnz()[0] == 3

    def test_fill_reduces_nnz(self):
        full = banded(200, 4, seed=2, fill=1.0)
        sparse = banded(200, 4, seed=2, fill=0.4)
        assert sparse.nnz < full.nnz

    def test_diagonal_always_kept(self):
        m = banded(80, 5, seed=3, fill=0.1)
        rows = m.expand_row_ids()
        diag = set(rows[m.col_ids == rows].tolist())
        assert diag == set(range(80))

    def test_regularity(self):
        assert row_stats(banded(500, 3, seed=1))["gini"] < 0.05

    def test_negative_bandwidth(self):
        with pytest.raises(ValueError):
            banded(10, -1, seed=0)


class TestRmat:
    def test_size(self):
        m = rmat(8, 4.0, seed=7)
        assert m.n_rows == 256

    def test_heavy_tail(self):
        m = rmat(12, 8.0, seed=7)
        counts = m.row_nnz()
        assert counts.max() > 8 * counts.mean()

    def test_skew_increases_with_a(self):
        flat = rmat(11, 8.0, seed=7, a=0.25, b=0.25, c=0.25)
        skewed = rmat(11, 8.0, seed=7, a=0.65, b=0.15, c=0.15)
        assert row_stats(skewed)["gini"] > row_stats(flat)["gini"]

    def test_deterministic(self):
        assert rmat(9, 4.0, seed=1) == rmat(9, 4.0, seed=1)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError, match="sum"):
            rmat(5, 2.0, seed=0, a=0.6, b=0.3, c=0.3)


class TestKronecker:
    def test_size(self):
        s = np.full((2, 2), 0.7)
        m = kronecker_power(s, 5, seed=1)
        assert m.n_rows == 32

    def test_nonsquare_seed_rejected(self):
        with pytest.raises(ValueError, match="square"):
            kronecker_power(np.ones((2, 3)), 2, seed=0)

    def test_edge_count_scale(self):
        s = np.full((2, 2), 0.7)  # sum = 2.8
        m = kronecker_power(s, 6, seed=2)
        expected = 2.8**6
        assert 0.5 * expected <= m.nnz <= expected  # duplicates merge


class TestDiagonalBlocks:
    def test_block_structure(self):
        m = diagonal_blocks(60, 20, seed=1, density=0.8)
        rows = m.expand_row_ids()
        assert np.all(rows // 20 == m.col_ids // 20)

    def test_uneven_last_block(self):
        m = diagonal_blocks(50, 20, seed=1, density=1.0)
        assert m.n_rows == 50
        m.validate()

    def test_bad_block(self):
        with pytest.raises(ValueError):
            diagonal_blocks(10, 0, seed=0)


class TestDegenerateShapes:
    def test_zero_rows(self):
        m = random_csr(0, 5, 10, seed=1)
        assert m.shape == (0, 5) and m.nnz == 0

    def test_zero_cols(self):
        m = random_csr(5, 0, 10, seed=1)
        assert m.shape == (5, 0) and m.nnz == 0

    def test_zero_nnz(self):
        m = random_csr(5, 5, 0, seed=1)
        assert m.nnz == 0
