"""Tests for the nine-matrix evaluation suite (Table II analogs)."""

import pytest

from repro.sparse.suite import SUITE, build_matrix, matrix_features, suite_names


class TestRegistry:
    def test_nine_matrices(self):
        assert len(SUITE) == 9
        assert len(suite_names()) == 9

    def test_unique_names_and_abbrs(self):
        names = [e.name for e in SUITE]
        abbrs = [e.abbr for e in SUITE]
        assert len(set(names)) == 9
        assert len(set(abbrs)) == 9

    def test_paper_row_order(self):
        assert suite_names()[0] == "ljournal-2008"
        assert suite_names()[-1] == "wikipedia-20060925"

    def test_lookup_by_name_or_abbr(self):
        by_name = build_matrix("stokes")
        by_abbr = build_matrix("stokes")
        assert by_name == by_abbr

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown suite matrix"):
            build_matrix("no-such-matrix")

    def test_families(self):
        fams = {e.family for e in SUITE}
        assert fams == {"social", "wiki", "web", "mesh"}


class TestMatrices:
    @pytest.mark.parametrize("entry", SUITE, ids=lambda e: e.abbr)
    def test_valid_and_square(self, entry):
        m = entry.build()
        m.validate()
        assert m.n_rows == m.n_cols
        assert m.nnz > 0

    def test_deterministic(self):
        assert build_matrix("lj2008") == build_matrix("lj2008")


class TestFeatures:
    @pytest.fixture(scope="class")
    def features(self):
        # the mesh family is cheap to feature-extract; one social matrix
        # covers the expensive path
        return {
            abbr: matrix_features(abbr)
            for abbr in ("stokes", "nlp", "uk-2002", "wiki0206", "lj2008")
        }

    def test_feature_sanity(self, features):
        for f in features.values():
            assert f.nnz_out >= f.nnz // 2
            assert f.flops >= 2 * f.nnz_out or f.compression_ratio >= 2.0
            assert f.compression_ratio >= 2.0

    def test_compression_ranking_matches_paper(self, features):
        """The paper's ordering: social < wiki < stokes < uk-2002 < nlp."""
        assert (
            features["lj2008"].compression_ratio
            < features["wiki0206"].compression_ratio
            < features["stokes"].compression_ratio
            < features["uk-2002"].compression_ratio
            < features["nlp"].compression_ratio
        )

    def test_mesh_regular_social_skewed(self, features):
        assert features["nlp"].gini < 0.1
        assert features["lj2008"].gini > 0.5
