"""Tests for MatrixMarket and npz I/O."""

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.sparse.io import load_npz, read_matrix_market, save_npz, write_matrix_market


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, small_csr):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, small_csr, comment="test matrix")
        back = read_matrix_market(path)
        assert back == small_csr

    def test_roundtrip_random(self, tmp_path):
        m = random_csr(20, 30, 80, seed=5)
        path = tmp_path / "r.mtx"
        write_matrix_market(path, m)
        assert read_matrix_market(path).allclose(m)

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 3 2\n1 1\n2 3\n"
        )
        m = read_matrix_market(path)
        np.testing.assert_array_equal(
            m.to_dense(), [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]
        )

    def test_symmetric(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% lower triangle stored\n"
            "2 2 2\n1 1 5.0\n2 1 3.0\n"
        )
        m = read_matrix_market(path)
        np.testing.assert_array_equal(m.to_dense(), [[5.0, 3.0], [3.0, 0.0]])

    def test_skew_symmetric(self, tmp_path):
        path = tmp_path / "k.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        m = read_matrix_market(path)
        np.testing.assert_array_equal(m.to_dense(), [[0.0, -3.0], [3.0, 0.0]])

    def test_integer_field(self, tmp_path):
        path = tmp_path / "i.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "1 2 1\n1 2 7\n"
        )
        assert read_matrix_market(path).data[0] == 7.0

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 1 0\n")
        with pytest.raises(ValueError, match="header"):
            read_matrix_market(path)

    def test_unsupported_field(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(path)

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "a.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n1 1\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment one\n% comment two\n"
            "1 1 1\n1 1 2.5\n"
        )
        assert read_matrix_market(path).data[0] == 2.5


class TestNpz:
    def test_roundtrip(self, tmp_path, small_csr):
        path = tmp_path / "m.npz"
        save_npz(path, small_csr)
        assert load_npz(path) == small_csr

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "e.npz"
        save_npz(path, CSRMatrix.empty(5, 7))
        back = load_npz(path)
        assert back.shape == (5, 7) and back.nnz == 0
