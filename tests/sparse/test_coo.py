"""Tests for the COO format and the sort+compress canonicalizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.coo import COOMatrix, coo_to_csr_arrays
from repro.sparse.formats import CSRMatrix


class TestCooToCsr:
    def test_sorts_by_row_then_col(self):
        ro, cols, data = coo_to_csr_arrays(
            3, [2, 0, 2, 0], [1, 3, 0, 1], [1.0, 2.0, 3.0, 4.0]
        )
        np.testing.assert_array_equal(ro, [0, 2, 2, 4])
        np.testing.assert_array_equal(cols, [1, 3, 0, 1])
        np.testing.assert_array_equal(data, [4.0, 2.0, 3.0, 1.0])

    def test_sums_duplicates(self):
        ro, cols, data = coo_to_csr_arrays(2, [0, 0, 0], [1, 1, 1], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(ro, [0, 1, 1])
        np.testing.assert_array_equal(cols, [1])
        np.testing.assert_array_equal(data, [6.0])

    def test_keep_duplicates(self):
        ro, cols, data = coo_to_csr_arrays(
            1, [0, 0], [1, 1], [1.0, 2.0], sum_duplicates=False
        )
        assert len(cols) == 2
        np.testing.assert_array_equal(data, [1.0, 2.0])

    def test_empty(self):
        ro, cols, data = coo_to_csr_arrays(3, [], [], [])
        np.testing.assert_array_equal(ro, [0, 0, 0, 0])
        assert cols.size == 0 and data.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            coo_to_csr_arrays(2, [0], [0, 1], [1.0])


class TestCOOMatrix:
    def test_roundtrip_with_csr(self, small_csr):
        coo = COOMatrix.from_csr(small_csr)
        assert coo.nnz == small_csr.nnz
        assert coo.to_csr() == small_csr

    def test_validation(self):
        with pytest.raises(ValueError, match="row index"):
            COOMatrix(2, 2, [5], [0], [1.0])
        with pytest.raises(ValueError, match="column index"):
            COOMatrix(2, 2, [0], [5], [1.0])
        with pytest.raises(ValueError, match="identical lengths"):
            COOMatrix(2, 2, [0, 1], [0], [1.0])

    def test_repr(self):
        coo = COOMatrix(2, 2, [0], [1], [2.0])
        assert "2x2" in repr(coo)

    def test_duplicates_summed_to_dense(self):
        coo = COOMatrix(2, 2, [0, 0, 1], [1, 1, 0], [1.0, 4.0, 2.0])
        dense = coo.to_csr().to_dense()
        np.testing.assert_array_equal(dense, [[0.0, 5.0], [2.0, 0.0]])


@st.composite
def triplets(draw):
    n = draw(st.integers(1, 10))
    m = draw(st.integers(1, 10))
    count = draw(st.integers(0, 40))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=count, max_size=count))
    cols = draw(st.lists(st.integers(0, m - 1), min_size=count, max_size=count))
    vals = draw(st.lists(st.floats(-5, 5), min_size=count, max_size=count))
    return n, m, rows, cols, vals


class TestProperties:
    @given(t=triplets())
    @settings(max_examples=80, deadline=None)
    def test_to_csr_matches_dense_accumulation(self, t):
        n, m, rows, cols, vals = t
        coo = COOMatrix(n, m, rows, cols, vals)
        dense = np.zeros((n, m))
        for r, c, v in zip(rows, cols, vals):
            dense[r, c] += v
        csr = coo.to_csr()
        csr.validate()
        assert csr.has_sorted_rows()
        np.testing.assert_allclose(csr.to_dense(), dense, atol=1e-12)
