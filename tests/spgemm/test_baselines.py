"""Tests for Gustavson and ESC baselines, upper bounds, and the oracle."""

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr
from repro.spgemm.esc import spgemm_esc
from repro.spgemm.gustavson import spgemm_gustavson
from repro.spgemm.reference import assert_same_product, spgemm_scipy
from repro.spgemm.symbolic import symbolic_row_nnz
from repro.spgemm.upperbound import row_upper_bound, row_upper_bound_cols, tightness
from tests.conftest import assert_equals_scipy_product


class TestGustavson:
    def test_matches_scipy(self):
        a = random_csr(25, 25, 80, seed=51)
        assert_equals_scipy_product(spgemm_gustavson(a, a), a, a)

    def test_rectangular(self):
        a = random_csr(10, 8, 25, seed=52)
        b = random_csr(8, 12, 20, seed=53)
        assert_equals_scipy_product(spgemm_gustavson(a, b), a, b)

    def test_empty(self):
        a = CSRMatrix.empty(4, 4)
        assert spgemm_gustavson(a, a).nnz == 0

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            spgemm_gustavson(a, a)


class TestESC:
    def test_matches_scipy(self, sample_matrix):
        assert_equals_scipy_product(
            spgemm_esc(sample_matrix, sample_matrix), sample_matrix, sample_matrix
        )

    def test_batched_same_as_unbatched(self, sample_matrix):
        full = spgemm_esc(sample_matrix, sample_matrix)
        tiny = spgemm_esc(sample_matrix, sample_matrix, batch_products=32)
        assert full == tiny

    def test_empty(self):
        a = CSRMatrix.empty(5, 5)
        assert spgemm_esc(a, a).nnz == 0

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            spgemm_esc(a, a)


class TestUpperBound:
    def test_bound_dominates_actual(self, sample_matrix):
        ub = row_upper_bound(sample_matrix, sample_matrix)
        actual = symbolic_row_nnz(sample_matrix, sample_matrix)
        assert np.all(ub >= actual)

    def test_cols_clamp(self):
        a = CSRMatrix.from_dense(np.ones((2, 6)))
        b = CSRMatrix.from_dense(np.ones((6, 3)))
        ub = row_upper_bound(a, b)
        clamped = row_upper_bound_cols(a, b)
        assert np.all(ub == 18)
        assert np.all(clamped == 3)

    def test_tightness_banded_vs_random(self):
        """The paper's Section IV.B observation: upper bounds are loose,
        and looser for matrices with collisions."""
        band = banded(200, 4, seed=1)
        rand = random_csr(200, 200, 800, seed=2)
        t_band = tightness(row_upper_bound(band, band), symbolic_row_nnz(band, band))
        t_rand = tightness(row_upper_bound(rand, rand), symbolic_row_nnz(rand, rand))
        assert t_band > t_rand >= 1.0

    def test_tightness_edges(self):
        assert tightness(np.array([0]), np.array([0])) == 1.0
        assert tightness(np.array([5]), np.array([0])) == float("inf")


class TestReference:
    def test_assert_same_product_passes(self, sample_matrix):
        c = spgemm_scipy(sample_matrix, sample_matrix)
        assert_same_product(c, sample_matrix, sample_matrix)

    def test_assert_same_product_catches_corruption(self, sample_matrix):
        c = spgemm_scipy(sample_matrix, sample_matrix)
        bad = CSRMatrix(
            c.n_rows, c.n_cols, c.row_offsets, c.col_ids, c.data * 1.5, check=False
        )
        with pytest.raises(AssertionError):
            assert_same_product(bad, sample_matrix, sample_matrix)

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            spgemm_scipy(a, a)
