"""Tests for the row-merging SpGEMM kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr, rmat
from repro.spgemm.rmerge import spgemm_rmerge
from repro.spgemm.twophase import spgemm_twophase
from tests.conftest import assert_equals_scipy_product


class TestCorrectness:
    def test_matches_scipy(self, sample_matrix):
        assert_equals_scipy_product(
            spgemm_rmerge(sample_matrix, sample_matrix), sample_matrix, sample_matrix
        )

    def test_rectangular(self):
        a = random_csr(14, 10, 40, seed=71)
        b = random_csr(10, 18, 35, seed=72)
        assert_equals_scipy_product(spgemm_rmerge(a, b), a, b)

    def test_agrees_with_twophase(self, sample_matrix):
        merged = spgemm_rmerge(sample_matrix, sample_matrix)
        hashed = spgemm_twophase(sample_matrix, sample_matrix).matrix
        # same structure; values may differ by summation order only
        assert merged.allclose(hashed)

    def test_single_element_rows(self):
        # permutation matrix: every row spawns exactly one list (no rounds)
        perm = CSRMatrix(
            4, 4, np.arange(5), np.array([2, 0, 3, 1]), np.ones(4)
        )
        c = spgemm_rmerge(perm, perm)
        assert_equals_scipy_product(c, perm, perm)

    def test_heavy_collisions(self):
        a = CSRMatrix.from_dense(np.ones((3, 16)))
        b = CSRMatrix.from_dense(np.ones((16, 2)))
        c = spgemm_rmerge(a, b)
        np.testing.assert_allclose(c.to_dense(), np.full((3, 2), 16.0))

    def test_empty(self):
        a = CSRMatrix.empty(5, 5)
        assert spgemm_rmerge(a, a).nnz == 0

    def test_batched_invariant(self, sample_matrix):
        full = spgemm_rmerge(sample_matrix, sample_matrix)
        tiny = spgemm_rmerge(sample_matrix, sample_matrix, batch_products=64)
        assert full == tiny

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            spgemm_rmerge(a, a)

    def test_output_rows_sorted(self, sample_matrix):
        c = spgemm_rmerge(sample_matrix, sample_matrix)
        assert c.has_sorted_rows()


class TestProperties:
    @given(seed=st.integers(0, 400), n=st.integers(2, 25))
    @settings(max_examples=30, deadline=None)
    def test_random_products(self, seed, n):
        a = random_csr(n, n, 3 * n, seed=seed)
        assert_equals_scipy_product(spgemm_rmerge(a, a), a, a)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_three_kernels_agree(self, seed):
        from repro.spgemm.esc import spgemm_esc

        a = rmat(6, 4.0, seed=seed)
        merged = spgemm_rmerge(a, a)
        hashed = spgemm_twophase(a, a).matrix
        esc = spgemm_esc(a, a)
        assert merged.allclose(hashed)
        assert merged.allclose(esc)
