"""Tests for the row-analysis stage."""

import numpy as np

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.spgemm.flops import flops_per_row, total_flops
from repro.spgemm.rowanalysis import analyze_rows


class TestRowAnalysis:
    def test_flops_match_module(self, sample_matrix):
        analysis = analyze_rows(sample_matrix, sample_matrix)
        np.testing.assert_array_equal(
            analysis.flops, flops_per_row(sample_matrix, sample_matrix)
        )

    def test_totals(self, sample_matrix):
        analysis = analyze_rows(sample_matrix, sample_matrix)
        assert analysis.total_flops == total_flops(sample_matrix, sample_matrix)
        assert analysis.num_products == analysis.total_flops // 2

    def test_max_row_flops(self):
        a = random_csr(10, 10, 30, seed=1)
        analysis = analyze_rows(a, a)
        assert analysis.max_row_flops == int(analysis.flops.max())

    def test_max_row_flops_empty(self):
        a = CSRMatrix.empty(0, 0)
        assert analyze_rows(a, a).max_row_flops == 0

    def test_nonempty_rows(self, sample_matrix):
        analysis = analyze_rows(sample_matrix, sample_matrix)
        rows = analysis.nonempty_rows()
        assert np.all(analysis.flops[rows] > 0)
        mask = np.ones(sample_matrix.n_rows, dtype=bool)
        mask[rows] = False
        assert np.all(analysis.flops[mask] == 0)

    def test_transfer_bytes(self, sample_matrix):
        analysis = analyze_rows(sample_matrix, sample_matrix)
        # the D2H info transfer of Fig. 3: one int64 per row
        assert analysis.transfer_bytes() == sample_matrix.n_rows * 8
