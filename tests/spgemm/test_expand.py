"""Tests for the product-expansion primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.spgemm.expand import expand_products, num_products
from repro.spgemm.flops import total_flops


def accumulate(n_rows, n_cols, rows, cols, vals):
    dense = np.zeros((n_rows, n_cols))
    np.add.at(dense, (rows, cols), vals)
    return dense


class TestExpand:
    def test_products_accumulate_to_product(self, rng):
        a = random_csr(10, 8, 25, seed=1)
        b = random_csr(8, 12, 30, seed=2)
        rows, cols, vals = expand_products(a, b)
        got = accumulate(a.n_rows, b.n_cols, rows, cols, vals)
        np.testing.assert_allclose(got, a.to_dense() @ b.to_dense(), atol=1e-12)

    def test_count_matches_flops(self, sample_matrix):
        rows, _, _ = expand_products(sample_matrix, sample_matrix)
        assert rows.size == total_flops(sample_matrix, sample_matrix) // 2
        assert rows.size == num_products(sample_matrix, sample_matrix)

    def test_rows_ascending(self, sample_matrix):
        rows, _, _ = expand_products(sample_matrix, sample_matrix)
        assert np.all(np.diff(rows) >= 0)

    def test_row_range(self, rng):
        a = random_csr(12, 10, 30, seed=3)
        b = random_csr(10, 10, 30, seed=4)
        rows, cols, vals = expand_products(a, b, 4, 9)
        assert rows.size == 0 or (rows.min() >= 4 and rows.max() < 9)
        got = accumulate(a.n_rows, b.n_cols, rows, cols, vals)
        expected = np.zeros_like(got)
        expected[4:9] = (a.to_dense() @ b.to_dense())[4:9]
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_batched_ranges_cover_everything(self, rng):
        a = random_csr(15, 15, 50, seed=5)
        total = 0
        for lo in range(0, 15, 4):
            rows, _, _ = expand_products(a, a, lo, min(lo + 4, 15))
            total += rows.size
        assert total == num_products(a, a)

    def test_empty_range(self, sample_matrix):
        rows, cols, vals = expand_products(sample_matrix, sample_matrix, 3, 3)
        assert rows.size == cols.size == vals.size == 0

    def test_empty_matrix(self):
        a = CSRMatrix.empty(5, 5)
        rows, _, _ = expand_products(a, a)
        assert rows.size == 0
        assert num_products(a, a) == 0

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            expand_products(a, a)

    def test_invalid_range(self, sample_matrix):
        with pytest.raises(IndexError):
            expand_products(sample_matrix, sample_matrix, 5, 2)

    def test_deterministic(self, sample_matrix):
        r1 = expand_products(sample_matrix, sample_matrix)
        r2 = expand_products(sample_matrix, sample_matrix)
        for x, y in zip(r1, r2):
            np.testing.assert_array_equal(x, y)


class TestProperties:
    @given(seed_a=st.integers(0, 300), seed_b=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_expansion_equals_dense_product(self, seed_a, seed_b):
        a = random_csr(9, 7, 20, seed=seed_a)
        b = random_csr(7, 11, 22, seed=seed_b)
        rows, cols, vals = expand_products(a, b)
        got = accumulate(a.n_rows, b.n_cols, rows, cols, vals)
        np.testing.assert_allclose(got, a.to_dense() @ b.to_dense(), atol=1e-10)
