"""Tests for the OCEAN-style sampled output-size estimator."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid
from repro.device.kernels import default_cost_model
from repro.device.specs import v100_node
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr, rmat
from repro.spgemm.estimate import (
    ChunkEstimates,
    RowNnzEstimate,
    choose_kernel,
    estimate_chunks,
    estimate_row_nnz,
    hybrid_ratio_from_estimate,
)
from repro.spgemm.flops import flops_per_row, total_flops
from repro.spgemm.twophase import spgemm_twophase


def true_row_nnz(a, b):
    c = spgemm_twophase(a, b).matrix
    return np.diff(c.row_offsets).astype(np.float64)


def _pair(m):
    return m, m


MATRICES = [
    ("rmat", lambda: _pair(rmat(10, 8.0, seed=3))),
    ("banded", lambda: _pair(banded(500, 6, seed=7))),
    ("rect", lambda: (random_csr(200, 150, 1200, seed=11),
                      random_csr(150, 120, 900, seed=12))),
]


class TestEstimatorBounds:
    """The invariants the planner and governor rely on."""

    @pytest.mark.parametrize("name,make", MATRICES, ids=[n for n, _ in MATRICES])
    def test_hi_never_exceeds_hard_ceiling(self, name, make):
        a, b = make()
        est = estimate_row_nnz(a, b, seed=0)
        ceiling = np.minimum(est.ub, est.width)
        assert np.all(est.row_nnz_hi <= ceiling + 1e-9)
        assert np.all(est.row_nnz <= est.row_nnz_hi + 1e-9)
        assert np.all(est.row_nnz_lo <= est.row_nnz + 1e-9)
        assert np.all(est.row_nnz_lo >= 0)

    @pytest.mark.parametrize("name,make", MATRICES, ids=[n for n, _ in MATRICES])
    def test_active_rows_estimated_at_least_one(self, name, make):
        a, b = make()
        est = estimate_row_nnz(a, b, seed=0)
        active = est.ub > 0
        assert np.all(est.row_nnz[active] >= 1.0)
        assert np.all(est.row_nnz_hi[active] >= 1.0)
        assert np.all(est.row_nnz[~active] == 0.0)

    @pytest.mark.parametrize("name,make", MATRICES, ids=[n for n, _ in MATRICES])
    def test_sampled_rows_are_exact(self, name, make):
        a, b = make()
        est = estimate_row_nnz(a, b, seed=0)
        truth = true_row_nnz(a, b)
        s = est.sampled_rows
        assert s.size > 0
        np.testing.assert_allclose(est.row_nnz[s], truth[s])
        np.testing.assert_allclose(est.row_nnz_lo[s], truth[s])
        np.testing.assert_allclose(est.row_nnz_hi[s], truth[s])

    @pytest.mark.parametrize("name,make", MATRICES, ids=[n for n, _ in MATRICES])
    def test_true_total_within_confidence_band(self, name, make):
        a, b = make()
        est = estimate_row_nnz(a, b, seed=0)
        truth = float(true_row_nnz(a, b).sum())
        assert est.total_nnz_lo <= truth <= est.total_nnz_hi
        # and the point estimate is a real improvement over the UB
        ub_total = float(est.ub.sum())
        assert est.total_nnz <= ub_total

    @pytest.mark.parametrize("name,make", MATRICES, ids=[n for n, _ in MATRICES])
    def test_full_sample_is_exact(self, name, make):
        a, b = make()
        est = estimate_row_nnz(a, b, sample_fraction=1.0, seed=0)
        truth = true_row_nnz(a, b)
        np.testing.assert_allclose(est.row_nnz, truth)
        np.testing.assert_allclose(est.row_nnz_lo, truth)
        np.testing.assert_allclose(est.row_nnz_hi, truth)
        assert est.sample_fraction <= 1.0

    def test_deterministic_for_fixed_seed(self):
        a = rmat(9, 8.0, seed=5)
        e1 = estimate_row_nnz(a, a, seed=42)
        e2 = estimate_row_nnz(a, a, seed=42)
        np.testing.assert_array_equal(e1.row_nnz, e2.row_nnz)
        np.testing.assert_array_equal(e1.sampled_rows, e2.sampled_rows)

    def test_empty_matrix(self):
        a = CSRMatrix.empty(8, 8)
        est = estimate_row_nnz(a, a, seed=0)
        assert est.total_nnz == 0.0
        assert est.total_nnz_hi == 0.0
        assert est.sampled_rows.size == 0

    def test_invalid_fraction_rejected(self):
        a = banded(20, 2, seed=0)
        with pytest.raises(ValueError, match="sample_fraction"):
            estimate_row_nnz(a, a, sample_fraction=0.0)
        with pytest.raises(ValueError, match="sample_fraction"):
            estimate_row_nnz(a, a, sample_fraction=1.5)

    def test_ratio_in_unit_interval(self):
        a = rmat(9, 8.0, seed=1)
        est = estimate_row_nnz(a, a, seed=0)
        assert np.all(est.ratio() >= 0.0)
        assert np.all(est.ratio() <= 1.0 + 1e-9)
        assert np.all(est.ratio_hi() <= 1.0 + 1e-9)


class TestChunkEstimates:
    def test_chunk_totals_consistent(self):
        a = rmat(9, 8.0, seed=2)
        est = estimate_row_nnz(a, a, seed=0)
        grid = ChunkGrid.regular(a.n_rows, a.n_cols, 3, 4)
        ce = estimate_chunks(a, a, grid, est)
        # products split exactly; estimates split proportionally
        assert int(ce.products.sum()) == total_flops(a, a) // 2
        assert ce.nnz.sum() <= est.total_nnz + 1e-6
        assert np.all(ce.nnz_hi >= ce.nnz - 1e-9)

    def test_chunk_hi_respects_dense_extent_and_products(self):
        a = rmat(9, 8.0, seed=2)
        est = estimate_row_nnz(a, a, seed=0)
        grid = ChunkGrid.regular(a.n_rows, a.n_cols, 4, 4)
        ce = estimate_chunks(a, a, grid, est)
        rows = np.diff(grid.row_bounds).astype(np.int64)
        cols = np.diff(grid.col_bounds).astype(np.int64)
        dense = rows[:, None] * cols[None, :]
        assert np.all(ce.nnz_hi <= np.minimum(ce.products, dense) + 1e-9)

    def test_estimated_bytes_below_upper_bound_bytes(self):
        """The whole point: estimated footprints undercut UB footprints
        on a compressing matrix."""
        from repro.core.chunks import csr_bytes
        from repro.core.memcheck import chunk_device_bytes

        a = rmat(11, 8.0, seed=3)
        est = estimate_row_nnz(a, a, seed=0)
        grid = ChunkGrid.regular(a.n_rows, a.n_cols, 2, 2)
        ce = estimate_chunks(a, a, grid, est)
        rows = np.diff(grid.row_bounds).astype(np.int64)
        cols = np.diff(grid.col_bounds).astype(np.int64)
        dense = rows[:, None] * cols[None, :]
        ub_nnz = np.minimum(ce.products, dense)
        est_dev = ce.device_bytes()
        est_host = ce.host_bytes()
        cid = 0
        ub_dev = np.empty_like(est_dev)
        ub_host = np.empty_like(est_host)
        for rp in range(grid.num_row_panels):
            for cp in range(grid.num_col_panels):
                ub_dev[cid] = chunk_device_bytes(int(rows[rp]), int(ce.products[rp, cp]))
                ub_host[cid] = csr_bytes(int(rows[rp]), int(ub_nnz[rp, cp]))
                cid += 1
        assert np.all(est_dev <= ub_dev)
        assert np.all(est_host <= ub_host)
        # strict improvement in aggregate on an RMAT output
        assert est_dev.sum() < ub_dev.sum()

    def test_true_chunk_nnz_within_hi_in_aggregate(self):
        a = banded(300, 5, seed=4)
        est = estimate_row_nnz(a, a, seed=0)
        grid = ChunkGrid.regular(a.n_rows, a.n_cols, 3, 3)
        ce = estimate_chunks(a, a, grid, est)
        truth = float(true_row_nnz(a, a).sum())
        assert truth <= ce.nnz_hi.sum() + 1e-6


class TestKernelAndRatioChoice:
    def test_choose_kernel_returns_valid_spec(self):
        a = rmat(9, 8.0, seed=6)
        spec = choose_kernel(estimate_row_nnz(a, a, seed=0))
        assert spec.kind in ("native", "dense", "esc", "auto")

    def test_choose_kernel_prefers_dense_for_dense_output(self, monkeypatch):
        import repro.spgemm.estimate as est_mod

        monkeypatch.setattr(est_mod, "native_available", lambda: False)
        n = 16
        dense_a = random_csr(n, n, n * n, seed=8)  # fully dense input
        est = estimate_row_nnz(dense_a, dense_a, seed=0)
        assert choose_kernel(est).kind == "dense"

    def test_choose_kernel_prefers_esc_for_sparse_output(self, monkeypatch):
        import repro.spgemm.estimate as est_mod

        monkeypatch.setattr(est_mod, "native_available", lambda: False)
        a = banded(400, 2, seed=9)  # narrow band: very sparse output rows
        est = estimate_row_nnz(a, a, seed=0)
        assert choose_kernel(est).kind == "esc"

    def test_hybrid_ratio_in_unit_interval(self):
        a = rmat(9, 8.0, seed=10)
        est = estimate_row_nnz(a, a, seed=0)
        cost = default_cost_model(v100_node())
        ratio = hybrid_ratio_from_estimate(est, total_flops(a, a), cost)
        assert 0.0 <= ratio <= 1.0
