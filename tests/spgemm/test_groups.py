"""Tests for host-side row grouping."""

import numpy as np
import pytest

from repro.spgemm.groups import MIN_BUCKET, RowGrouping, group_rows


class TestGroupRows:
    def test_every_active_row_covered_once(self):
        work = np.array([0, 5, 900, 0, 12, 3, 450])
        grouping = group_rows(work, out_width=1000)
        coverage = grouping.coverage()
        assert np.all(coverage[work > 0] >= 0)
        assert np.all(coverage[work == 0] == -1)

    def test_dense_threshold(self):
        work = np.array([100, 5])
        grouping = group_rows(work, out_width=160, dense_threshold=1 / 16)
        methods = {int(r): g.method for g in grouping for r in g.rows}
        assert methods[0] == "dense"   # 100 >= 160/16 = 10
        assert methods[1] == "hash"    # 5 < 10

    def test_hash_buckets_power_of_two(self):
        work = np.array([3, 17, 250, 63])
        grouping = group_rows(work, out_width=10_000)
        for g in grouping:
            if g.method == "hash":
                assert g.bucket >= MIN_BUCKET
                assert g.bucket & (g.bucket - 1) == 0

    def test_bucket_bounds_work(self):
        work = np.array([100])
        grouping = group_rows(work, out_width=100_000)
        (g,) = list(grouping)
        assert g.bucket >= 100

    def test_rows_with_same_bucket_grouped_together(self):
        work = np.array([17, 20, 30, 31])  # all bucket 32
        grouping = group_rows(work, out_width=10_000)
        hash_groups = [g for g in grouping if g.method == "hash"]
        assert len(hash_groups) == 1
        assert len(hash_groups[0]) == 4

    def test_num_kernels(self):
        work = np.array([0, 0, 0])
        assert group_rows(work, out_width=10).num_kernels() == 0
        work = np.array([5, 5000])
        grouping = group_rows(work, out_width=1000)
        assert grouping.num_kernels() == 2  # one hash, one dense

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            group_rows(np.array([-1]), out_width=10)

    def test_zero_width_output(self):
        grouping = group_rows(np.array([5, 3]), out_width=0)
        # cutoff clamps at 1 product; all rows become dense
        assert all(g.method == "dense" for g in grouping)

    def test_len_and_iter(self):
        grouping = group_rows(np.array([2, 2000]), out_width=1000)
        assert len(grouping) == len(list(grouping))
