"""Tests for semiring SpGEMM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.spgemm.semiring import (
    MAX_MIN,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    spgemm_semiring,
)
from tests.conftest import assert_equals_scipy_product


def dense_semiring_product(a, b, add, mul, zero):
    """Brute-force reference on dense arrays with explicit zero handling."""
    da, db = a.to_dense(), b.to_dense()
    # absent entries are the semiring zero
    da = np.where(da == 0.0, zero, da)
    db = np.where(db == 0.0, zero, db)
    n, k = da.shape
    m = db.shape[1]
    out = np.full((n, m), zero)
    for i in range(n):
        for j in range(m):
            acc = zero
            for x in range(k):
                if da[i, x] != zero and db[x, j] != zero and not (
                    np.isinf(zero) and (np.isinf(da[i, x]) or np.isinf(db[x, j]))
                ):
                    acc = add(acc, mul(da[i, x], db[x, j]))
            out[i, j] = acc
    return out


class TestPlusTimes:
    def test_matches_standard_product(self, sample_matrix):
        c = spgemm_semiring(sample_matrix, sample_matrix, PLUS_TIMES)
        assert_equals_scipy_product(c, sample_matrix, sample_matrix)

    def test_batched(self, sample_matrix):
        full = spgemm_semiring(sample_matrix, sample_matrix)
        tiny = spgemm_semiring(sample_matrix, sample_matrix, batch_products=64)
        assert full == tiny


class TestMinPlus:
    def test_two_hop_shortest_paths(self):
        # path graph 0 -> 1 -> 2 with weights 3, 4
        a = CSRMatrix.from_dense([[0, 3, 0], [0, 0, 4], [0, 0, 0]])
        c = spgemm_semiring(a, a, MIN_PLUS)
        np.testing.assert_array_equal(c.to_dense(), [[0, 0, 7], [0, 0, 0], [0, 0, 0]])

    def test_takes_minimum_over_paths(self):
        # two 2-hop routes from 0 to 2: 1+10 and 5+1
        dense = np.zeros((4, 4))
        dense[0, 1] = 1.0
        dense[1, 2] = 10.0
        dense[0, 3] = 5.0
        dense[3, 2] = 1.0
        a = CSRMatrix.from_dense(dense)
        c = spgemm_semiring(a, a, MIN_PLUS)
        assert c.to_dense()[0, 2] == 6.0

    def test_against_dense_reference(self):
        a = random_csr(8, 8, 20, seed=5)
        c = spgemm_semiring(a, a, MIN_PLUS)
        expected = dense_semiring_product(a, a, min, lambda x, y: x + y, np.inf)
        got = np.where(c.to_dense() == 0.0, np.inf, c.to_dense())
        # positions absent in c are inf in the reference
        mask = expected != np.inf
        np.testing.assert_allclose(got[mask], expected[mask])
        assert np.all(got[~mask] == np.inf)


class TestMaxMin:
    def test_widest_path(self):
        # 0 -> 1 -> 2 widths 5, 2 ; 0 -> 3 -> 2 widths 3, 3
        dense = np.zeros((4, 4))
        dense[0, 1], dense[1, 2] = 5.0, 2.0
        dense[0, 3], dense[3, 2] = 3.0, 3.0
        a = CSRMatrix.from_dense(dense)
        c = spgemm_semiring(a, a, MAX_MIN)
        assert c.to_dense()[0, 2] == 3.0  # the max over path minima


class TestOrAnd:
    def test_two_hop_reachability(self):
        a = CSRMatrix.from_dense([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        c = spgemm_semiring(a, a, OR_AND)
        np.testing.assert_array_equal(
            c.to_dense(), [[0, 0, 1], [1, 0, 0], [0, 1, 0]]
        )

    def test_output_is_boolean(self, sample_matrix):
        c = spgemm_semiring(sample_matrix, sample_matrix, OR_AND)
        assert set(np.unique(c.data)) <= {1.0}


class TestEdgeCases:
    def test_empty(self):
        a = CSRMatrix.empty(4, 4)
        for sr in (PLUS_TIMES, MIN_PLUS, OR_AND):
            assert spgemm_semiring(a, a, sr).nnz == 0

    def test_dimension_mismatch(self):
        a = random_csr(3, 4, 5, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            spgemm_semiring(a, a)

    def test_annihilated_products_pruned(self):
        # values that multiply to the semiring zero must not appear
        a = CSRMatrix(1, 2, [0, 1], [1], [2.0])
        b = CSRMatrix(2, 1, [0, 0, 1], [0], [-2.0])
        c = spgemm_semiring(a, b, Semiring("sum_plus", np.add, np.add, 0.0))
        assert c.nnz == 0  # 2 + (-2) == additive zero -> pruned

    def test_repr(self):
        assert "min_plus" in repr(MIN_PLUS)


class TestProperties:
    @given(seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_plus_times_always_matches_scipy(self, seed):
        a = random_csr(10, 10, 25, seed=seed)
        c = spgemm_semiring(a, a)
        assert_equals_scipy_product(c, a, a)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_or_and_matches_boolean_dense(self, seed):
        a = random_csr(9, 9, 20, seed=seed)
        c = spgemm_semiring(a, a, OR_AND)
        expected = ((a.to_dense() != 0) @ (a.to_dense() != 0)) > 0
        np.testing.assert_array_equal(c.to_dense() != 0, expected)
