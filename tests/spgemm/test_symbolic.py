"""Tests for the symbolic phase and row batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.spgemm.groups import group_rows
from repro.spgemm.reference import spgemm_scipy
from repro.spgemm.symbolic import (
    row_batches,
    symbolic_grouped,
    symbolic_row_nnz,
    symbolic_sort,
)
from repro.spgemm.upperbound import row_upper_bound


def expected_row_nnz(a, b):
    return spgemm_scipy(a, b).row_nnz()


class TestSymbolicSort:
    def test_matches_scipy(self, sample_matrix):
        np.testing.assert_array_equal(
            symbolic_sort(sample_matrix, sample_matrix),
            expected_row_nnz(sample_matrix, sample_matrix),
        )

    def test_batched_matches_unbatched(self, sample_matrix):
        full = symbolic_sort(sample_matrix, sample_matrix)
        tiny = symbolic_sort(sample_matrix, sample_matrix, batch_products=64)
        np.testing.assert_array_equal(full, tiny)

    def test_empty(self):
        a = CSRMatrix.empty(5, 5)
        np.testing.assert_array_equal(symbolic_sort(a, a), np.zeros(5))


class TestSymbolicGrouped:
    def test_matches_scipy(self, sample_matrix):
        a = sample_matrix
        work = row_upper_bound(a, a)
        grouping = group_rows(work, a.n_cols)
        np.testing.assert_array_equal(
            symbolic_grouped(a, a, grouping, work), expected_row_nnz(a, a)
        )

    def test_rectangular(self):
        a = random_csr(12, 8, 30, seed=1)
        b = random_csr(8, 20, 25, seed=2)
        work = row_upper_bound(a, b)
        grouping = group_rows(work, b.n_cols)
        np.testing.assert_array_equal(
            symbolic_grouped(a, b, grouping, work), expected_row_nnz(a, b)
        )


class TestDispatcher:
    @pytest.mark.parametrize("method", ["sort", "grouped"])
    def test_methods_agree(self, sample_matrix, method):
        np.testing.assert_array_equal(
            symbolic_row_nnz(sample_matrix, sample_matrix, method=method),
            expected_row_nnz(sample_matrix, sample_matrix),
        )

    def test_unknown_method(self, sample_matrix):
        with pytest.raises(ValueError, match="unknown symbolic method"):
            symbolic_row_nnz(sample_matrix, sample_matrix, method="bogus")


class TestRowBatches:
    def test_respects_budget(self):
        ppr = np.array([5, 5, 5, 5, 5])
        batches = list(row_batches(ppr, 10))
        for lo, hi in batches:
            assert ppr[lo:hi].sum() <= 10

    def test_covers_all_rows(self):
        ppr = np.array([3, 9, 1, 4, 12, 2])
        batches = list(row_batches(ppr, 10))
        covered = []
        for lo, hi in batches:
            covered.extend(range(lo, hi))
        assert covered == list(range(6))

    def test_oversized_row_gets_own_batch(self):
        ppr = np.array([2, 100, 3])
        batches = list(row_batches(ppr, 10))
        assert (1, 2) in batches

    def test_zero_rows(self):
        assert list(row_batches(np.array([], dtype=np.int64), 10)) == []

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            list(row_batches(np.array([1]), 0))

    @given(
        ppr=st.lists(st.integers(0, 30), min_size=1, max_size=40),
        budget=st.integers(1, 100),
    )
    @settings(max_examples=80, deadline=None)
    def test_batches_partition_rows(self, ppr, budget):
        ppr = np.asarray(ppr, dtype=np.int64)
        batches = list(row_batches(ppr, budget))
        # contiguous, ordered, disjoint, covering
        assert batches[0][0] == 0
        assert batches[-1][1] == ppr.size
        for (l0, h0), (l1, h1) in zip(batches, batches[1:]):
            assert h0 == l1
        # budget respected unless a single row exceeds it
        for lo, hi in batches:
            if hi - lo > 1:
                assert ppr[lo:hi].sum() <= budget or ppr[lo:hi-1].sum() == 0
