"""Tests for the full spECK-style two-phase kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr, rmat
from repro.spgemm.flops import total_flops
from repro.spgemm.twophase import spgemm_twophase
from tests.conftest import assert_equals_scipy_product


class TestCorrectness:
    def test_matches_scipy(self, sample_matrix):
        r = spgemm_twophase(sample_matrix, sample_matrix)
        assert_equals_scipy_product(r.matrix, sample_matrix, sample_matrix)

    def test_rectangular(self):
        a = random_csr(20, 15, 60, seed=31)
        b = random_csr(15, 25, 50, seed=32)
        r = spgemm_twophase(a, b)
        assert_equals_scipy_product(r.matrix, a, b)

    def test_identity(self):
        i = CSRMatrix.identity(20)
        r = spgemm_twophase(i, i)
        assert r.matrix == i

    def test_empty(self):
        a = CSRMatrix.empty(6, 6)
        r = spgemm_twophase(a, a)
        assert r.matrix.nnz == 0
        assert r.stats.flops == 0

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            spgemm_twophase(a, a)


class TestStats:
    @pytest.fixture(scope="class")
    def result(self):
        a = rmat(9, 6.0, seed=41)
        return a, spgemm_twophase(a, a)

    def test_flops_consistent(self, result):
        a, r = result
        assert r.stats.flops == total_flops(a, a)

    def test_nnz_out_matches_matrix(self, result):
        _, r = result
        assert r.stats.nnz_out == r.matrix.nnz

    def test_transfer_byte_fields(self, result):
        a, r = result
        assert r.stats.analysis_bytes == a.n_rows * 8
        assert r.stats.symbolic_bytes == a.n_rows * 8
        assert r.stats.output_bytes == r.matrix.nbytes()

    def test_kernel_counts_match_groupings(self, result):
        _, r = result
        assert r.stats.symbolic_kernels == r.symbolic_grouping.num_kernels()
        assert r.stats.numeric_kernels == r.numeric_grouping.num_kernels()

    def test_input_nnz(self, result):
        a, r = result
        assert r.stats.input_nnz == 2 * a.nnz

    def test_compression_ratio(self, result):
        _, r = result
        assert r.stats.compression_ratio == pytest.approx(
            r.stats.flops / r.stats.nnz_out
        )
        assert r.stats.compression_ratio >= 2.0

    def test_groupings_cover_productive_rows(self, result):
        a, r = result
        flops_rows = np.flatnonzero(r.analysis.flops > 0)
        coverage = r.symbolic_grouping.coverage()
        assert np.all(coverage[flops_rows] >= 0)


class TestFamilies:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: banded(150, 4, seed=1, fill=0.6),
            lambda: rmat(8, 8.0, seed=2),
            lambda: random_csr(120, 120, 700, seed=3),
        ],
        ids=["banded", "rmat", "uniform"],
    )
    def test_product_correct(self, make):
        a = make()
        r = spgemm_twophase(a, a)
        assert_equals_scipy_product(r.matrix, a, a)


class TestProperties:
    @given(seed=st.integers(0, 500), n=st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_random_products_correct(self, seed, n):
        a = random_csr(n, n, 4 * n, seed=seed)
        r = spgemm_twophase(a, a)
        assert_equals_scipy_product(r.matrix, a, a)
        assert r.stats.flops == total_flops(a, a)
