"""Tests for the hash and dense row accumulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.spgemm.accumulators import (
    _table_capacities,
    dense_accumulate_rows,
    hash_accumulate_rows,
)
from repro.spgemm.upperbound import row_upper_bound


def reference_rows(a, b, rows):
    """Expected (counts, cols, vals) from the dense product."""
    dense = a.to_dense() @ b.to_dense()
    counts, cols, vals = [], [], []
    for r in rows:
        nz = np.nonzero(dense[r])[0]
        counts.append(len(nz))
        cols.extend(nz.tolist())
        vals.extend(dense[r, nz].tolist())
    return np.asarray(counts), np.asarray(cols), np.asarray(vals)


@pytest.fixture
def ab():
    a = random_csr(14, 10, 40, seed=11)
    b = random_csr(10, 12, 35, seed=12)
    return a, b


class TestHashAccumulator:
    def test_matches_dense_product(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        work = row_upper_bound(a, b)
        res = hash_accumulate_rows(a, b, rows, work)
        counts, cols, vals = reference_rows(a, b, rows)
        np.testing.assert_array_equal(res.counts, counts)
        np.testing.assert_array_equal(res.col_ids, cols)
        np.testing.assert_allclose(res.values, vals, atol=1e-12)

    def test_subset_of_rows(self, ab):
        a, b = ab
        rows = np.array([1, 5, 9])
        work = row_upper_bound(a, b)[rows]
        res = hash_accumulate_rows(a, b, rows, work)
        counts, cols, vals = reference_rows(a, b, rows)
        np.testing.assert_array_equal(res.counts, counts)
        np.testing.assert_allclose(res.values, vals, atol=1e-12)

    def test_columns_sorted_within_rows(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        res = hash_accumulate_rows(a, b, rows, row_upper_bound(a, b))
        offsets = res.offsets()
        for i in range(rows.size):
            seg = res.col_ids[offsets[i] : offsets[i + 1]]
            assert np.all(np.diff(seg) > 0)

    def test_symbolic_mode(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        res = hash_accumulate_rows(a, b, rows, row_upper_bound(a, b), with_values=False)
        assert res.values is None
        counts, _, _ = reference_rows(a, b, rows)
        np.testing.assert_array_equal(res.counts, counts)

    def test_empty_rows_selection(self, ab):
        a, b = ab
        res = hash_accumulate_rows(a, b, np.array([], dtype=np.int64), np.array([]))
        assert res.nnz == 0

    def test_rows_without_products(self):
        a = CSRMatrix.empty(4, 4)
        b = CSRMatrix.identity(4)
        res = hash_accumulate_rows(a, b, np.arange(4), np.zeros(4, dtype=np.int64))
        np.testing.assert_array_equal(res.counts, np.zeros(4))

    def test_heavy_duplicates(self):
        # all products collide on one output column
        a = CSRMatrix.from_dense(np.ones((1, 30)))
        b = CSRMatrix.from_dense(np.ones((30, 1)))
        res = hash_accumulate_rows(a, b, np.array([0]), np.array([30]))
        np.testing.assert_array_equal(res.counts, [1])
        assert res.values[0] == pytest.approx(30.0)

    def test_offsets(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        res = hash_accumulate_rows(a, b, rows, row_upper_bound(a, b))
        off = res.offsets()
        assert off[0] == 0 and off[-1] == res.nnz


class TestTableCapacities:
    def test_powers_of_two(self):
        caps = _table_capacities(np.array([1, 3, 9, 100]))
        assert np.all((caps & (caps - 1)) == 0)

    def test_at_least_double_work(self):
        work = np.array([5, 17, 33])
        assert np.all(_table_capacities(work) >= 2 * work)

    def test_minimum_size(self):
        assert np.all(_table_capacities(np.array([0, 1])) >= 16)


class TestDenseAccumulator:
    def test_matches_dense_product(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        res = dense_accumulate_rows(a, b, rows)
        counts, cols, vals = reference_rows(a, b, rows)
        np.testing.assert_array_equal(res.counts, counts)
        np.testing.assert_array_equal(res.col_ids, cols)
        np.testing.assert_allclose(res.values, vals, atol=1e-12)

    def test_batching_invariant(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        full = dense_accumulate_rows(a, b, rows, batch_elems=1 << 22)
        tiny = dense_accumulate_rows(a, b, rows, batch_elems=b.n_cols * 2)
        np.testing.assert_array_equal(full.counts, tiny.counts)
        np.testing.assert_array_equal(full.col_ids, tiny.col_ids)
        np.testing.assert_allclose(full.values, tiny.values)

    def test_symbolic_mode(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        res = dense_accumulate_rows(a, b, rows, with_values=False)
        assert res.values is None
        counts, _, _ = reference_rows(a, b, rows)
        np.testing.assert_array_equal(res.counts, counts)

    def test_agrees_with_hash(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        dense = dense_accumulate_rows(a, b, rows)
        hashed = hash_accumulate_rows(a, b, rows, row_upper_bound(a, b))
        np.testing.assert_array_equal(dense.counts, hashed.counts)
        np.testing.assert_array_equal(dense.col_ids, hashed.col_ids)
        np.testing.assert_allclose(dense.values, hashed.values, atol=1e-12)

    def test_zero_width_output(self):
        a = random_csr(4, 3, 6, seed=1)
        b = CSRMatrix.empty(3, 0)
        res = dense_accumulate_rows(a, b, np.arange(4))
        assert res.nnz == 0

    def test_empty_selection(self, ab):
        a, b = ab
        res = dense_accumulate_rows(a, b, np.array([], dtype=np.int64))
        assert res.nnz == 0


class TestProperties:
    @given(seed=st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_hash_and_dense_always_agree(self, seed):
        a = random_csr(8, 9, 20, seed=seed)
        b = random_csr(9, 7, 18, seed=seed + 1000)
        rows = np.arange(a.n_rows)
        dense = dense_accumulate_rows(a, b, rows)
        hashed = hash_accumulate_rows(a, b, rows, row_upper_bound(a, b))
        np.testing.assert_array_equal(dense.counts, hashed.counts)
        np.testing.assert_array_equal(dense.col_ids, hashed.col_ids)
        np.testing.assert_allclose(dense.values, hashed.values, atol=1e-10)


class TestFailureInjection:
    def test_undersized_tables_overflow(self):
        """Lying about the per-row work (smaller than the true distinct
        column count) must be detected, not silently corrupt the output."""
        a = CSRMatrix.from_dense(np.ones((1, 40)))
        b = CSRMatrix.from_dense(np.eye(40))  # row 0 of C has 40 distinct cols
        with pytest.raises(RuntimeError, match="overflow"):
            hash_accumulate_rows(a, b, np.array([0]), np.array([1]))


class TestHashBatching:
    """Tiling the product expansion must not change a single bit: row
    batches never split a row, and per-row hash tables are disjoint."""

    def test_numeric_bit_identical_across_batch_sizes(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        work = row_upper_bound(a, b)
        full = hash_accumulate_rows(a, b, rows, work, batch_products=1 << 30)
        tiny = hash_accumulate_rows(a, b, rows, work, batch_products=1)
        np.testing.assert_array_equal(full.counts, tiny.counts)
        np.testing.assert_array_equal(full.col_ids, tiny.col_ids)
        np.testing.assert_array_equal(full.values, tiny.values)  # bitwise

    def test_symbolic_bit_identical_across_batch_sizes(self, ab):
        a, b = ab
        rows = np.arange(a.n_rows)
        work = row_upper_bound(a, b)
        full = hash_accumulate_rows(
            a, b, rows, work, with_values=False, batch_products=1 << 30
        )
        tiny = hash_accumulate_rows(
            a, b, rows, work, with_values=False, batch_products=7
        )
        np.testing.assert_array_equal(full.counts, tiny.counts)
        np.testing.assert_array_equal(full.col_ids, tiny.col_ids)

    def test_empty_row_group_with_tiny_batches(self):
        a = CSRMatrix.empty(5, 5)
        b = CSRMatrix.identity(5)
        res = hash_accumulate_rows(
            a, b, np.arange(5), np.zeros(5, dtype=np.int64), batch_products=1
        )
        np.testing.assert_array_equal(res.counts, np.zeros(5))
        assert res.nnz == 0

    def test_overflow_raises_under_batching(self):
        a = CSRMatrix.from_dense(np.ones((1, 40)))
        b = CSRMatrix.from_dense(np.eye(40))
        with pytest.raises(RuntimeError, match="overflow"):
            hash_accumulate_rows(
                a, b, np.array([0]), np.array([1]), batch_products=8
            )

    def test_slice_cache_is_used_and_harmless(self, ab):
        from repro.sparse.ops import RowSliceCache

        a, b = ab
        rows = np.arange(a.n_rows)
        work = row_upper_bound(a, b)
        plain = hash_accumulate_rows(a, b, rows, work)
        cache = RowSliceCache(a)
        cached = hash_accumulate_rows(a, b, rows, work, slice_cache=cache)
        np.testing.assert_array_equal(plain.counts, cached.counts)
        np.testing.assert_array_equal(plain.col_ids, cached.col_ids)
        np.testing.assert_array_equal(plain.values, cached.values)
        assert cache.misses >= 1
        # second pass over the same rows is served from the cache
        hash_accumulate_rows(a, b, rows, work, slice_cache=cache)
        assert cache.hits >= 1


class TestTwoPhaseParallelIdentity:
    def test_serial_vs_workers4_symbolic_and_numeric(self):
        """End-to-end: the same chunked product, serial and threaded, must
        agree bitwise in both phases' outputs."""
        from repro.core.chunks import ChunkGrid
        from repro.core.parallel import execute_chunk_grid
        from repro.sparse.generators import rmat

        a = rmat(9, 6.0, seed=21)
        grid = ChunkGrid.regular(a.n_rows, a.n_cols, 2, 3)
        serial_profile, serial_out = execute_chunk_grid(
            a, a, grid, workers=1, keep_outputs=True
        )
        par_profile, par_out = execute_chunk_grid(
            a, a, grid, workers=4, keep_outputs=True
        )
        for rp in range(2):
            for cp in range(3):
                s, p = serial_out[rp][cp], par_out[rp][cp]
                # symbolic phase decides the structure...
                np.testing.assert_array_equal(s.row_offsets, p.row_offsets)
                np.testing.assert_array_equal(s.col_ids, p.col_ids)
                # ...the numeric phase the values; both must be bitwise equal
                np.testing.assert_array_equal(s.data, p.data)
        for s, p in zip(serial_profile.chunks, par_profile.chunks):
            assert (s.symbolic_kernels, s.numeric_kernels) == (
                p.symbolic_kernels,
                p.numeric_kernels,
            )
