"""Tests for flop counting."""

import numpy as np
import pytest

from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr
from repro.spgemm.flops import compression_ratio, flops_per_row, total_flops


def brute_force_flops(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    out = np.zeros(a.n_rows, dtype=np.int64)
    for r, cols, _ in a.iter_rows():
        for k in cols:
            out[r] += b.row_nnz()[k]
    return 2 * out


class TestFlopsPerRow:
    def test_matches_brute_force(self, sample_matrix):
        np.testing.assert_array_equal(
            flops_per_row(sample_matrix, sample_matrix),
            brute_force_flops(sample_matrix, sample_matrix),
        )

    def test_rectangular(self):
        a = random_csr(8, 12, 20, seed=1)
        b = random_csr(12, 6, 25, seed=2)
        np.testing.assert_array_equal(flops_per_row(a, b), brute_force_flops(a, b))

    def test_empty_a(self):
        a = CSRMatrix.empty(4, 4)
        b = random_csr(4, 4, 8, seed=3)
        np.testing.assert_array_equal(flops_per_row(a, b), np.zeros(4))

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 5, seed=1)
        b = random_csr(4, 5, 5, seed=2)
        with pytest.raises(ValueError, match="mismatch"):
            flops_per_row(a, b)

    def test_multiply_add_counts_two(self):
        # single product: A[0,0] * B[0,0] -> 2 flops
        a = CSRMatrix.from_dense([[1.0]])
        assert flops_per_row(a, a)[0] == 2


class TestTotalFlops:
    def test_equals_row_sum(self, sample_matrix):
        assert total_flops(sample_matrix, sample_matrix) == int(
            flops_per_row(sample_matrix, sample_matrix).sum()
        )

    def test_empty(self):
        a = CSRMatrix.empty(3, 3)
        assert total_flops(a, a) == 0

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 5, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            total_flops(a, a)


class TestCompressionRatio:
    def test_basic(self):
        assert compression_ratio(100, 25) == 4.0

    def test_empty_output(self):
        assert compression_ratio(10, 0) == 0.0

    def test_lower_bound_is_two(self):
        # every product distinct -> nnz_out = flops / 2 -> ratio 2
        assert compression_ratio(10, 5) == 2.0
