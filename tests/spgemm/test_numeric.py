"""Tests for the numeric phase."""

import numpy as np
import pytest

from repro.sparse.generators import random_csr
from repro.spgemm.groups import group_rows
from repro.spgemm.numeric import numeric_grouped, numeric_phase
from repro.spgemm.symbolic import symbolic_row_nnz
from tests.conftest import assert_equals_scipy_product


class TestNumericPhase:
    def test_matches_scipy(self, sample_matrix):
        a = sample_matrix
        row_nnz = symbolic_row_nnz(a, a)
        c = numeric_phase(a, a, row_nnz)
        assert_equals_scipy_product(c, a, a)

    def test_rectangular(self):
        a = random_csr(10, 14, 35, seed=21)
        b = random_csr(14, 9, 30, seed=22)
        c = numeric_phase(a, b, symbolic_row_nnz(a, b))
        assert_equals_scipy_product(c, a, b)

    def test_output_layout_fixed_by_counts(self, sample_matrix):
        a = sample_matrix
        row_nnz = symbolic_row_nnz(a, a)
        c = numeric_phase(a, a, row_nnz)
        np.testing.assert_array_equal(np.diff(c.row_offsets), row_nnz)

    def test_grouping_order_irrelevant(self, sample_matrix):
        a = sample_matrix
        row_nnz = symbolic_row_nnz(a, a)
        default = numeric_phase(a, a, row_nnz)
        # force everything through the dense path
        all_dense = group_rows(row_nnz, a.n_cols, dense_threshold=0.0)
        via_dense = numeric_grouped(a, a, row_nnz, all_dense)
        assert default == via_dense

    def test_all_hash_path(self, sample_matrix):
        a = sample_matrix
        row_nnz = symbolic_row_nnz(a, a)
        all_hash = group_rows(row_nnz, a.n_cols, dense_threshold=2.0)
        assert all(g.method == "hash" for g in all_hash)
        via_hash = numeric_grouped(a, a, row_nnz, all_hash)
        assert via_hash == numeric_phase(a, a, row_nnz)

    def test_bad_counts_length(self, sample_matrix):
        with pytest.raises(ValueError, match="length"):
            numeric_phase(sample_matrix, sample_matrix, np.zeros(3, dtype=np.int64))

    def test_inconsistent_counts_detected(self, sample_matrix):
        a = sample_matrix
        row_nnz = symbolic_row_nnz(a, a).copy()
        nonzero = np.flatnonzero(row_nnz)
        row_nnz[nonzero[0]] += 1  # lie about one row
        with pytest.raises(RuntimeError, match="disagrees"):
            numeric_phase(a, a, row_nnz)
