"""Golden equivalence suite for the kernel-dispatch interface.

Pins the cross-kernel contract documented in docs/KERNELS.md:

* every kernel produces the scipy product on a battery of adversarial
  inputs (empty rows, fully dense rows, single-column chunks,
  duplicate-heavy expansions, rectangular shapes);
* ``hash`` / ``dense`` / ``esc`` / ``native`` / ``auto`` combine
  duplicate products in the same ascending-``k`` expansion order and are
  therefore **bit-identical** to each other for arbitrary float inputs;
* ``merge`` combines in pairwise-tree order — bit-identical to the rest
  on integer-valued data (where float addition is exact), ``allclose``
  otherwise;
* the contract survives the execution engine: every backend x kernel
  combination of :func:`execute_chunk_grid` matches the serial ``hash``
  run bitwise, including under injected chaos faults with retries.
"""

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid
from repro.core.executor import RetryPolicy, execute_chunk_grid
from repro.core.executor.faults import FaultInjector
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import banded, random_csr, rmat
from repro.spgemm.kernels import (
    FUSED_METHODS,
    KERNEL_KINDS,
    KernelSpec,
    plan_groups,
    resolve_kernel,
)
from repro.spgemm.native import native_available, native_build_error
from repro.spgemm.twophase import spgemm_twophase
from tests.conftest import assert_equals_scipy_product

needs_native = pytest.mark.skipif(
    not native_available(),
    reason=f"native kernel unavailable: {native_build_error()}",
)

#: every concrete kernel (auto exercised separately), native gated
ALL_KERNELS = [
    "hash",
    "dense",
    "esc",
    "merge",
    pytest.param("native", marks=needs_native),
]

#: the expansion-order summation family: mutually bit-identical on floats
EXACT_KERNELS = [
    "hash",
    "dense",
    "esc",
    "auto",
    pytest.param("native", marks=needs_native),
]


def _with_integer_values(m: CSRMatrix) -> CSRMatrix:
    """Same pattern, small-integer values: float addition is exact, so
    *every* summation order gives bitwise equal results."""
    data = np.floor(m.data * 7.0) - 3.0
    data[data == 0.0] = 1.0
    return CSRMatrix(m.n_rows, m.n_cols, m.row_offsets, m.col_ids, data)


def _empty_rows_matrix() -> CSRMatrix:
    """Half the rows (and the matching B rows) are entirely empty."""
    m = random_csr(40, 40, 160, seed=101)
    dense = m.to_dense()
    dense[::2, :] = 0.0
    dense[:, 1::3] = 0.0
    return CSRMatrix.from_dense(dense)


def _dense_rows_matrix() -> CSRMatrix:
    """A few fully dense rows on top of a sparse background: forces the
    dense-row bucket and the widest possible accumulator rows."""
    m = random_csr(30, 30, 90, seed=102)
    dense = m.to_dense()
    dense[3, :] = 1.25
    dense[17, :] = -0.5
    return CSRMatrix.from_dense(dense)


def _duplicate_heavy() -> CSRMatrix:
    """Tall expansion, tiny column space: nearly every intermediate
    product is a duplicate, stressing combination order."""
    return random_csr(25, 6, 300, seed=103)


ADVERSARIAL = {
    "empty_rows": lambda: (_empty_rows_matrix(),) * 2,
    "dense_rows": lambda: (_dense_rows_matrix(),) * 2,
    "duplicate_heavy": lambda: (_duplicate_heavy(),
                                random_csr(6, 25, 60, seed=104)),
    "single_column": lambda: (random_csr(20, 15, 70, seed=105),
                              random_csr(15, 1, 10, seed=106)),
    "single_row_b": lambda: (random_csr(12, 1, 9, seed=107),
                             random_csr(1, 18, 12, seed=108)),
    "rectangular": lambda: (random_csr(18, 33, 120, seed=109),
                            random_csr(33, 9, 80, seed=110)),
    "all_empty": lambda: (CSRMatrix.empty(8, 8),) * 2,
    "identity": lambda: (CSRMatrix.identity(16),) * 2,
    "rmat": lambda: (rmat(7, 6.0, seed=111),) * 2,
    "banded": lambda: (banded(90, 5, seed=112, fill=0.7),) * 2,
}


@pytest.fixture(params=sorted(ADVERSARIAL), name="ab")
def _ab(request):
    return ADVERSARIAL[request.param]()


class TestGoldenVsScipy:
    @pytest.mark.parametrize("kernel", ALL_KERNELS + ["auto"])
    def test_matches_scipy(self, ab, kernel):
        a, b = ab
        r = spgemm_twophase(a, b, kernel=kernel)
        assert_equals_scipy_product(r.matrix, a, b)

    @pytest.mark.parametrize("kernel", ALL_KERNELS + ["auto"])
    def test_integer_data_bit_identical_to_scipy(self, ab, kernel):
        """On integer-valued data float addition is exact, so every
        kernel — merge included — must match scipy *bitwise*."""
        from repro.sparse.ops import drop_explicit_zeros
        from repro.spgemm.reference import spgemm_scipy

        a, b = ab
        a, b = _with_integer_values(a), _with_integer_values(b)
        # ours keeps structural entries that cancelled to exact 0.0;
        # scipy prunes them — compare after the same pruning
        got = drop_explicit_zeros(spgemm_twophase(a, b, kernel=kernel).matrix)
        expected = spgemm_scipy(a, b)
        np.testing.assert_array_equal(got.row_offsets, expected.row_offsets)
        np.testing.assert_array_equal(got.col_ids, expected.col_ids)
        np.testing.assert_array_equal(got.data, expected.data)


class TestCrossKernelBitIdentity:
    def test_exact_family_bit_identical_on_floats(self, ab):
        """hash / dense / esc / native / auto share expansion-order
        summation: byte-identical products for arbitrary floats."""
        a, b = ab
        ref = spgemm_twophase(a, b, kernel="hash").matrix
        kinds = ["dense", "esc", "auto"]
        if native_available():
            kinds.append("native")
        for kind in kinds:
            got = spgemm_twophase(a, b, kernel=kind).matrix
            np.testing.assert_array_equal(ref.row_offsets, got.row_offsets,
                                          err_msg=kind)
            np.testing.assert_array_equal(ref.col_ids, got.col_ids,
                                          err_msg=kind)
            np.testing.assert_array_equal(ref.data, got.data, err_msg=kind)

    def test_merge_allclose_on_floats(self, ab):
        a, b = ab
        ref = spgemm_twophase(a, b, kernel="hash").matrix
        got = spgemm_twophase(a, b, kernel="merge").matrix
        np.testing.assert_array_equal(ref.row_offsets, got.row_offsets)
        np.testing.assert_array_equal(ref.col_ids, got.col_ids)
        np.testing.assert_allclose(ref.data, got.data,
                                   rtol=1e-10, atol=1e-12)

    def test_merge_bit_identical_on_integers(self, ab):
        a, b = ab
        a, b = _with_integer_values(a), _with_integer_values(b)
        ref = spgemm_twophase(a, b, kernel="hash").matrix
        got = spgemm_twophase(a, b, kernel="merge").matrix
        np.testing.assert_array_equal(ref.data, got.data)


class TestKernelSpec:
    def test_defaults(self):
        spec = KernelSpec()
        assert spec.kind == "auto"
        assert spec.dense_threshold > 0

    @pytest.mark.parametrize("kind", list(KERNEL_KINDS))
    def test_encode_parse_roundtrip(self, kind):
        spec = KernelSpec(kind=kind, dense_threshold=0.125)
        assert KernelSpec.parse(spec.encode()) == spec

    def test_encode_default_threshold_is_bare_kind(self):
        assert KernelSpec(kind="esc").encode() == "esc"
        assert KernelSpec.parse("esc") == KernelSpec(kind="esc")

    def test_resolve(self):
        assert resolve_kernel(None) == KernelSpec()
        assert resolve_kernel("merge") == KernelSpec(kind="merge")
        spec = KernelSpec(kind="hash", dense_threshold=0.25)
        assert resolve_kernel(spec) is spec
        assert resolve_kernel(spec.encode()) == spec

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            KernelSpec(kind="gpu")
        with pytest.raises(ValueError):
            KernelSpec.parse("hash@nope")

    def test_stats_record_kernel(self):
        a = rmat(6, 4.0, seed=5)
        r = spgemm_twophase(a, a, kernel="esc")
        assert r.stats.kernel == "esc"
        assert r.stats.symbolic_seconds >= 0
        assert r.stats.numeric_seconds >= 0


class TestPlanGroups:
    def _work(self, n=20, width=64):
        rng = np.random.default_rng(9)
        return rng.integers(0, 40, size=n).astype(np.int64), width

    def test_single_group_methods(self):
        work, width = self._work()
        for kind in ("esc", "merge"):
            g = plan_groups(work, width, KernelSpec(kind=kind))
            methods = {grp.method for grp in g.groups}
            assert methods <= {kind}
            covered = np.concatenate([grp.rows for grp in g.groups])
            np.testing.assert_array_equal(
                np.sort(covered), np.flatnonzero(work > 0))

    def test_dense_kind_uses_dense_only(self):
        work, width = self._work()
        g = plan_groups(work, width, KernelSpec(kind="dense"))
        assert {grp.method for grp in g.groups} == {"dense"}

    def test_hash_kind_splits_by_threshold(self):
        work = np.array([1, 1, 1000, 1000], dtype=np.int64)
        g = plan_groups(work, 64, KernelSpec(kind="hash",
                                             dense_threshold=0.5))
        assert {grp.method for grp in g.groups} == {"hash", "dense"}

    def test_fused_methods_are_fused(self):
        assert FUSED_METHODS >= {"esc", "merge"}
        assert "hash" not in FUSED_METHODS
        assert "dense" not in FUSED_METHODS

    @needs_native
    def test_auto_prefers_native(self):
        work, width = self._work()
        g = plan_groups(work, width, KernelSpec(kind="auto"))
        assert {grp.method for grp in g.groups} == {"native"}

    def test_native_unavailable_raises(self, monkeypatch):
        from repro.spgemm import kernels as K

        monkeypatch.setattr(K, "native_available", lambda: False)
        work, width = self._work()
        with pytest.raises(RuntimeError, match="native"):
            plan_groups(work, width, KernelSpec(kind="native"))
        # auto degrades to the numpy kernels instead of raising
        g = plan_groups(work, width, KernelSpec(kind="auto"))
        assert {grp.method for grp in g.groups} <= {"dense", "esc"}


class TestEngineKernelEquivalence:
    """The serial hash product is the golden answer; every backend x
    kernel combination must reproduce it bitwise (merge included — the
    engine runs whole row groups per chunk, so tree order is a function
    of the chunking, which is identical across backends)."""

    @pytest.fixture(scope="class")
    def setup(self):
        a = rmat(8, 6.0, seed=77)
        grid = ChunkGrid.regular(a.n_rows, a.n_cols, 2, 2)
        _, golden = execute_chunk_grid(a, a, grid, workers=1,
                                       keep_outputs=True, kernel="hash")
        return a, grid, golden

    def _assert_matches(self, golden, out, *, exact=True):
        for rp, row in enumerate(golden):
            for cp, g in enumerate(row):
                o = out[rp][cp]
                np.testing.assert_array_equal(g.row_offsets, o.row_offsets)
                np.testing.assert_array_equal(g.col_ids, o.col_ids)
                if exact:
                    np.testing.assert_array_equal(g.data, o.data)
                else:
                    np.testing.assert_allclose(g.data, o.data,
                                               rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_backend_kernel_grid(self, setup, backend, kernel):
        a, grid, golden = setup
        workers = 1 if backend == "serial" else 2
        profile, out = execute_chunk_grid(
            a, a, grid, workers=workers, backend=backend,
            keep_outputs=True, kernel=kernel,
        )
        self._assert_matches(golden, out, exact=kernel != "merge")
        assert all(c.kernel == kernel for c in profile.chunks)

    @pytest.mark.parametrize("kernel", ["esc", "merge"])
    def test_chaos_faults_with_retry(self, setup, kernel):
        """An injected numeric-stage fault on the first attempt of chunk
        1 must be retried away without changing any output bit."""
        a, grid, golden = setup
        _, out = execute_chunk_grid(
            a, a, grid, workers=2, backend="thread", keep_outputs=True,
            kernel=kernel, retry=RetryPolicy(max_attempts=3,
                                             base_delay=0.001),
            faults=FaultInjector.from_string("numeric:raise:chunk=1:times=1"),
        )
        self._assert_matches(golden, out, exact=kernel != "merge")
