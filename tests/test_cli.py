"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sparse.io import load_npz


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_prints_device(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tesla V100" in out
        assert "repro" in out


class TestSuite:
    def test_lists_nine(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 9
        assert "lj2008" in out and "nlpkkt200" in out


class TestGen:
    def test_banded_npz(self, tmp_path, capsys):
        out = tmp_path / "band.npz"
        assert main(["gen", "banded", "--n", "100", "--bandwidth", "2",
                     "--seed", "3", "--out", str(out)]) == 0
        m = load_npz(out)
        assert m.n_rows == 100
        rows = m.expand_row_ids()
        assert np.all(np.abs(m.col_ids - rows) <= 2)

    def test_rmat_rounds_to_power_of_two(self, tmp_path):
        out = tmp_path / "g.npz"
        main(["gen", "rmat", "--n", "100", "--degree", "4", "--out", str(out)])
        assert load_npz(out).n_rows == 128

    def test_mtx_output(self, tmp_path):
        out = tmp_path / "g.mtx"
        main(["gen", "erdos-renyi", "--n", "40", "--degree", "3", "--out", str(out)])
        assert out.exists()

    def test_bad_extension(self, tmp_path):
        with pytest.raises(SystemExit, match="npz or .mtx"):
            main(["gen", "banded", "--n", "10", "--out", str(tmp_path / "x.csv")])


class TestMultiply:
    def test_square_from_file(self, tmp_path, capsys):
        src = tmp_path / "a.npz"
        main(["gen", "rmat", "--n", "256", "--degree", "6", "--seed", "9",
              "--out", str(src)])
        dst = tmp_path / "c.npz"
        assert main(["multiply", str(src), "--device-mem", "16",
                     "--out", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS" in out
        c = load_npz(dst)
        # verify against scipy
        from repro.spgemm.reference import spgemm_scipy
        from repro.sparse.ops import drop_explicit_zeros

        a = load_npz(src)
        assert drop_explicit_zeros(c).allclose(spgemm_scipy(a, a))

    def test_hybrid_mode(self, tmp_path, capsys):
        src = tmp_path / "a.npz"
        main(["gen", "banded", "--n", "2000", "--bandwidth", "5", "--seed", "2",
              "--out", str(src)])
        assert main(["multiply", str(src), "--mode", "hybrid",
                     "--device-mem", "8"]) == 0
        assert "hybrid" in capsys.readouterr().out

    def test_unresolvable_operand(self):
        with pytest.raises(SystemExit, match="cannot resolve"):
            main(["multiply", "does-not-exist.foo"])

    def test_rectangular_product(self, tmp_path, capsys):
        a_path = tmp_path / "a.npz"
        b_path = tmp_path / "b.npz"
        main(["gen", "erdos-renyi", "--n", "300", "--degree", "5", "--seed", "1",
              "--out", str(a_path)])
        main(["gen", "erdos-renyi", "--n", "300", "--degree", "4", "--seed", "2",
              "--out", str(b_path)])
        assert main(["multiply", str(a_path), str(b_path),
                     "--device-mem", "16"]) == 0


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Tesla V100" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestTrace:
    def test_exports_chrome_json(self, tmp_path, capsys):
        import json

        from repro.observability import validate_chrome_trace

        src = tmp_path / "a.npz"
        main(["gen", "rmat", "--n", "256", "--degree", "5", "--seed", "4",
              "--out", str(src)])
        out = tmp_path / "trace.json"
        assert main(["trace", str(src), "--device-mem", "16",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        events = validate_chrome_trace(payload)
        # measured spans (pid 0) and the simulated schedule (pid 1)
        assert {e["pid"] for e in events} == {0, 1}
        measured_cats = {e.get("cat") for e in events
                        if e["ph"] == "X" and e["pid"] == 0}
        assert {"analysis", "symbolic", "numeric", "sink"} <= measured_cats
        printed = capsys.readouterr().out
        assert "wrote" in printed
        assert "critical path" in printed

    def test_workers_trace_has_queue_spans_and_lane_summary(self, tmp_path, capsys):
        import json

        from repro.observability import validate_chrome_trace

        src = tmp_path / "a.npz"
        main(["gen", "rmat", "--n", "512", "--degree", "5", "--seed", "7",
              "--out", str(src)])
        out = tmp_path / "trace.json"
        assert main(["trace", str(src), "--device-mem", "8", "--workers", "4",
                     "--trace-out", str(out)]) == 0
        events = validate_chrome_trace(json.loads(out.read_text()))
        cats = {e.get("cat") for e in events if e["ph"] == "X" and e["pid"] == 0}
        assert "queue" in cats  # queue-wait spans from the pool dispatch
        assert any(e["ph"] == "C" for e in events)  # lane/cache gauges
        printed = capsys.readouterr().out
        assert "util %" in printed  # per-lane utilization table

    def test_hybrid_trace(self, tmp_path):
        src = tmp_path / "a.npz"
        main(["gen", "banded", "--n", "1500", "--bandwidth", "4", "--seed", "2",
              "--out", str(src)])
        out = tmp_path / "t.json"
        assert main(["trace", str(src), "--mode", "hybrid", "--device-mem", "8",
                     "--out", str(out)]) == 0
        assert out.exists()


class TestSuiteFeatures:
    def test_features_table(self, capsys):
        # uses the shared cache; cheap after the first suite build
        assert main(["suite", "--features"]) == 0
        out = capsys.readouterr().out
        assert "compr. ratio" in out and "nlp" in out


class TestMultiplySuiteName:
    def test_suite_operand(self, capsys):
        assert main(["multiply", "stokes", "--mode", "async"]) == 0
        assert "GFLOPS" in capsys.readouterr().out


class TestBench:
    def test_smoke_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--grid", "2", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["bench"] == "parallel_chunk_execution"
        assert payload["cpu_count"] >= 1
        (run,) = payload["runs"]
        assert run["matrix"] == "stokes"
        assert run["workers"] == 2
        assert run["identical"] is True
        assert run["serial_seconds"] > 0 and run["parallel_seconds"] > 0
        assert "speedup" in run and "model_correlation" in run
        # model errors are documented dimensionless fractions
        assert "fraction" in payload["units"]["model_mean_abs_rel_error"]
        assert run["model_median_abs_rel_error"] >= 0
        # single-core hosts are flagged: their "speedup" is overhead only
        assert payload["single_core_host"] == (payload["cpu_count"] <= 1)
        printed = capsys.readouterr().out
        assert "wrote" in printed
        if payload["single_core_host"]:
            assert "single-core host" in printed

    def test_rejects_single_worker(self, tmp_path):
        with pytest.raises(SystemExit, match="workers"):
            main(["bench", "--matrices", "stokes", "--workers", "1",
                  "--out", str(tmp_path / "b.json")])


class TestBenchRepeats:
    def test_repeats_reuse_one_profile_per_config(self, tmp_path, monkeypatch):
        """``--repeats N`` re-measures the wall clock only: exactly one
        outputs-kept profiled run per (matrix, config), plus ``N - 1``
        timing-only repeats — not N full output-keeping runs."""
        import repro.core.chunks as chunks_mod

        calls = []
        real = chunks_mod.profile_chunks

        def counting(*args, **kwargs):
            calls.append(bool(kwargs.get("keep_outputs")))
            return real(*args, **kwargs)

        monkeypatch.setattr(chunks_mod, "profile_chunks", counting)
        repeats = 3
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--grid", "2", "--repeats", str(repeats),
                     "--out", str(tmp_path / "b.json")]) == 0
        # one keep_outputs=True run per config (serial + thread +
        # process), then repeats-1 timing-only runs each, plus exactly
        # one governed robustness run per matrix (keep_outputs=False,
        # chunk-sink into the spillable store)
        configs = calls.count(True)
        assert configs == 3
        assert calls.count(False) == configs * (repeats - 1) + 1

    def test_missing_baseline_is_tolerated(self, tmp_path, capsys):
        """The first bench on a fresh clone has no previous record at
        --out; it must write a baseline instead of failing."""
        out = tmp_path / "bench.json"
        assert not out.exists()
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--grid", "2", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "fresh baseline" in printed
        assert out.exists()

    def test_existing_baseline_comparison_printed(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        args = ["bench", "--matrices", "stokes", "--workers", "2",
                "--grid", "2", "--out", str(out)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0  # second run compares against the first
        assert "speedup vs previous record" in capsys.readouterr().out

    def test_corrupt_baseline_is_tolerated(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        out.write_text("{not json")
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--grid", "2", "--out", str(out)]) == 0
        assert "fresh baseline" in capsys.readouterr().out

    def test_gflops_delta_printed_against_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        args = ["bench", "--matrices", "stokes", "--workers", "2",
                "--grid", "2", "--out", str(out)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "GFLOP/s vs previous record" in capsys.readouterr().out

    def test_record_carries_kernel_stage_and_outlier_fields(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--grid", "2", "--kernel", "esc",
                     "--out", str(out)]) == 0
        (run,) = json.loads(out.read_text())["runs"]
        assert run["kernel"] == "esc"
        assert set(run["serial_stage_seconds"]) == {
            "analysis", "symbolic", "numeric"}
        assert set(run["serial_stage_gflops"]) == {
            "analysis", "symbolic", "numeric"}
        assert run["model_p95_abs_rel_error"] >= 0
        assert run["model_outliers"] >= 0


class TestKernelBench:
    @pytest.fixture
    def tiny(self, tmp_path):
        path = tmp_path / "tiny.npz"
        assert main(["gen", "banded", "--n", "120", "--bandwidth", "4",
                     "--seed", "3", "--out", str(path)]) == 0
        return str(path)

    def test_smoke_writes_json_and_passes_equivalence(self, tiny, tmp_path,
                                                      capsys):
        import json

        out = tmp_path / "kernels.json"
        assert main(["kernel-bench", "--matrices", tiny, "--repeats", "1",
                     "--kernels", "hash,esc,merge",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["bench"] == "kernel_shootout"
        (run,) = payload["runs"]
        assert set(run["kernels"]) == {"hash", "esc", "merge"}
        for kind, rec in run["kernels"].items():
            assert rec["equivalent"] is True
            assert rec["min_seconds"] > 0
            expected = "allclose" if kind == "merge" else "bit_identical"
            assert rec["equivalence_policy"] == expected
        assert "wrote" in capsys.readouterr().out

    def test_rejects_unknown_kernel(self, tiny, tmp_path):
        with pytest.raises(SystemExit, match="unknown kernel"):
            main(["kernel-bench", "--matrices", tiny,
                  "--kernels", "hash,warp", "--out",
                  str(tmp_path / "k.json")])


class TestBenchEstimation:
    """--autotune, the estimation-fed governed run, and the model gate."""

    def test_autotune_smoke(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--backend", "thread", "--autotune",
                     "--out", str(out)]) == 0
        (run,) = json.loads(out.read_text())["runs"]
        at = run["autotune"]
        assert at["identical"] is True
        assert 0.0 <= at["hybrid_ratio"] <= 1.0
        assert at["sampled_rows"] > 0
        assert at["estimated_nnz"] > 0
        assert at["estimate_rel_error"] >= 0
        assert isinstance(at["beats_default"], bool)
        assert "autotune" in capsys.readouterr().out

    def test_governed_run_reports_estimation(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--backend", "thread", "--out", str(out)]) == 0
        (run,) = json.loads(out.read_text())["runs"]
        gov = run["governed"]
        assert gov["estimated"] is True
        assert gov["identical"] is True
        assert gov["avoided_resplits"] >= 0
        assert gov["resplits"] == 0

    def test_no_estimate_flag_disables_estimation(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--backend", "thread", "--no-estimate",
                     "--out", str(out)]) == 0
        (run,) = json.loads(out.read_text())["runs"]
        assert run["governed"]["estimated"] is False
        assert run["governed"]["identical"] is True

    def test_primary_backend_is_measured_best(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--backend", "thread", "--grid", "2",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        (run,) = payload["runs"]
        # single requested backend: it is trivially the measured best
        assert run["backend"] == "thread"
        assert payload["primary_backend"] == "thread"

    def test_gate_passes_on_calibrated_model(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--backend", "thread",
                     "--gate-model-error", "0.25",
                     "--out", str(out)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_failure_sets_exit_code(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--matrices", "stokes", "--workers", "2",
                     "--backend", "thread",
                     "--gate-model-error", "0.0000001",
                     "--out", str(out)]) == 1
        assert "MODEL-ERROR GATE FAILED" in capsys.readouterr().out
