"""Chaos battery: shard worker pools die mid-run, recovery is bit-identical.

The sharded failure contract (see ``docs/SHARDING.md``): a shard whose
worker pool dies takes down only its own strip.  Surviving shards run to
completion and checkpoint; :class:`~repro.distributed.shard.\
ShardedRunError` names exactly the dead shards; and a ``resume=True``
re-run over the same checkpoint directory recomputes only what is
missing, producing the same bits as a run that never failed.

Kill delivery reuses the PR-4/5 fault framework two ways:

* **targeted** — a ``kill`` fault spec in ``shard_faults`` rides the
  per-run spawn args into exactly one shard's workers (the other
  shards' pools never see it);
* **ambient** — ``REPRO_TEST_KILL_CHUNK`` is process-environment-global,
  so every shard's workers inherit it: the whole node's pools die, the
  multi-shard analog of the original single-run kill test.

All kill tests use the process backend: a ``kill`` fault in a thread or
serial lane would take the *test process* down with it.
"""

import pytest

from repro.core.executor import WorkerCrashed
from repro.core.executor.procworker import KILL_CHUNK_ENV
from repro.distributed.shard import (
    ShardConfig,
    ShardedRunError,
    run_sharded,
)
from repro.sparse.generators import random_csr, rmat
from tests.conftest import assert_equals_scipy_product
from tests.core.test_executor_backends import leaked_shm


@pytest.fixture(scope="module")
def operands():
    a = rmat(8, 5.0, seed=91)
    b = random_csr(a.n_cols, 120, 3 * a.n_cols, seed=92)
    return a, b


@pytest.fixture(scope="module")
def oracle(operands):
    a, b = operands
    return run_sharded(a, b, ShardConfig(num_shards=1)).matrix


def proc_config(num_shards=3):
    return ShardConfig(num_shards=num_shards, workers=1, backend="process")


class TestTargetedShardKill:
    def test_one_shard_dies_others_checkpoint(self, operands, oracle,
                                              tmp_path):
        a, b = operands
        before = leaked_shm()
        with pytest.raises(ShardedRunError) as exc_info:
            run_sharded(
                a, b, proc_config(), checkpoint_dir=tmp_path / "ckpt",
                shard_faults={1: "numeric:kill:chunk=1:times=-1"},
                crash_budget=0,
            )
        err = exc_info.value
        # the fault spec reached shard 1's pool and no one else's
        assert set(err.failures) == {1}
        assert isinstance(err.failures[1], WorkerCrashed)
        assert set(err.completed) == {0, 2}
        assert leaked_shm() == before  # the dead pool's segments swept

        # recovery: resume recomputes only the missing chunks ...
        res = run_sharded(a, b, proc_config(),
                          checkpoint_dir=tmp_path / "ckpt", resume=True)
        total = len(res.profile.chunks)
        assert 0 < res.resumed_chunks < total
        by_id = {r.shard_id: r for r in res.records}
        # ... which means every surviving shard's strip came off disk
        assert by_id[0].resumed_chunks == by_id[0].chunks
        assert by_id[2].resumed_chunks == by_id[2].chunks
        assert by_id[1].resumed_chunks < by_id[1].chunks

        # ... and the result is bit-identical to a run that never failed
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)
        assert leaked_shm() == before

    def test_resume_without_checkpoint_recomputes_everything(self, operands,
                                                             oracle,
                                                             tmp_path):
        a, b = operands
        res = run_sharded(a, b, proc_config(),
                          checkpoint_dir=tmp_path / "fresh", resume=True)
        assert res.resumed_chunks == 0
        assert res.matrix == oracle


class TestAmbientKill:
    def test_env_kill_takes_node_down_resume_recovers(self, operands, oracle,
                                                      tmp_path, monkeypatch):
        a, b = operands
        before = leaked_shm()
        # local chunk 0 exists in every shard: every pool dies
        monkeypatch.setenv(KILL_CHUNK_ENV, "0")
        with pytest.raises(ShardedRunError) as exc_info:
            run_sharded(a, b, proc_config(),
                        checkpoint_dir=tmp_path / "ckpt", crash_budget=0)
        assert len(exc_info.value.failures) == 3
        assert leaked_shm() == before

        monkeypatch.delenv(KILL_CHUNK_ENV)
        res = run_sharded(a, b, proc_config(),
                          checkpoint_dir=tmp_path / "ckpt", resume=True)
        assert res.matrix == oracle
        assert leaked_shm() == before


class TestAbsorbedKill:
    def test_crash_budget_absorbs_shard_kill(self, operands, oracle,
                                             tmp_path):
        """A latched kill inside one shard is absorbed by that shard's
        crash budget — respawn, requeue, no error, same bits — without
        any checkpointing at all."""
        a, b = operands
        before = leaked_shm()
        res = run_sharded(
            a, b, proc_config(),
            shard_faults={
                2: f"numeric:kill:chunk=1:latch={tmp_path / 'kill.latch'}"},
            crash_budget=1,
        )
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)
        # the respawn happened inside shard 2's tracer stream only
        respawns = {
            label: [s for s in tracer.spans if s.cat == "respawn"]
            for label, tracer in res.tracers.items()
        }
        assert len(respawns["shard2"]) == 1
        assert not respawns["shard0"] and not respawns["shard1"]
        assert leaked_shm() == before


class TestResumeSpliceEdges:
    def test_resume_with_one_empty_shard_checkpoint(self, operands, oracle,
                                                    tmp_path):
        """A shard killed on its very first chunk checkpoints *nothing*:
        resume must treat its empty manifest as a full recompute, not a
        malformed checkpoint."""
        a, b = operands
        with pytest.raises(ShardedRunError) as exc_info:
            run_sharded(
                a, b, proc_config(), checkpoint_dir=tmp_path / "ckpt",
                shard_faults={1: "numeric:kill:times=-1"},
                crash_budget=0,
            )
        err = exc_info.value
        assert set(err.failures) == {1}
        # shard 1's store really is empty — zero completed chunks
        assert not list((tmp_path / "ckpt" / "shard1.chunks").glob("*.npz"))

        res = run_sharded(a, b, proc_config(),
                          checkpoint_dir=tmp_path / "ckpt", resume=True)
        by_id = {r.shard_id: r for r in res.records}
        assert by_id[1].resumed_chunks == 0
        assert by_id[1].chunks > 0
        assert by_id[0].resumed_chunks == by_id[0].chunks
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)

    def test_resume_after_mid_splice_crc_mismatch(self, operands, oracle,
                                                  tmp_path):
        """A chunk file rotted on disk between checkpoint and resume:
        the splice must detect the CRC mismatch, drop that chunk from
        the skip-set, and recompute it — never crash, never serve the
        corrupt bytes."""
        a, b = operands
        run_sharded(a, b, proc_config(), checkpoint_dir=tmp_path / "ckpt")
        chunk_files = sorted(
            (tmp_path / "ckpt" / "shard0.chunks").glob("chunk_*.npz"))
        assert chunk_files
        victim = chunk_files[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))

        res = run_sharded(a, b, proc_config(),
                          checkpoint_dir=tmp_path / "ckpt", resume=True)
        by_id = {r.shard_id: r for r in res.records}
        assert by_id[0].corrupt_recomputed >= 1
        assert by_id[0].resumed_chunks < by_id[0].chunks
        # the untouched shards splice fully from disk
        assert by_id[1].resumed_chunks == by_id[1].chunks
        assert by_id[2].resumed_chunks == by_id[2].chunks
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)

    def test_sharded_error_carries_structured_tracebacks(self, operands,
                                                         tmp_path):
        """The error object itself must carry per-shard tracebacks (the
        CLI renders them); the first failure is chained as __cause__."""
        a, b = operands
        with pytest.raises(ShardedRunError) as exc_info:
            run_sharded(a, b, proc_config(),
                        shard_faults={1: "numeric:kill:chunk=1:times=-1"},
                        crash_budget=0)
        err = exc_info.value
        assert set(err.tracebacks) == {1}
        assert "WorkerCrashed" in err.tracebacks[1]
        assert err.__cause__ is err.failures[1]
