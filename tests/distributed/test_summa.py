"""Tests for Sparse SUMMA: the pure simulation and the executed path."""

import numpy as np
import pytest

from repro.distributed.summa import (
    NetworkModel,
    SummaExecution,
    distribute_blocks,
    sparse_summa,
)
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr, rmat
from repro.sparse.ops import hstack, vstack
from tests.conftest import assert_equals_scipy_product


class TestDistribute:
    def test_blocks_reassemble(self, sample_matrix):
        grid = distribute_blocks(sample_matrix, 3)
        strips = [hstack(list(row)) for row in grid.blocks]
        assert vstack(strips) == sample_matrix

    def test_single_process(self, sample_matrix):
        grid = distribute_blocks(sample_matrix, 1)
        assert grid.block(0, 0) == sample_matrix

    def test_bad_grid(self, sample_matrix):
        with pytest.raises(ValueError):
            distribute_blocks(sample_matrix, 0)


class TestCorrectness:
    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_product_exact(self, sample_matrix, q):
        result = sparse_summa(sample_matrix, sample_matrix, q)
        assert_equals_scipy_product(result.assemble(), sample_matrix, sample_matrix)

    def test_rectangular(self):
        a = random_csr(30, 20, 90, seed=31)
        b = random_csr(20, 25, 70, seed=32)
        result = sparse_summa(a, b, 2)
        assert_equals_scipy_product(result.assemble(), a, b)

    def test_empty(self):
        a = CSRMatrix.empty(9, 9)
        result = sparse_summa(a, a, 3)
        assert result.assemble().nnz == 0

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            sparse_summa(a, a, 2)


class TestTiming:
    @pytest.fixture(scope="class")
    def matrix(self):
        return rmat(9, 6.0, seed=41)

    def test_more_processes_faster(self, matrix):
        t1 = sparse_summa(matrix, matrix, 1).elapsed
        t3 = sparse_summa(matrix, matrix, 3).elapsed
        assert t3 < t1

    def test_pipelining_helps(self, matrix):
        piped = sparse_summa(matrix, matrix, 3, pipelined=True)
        serial = sparse_summa(matrix, matrix, 3, pipelined=False)
        assert piped.elapsed <= serial.elapsed
        # pipelining overlaps a NIC with its CPU somewhere on the grid
        overlap = sum(
            piped.timeline.overlap_time(f"nic{i}.{j}", f"cpu{i}.{j}")
            for i in range(3) for j in range(3)
        )
        assert overlap > 0

    def test_stage_order_per_process(self, matrix):
        result = sparse_summa(matrix, matrix, 2)
        labels = [f"gemm[0.0@{k}]" for k in range(2)]
        assert result.timeline.order_of(labels) == labels

    def test_network_model_sensitivity(self, matrix):
        fast = sparse_summa(matrix, matrix, 2,
                            network=NetworkModel(bandwidth=100e9))
        slow = sparse_summa(matrix, matrix, 2,
                            network=NetworkModel(bandwidth=1e9))
        assert fast.elapsed < slow.elapsed

    def test_gflops_positive(self, matrix):
        result = sparse_summa(matrix, matrix, 2)
        assert result.gflops > 0
        assert result.total_flops > 0


class TestExecutedPath:
    """``sparse_summa(..., execution=...)`` promotes the simulation to a
    real sharded execution: measured gemm walls, per-process tracer
    streams, an optional shared host-memory ledger — and a product that
    stays bit-identical to the pure simulation."""

    @pytest.fixture(scope="class")
    def operands(self):
        a = rmat(8, 5.0, seed=51)
        b = random_csr(a.n_cols, 140, 4 * a.n_cols, seed=52)
        return a, b

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_bit_identical_to_simulation(self, operands, q):
        a, b = operands
        sim = sparse_summa(a, b, q)
        ex = sparse_summa(a, b, q, execution=SummaExecution())
        assert ex.executed and not sim.executed
        # stage accumulation order is identical, so this is exact ==
        assert ex.assemble() == sim.assemble()
        for i in range(q):
            for j in range(q):
                assert ex.c_blocks[i][j] == sim.c_blocks[i][j]
        assert ex.total_flops == sim.total_flops
        assert_equals_scipy_product(ex.assemble(), a, b)

    @pytest.mark.parametrize("kernel", ["esc", "hash"])
    def test_kernel_dispatch(self, operands, kernel):
        a, b = operands
        ex = sparse_summa(a, b, 2,
                          execution=SummaExecution(kernel=kernel))
        assert_equals_scipy_product(ex.assemble(), a, b)

    def test_sequential_workers_same_bits(self, operands):
        a, b = operands
        pool = sparse_summa(a, b, 2, execution=SummaExecution(workers=0))
        seq = sparse_summa(a, b, 2, execution=SummaExecution(workers=1))
        assert pool.assemble() == seq.assemble()

    def test_empty_operand(self):
        a = CSRMatrix.empty(12, 12)
        ex = sparse_summa(a, a, 3, execution=SummaExecution())
        assert ex.assemble().nnz == 0
        assert ex.total_flops == 0
        assert ex.timeline.makespan() >= 0.0

    def test_zero_flop_stages(self):
        # bottom-half rows of A empty: every stage of the bottom process
        # row multiplies an empty block — zero flops, but the stages
        # still exist in the schedule and the product is still exact
        top = random_csr(20, 40, 120, seed=53)
        a = vstack([top, CSRMatrix.empty(20, 40)])
        b = random_csr(40, 30, 100, seed=54)
        sim = sparse_summa(a, b, 2)
        ex = sparse_summa(a, b, 2, execution=SummaExecution())
        assert ex.assemble() == sim.assemble()
        assert_equals_scipy_product(ex.assemble(), a, b)
        for k in range(2):
            (rec,) = ex.timeline.with_label(f"gemm[1.0@{k}]")
            assert rec.meta["flops"] == 0
        assert ex.c_blocks[1][0].nnz == ex.c_blocks[1][1].nnz == 0

    def test_timeline_grounded_in_measured_walls(self, operands):
        a, b = operands
        ex = sparse_summa(a, b, 2, execution=SummaExecution())
        gemms = ex.timeline.with_label("gemm[")
        assert len(gemms) == 2 * 2 * 2  # q cells x q stages
        assert all(r.meta.get("measured") for r in gemms)
        assert all(r.duration > 0 for r in gemms)
        # comm ops still come from the alpha-beta model, not the clock
        recvs = ex.timeline.with_label("recv[")
        assert not any(r.meta.get("measured") for r in recvs)
        # per-process stage order is preserved in the rebuilt schedule
        labels = [f"gemm[0.0@{k}]" for k in range(2)]
        assert ex.timeline.order_of(labels) == labels

    def test_tracer_streams_merge(self, operands):
        a, b = operands
        ex = sparse_summa(a, b, 2, execution=SummaExecution())
        assert set(ex.tracers) == {f"p{i}.{j}"
                                   for i in range(2) for j in range(2)}
        events = ex.trace_events()
        names = {e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert {"p0.0", "p1.1"}.issubset(names)
        assert any("summa" in n for n in names)
        assert len({e["pid"] for e in events}) == 5  # 4 cells + sim grid
        # trace=False keeps the executed path but drops the streams
        quiet = sparse_summa(a, b, 2,
                             execution=SummaExecution(trace=False))
        assert quiet.tracers is None
        assert quiet.assemble() == ex.assemble()

    def test_shared_ledger(self, operands):
        a, b = operands
        ex = sparse_summa(
            a, b, 2,
            execution=SummaExecution(host_mem_budget_bytes=1 << 24))
        assert ex.ledger_peak_bytes > 0
        assert ex.ledger_overcommits == 0
        assert_equals_scipy_product(ex.assemble(), a, b)
        # a one-byte budget completes via minimum progress, counted
        tiny = sparse_summa(
            a, b, 2, execution=SummaExecution(host_mem_budget_bytes=1))
        assert tiny.ledger_overcommits > 0
        assert tiny.assemble() == ex.assemble()

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            SummaExecution(workers=-1)


class TestNetworkModel:
    def test_broadcast_zero_fanout(self):
        assert NetworkModel().t_broadcast(1000, 0) == 0.0

    def test_broadcast_grows_with_fanout(self):
        net = NetworkModel()
        assert net.t_broadcast(1 << 20, 7) > net.t_broadcast(1 << 20, 1)

    def test_compute(self):
        net = NetworkModel(compute_rate=1e9)
        assert net.t_compute(10**9) == pytest.approx(1.0)
