"""Tests for the simulated Sparse SUMMA."""

import numpy as np
import pytest

from repro.distributed.summa import NetworkModel, distribute_blocks, sparse_summa
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr, rmat
from repro.sparse.ops import hstack, vstack
from tests.conftest import assert_equals_scipy_product


class TestDistribute:
    def test_blocks_reassemble(self, sample_matrix):
        grid = distribute_blocks(sample_matrix, 3)
        strips = [hstack(list(row)) for row in grid.blocks]
        assert vstack(strips) == sample_matrix

    def test_single_process(self, sample_matrix):
        grid = distribute_blocks(sample_matrix, 1)
        assert grid.block(0, 0) == sample_matrix

    def test_bad_grid(self, sample_matrix):
        with pytest.raises(ValueError):
            distribute_blocks(sample_matrix, 0)


class TestCorrectness:
    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_product_exact(self, sample_matrix, q):
        result = sparse_summa(sample_matrix, sample_matrix, q)
        assert_equals_scipy_product(result.assemble(), sample_matrix, sample_matrix)

    def test_rectangular(self):
        a = random_csr(30, 20, 90, seed=31)
        b = random_csr(20, 25, 70, seed=32)
        result = sparse_summa(a, b, 2)
        assert_equals_scipy_product(result.assemble(), a, b)

    def test_empty(self):
        a = CSRMatrix.empty(9, 9)
        result = sparse_summa(a, a, 3)
        assert result.assemble().nnz == 0

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            sparse_summa(a, a, 2)


class TestTiming:
    @pytest.fixture(scope="class")
    def matrix(self):
        return rmat(9, 6.0, seed=41)

    def test_more_processes_faster(self, matrix):
        t1 = sparse_summa(matrix, matrix, 1).elapsed
        t3 = sparse_summa(matrix, matrix, 3).elapsed
        assert t3 < t1

    def test_pipelining_helps(self, matrix):
        piped = sparse_summa(matrix, matrix, 3, pipelined=True)
        serial = sparse_summa(matrix, matrix, 3, pipelined=False)
        assert piped.elapsed <= serial.elapsed
        # pipelining overlaps a NIC with its CPU somewhere on the grid
        overlap = sum(
            piped.timeline.overlap_time(f"nic{i}.{j}", f"cpu{i}.{j}")
            for i in range(3) for j in range(3)
        )
        assert overlap > 0

    def test_stage_order_per_process(self, matrix):
        result = sparse_summa(matrix, matrix, 2)
        labels = [f"gemm[0.0@{k}]" for k in range(2)]
        assert result.timeline.order_of(labels) == labels

    def test_network_model_sensitivity(self, matrix):
        fast = sparse_summa(matrix, matrix, 2,
                            network=NetworkModel(bandwidth=100e9))
        slow = sparse_summa(matrix, matrix, 2,
                            network=NetworkModel(bandwidth=1e9))
        assert fast.elapsed < slow.elapsed

    def test_gflops_positive(self, matrix):
        result = sparse_summa(matrix, matrix, 2)
        assert result.gflops > 0
        assert result.total_flops > 0


class TestNetworkModel:
    def test_broadcast_zero_fanout(self):
        assert NetworkModel().t_broadcast(1000, 0) == 0.0

    def test_broadcast_grows_with_fanout(self):
        net = NetworkModel()
        assert net.t_broadcast(1 << 20, 7) > net.t_broadcast(1 << 20, 1)

    def test_compute(self):
        net = NetworkModel(compute_rate=1e9)
        assert net.t_compute(10**9) == pytest.approx(1.0)
