"""Equivalence battery for sharded multi-device execution.

The sharding contract is absolute: for any operands, any shard count,
any backend, and any kernel, ``run_sharded`` produces the same bits as
the 1-shard run — which itself matches the scipy oracle.  Sharding may
only change *where* chunks execute, never *what* they compute.
"""

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid, chunk_flops
from repro.distributed.shard import (
    ShardConfig,
    plan_shards,
    run_sharded,
)
from repro.sparse.generators import erdos_renyi, random_csr, rmat
from tests.conftest import assert_equals_scipy_product


@pytest.fixture(scope="module")
def operands():
    a = rmat(8, 6.0, seed=81)            # power-law rows
    b = random_csr(a.n_cols, 180, 4 * a.n_cols, seed=82)
    return a, b


class TestPlanShards:
    def grid(self, rows=97, cols=40, rp=7, cp=3):
        return ChunkGrid.regular(rows, cols, rp, cp)

    def test_spans_partition_the_panels(self):
        grid = self.grid()
        spans = plan_shards(grid, 3)
        assert spans[0].rp_lo == 0
        assert spans[-1].rp_hi == grid.num_row_panels
        for prev, cur in zip(spans, spans[1:]):
            assert cur.rp_lo == prev.rp_hi       # contiguous, no gaps
        assert all(s.num_row_panels >= 1 for s in spans)

    def test_clamps_to_panel_count(self):
        grid = self.grid(rp=3)
        spans = plan_shards(grid, 8)
        assert len(spans) == 3

    def test_flops_balance_on_skew(self):
        # all the work in the top rows: flops-balanced cuts must not
        # hand shard 0 everything the way equal-panel cuts would
        a = random_csr(90, 90, 900, seed=5)
        top = a.row_slice(0, 30)
        from repro.sparse.ops import vstack

        skewed = vstack([top, top, top])  # uniform-ish baseline
        grid = ChunkGrid.regular(90, 90, 6, 2)
        flops = chunk_flops(skewed, skewed, grid)
        spans = plan_shards(grid, 3, flops, "flops")
        weights = flops.sum(axis=1)
        loads = [int(weights[s.rp_lo:s.rp_hi].sum()) for s in spans]
        assert len(loads) == 3 and all(l > 0 for l in loads)
        assert max(loads) <= 2 * (sum(loads) // 3) + int(weights.max())

    def test_zero_flops_falls_back_to_panels(self):
        grid = self.grid()
        flops = np.zeros((grid.num_row_panels, grid.num_col_panels),
                         dtype=np.int64)
        spans = plan_shards(grid, 4, flops, "flops")
        sizes = [s.num_row_panels for s in spans]
        assert max(sizes) - min(sizes) <= 1


class TestConfigValidation:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            ShardConfig(num_shards=0)
        with pytest.raises(ValueError):
            ShardConfig(workers=0)
        with pytest.raises(ValueError):
            ShardConfig(balance="magic")

    def test_dimension_mismatch(self):
        a = random_csr(10, 8, 20, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            run_sharded(a, a, ShardConfig(num_shards=2))


class TestBackendKernelGrid:
    """N-shard == 1-shard == scipy across the backend x kernel grid."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("kernel", [None, "esc", "hash"])
    def test_bit_identical_across_grid(self, operands, backend, kernel):
        if backend == "process" and kernel is not None:
            pytest.skip("process x kernel covered by the default-kernel case")
        a, b = operands
        base = run_sharded(
            a, b, ShardConfig(num_shards=1, kernel=kernel), name="base")
        res = run_sharded(
            a, b,
            ShardConfig(num_shards=3, workers=2, backend=backend,
                        kernel=kernel),
            name=f"eq-{backend}-{kernel}",
        )
        assert res.num_shards == 3
        assert res.matrix == base.matrix      # exact, not allclose
        assert_equals_scipy_product(res.matrix, a, b)

    def test_shards_share_one_budget(self, operands):
        a, b = operands
        res = run_sharded(
            a, b,
            ShardConfig(num_shards=3, workers=2,
                        host_mem_budget_bytes=1 << 26),
        )
        assert res.ledger_budget_bytes == 1 << 26
        assert res.ledger_peak_bytes > 0
        assert_equals_scipy_product(res.matrix, a, b)


class TestPropertySweep:
    """Seeded sweep over RMAT / power-law-ish random operands."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_random_operands(self, seed, num_shards):
        rng = np.random.default_rng([20260806, seed])
        scale = int(rng.integers(6, 9))
        a = rmat(scale, float(rng.uniform(3.0, 8.0)), seed=100 + seed)
        n_out = int(rng.integers(40, 160))
        b = random_csr(a.n_cols, n_out, 3 * a.n_cols, seed=200 + seed)
        base = run_sharded(a, b, ShardConfig(num_shards=1))
        res = run_sharded(a, b, ShardConfig(num_shards=num_shards, workers=2))
        assert res.matrix == base.matrix
        assert_equals_scipy_product(res.matrix, a, b)

    def test_sparse_er_operands(self):
        a = erdos_renyi(230, 4.0, seed=17)
        base = run_sharded(a, a, ShardConfig(num_shards=1))
        res = run_sharded(a, a, ShardConfig(num_shards=4))
        assert res.matrix == base.matrix
        assert_equals_scipy_product(res.matrix, a, a)

    def test_empty_operand(self):
        from repro.sparse.formats import CSRMatrix

        a = CSRMatrix.empty(60, 50)
        b = random_csr(50, 40, 100, seed=3)
        res = run_sharded(a, b, ShardConfig(num_shards=3))
        assert res.matrix.nnz == 0
        assert res.profile.total_flops == 0


class TestObservability:
    def test_profile_merges_globally(self, operands):
        a, b = operands
        grid = ChunkGrid.regular(a.n_rows, b.n_cols, 6, 2)
        base = run_sharded(a, b, ShardConfig(num_shards=1), grid=grid)
        res = run_sharded(a, b, ShardConfig(num_shards=3), grid=grid)
        assert len(res.profile.chunks) == grid.num_chunks
        # global ids in row-major order, workload identical to 1-shard
        for cid, st in enumerate(res.profile.chunks):
            assert st.chunk_id == cid
            assert (st.row_panel, st.col_panel) == grid.panel_of(cid)
        assert res.profile.total_flops == base.profile.total_flops
        assert res.profile.total_nnz_out == base.profile.total_nnz_out

    def test_transfer_model_shape(self, operands):
        a, b = operands
        res = run_sharded(a, b, ShardConfig(num_shards=4))
        recs = {r.shard_id: r for r in res.records}
        assert recs[0].transfer_bytes == 0       # co-located with host
        for t in range(1, 4):
            # broadcast of B at minimum, plus its C strip unless empty
            assert recs[t].transfer_bytes >= b.nbytes()
        assert res.sim_makespan > 0
        for rec in res.records:
            assert 0.0 <= rec.utilization <= 1.0

    def test_single_shard_has_no_transfers(self, operands):
        a, b = operands
        res = run_sharded(a, b, ShardConfig(num_shards=1))
        assert res.transfer_bytes_total == 0

    def test_trace_events_merge_streams(self, operands):
        a, b = operands
        res = run_sharded(a, b, ShardConfig(num_shards=2,
                                            host_mem_budget_bytes=1 << 26))
        assert set(res.tracers) == {"node", "shard0", "shard1"}
        events = res.trace_events()
        names = {e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert {"node", "shard0", "shard1"}.issubset(names)
        assert any("simulated" in n for n in names)
        pids = {e["pid"] for e in events}
        assert len(pids) == 4  # three tracer streams + the sim timeline
