"""End-to-end socket transport: real worker processes, bit-identity.

``run_sharded`` with ``transport="socket"`` spawns genuine ``repro
shard-worker`` processes and drives each span over the wire.  The
contract under test: the product is bit-identical to the local
transport and to scipy (chunks are deterministic, so *where* they run
cannot change *what* they compute), the transfer walls in the records
and timeline are measured rather than alpha-beta-modeled, and the
remote failure path carries worker-side tracebacks home.
"""

import numpy as np
import pytest

from repro.distributed import (
    RemoteShardPool,
    ShardConfig,
    ShardedRunError,
    run_sharded,
)
from repro.distributed.transport import RemoteShardError
from repro.sparse.generators import random_csr, rmat
from tests.conftest import assert_equals_scipy_product


@pytest.fixture(scope="module")
def operands():
    a = rmat(7, 4.0, seed=31)
    b = random_csr(a.n_cols, 96, 3 * a.n_cols, seed=32)
    return a, b


@pytest.fixture(scope="module")
def oracle(operands):
    a, b = operands
    return run_sharded(a, b, ShardConfig(num_shards=1)).matrix


@pytest.fixture(scope="module")
def unix_pool():
    with RemoteShardPool.spawn(2, kind="unix") as pool:
        yield pool


class TestSocketEquivalence:
    @pytest.mark.parametrize("kind", ["unix", "tcp"])
    def test_bit_identical_both_socket_kinds(self, operands, oracle, kind):
        a, b = operands
        res = run_sharded(
            a, b, ShardConfig(num_shards=2, transport="socket",
                              socket_kind=kind))
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)
        assert all(r.transport == "socket" for r in res.records)
        assert all(r.failover == "" for r in res.records)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_bit_identical_across_worker_backends(self, operands, oracle,
                                                  unix_pool, backend):
        a, b = operands
        res = run_sharded(
            a, b, ShardConfig(num_shards=2, transport="socket",
                              backend=backend, workers=2),
            worker_pool=unix_pool)
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)

    def test_more_shards_than_workers_round_robin(self, operands, oracle,
                                                  unix_pool):
        a, b = operands
        res = run_sharded(
            a, b, ShardConfig(num_shards=4, transport="socket"),
            worker_pool=unix_pool)
        assert res.num_shards == 4
        assert res.matrix == oracle

    def test_external_pool_not_closed_by_run(self, operands, unix_pool):
        a, b = operands
        run_sharded(a, b, ShardConfig(num_shards=2, transport="socket"),
                    worker_pool=unix_pool)
        # the pool the caller owns survives the run and stays usable
        assert all(w.alive for w in unix_pool.workers)
        res = run_sharded(a, b,
                          ShardConfig(num_shards=2, transport="socket"),
                          worker_pool=unix_pool)
        assert res.matrix is not None


class TestMeasuredTransfers:
    def test_records_carry_measured_walls(self, operands, unix_pool):
        a, b = operands
        res = run_sharded(
            a, b, ShardConfig(num_shards=2, transport="socket"),
            worker_pool=unix_pool)
        for rec in res.records:
            # every span ships operands and gathers chunks over the wire,
            # so both measured legs must have nonzero wall and bytes
            assert rec.bcast_seconds > 0.0
            assert rec.gather_seconds > 0.0
            assert rec.bytes_sent > 0
            assert rec.bytes_received > 0
            assert rec.transfer_bytes == rec.bytes_sent + rec.bytes_received
            d = rec.as_dict()
            assert d["transport"] == "socket"
            assert d["bcast_seconds"] == rec.bcast_seconds
        assert res.measured_transfer_seconds > 0.0
        assert res.transport == "socket"

    def test_timeline_uses_measured_walls(self, operands, unix_pool):
        a, b = operands
        res = run_sharded(
            a, b, ShardConfig(num_shards=2, transport="socket"),
            worker_pool=unix_pool)
        spans = {r.label: r for r in res.timeline.records}
        for rec in res.records:
            t = rec.shard_id
            bcast = spans[f"bcast-B[shard{t}]"]
            gather = spans[f"gather-C[shard{t}]"]
            assert bcast.duration == pytest.approx(rec.bcast_seconds,
                                                   abs=1e-9)
            assert gather.duration == pytest.approx(rec.gather_seconds,
                                                    abs=1e-9)

    def test_transfer_spans_in_merged_trace(self, operands, unix_pool):
        a, b = operands
        res = run_sharded(
            a, b, ShardConfig(num_shards=2, transport="socket"),
            worker_pool=unix_pool)
        events = res.trace_events()
        names = [e.get("name", "") for e in events]
        # the shard tracer streams carry the measured transfer spans ...
        assert any(n.startswith("bcast-B[") for n in names)
        assert any(n.startswith("gather-C[") for n in names)
        # ... and the timeline process renders them as well
        assert any(n.startswith("remote[") for n in names)

    def test_local_transport_still_modeled(self, operands):
        a, b = operands
        res = run_sharded(a, b, ShardConfig(num_shards=2))
        assert res.transport == "local"
        assert res.measured_transfer_seconds == 0.0
        for rec in res.records:
            assert "bcast_seconds" not in rec.as_dict()


class TestRemoteFailurePath:
    def test_remote_compute_error_carries_traceback(self, operands,
                                                    unix_pool):
        a, b = operands
        # an injected raise inside the remote executor is a *compute*
        # failure: no failover (it would fail identically elsewhere),
        # and the worker-side traceback must come home on the error
        with pytest.raises(ShardedRunError) as exc_info:
            run_sharded(
                a, b, ShardConfig(num_shards=2, transport="socket"),
                worker_pool=unix_pool,
                shard_faults={1: "numeric:raise:times=-1"})
        err = exc_info.value
        assert set(err.failures) == {1}
        assert isinstance(err.failures[1], RemoteShardError)
        assert err.failures[1].exc_type == "InjectedFault"
        # the structured traceback is the worker's, not the node's
        assert "InjectedFault" in err.tracebacks[1]
        assert "execute_chunk_grid" in err.tracebacks[1]
        assert err.__cause__ is err.failures[1]

    def test_other_shards_complete_around_remote_failure(self, operands,
                                                         unix_pool):
        a, b = operands
        with pytest.raises(ShardedRunError) as exc_info:
            run_sharded(
                a, b, ShardConfig(num_shards=2, transport="socket"),
                worker_pool=unix_pool,
                shard_faults={0: "numeric:raise:times=-1"})
        assert exc_info.value.completed == [1]
        # the failed worker's connection survives a clean error frame:
        # the pool stays fully usable
        res = run_sharded(a, b,
                          ShardConfig(num_shards=2, transport="socket"),
                          worker_pool=unix_pool)
        assert res.matrix is not None


class TestLocalErrorTracebacks:
    def test_local_sharded_error_carries_tracebacks(self, operands):
        a, b = operands
        with pytest.raises(ShardedRunError) as exc_info:
            run_sharded(a, b, ShardConfig(num_shards=2),
                        shard_faults={0: "numeric:raise:times=-1"})
        err = exc_info.value
        # the in-process collection keeps the thread's traceback too
        assert "InjectedFault" in err.tracebacks[0]
        assert "shard_main" in err.tracebacks[0] or \
            "execute_chunk_grid" in err.tracebacks[0]
