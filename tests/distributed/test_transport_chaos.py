"""Chaos battery for the socket shard transport.

Three failure families, each pinned to the exact recovery the design
promises, and every recovery checked bit-for-bit against an unfailed
run and scipy:

* **worker death** (SIGKILL / ``os._exit`` mid-run) → reconnect
  exhausts → failover re-placement onto a survivor, or degrade to an
  in-process local span (with ``TransportDegradedWarning``) when no
  survivor exists;
* **severed socket** (half a frame followed by an RST) → reconnect to
  the same worker with a skip-set resume — completed chunks are never
  recomputed;
* **stalled heartbeat** (worker alive but wedged holding its send
  lock) → lease expiry fires the same reconnect path even though the
  TCP connection never errored.

Chaos hooks are stripped from any re-sent or re-placed run, so a
recovered worker is never re-killed — each scenario injects exactly
one failure and must converge.
"""

import threading
import time

import pytest

from repro.distributed import (
    RemoteShardPool,
    ShardConfig,
    run_sharded,
)
from repro.distributed.transport import TransportDegradedWarning
from repro.sparse.generators import random_csr, rmat
from tests.conftest import assert_equals_scipy_product
from tests.core.test_executor_backends import leaked_shm


@pytest.fixture(scope="module")
def operands():
    a = rmat(8, 5.0, seed=91)
    b = random_csr(a.n_cols, 120, 3 * a.n_cols, seed=92)
    return a, b


@pytest.fixture(scope="module")
def oracle(operands):
    a, b = operands
    return run_sharded(a, b, ShardConfig(num_shards=1)).matrix


def socket_config(**kw):
    kw.setdefault("num_shards", 2)
    kw.setdefault("transport", "socket")
    kw.setdefault("backend", "serial")
    return ShardConfig(**kw)


class TestWorkerKill:
    def test_kill_fails_over_to_survivor(self, operands, oracle):
        """An in-worker ``os._exit`` mid-span: reconnect attempts hit a
        dead process, the span re-places onto the surviving worker with
        a skip-set, and the bits match an unfailed run."""
        a, b = operands
        res = run_sharded(
            a, b, socket_config(),
            shard_faults={1: "numeric:kill:times=1"})
        by_id = {r.shard_id: r for r in res.records}
        assert by_id[1].failover == "worker0"
        assert by_id[1].reconnects >= 1
        assert by_id[0].failover == ""
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)

    def test_external_sigkill_process_backend(self, operands, oracle):
        """SIGKILL from outside (the pool's own kill switch) while the
        worker grinds through a delay-stretched span, with the worker
        running a process executor pool — the transport must fail over
        and the dead worker's /dev/shm segments must not leak."""
        a, b = operands
        before = leaked_shm()
        with RemoteShardPool.spawn(2, kind="unix") as pool:
            timer = threading.Timer(0.6, pool.kill_worker, args=(1,))
            timer.start()
            try:
                res = run_sharded(
                    a, b,
                    socket_config(backend="process", workers=1),
                    worker_pool=pool,
                    shard_faults={1: "numeric:delay:times=-1:delay=0.1"})
            finally:
                timer.cancel()
        by_id = {r.shard_id: r for r in res.records}
        # the timer may lose the race on a fast machine; when it fires
        # mid-span the record must show the failover chain
        if by_id[1].failover:
            assert by_id[1].failover == "worker0"
            assert by_id[1].reconnects >= 1
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)
        time.sleep(0.2)
        assert leaked_shm() == before

    def test_no_survivors_degrades_to_local(self, operands, oracle):
        """With every worker dead the span re-places in-process — loudly
        (one warning), correctly (same bits), and the record says so."""
        a, b = operands
        with pytest.warns(TransportDegradedWarning):
            res = run_sharded(
                a, b, socket_config(num_shards=1),
                shard_faults={0: "numeric:kill:times=1"})
        assert res.records[0].failover == "local"
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)


class TestSeveredSocket:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sever_mid_message_reconnects(self, operands, oracle, backend):
        """The worker cuts the connection half-way through a frame (RST,
        no FIN): the node sees a mid-frame close, reconnects to the same
        still-alive worker, and resumes from its skip-set."""
        a, b = operands
        before = leaked_shm()
        res = run_sharded(
            a, b, socket_config(backend=backend,
                                workers=2 if backend != "serial" else 1),
            shard_debug={0: {"sever_after": 2}})
        by_id = {r.shard_id: r for r in res.records}
        assert by_id[0].reconnects >= 1
        assert by_id[0].failover == ""  # same worker, no re-placement
        assert by_id[1].reconnects == 0
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)
        assert leaked_shm() == before


class TestStalledHeartbeat:
    def test_stall_expires_lease_and_reconnects(self, operands, oracle):
        """The worker wedges its heartbeat thread while holding the send
        lock: the socket stays open but goes silent, so only the lease
        watchdog can notice.  The span is delay-stretched so the stall
        engages mid-run."""
        a, b = operands
        res = run_sharded(
            a, b,
            socket_config(transport_heartbeat=0.05, lease_grace=2.0),
            shard_faults={0: "numeric:delay:times=-1:delay=0.15"},
            shard_debug={0: {"heartbeat_stall": 1.0}})
        by_id = {r.shard_id: r for r in res.records}
        assert by_id[0].reconnects >= 1
        assert res.matrix == oracle
        assert_equals_scipy_product(res.matrix, a, b)
