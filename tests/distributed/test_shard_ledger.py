"""N concurrent shards under one HostMemoryGovernor never overcommit.

Mirrors the single-run budget tests in ``tests/core/test_governor.py``:
the ``host_mem`` gauge stream on the *node* tracer is the evidence — one
sample per ledger transition, across every shard — and each sample must
stay within the node budget (or be a counted minimum-progress
overcommit).  Plus the unit contracts of :class:`ScopedLedger` that make
the sharing sound: namespaced keys, accumulate-not-replace stores, and
the no-op tracer rebind.
"""

import threading

import pytest

from repro.core.governor import Governor, GovernorConfig, HostMemoryGovernor
from repro.core.governor.hostmem import ScopedLedger
from repro.distributed.shard import ShardConfig, run_sharded
from repro.observability import Tracer
from repro.sparse.generators import random_csr, rmat
from tests.conftest import assert_equals_scipy_product


class TestScopedLedger:
    def test_namespaced_keys_do_not_collide(self):
        base = HostMemoryGovernor(1000)
        s0, s1 = base.scoped("shard0"), base.scoped("shard1")
        assert s0.admit(0, 400, may_wait=False)
        # same local chunk id, different namespace: a second reservation
        assert s1.admit(0, 400, may_wait=False)
        assert base.held_bytes() == 800
        # and a third would breach the budget
        assert not base.scoped("shard2").admit(0, 400, may_wait=False)
        s0.release(0)
        assert base.held_bytes() == 400
        s1.release(0)
        assert base.held_bytes() == 0

    def test_admit_is_idempotent_per_scope(self):
        base = HostMemoryGovernor(1000)
        view = base.scoped("s")
        assert view.admit(3, 600, may_wait=False)
        assert view.admit(3, 600, may_wait=False)  # retry keeps reservation
        assert base.held_bytes() == 600

    def test_stores_accumulate_across_scopes(self):
        class Store:
            def __init__(self, held):
                self.held_bytes = held

            def nbytes(self):
                return self.held_bytes

        base = HostMemoryGovernor(1000)
        base.scoped("a").attach_store(Store(100))
        base.scoped("b").attach_store(Store(200))
        assert base.held_bytes() == 300
        # re-attaching the same store is a no-op, not a double count
        store = Store(50)
        view = base.scoped("c")
        view.attach_store(store)
        view.attach_store(store)
        assert base.held_bytes() == 350

    def test_bind_tracer_keeps_node_stream(self):
        node_tracer = Tracer(stream="node")
        base = HostMemoryGovernor(1000, tracer=node_tracer)
        view = base.scoped("s")
        view.bind_tracer(Tracer(stream="shard"))  # deliberate no-op
        view.admit(0, 10, may_wait=False)
        assert any(g.name == "host_mem" for g in node_tracer.gauges)

    def test_proxied_stats(self):
        base = HostMemoryGovernor(500)
        view = base.scoped("s")
        view.admit(0, 9999, may_wait=True)  # minimum-progress escape
        assert view.budget_bytes == 500
        assert view.peak_bytes == base.peak_bytes == 9999
        assert view.overcommits == base.overcommits == 1

    def test_governor_injection_uses_shared_view(self):
        base = HostMemoryGovernor(1 << 20)
        gov = Governor(GovernorConfig(device_pool_bytes=1 << 20),
                       hostmem=base.scoped("s"))
        assert isinstance(gov.hostmem, ScopedLedger)
        assert gov.hostmem.base is base
        # config-built private ledger still works when nothing is injected
        own = Governor(GovernorConfig(host_mem_budget_bytes=1 << 20))
        assert isinstance(own.hostmem, HostMemoryGovernor)


class TestSharedBudgetUnderConcurrency:
    def test_raw_concurrent_scopes_never_overcommit(self):
        """Hammer one ledger from N scope threads; every gauge sample
        stays within budget and nothing leaks."""
        tracer = Tracer()
        base = HostMemoryGovernor(10_000, tracer=tracer)
        errors = []

        def scope_main(t):
            view = base.scoped(f"s{t}")
            try:
                for cid in range(30):
                    while not view.admit(cid, 900, may_wait=False):
                        pass
                    view.release(cid)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=scope_main, args=(t,))
                   for t in range(6)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert base.overcommits == 0
        assert 0 < base.peak_bytes <= 10_000
        assert base.held_bytes() == 0
        samples = [g for g in tracer.gauges if g.name == "host_mem"]
        assert len(samples) >= 2 * 6 * 30  # one per admit + one per release
        for g in samples:
            assert g.values["reserved"] + g.values["stored"] <= 10_000

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_sharded_run_holds_node_budget(self, backend):
        """A real N-shard run under one node ledger: budget held on every
        gauge sample, product still bit-identical."""
        a = rmat(8, 5.0, seed=71)
        b = random_csr(a.n_cols, 100, 3 * a.n_cols, seed=72)
        node_tracer = Tracer(stream="node")
        # roomy enough to never need the minimum-progress escape, small
        # enough that shards actually contend for admission
        budget = 1 << 22
        res = run_sharded(
            a, b,
            ShardConfig(num_shards=3, workers=2, backend=backend,
                        host_mem_budget_bytes=budget),
            tracer=node_tracer,
        )
        assert_equals_scipy_product(res.matrix, a, b)
        assert res.ledger_overcommits == 0
        assert 0 < res.ledger_peak_bytes <= budget
        samples = [g for g in node_tracer.gauges if g.name == "host_mem"]
        assert samples, "shared ledger must gauge on the node tracer"
        for g in samples:
            assert g.values["reserved"] + g.values["stored"] <= budget
            assert g.values["budget"] == budget

    def test_tiny_budget_overcommits_are_counted_not_fatal(self):
        """A node budget below one chunk's estimate completes via the
        minimum-progress escape, and every escape is accounted."""
        a = rmat(7, 5.0, seed=73)
        res = run_sharded(
            a, a, ShardConfig(num_shards=2, workers=2,
                              host_mem_budget_bytes=1),
        )
        assert_equals_scipy_product(res.matrix, a, a)
        assert res.ledger_overcommits > 0
