"""Wire-level tests for the shard transport framing.

Everything here runs over a ``socketpair`` — no listeners, no worker
processes — pinning the frame format itself: length-prefixed binary
framing, CRC32 over header+payload, the binary CSR codec, and the
typed failures (clean EOF vs severed stream vs corruption) the
node-side reconnect logic keys on.
"""

import socket
import struct

import numpy as np
import pytest

from repro.distributed.transport.wire import (
    FrameCorruption,
    TransportClosed,
    connect_address,
    create_listener,
    csr_arrays,
    csr_from_arrays,
    format_address,
    pack_frame,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.sparse.generators import random_csr


def pair():
    return socket.socketpair()


class TestFrameRoundtrip:
    def test_meta_only(self):
        left, right = pair()
        try:
            sent = send_frame(left, "hb", {"counter": 7})
            frame = recv_frame(right)
            assert frame.kind == "hb"
            assert frame.meta == {"counter": 7}
            assert frame.arrays == {}
            assert frame.nbytes == sent
        finally:
            left.close()
            right.close()

    def test_arrays_roundtrip_exact(self):
        left, right = pair()
        arrays = {
            "x": np.arange(10, dtype=np.int64),
            "y": np.linspace(0, 1, 5, dtype=np.float64),
            "z": np.array([], dtype=np.int32),
        }
        try:
            send_frame(left, "blob", {"n": 3}, arrays)
            frame = recv_frame(right)
            assert set(frame.arrays) == {"x", "y", "z"}
            for name, arr in arrays.items():
                got = frame.arrays[name]
                assert got.dtype == arr.dtype
                assert np.array_equal(got, arr)
        finally:
            left.close()
            right.close()

    def test_received_arrays_own_their_memory(self):
        left, right = pair()
        try:
            send_frame(left, "blob", {}, {"x": np.arange(4, dtype=np.int64)})
            frame = recv_frame(right)
            frame.arrays["x"][0] = 99  # would raise on a frombuffer view
            assert frame.arrays["x"][0] == 99
        finally:
            left.close()
            right.close()

    def test_wire_seconds_measured(self):
        left, right = pair()
        try:
            send_frame(left, "blob", {}, {"x": np.zeros(1000)})
            frame = recv_frame(right)
            assert frame.wire_seconds >= 0.0
        finally:
            left.close()
            right.close()


class TestFrameFailures:
    def test_clean_eof_between_frames(self):
        left, right = pair()
        left.close()
        try:
            with pytest.raises(TransportClosed, match="between frames"):
                recv_frame(right)
        finally:
            right.close()

    def test_eof_mid_frame_is_severed(self):
        left, right = pair()
        frame = pack_frame("chunk", {"stats": {}}, {"x": np.zeros(100)})
        left.sendall(frame[: len(frame) // 2])
        left.close()
        try:
            with pytest.raises(TransportClosed, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_crc_flip_detected(self):
        left, right = pair()
        frame = bytearray(pack_frame("blob", {"k": 1},
                                     {"x": np.arange(8, dtype=np.int64)}))
        frame[-1] ^= 0xFF  # flip one payload byte; stored CRC now lies
        left.sendall(bytes(frame))
        try:
            with pytest.raises(FrameCorruption, match="checksum"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_bad_magic_detected(self):
        left, right = pair()
        frame = bytearray(pack_frame("blob", {}))
        frame[0:4] = b"XXXX"
        left.sendall(bytes(frame))
        try:
            with pytest.raises(FrameCorruption, match="magic"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_implausible_length_rejected_before_allocation(self):
        left, right = pair()
        # a "frame" claiming a 2 TiB payload must fail fast
        prefix = struct.pack(">4sIQI", b"RSW1", 8, 1 << 41, 0)
        left.sendall(prefix + b"x" * 8)
        try:
            with pytest.raises(FrameCorruption, match="implausible"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_manifest_overrun_detected(self):
        # header manifest claims more array bytes than the payload holds
        left, right = pair()
        good = pack_frame("blob", {}, {"x": np.arange(4, dtype=np.int64)})
        import json

        from repro.core.governor.integrity import crc32_bytes

        header = json.dumps({
            "kind": "blob", "meta": {},
            "arrays": [{"name": "x", "dtype": "<i8", "shape": [400]}],
        }, separators=(",", ":")).encode()
        payload = good[-32:]  # 4 int64s only
        crc = crc32_bytes(header, payload)
        left.sendall(struct.pack(">4sIQI", b"RSW1", len(header),
                                 len(payload), crc) + header + payload)
        try:
            with pytest.raises(FrameCorruption, match="overruns"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestCSRCodec:
    def test_roundtrip_bit_identical(self):
        mat = random_csr(40, 30, 200, seed=5)
        meta, arrays = csr_arrays(mat, prefix="a_")
        back = csr_from_arrays(meta, arrays, prefix="a_")
        assert back == mat  # CSRMatrix equality is exact (bit-identical)

    def test_empty_matrix(self):
        mat = random_csr(10, 10, 0, seed=1)
        meta, arrays = csr_arrays(mat, prefix="c_")
        back = csr_from_arrays(meta, arrays, prefix="c_")
        assert back == mat

    def test_corrupt_structure_rejected(self):
        mat = random_csr(20, 20, 60, seed=2)
        meta, arrays = csr_arrays(mat, prefix="a_")
        bad = dict(arrays)
        bad["a_col_ids"] = bad["a_col_ids"].copy()
        bad["a_col_ids"][0] = 10_000  # column outside the matrix
        with pytest.raises(FrameCorruption, match="validation"):
            csr_from_arrays(meta, bad, prefix="a_")

    def test_missing_array_rejected(self):
        mat = random_csr(20, 20, 60, seed=2)
        meta, arrays = csr_arrays(mat, prefix="a_")
        arrays.pop("a_data")
        with pytest.raises(FrameCorruption):
            csr_from_arrays(meta, arrays, prefix="a_")


class TestAddresses:
    def test_tcp_roundtrip(self):
        assert parse_address("tcp:127.0.0.1:9000") == ("tcp",
                                                       ("127.0.0.1", 9000))
        assert format_address("tcp", ("127.0.0.1", 9000)) == \
            "tcp:127.0.0.1:9000"

    def test_unix_roundtrip(self):
        assert parse_address("unix:/tmp/w.sock") == ("unix", "/tmp/w.sock")
        assert format_address("unix", "/tmp/w.sock") == "unix:/tmp/w.sock"

    @pytest.mark.parametrize("bad", ["tcp:nohost", "unix:", "http:x:1", "x"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_tcp_ephemeral_port_resolved(self):
        sock, resolved = create_listener("tcp:127.0.0.1:0")
        try:
            kind, (host, port) = parse_address(resolved)
            assert kind == "tcp" and port > 0
            peer = connect_address(resolved, timeout=5.0)
            peer.close()
        finally:
            sock.close()

    def test_unix_listener_and_stale_rebind(self, tmp_path):
        addr = f"unix:{tmp_path}/w.sock"
        sock, resolved = create_listener(addr)
        sock.close()
        # a stale socket file from a killed worker must not block rebinding
        sock2, resolved2 = create_listener(addr)
        try:
            assert resolved2 == addr
            peer = connect_address(addr, timeout=5.0)
            peer.close()
        finally:
            sock2.close()
