"""Tests for GFLOPS accounting and report formatting."""

import pytest

from repro.metrics.gflops import gflops, speedup
from repro.metrics.report import format_series, format_table, results_dir, write_result


class TestGflops:
    def test_basic(self):
        assert gflops(2_000_000_000, 1.0) == 2.0

    def test_zero_time(self):
        assert gflops(100, 0.0) == 0.0

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_speedup_zero_candidate(self):
        with pytest.raises(ZeroDivisionError):
            speedup(1.0, 0.0)


class TestFormatTable:
    def test_headers_and_rows(self):
        t = format_table(["name", "val"], [("a", 1.5), ("bb", 20.25)])
        lines = t.splitlines()
        assert "name" in lines[0] and "val" in lines[0]
        assert "a" in lines[2]
        assert "20.250" in lines[3]

    def test_title(self):
        t = format_table(["x"], [(1,)], title="My Table")
        assert t.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        t = format_table(["col"], [])
        assert "col" in t

    def test_floatfmt(self):
        t = format_table(["v"], [(1.23456,)], floatfmt=".1f")
        assert "1.2" in t and "1.23" not in t

    def test_alignment(self):
        t = format_table(["name", "num"], [("x", 1), ("longer", 22)])
        lines = t.splitlines()
        # numbers right-aligned: the units digit is at a fixed column
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("22")


class TestSeries:
    def test_format(self):
        s = format_series("lj", [0.5, 0.6], [1.0, 2.0])
        assert s.startswith("lj:")
        assert "0.5:1.000" in s


class TestWriteResult:
    def test_writes_under_results_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_result("unit_test", "hello")
        assert path.read_text() == "hello\n"
        assert path.parent == results_dir()
        assert path.parent == tmp_path / "results"
