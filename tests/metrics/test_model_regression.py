"""Regression gate: the recalibrated cost model on the bench matrices.

Pins the acceptance criterion of the estimation PR — after per-kernel
stage recalibration, the model-error report on the two benchmark suite
profiles stays under the 0.25 mean gate with zero outlier chunks (the
post-fast-kernels outlier class must stay dead).
"""

import pytest

from repro.device.kernels import fit_cost_model
from repro.device.specs import v100_node
from repro.experiments import runner
from repro.metrics.modelerror import model_error_report


@pytest.fixture(scope="module", autouse=True)
def warm_kernel_path():
    """If a profile has to be regenerated (empty cache, kernel change),
    the first chunk must not absorb one-time process costs."""
    from repro.sparse.generators import banded
    from repro.spgemm.twophase import spgemm_twophase

    t = banded(64, 3, seed=0)
    spgemm_twophase(t, t)


class TestBenchProfileRegression:
    @pytest.mark.parametrize("abbr", ["stokes", "nlp"])
    def test_calibrated_model_error_under_gate(self, abbr):
        profile = runner.get_profile(abbr)
        cost = fit_cost_model([profile], node=v100_node())
        err = model_error_report(profile, cost)
        assert err.mean_abs_rel_error < 0.25
        assert err.outliers == 0

    @pytest.mark.parametrize("abbr", ["stokes", "nlp"])
    def test_calibration_improves_on_analytic_model(self, abbr):
        from repro.device.kernels import default_cost_model

        profile = runner.get_profile(abbr)
        analytic = default_cost_model(v100_node())
        calibrated = fit_cost_model([profile], node=v100_node())
        a_err = model_error_report(profile, analytic)
        c_err = model_error_report(profile, calibrated)
        assert c_err.mean_abs_rel_error <= a_err.mean_abs_rel_error
