"""Tests for model-vs-measured chunk-time comparison."""

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid, profile_chunks
from repro.device.kernels import default_cost_model
from repro.device.specs import v100_node
from repro.metrics import (
    measured_chunk_seconds,
    model_error_report,
    modeled_chunk_seconds,
)
from repro.sparse.generators import rmat


@pytest.fixture(scope="module")
def measured_profile():
    a = rmat(9, 8.0, seed=42)
    grid = ChunkGrid.regular(a.n_rows, a.n_cols, 2, 2)
    profile, _ = profile_chunks(a, a, grid, name="me")
    return profile


@pytest.fixture(scope="module")
def cost():
    return default_cost_model(v100_node())


class TestSeries:
    def test_modeled_positive_per_chunk(self, measured_profile, cost):
        modeled = modeled_chunk_seconds(measured_profile, cost)
        assert modeled.shape == (len(measured_profile.chunks),)
        assert np.all(modeled > 0)

    def test_measured_matches_profile(self, measured_profile):
        measured = measured_chunk_seconds(measured_profile)
        np.testing.assert_array_equal(
            measured, [c.measured_seconds for c in measured_profile.chunks]
        )

    def test_unmeasured_profile_rejected(self, measured_profile, cost):
        from dataclasses import replace

        stale = replace(
            measured_profile,
            chunks=tuple(
                replace(c, measured_seconds=-1.0) for c in measured_profile.chunks
            ),
        )
        with pytest.raises(ValueError, match="no measured"):
            measured_chunk_seconds(stale)


class TestReport:
    def test_report_fields(self, measured_profile, cost):
        rep = model_error_report(measured_profile, cost)
        assert rep.scale > 0
        assert rep.mean_abs_rel_error >= 0
        assert rep.max_abs_rel_error >= rep.mean_abs_rel_error
        assert -1.0 <= rep.correlation <= 1.0
        # the p95 sits between the median and the max, and the outlier
        # count (chunks with rel error > 50%) is bounded by the chunks
        assert rep.median_abs_rel_error <= rep.p95_abs_rel_error
        assert rep.p95_abs_rel_error <= rep.max_abs_rel_error
        assert 0 <= rep.outliers <= len(measured_profile.chunks)

    def test_outlier_count_matches_threshold(self, measured_profile, cost):
        import numpy as np

        from repro.metrics.modelerror import OUTLIER_REL_ERROR

        rep = model_error_report(measured_profile, cost)
        modeled = modeled_chunk_seconds(measured_profile, cost)
        measured = measured_chunk_seconds(measured_profile)
        rescaled = modeled * (measured.sum() / modeled.sum())
        rel = np.abs(rescaled - measured) / np.maximum(measured, 1e-12)
        assert rep.outliers == int((rel > OUTLIER_REL_ERROR).sum())

    def test_errors_are_fractions(self, measured_profile, cost):
        """All *_abs_rel_error fields are dimensionless fractions (1.0 =
        100%), never pre-multiplied percentages: the median — robust to
        near-zero measured times — sits within [0, max]."""
        rep = model_error_report(measured_profile, cost)
        assert 0.0 <= rep.median_abs_rel_error <= rep.max_abs_rel_error
        # a doubled measurement scale must leave the (relative) errors
        # untouched — they carry no seconds unit
        from dataclasses import replace

        scaled = replace(
            measured_profile,
            chunks=tuple(
                replace(c, measured_seconds=c.measured_seconds * 2.0)
                for c in measured_profile.chunks
            ),
        )
        rep2 = model_error_report(scaled, cost)
        assert rep2.mean_abs_rel_error == pytest.approx(rep.mean_abs_rel_error)
        assert rep2.median_abs_rel_error == pytest.approx(rep.median_abs_rel_error)
        assert rep2.scale == pytest.approx(rep.scale * 2.0)

    def test_perfect_model_has_zero_error(self, measured_profile, cost):
        """Feed the model's own (scaled) predictions back as measurements."""
        from dataclasses import replace

        modeled = modeled_chunk_seconds(measured_profile, cost)
        fake = replace(
            measured_profile,
            chunks=tuple(
                replace(c, measured_seconds=float(m) * 3.0)
                for c, m in zip(measured_profile.chunks, modeled)
            ),
        )
        rep = model_error_report(fake, cost)
        assert rep.scale == pytest.approx(3.0)
        assert rep.mean_abs_rel_error == pytest.approx(0.0, abs=1e-9)
        assert rep.median_abs_rel_error == pytest.approx(0.0, abs=1e-9)
        assert rep.correlation == pytest.approx(1.0)
