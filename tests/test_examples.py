"""Smoke tests: every shipped example runs to completion.

Each example script verifies its own numeric results internally (asserts
against dense/scipy oracles), so "runs without error" is a real check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, argv=None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "verified" in out

    def test_triangle_counting(self, capsys):
        run_example("triangle_counting.py")
        out = capsys.readouterr().out
        assert "triangles:" in out and "verified" in out

    def test_amg_galerkin(self, capsys):
        run_example("amg_galerkin.py")
        out = capsys.readouterr().out
        assert "verified" in out

    def test_schedule_explorer(self, capsys):
        run_example("schedule_explorer.py", ["stokes"])
        out = capsys.readouterr().out
        assert "executor comparison" in out
        assert "d2h_out1" in out  # the Fig. 6 interleaving is visible

    def test_schedule_explorer_rejects_unknown(self):
        with pytest.raises(SystemExit):
            run_example("schedule_explorer.py", ["nope"])

    def test_multi_gpu_scaling(self, capsys):
        run_example("multi_gpu_scaling.py", ["stokes"])
        out = capsys.readouterr().out
        assert "efficiency" in out

    def test_community_detection(self, capsys):
        run_example("community_detection.py")
        out = capsys.readouterr().out
        assert "recovered" in out
