"""Tests for the MKL-like 32-bit-index SpGEMM (the paper's rejected baseline)."""

import numpy as np
import pytest

import repro.cpu.mkl_like as mkl
from repro.sparse.generators import random_csr
from tests.conftest import assert_equals_scipy_product


class TestCorrectness:
    def test_matches_scipy(self, sample_matrix):
        c = mkl.spgemm_mkl_like(sample_matrix, sample_matrix)
        assert_equals_scipy_product(c, sample_matrix, sample_matrix)

    def test_rectangular(self):
        a = random_csr(12, 9, 30, seed=71)
        b = random_csr(9, 15, 28, seed=72)
        assert_equals_scipy_product(mkl.spgemm_mkl_like(a, b), a, b)

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            mkl.spgemm_mkl_like(a, a)


class TestInt32Limitation:
    """The paper: 'MKL Library only supports integer as the data type for
    the arrays row_offsets and col_ids, it can not handle large matrices'."""

    def test_large_upper_bound_rejected(self, sample_matrix, monkeypatch):
        # shrink the representable range so the suite-sized matrix "overflows"
        monkeypatch.setattr(mkl, "INT32_MAX", 10)
        with pytest.raises(mkl.IndexWidthError, match="INT32_MAX"):
            mkl.spgemm_mkl_like(sample_matrix, sample_matrix)

    def test_error_is_raised_before_compute(self, sample_matrix, monkeypatch):
        calls = []
        monkeypatch.setattr(mkl, "INT32_MAX", 10)
        monkeypatch.setattr(
            mkl, "dense_accumulate_rows",
            lambda *a, **k: calls.append(1),
        )
        with pytest.raises(mkl.IndexWidthError):
            mkl.spgemm_mkl_like(sample_matrix, sample_matrix)
        assert calls == []  # never reached the numeric work

    def test_error_is_overflow_error(self):
        assert issubclass(mkl.IndexWidthError, OverflowError)

    def test_within_range_accepted(self):
        a = random_csr(20, 20, 60, seed=73)
        c = mkl.spgemm_mkl_like(a, a)
        assert c.nnz > 0
