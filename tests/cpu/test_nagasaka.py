"""Tests for the multicore CPU SpGEMM baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.nagasaka import balanced_row_ranges, spgemm_nagasaka
from repro.sparse.formats import CSRMatrix
from repro.sparse.generators import random_csr, rmat
from tests.conftest import assert_equals_scipy_product


class TestCorrectness:
    def test_matches_scipy(self, sample_matrix):
        c = spgemm_nagasaka(sample_matrix, sample_matrix, num_threads=4)
        assert_equals_scipy_product(c, sample_matrix, sample_matrix)

    def test_rectangular(self):
        a = random_csr(15, 10, 40, seed=61)
        b = random_csr(10, 20, 35, seed=62)
        assert_equals_scipy_product(spgemm_nagasaka(a, b, num_threads=3), a, b)

    def test_single_thread(self, sample_matrix):
        c = spgemm_nagasaka(sample_matrix, sample_matrix, num_threads=1)
        assert_equals_scipy_product(c, sample_matrix, sample_matrix)

    def test_thread_count_invariance(self, sample_matrix):
        one = spgemm_nagasaka(sample_matrix, sample_matrix, num_threads=1)
        many = spgemm_nagasaka(sample_matrix, sample_matrix, num_threads=8)
        assert one == many

    def test_empty(self):
        a = CSRMatrix.empty(5, 5)
        assert spgemm_nagasaka(a, a).nnz == 0

    def test_default_thread_count(self, sample_matrix):
        c = spgemm_nagasaka(sample_matrix, sample_matrix)
        assert_equals_scipy_product(c, sample_matrix, sample_matrix)

    def test_dimension_mismatch(self):
        a = random_csr(4, 5, 8, seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            spgemm_nagasaka(a, a)

    def test_skewed_matrix(self):
        a = rmat(9, 6.0, seed=63)
        assert_equals_scipy_product(spgemm_nagasaka(a, a, num_threads=4), a, a)


class TestBalancedRanges:
    def test_covers_all_rows_contiguously(self):
        flops = np.array([5, 0, 10, 3, 8, 1])
        ranges = balanced_row_ranges(flops, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 6
        for (l0, h0), (l1, h1) in zip(ranges, ranges[1:]):
            assert h0 == l1

    def test_balances_flops(self):
        flops = np.array([10] * 100)
        ranges = balanced_row_ranges(flops, 4)
        loads = [flops[lo:hi].sum() for lo, hi in ranges]
        assert max(loads) <= 2 * min(loads)

    def test_all_flops_in_one_row(self):
        flops = np.array([0, 0, 1000, 0])
        ranges = balanced_row_ranges(flops, 4)
        covered = set()
        for lo, hi in ranges:
            covered.update(range(lo, hi))
        assert covered == set(range(4))

    def test_zero_flops(self):
        assert balanced_row_ranges(np.zeros(5, dtype=np.int64), 3) == [(0, 5)]

    def test_empty(self):
        assert balanced_row_ranges(np.array([], dtype=np.int64), 2) == []

    def test_bad_count(self):
        with pytest.raises(ValueError):
            balanced_row_ranges(np.array([1]), 0)

    @given(
        flops=st.lists(st.integers(0, 50), min_size=1, max_size=60),
        k=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, flops, k):
        flops = np.asarray(flops, dtype=np.int64)
        ranges = balanced_row_ranges(flops, k)
        assert len(ranges) <= k or len(ranges) <= flops.size
        covered = []
        for lo, hi in ranges:
            assert lo < hi
            covered.extend(range(lo, hi))
        assert covered == list(range(flops.size))
