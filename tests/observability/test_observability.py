"""Tests for the tracing & observability layer.

The load-bearing properties: tracing is a no-op by default (the null
tracer records nothing and allocates nothing per call), results are
bit-identical with tracing on or off, and the exported trace is valid
Chrome-trace-event JSON that round-trips through the validator.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.chunks import ChunkGrid
from repro.core.parallel import execute_chunk_grid
from repro.observability import (
    MEASURED_PID,
    NULL_TRACER,
    SIMULATED_PID,
    NullTracer,
    Tracer,
    as_tracer,
    category_breakdown,
    critical_path,
    lane_utilization,
    render_summary,
    timeline_events,
    tracer_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sparse.generators import rmat


@pytest.fixture(scope="module")
def problem():
    a = rmat(9, 8.0, seed=11)
    grid = ChunkGrid.regular(a.n_rows, a.n_cols, 2, 3)
    return a, grid


@pytest.fixture(scope="module")
def traced_run(problem):
    a, grid = problem
    tracer = Tracer()
    profile, outputs = execute_chunk_grid(
        a, a, grid, workers=3, keep_outputs=True, tracer=tracer
    )
    return tracer, profile, outputs


class TestTracer:
    def test_span_records_interval(self):
        tracer = Tracer()
        with tracer.span("work", "numeric", chunk=7):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.cat == "numeric"
        assert span.end >= span.start
        assert span.args == {"chunk": 7}
        assert span.lane == threading.current_thread().name

    def test_add_span_explicit_times(self):
        tracer = Tracer()
        tracer.add_span("q", "queue", 1.0, 2.5, lane="gpu-w_0")
        (span,) = tracer.spans
        assert span.lane == "gpu-w_0"
        assert span.duration == pytest.approx(1.5)

    def test_gauges_record_series(self):
        tracer = Tracer()
        tracer.gauge("lane[gpu]", queue_depth=3, in_flight=2)
        (g,) = tracer.gauges
        assert g.values == {"queue_depth": 3.0, "in_flight": 2.0}

    def test_thread_safety(self):
        tracer = Tracer()

        def worker(i):
            for _ in range(200):
                with tracer.span(f"s{i}", "numeric"):
                    pass
                tracer.gauge("g", v=i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans) == 800
        assert len(tracer.gauges) == 800


class TestNullTracer:
    def test_records_nothing(self):
        nt = NullTracer()
        with nt.span("x", "numeric"):
            pass
        nt.add_span("y", "queue", 0.0, 1.0)
        nt.gauge("g", v=1)
        assert nt.spans == ()
        assert nt.gauges == ()
        assert nt.wall_seconds() == 0.0
        assert not nt.enabled

    def test_span_handle_is_shared_singleton(self):
        """No per-call allocation: every span() returns one module-level
        no-op context manager — the zero-cost-when-disabled guarantee."""
        nt = NullTracer()
        h1 = nt.span("a", "numeric")
        h2 = nt.span("b", "queue", chunk=3)
        assert h1 is h2
        assert h1 is NULL_TRACER.span("c", "sink")

    def test_as_tracer_normalizes_none(self):
        assert as_tracer(None) is NULL_TRACER
        t = Tracer()
        assert as_tracer(t) is t


class TestExecutorTracing:
    def test_bit_identical_with_tracing(self, problem, traced_run):
        a, grid = problem
        _, _, traced_out = traced_run
        _, plain_out = execute_chunk_grid(a, a, grid, workers=1, keep_outputs=True)
        for row_t, row_p in zip(traced_out, plain_out):
            for m_t, m_p in zip(row_t, row_p):
                np.testing.assert_array_equal(m_t.row_offsets, m_p.row_offsets)
                np.testing.assert_array_equal(m_t.col_ids, m_p.col_ids)
                np.testing.assert_array_equal(m_t.data, m_p.data)

    def test_chunk_lifecycle_spans_present(self, problem, traced_run):
        a, grid = problem
        tracer, _, _ = traced_run
        cats = {s.cat for s in tracer.spans}
        assert {"queue", "analysis", "symbolic", "numeric", "sink"} <= cats
        # one span per chunk and phase
        for cat in ("analysis", "symbolic", "numeric", "sink"):
            chunks = sorted(
                int(s.name.split("[")[1].rstrip("]"))
                for s in tracer.spans if s.cat == cat
            )
            assert chunks == list(range(grid.num_chunks)), cat

    def test_gauges_sampled(self, traced_run):
        tracer, _, _ = traced_run
        names = {g.name for g in tracer.gauges}
        assert any(n.startswith("lane[") for n in names)
        assert any(n.startswith("slice_cache[") for n in names)

    def test_untraced_run_default_has_no_tracer_state(self, problem):
        """The default (no tracer) path goes through the null tracer."""
        a, grid = problem
        profile, _ = execute_chunk_grid(a, a, grid, workers=2)
        assert profile.has_measured_times  # timing still recorded
        assert NULL_TRACER.spans == ()


class TestSummary:
    def test_lane_utilization_and_critical_path(self, traced_run):
        tracer, _, _ = traced_run
        usages = lane_utilization(tracer)
        assert usages
        wall = tracer.wall_seconds()
        for u in usages:
            assert 0.0 <= u.utilization(wall) <= 1.0
            assert u.busy_seconds <= wall + 1e-9
        crit = critical_path(tracer)
        assert crit["lane"] in {u.lane for u in usages}
        assert crit["busy_seconds"] + crit["idle_seconds"] == pytest.approx(
            crit["wall_seconds"]
        )

    def test_category_breakdown_sorted_desc(self, traced_run):
        tracer, _, _ = traced_run
        totals = list(category_breakdown(tracer).values())
        assert totals == sorted(totals, reverse=True)
        assert all(t >= 0 for t in totals)

    def test_render_summary_mentions_lanes_and_critical_path(self, traced_run):
        tracer, _, _ = traced_run
        text = render_summary(tracer)
        assert "util %" in text
        assert "critical path" in text

    def test_empty_tracer_summary(self):
        text = render_summary(Tracer())
        assert "traced wall time" in text
        assert critical_path(Tracer())["lane"] is None


class TestChromeExport:
    def test_roundtrip_valid_chrome_trace(self, traced_run, tmp_path):
        """Exported JSON is structurally valid Chrome-trace-event format
        and survives a disk round trip."""
        tracer, _, _ = traced_run
        events = tracer_events(tracer)
        validate_chrome_trace(events)
        path = tmp_path / "t.json"
        write_chrome_trace(path, events, metadata={"k": "v"})
        payload = json.loads(path.read_text())
        assert payload["metadata"] == {"k": "v"}
        back = validate_chrome_trace(payload)
        assert [e["name"] for e in back] == [e["name"] for e in events]

    def test_span_events_have_microsecond_times(self, traced_run):
        tracer, _, _ = traced_run
        events = tracer_events(tracer)
        xs = [e for e in events if e["ph"] == "X"]
        assert xs
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] == MEASURED_PID

    def test_thread_metadata_per_lane(self, traced_run):
        tracer, _, _ = traced_run
        events = tracer_events(tracer)
        thread_names = {e["args"]["name"] for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert thread_names == {s.lane for s in tracer.spans}

    def test_simulated_timeline_as_sibling_process(self, problem):
        from repro.core.api import simulate_out_of_core
        from repro.core.chunks import profile_chunks
        from repro.core.schedule import export_chrome_events

        a, grid = problem
        profile, _ = profile_chunks(a, a, grid, name="sim")
        result = simulate_out_of_core(profile)
        events = export_chrome_events(result.timeline)
        validate_chrome_trace(events)
        assert all(e["pid"] == SIMULATED_PID for e in events)
        assert events == timeline_events(result.timeline)

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"nope": []})
        with pytest.raises(ValueError, match="required key"):
            validate_chrome_trace([{"ph": "X"}])
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(
                [{"name": "a", "ph": "Z", "pid": 0, "tid": 0}]
            )
        with pytest.raises(ValueError, match="negative"):
            validate_chrome_trace(
                [{"name": "a", "ph": "X", "pid": 0, "tid": 0,
                  "ts": -1.0, "dur": 2.0}]
            )


class TestStoreTracing:
    def test_memory_store_spans_and_bytes_gauge(self, problem):
        from repro.core.spill import MemoryChunkStore

        a, grid = problem
        tracer = Tracer()
        store = MemoryChunkStore(tracer=tracer)
        execute_chunk_grid(a, a, grid, workers=2, chunk_sink=store.put,
                           tracer=tracer)
        puts = [s for s in tracer.spans if s.name.startswith("store_put")]
        assert len(puts) == grid.num_chunks
        store.get(0, 0)
        assert any(s.name.startswith("store_get") for s in tracer.spans)
        gauges = [g for g in tracer.gauges if g.name == "chunk_store_bytes"]
        assert gauges
        assert gauges[-1].values["held"] == store.nbytes()

    def test_disk_store_traced(self, problem, tmp_path):
        from repro.core.spill import DiskChunkStore

        a, grid = problem
        tracer = Tracer()
        store = DiskChunkStore(tmp_path / "chunks", tracer=tracer)
        try:
            execute_chunk_grid(a, a, grid, chunk_sink=store.put, tracer=tracer)
            store.get(0, 0)
            cats = {s.cat for s in tracer.spans}
            assert "store" in cats
        finally:
            store.close()

    def test_stores_default_untraced(self, problem):
        from repro.core.spill import DiskChunkStore, MemoryChunkStore

        mem = MemoryChunkStore()
        disk = DiskChunkStore()
        try:
            assert mem._tracer is NULL_TRACER
            assert disk._tracer is NULL_TRACER
        finally:
            disk.close()


class TestTraceStreams:
    """Per-run trace streams: concurrent jobs each get their own tracer
    stamped with a stream label, and the combined Chrome export keeps
    one process row per stream instead of interleaving spans."""

    def test_tracer_stamps_its_stream_on_spans_and_gauges(self):
        tracer = Tracer(stream="job7")
        with tracer.span("multiply", "numeric", chunk=0):
            pass
        tracer.gauge("host_mem", reserved=10)
        assert all(s.stream == "job7" for s in tracer.spans)
        assert all(g.stream == "job7" for g in tracer.gauges)
        # default tracers keep the empty stream (single-run traces are
        # unchanged by the field)
        plain = Tracer()
        with plain.span("multiply", "numeric"):
            pass
        assert plain.spans[0].stream == ""

    def test_concurrent_tracers_stay_separate(self, problem):
        # two overlapping engine runs on their own tracers: no span
        # bleeds across, and each export validates on its own
        a, grid = problem
        tracers = {f"job{i}": Tracer(stream=f"job{i}") for i in (1, 2)}

        def run(label):
            execute_chunk_grid(a, a, grid, workers=2, backend="thread",
                               keep_outputs=False, tracer=tracers[label])

        threads = [threading.Thread(target=run, args=(label,))
                   for label in tracers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        for label, tracer in tracers.items():
            assert tracer.spans, f"{label} recorded nothing"
            assert all(s.stream == label for s in tracer.spans)
            validate_chrome_trace(tracer_events(tracer))

    def test_multi_tracer_events_one_pid_per_stream(self, tmp_path):
        from repro.observability import multi_tracer_events

        tracers = {}
        for label in ("job1", "job2", "server"):
            tracer = Tracer(stream=label)
            with tracer.span("work", "numeric", chunk=0):
                pass
            tracers[label] = tracer
        events = multi_tracer_events(tracers, base_pid=0)
        validate_chrome_trace(events)
        # one distinct Chrome pid per stream, named after it
        pids_by_name = {
            e["args"]["name"]: e["pid"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(pids_by_name) == {"job1", "job2", "server"}
        assert len(set(pids_by_name.values())) == 3
        # every X event lands under its stream's pid
        for label, tracer in tracers.items():
            pid = pids_by_name[label]
            owned = [e for e in events
                     if e["pid"] == pid and e["ph"] == "X"]
            assert len(owned) == len(tracer.spans)
        # and the combined payload round-trips through the file writer
        path = tmp_path / "multi.json"
        write_chrome_trace(path, events)
        with open(path) as fh:
            assert validate_chrome_trace(json.load(fh))


class TestNoOpOverhead:
    def test_null_tracer_overhead_is_negligible(self, problem):
        """Instrumentation with the null tracer costs ~a method call: the
        traced-but-disabled executor path must not measurably regress.
        Compare span-call cost directly (robust against machine noise)."""
        import time

        nt = NULL_TRACER
        n = 20000
        t0 = time.perf_counter()
        for _ in range(n):
            with nt.span("x", "numeric", chunk=1):
                pass
        per_call = (time.perf_counter() - t0) / n
        # generous bound: even slow CI boxes do a no-op CM in << 10 µs
        assert per_call < 10e-6