"""Bench: Figs. 5/6 — the transfer schedules rendered from simulation."""

from repro.experiments import fig56
from repro.core.api import simulate_out_of_core
from repro.experiments.runner import get_node, get_profile


def test_fig56_schedules(benchmark):
    text = benchmark.pedantic(fig56.run, rounds=1, iterations=1)
    print("\n" + text)
    assert "Fig. 5" in text and "Fig. 6" in text

    # the structural claim: in the divided schedule, the second info
    # transfer of chunk t sits between the two result portions of t-1
    profile, node = get_profile(fig56.MATRIX), get_node(fig56.MATRIX)
    tl = simulate_out_of_core(profile, node, divided_transfers=True).timeline
    order = profile.order_by_flops_desc()
    c0, c1 = order[0], order[1]
    seq = tl.order_of([
        f"d2h_out1[{c0}]", f"d2h_info2[{c1}]", f"d2h_out2[{c0}]",
    ])
    assert seq == [f"d2h_out1[{c0}]", f"d2h_info2[{c1}]", f"d2h_out2[{c0}]"]
