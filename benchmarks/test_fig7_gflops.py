"""Bench: Fig. 7 — CPU vs out-of-core GPU vs hybrid GFLOPS.

Paper shapes asserted:
* GPU over CPU between ~2x and ~3x on every matrix ("1.98 and 3.03, with
  most values around 2");
* hybrid adds a further ~1.2-1.6x ("between 1.16 and 1.57, most ~1.5");
* GFLOPS rank tracks the compression ratio (Section V.C's observation).
"""

from repro.experiments import fig07


def test_fig7_gflops(benchmark):
    rows = benchmark.pedantic(fig07.collect, rounds=1, iterations=1)
    print("\n" + fig07.run())

    assert len(rows) == 9
    for r in rows:
        assert 1.6 <= r.gpu_over_cpu <= 3.2, r
        assert 1.10 <= r.hybrid_over_gpu <= 1.65, r

    # hybrid total speedup over CPU peaks in the paper at 3.74x
    best_total = max(r.hybrid_over_cpu for r in rows)
    assert 2.5 <= best_total <= 4.0

    # GFLOPS track compression ratio: the top-compression matrix is the
    # fastest, the bottom one the slowest
    by_cr = sorted(rows, key=lambda r: r.compression_ratio)
    assert by_cr[-1].gpu_gflops == max(r.gpu_gflops for r in rows)
    assert by_cr[0].gpu_gflops == min(r.gpu_gflops for r in rows)
