"""Bench: Table I — simulated device specification report."""

from repro.experiments import table1


def test_table1_specs(benchmark):
    text = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    print("\n" + text)
    assert "Tesla V100" in text
    assert "80" in text  # SMs
