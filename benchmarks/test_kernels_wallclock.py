"""Wall-clock micro-benchmarks of the real kernels (not the simulator).

These measure actual Python execution time of the SpGEMM implementations
and the panel partitioner — the substrate's own performance, on which the
whole harness runs.
"""

import pytest

from repro.cpu.nagasaka import spgemm_nagasaka
from repro.sparse.generators import rmat
from repro.sparse.partition import partition_columns, partition_columns_naive
from repro.spgemm.esc import spgemm_esc
from repro.spgemm.rmerge import spgemm_rmerge
from repro.spgemm.twophase import spgemm_twophase


@pytest.fixture(scope="module")
def matrix():
    return rmat(12, 8.0, seed=123)


def test_bench_twophase(benchmark, matrix):
    result = benchmark.pedantic(
        lambda: spgemm_twophase(matrix, matrix), rounds=3, iterations=1
    )
    assert result.matrix.nnz > 0


def test_bench_esc(benchmark, matrix):
    result = benchmark.pedantic(
        lambda: spgemm_esc(matrix, matrix), rounds=3, iterations=1
    )
    assert result.nnz > 0


def test_bench_rmerge(benchmark, matrix):
    result = benchmark.pedantic(
        lambda: spgemm_rmerge(matrix, matrix), rounds=3, iterations=1
    )
    assert result.nnz > 0


def test_bench_nagasaka_multicore(benchmark, matrix):
    result = benchmark.pedantic(
        lambda: spgemm_nagasaka(matrix, matrix), rounds=3, iterations=1
    )
    assert result.nnz > 0


def test_bench_partition_coloffset(benchmark, matrix):
    """The Section III.D col_offset partitioner."""
    panels = benchmark.pedantic(
        lambda: partition_columns(matrix, 8), rounds=3, iterations=1
    )
    assert len(panels) == 8


def test_bench_partition_naive(benchmark, matrix):
    """The rescanning baseline the paper optimizes away."""
    panels = benchmark.pedantic(
        lambda: partition_columns_naive(matrix, 8), rounds=1, iterations=1
    )
    assert len(panels) == 8
