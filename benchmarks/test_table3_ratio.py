"""Bench: Table III — 65 %-ratio GPU chunk count vs exhaustive best.

Paper: the fixed ratio matches the exhaustive optimum for 7 of 9
matrices; the two misses cost only 2.95 % and 4.30 %.  We assert at least
6 of 9 exact matches, misses within one chunk, and small drops.
"""

from repro.experiments import table3


def test_table3_ratio(benchmark):
    rows = benchmark.pedantic(table3.collect, rounds=1, iterations=1)
    print("\n" + table3.run())

    assert len(rows) == 9
    matches = sum(r.matches for r in rows)
    assert matches >= 6, f"only {matches}/9 matched (paper: 7/9)"
    for r in rows:
        assert abs(r.ratio_count - r.best_count) <= 1, r
        assert r.drop_percent <= 8.0, r
