"""Bench: chunk-size sensitivity (the paper's Sec. IV.A tuning)."""

from repro.experiments import chunksweep
from repro.experiments.runner import get_profile


def test_chunk_sweep(benchmark):
    points = benchmark.pedantic(chunksweep.collect, rounds=1, iterations=1)
    print("\n" + chunksweep.run())

    by_matrix = {}
    for p in points:
        by_matrix.setdefault(p.abbr, []).append(p)

    for abbr, pts in by_matrix.items():
        pts.sort(key=lambda p: p.chunks)
        # finer grids never help once past the planner's scale: the finest
        # grid is always slower than the coarsest feasible one
        feasible = [p for p in pts if p.fits]
        assert feasible, abbr
        best_feasible = max(feasible, key=lambda p: p.async_gflops)
        assert best_feasible.async_gflops >= pts[-1].async_gflops, abbr
        # the planner's automatic grid is within 10% of the best feasible
        planner = get_profile(abbr)
        g = (planner.grid.num_row_panels, planner.grid.num_col_panels)
        chosen = [p for p in pts if p.grid == g]
        if chosen:
            assert chosen[0].async_gflops >= 0.9 * best_feasible.async_gflops, abbr
