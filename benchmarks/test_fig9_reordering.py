"""Bench: Fig. 9 — hybrid with vs without chunk reordering.

Paper: reordering (dense chunks to the GPU) gives a significant gain over
the default natural-order assignment at the same 65 % flop ratio.  At our
chunk granularity we assert reordering is never meaningfully worse and
wins on most matrices.
"""

from repro.experiments import fig09


def test_fig9_reordering(benchmark):
    rows = benchmark.pedantic(fig09.collect, rounds=1, iterations=1)
    print("\n" + fig09.run())

    assert len(rows) == 9
    wins = sum(1 for r in rows if r.gain > 1.0)
    assert wins >= 6, f"reordering won on only {wins}/9 matrices"
    for r in rows:
        assert r.gain >= 0.98, r  # never meaningfully worse
