"""Bench (extension): multi-GPU scaling of the asynchronous pipeline."""

from repro.experiments import scaling


def test_scaling_multigpu(benchmark):
    rows = benchmark.pedantic(scaling.collect, rounds=1, iterations=1)
    print("\n" + scaling.run())

    assert len(rows) == 9
    for r in rows:
        # monotone improvement, bounded by linear scaling
        for i in range(1, len(r.times)):
            assert r.times[i] <= r.times[i - 1] * 1.001, r
        assert 1.0 < r.speedup(1) <= 2.0, r
        assert r.speedup(2) <= 4.0, r
