"""Bench: hash vs dense accumulator crossover (DESIGN.md Sec. 5).

Measures the real wall-clock of the two accumulators on output rows of
increasing density, locating the regime boundary the row-grouping policy
(paper Fig. 3: dense accumulation for dense rows, hash for sparse rows)
exploits.
"""

import time

import numpy as np

from repro.sparse.generators import random_csr
from repro.spgemm.accumulators import dense_accumulate_rows, hash_accumulate_rows
from repro.spgemm.upperbound import row_upper_bound
from repro.metrics.report import format_table, write_result


def _measure(a, b, repeats=3):
    rows = np.arange(a.n_rows)
    work = row_upper_bound(a, b)
    t_hash = min(
        _timed(lambda: hash_accumulate_rows(a, b, rows, work)) for _ in range(repeats)
    )
    t_dense = min(
        _timed(lambda: dense_accumulate_rows(a, b, rows)) for _ in range(repeats)
    )
    return t_hash, t_dense


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_accumulator_crossover(benchmark):
    def sweep():
        out = []
        width = 2048
        for degree in (2, 8, 32, 128):
            a = random_csr(512, width, 512 * degree, seed=degree)
            b = random_csr(width, width, width * degree, seed=degree + 1)
            t_hash, t_dense = _measure(a, b)
            density = degree * degree / width  # ~ products per output slot
            out.append((degree, density, t_hash, t_dense))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["avg degree", "output density est.", "hash (s)", "dense (s)", "dense/hash"],
        [
            (d, round(dens, 4), round(th, 4), round(td, 4), round(td / th, 2))
            for d, dens, th, td in rows
        ],
        title="Accumulator crossover: hash wins sparse, dense wins dense",
    )
    write_result("accumulator_crossover", table)
    print("\n" + table)

    # the relative advantage of dense accumulation must improve (ratio
    # decrease) as rows get denser — the premise of the grouping policy
    ratios = [td / th for _, _, th, td in rows]
    assert ratios[-1] < ratios[0]
