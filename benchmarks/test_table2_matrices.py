"""Bench: Table II — input-matrix features.

Shape assertions: every matrix's compression ratio is >= 2 (products
cannot outnumber outputs), and the suite preserves the paper's ranking:
LiveJournal graphs lowest, Wikipedia next, then stokes < uk-2002 < nlp.
"""

from repro.experiments import table2


def test_table2_matrices(benchmark):
    rows = benchmark.pedantic(table2.collect, rounds=1, iterations=1)
    print("\n" + table2.run())

    by_abbr = {r.abbr: r for r in rows}
    assert len(rows) == 9
    for r in rows:
        assert r.cr >= 2.0

    socials = [by_abbr[a].cr for a in ("lj2008", "com-lj", "soc-lj")]
    wikis = [by_abbr[a].cr for a in ("wiki0206", "wiki1104", "wiki0925")]
    assert max(socials) < min(wikis)
    assert max(wikis) < by_abbr["stokes"].cr
    assert by_abbr["stokes"].cr < by_abbr["uk-2002"].cr < by_abbr["nlp"].cr
