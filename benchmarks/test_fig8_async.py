"""Bench: Fig. 8 — asynchronous vs synchronous GPU execution.

Paper: 6.8 % to 17.7 % speedup, bounded by the transfer share of Fig. 4.
"""

from repro.experiments import fig04, fig08


def test_fig8_async(benchmark):
    rows = benchmark.pedantic(fig08.collect, rounds=1, iterations=1)
    print("\n" + fig08.run())

    assert len(rows) == 9
    for r in rows:
        assert 1.04 <= r.speedup <= 1.22, r

    # consistency with Fig. 4: the speedup cannot exceed what hiding all
    # computation under the transfers would give
    tf = {r.abbr: r.transfer_fraction for r in fig04.collect()}
    for r in rows:
        upper = 1.0 / tf[r.abbr]
        assert r.speedup <= upper + 1e-6, (r, upper)
