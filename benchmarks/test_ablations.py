"""Bench: ablations of the paper's design choices (DESIGN.md Section 5)."""

from repro.experiments import ablations


def test_preallocation_ablation(benchmark):
    rows = benchmark.pedantic(ablations.preallocation_rows, rounds=1, iterations=1)
    for r in rows:
        # dynamic allocation's malloc barriers always cost something
        assert r.penalty > 1.0, r


def test_divided_transfer_ablation(benchmark):
    rows = benchmark.pedantic(ablations.divided_transfer_rows, rounds=1, iterations=1)
    for r in rows:
        # monolithic transfers are never better than the Fig. 6 split
        assert r.penalty >= 0.999, r


def test_unified_memory_ablation(benchmark):
    rows = benchmark.pedantic(ablations.unified_memory_rows, rounds=1, iterations=1)
    for r in rows:
        # page-fault migration wastes bandwidth on every matrix
        assert r.penalty > 2.0, r


def test_full_ablation_report(benchmark):
    text = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    print("\n" + text)
    assert "pre-allocation" in text


def test_input_residency_ablation(benchmark):
    rows = benchmark.pedantic(ablations.input_residency_rows, rounds=1, iterations=1)
    for r in rows:
        # streaming panels per chunk always costs extra H2D traffic; the
        # reordered chunk order scatters panel reuse, so the penalty is real
        assert r.penalty >= 1.0, r


def test_pinned_memory_ablation(benchmark):
    rows = benchmark.pedantic(ablations.pinned_memory_rows, rounds=1, iterations=1)
    for r in rows:
        # the transfer-bound pipeline inherits the bandwidth loss almost 1:1
        assert 1.3 <= r.penalty <= 1.9, r
