"""Bench (extension): Sparse SUMMA process-grid scaling."""

from repro.distributed.summa import sparse_summa
from repro.experiments.runner import get_matrix
from repro.metrics.report import format_table, write_result


def test_summa_scaling(benchmark):
    a = get_matrix("stokes")

    def sweep():
        rows = []
        for q in (1, 2, 4):
            piped = sparse_summa(a, a, q, pipelined=True)
            serial = sparse_summa(a, a, q, pipelined=False)
            rows.append((q, piped, serial))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["grid", "pipelined (ms)", "serial (ms)", "pipelining gain"],
        [
            (f"{q}x{q}", round(p.elapsed * 1e3, 3), round(s.elapsed * 1e3, 3),
             round(s.elapsed / p.elapsed, 3))
            for q, p, s in rows
        ],
        title="Extension: Sparse SUMMA scaling on stokes (simulated grid)",
    )
    write_result("summa_scaling", table)
    print("\n" + table)

    times = [p.elapsed for _, p, _ in rows]
    assert times[1] < times[0] and times[2] < times[1]  # scales
    for q, p, s in rows:
        if q > 1:
            assert s.elapsed >= p.elapsed  # pipelining never hurts
