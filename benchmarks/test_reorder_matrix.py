"""Bench (extension): symmetric matrix reordering vs the pipeline.

Finding: matrix-level degree ordering *hurts* — it concentrates the flops
into one mega-chunk (skew ~100x), breaking both the transfer pipeline's
balance and the hybrid split.  The paper's *schedule-level* reordering
(Fig. 9) operates at the right altitude.  RCM is near-neutral on graphs.
"""

from repro.experiments import reorder_matrix


def test_reorder_matrix(benchmark):
    rows = benchmark.pedantic(reorder_matrix.collect, rounds=1, iterations=1)
    print("\n" + reorder_matrix.run())

    by_key = {(r.abbr, r.ordering): r for r in rows}
    for abbr in reorder_matrix.MATRICES:
        original = by_key[(abbr, "original")]
        degree = by_key[(abbr, "degree")]
        rcm = by_key[(abbr, "rcm")]
        # degree ordering sharpens skew dramatically...
        assert degree.chunk_flop_skew > 3 * original.chunk_flop_skew
        # ...and that costs performance in this framework
        assert degree.hybrid_gflops < original.hybrid_gflops
        # RCM is near-neutral (within 15%)
        assert rcm.hybrid_gflops > 0.85 * original.hybrid_gflops
