"""Benchmark-suite configuration.

Each figure/table bench (a) regenerates the paper's rows/series from the
cached chunk profiles, (b) asserts the paper's qualitative shape, and
(c) writes the rendered table under ``results/``.  Run with::

    pytest benchmarks/ --benchmark-only

The first run builds the matrix/profile cache under ``.cache`` (about a
minute); subsequent runs are pure scheduling simulation.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def warm_cache():
    """Build all nine profiles once so per-bench timings exclude kernel
    execution (they measure the harness itself)."""
    from repro.experiments.runner import all_abbrs, get_profile

    for abbr in all_abbrs():
        get_profile(abbr)
