"""Bench: Fig. 4 — transfer-time share of synchronous spECK.

Paper: 77.55 % to 89.65 % across the nine matrices.  We assert every
matrix lands in a slightly widened band (the shapes, not the exact
endpoints, are the reproduction target).
"""

from repro.experiments import fig04


def test_fig4_transfer_fraction(benchmark):
    rows = benchmark.pedantic(fig04.collect, rounds=1, iterations=1)
    print("\n" + fig04.run())

    assert len(rows) == 9
    for r in rows:
        assert 0.70 <= r.transfer_fraction <= 0.92, r
    spread = max(r.transfer_fraction for r in rows) - min(
        r.transfer_fraction for r in rows
    )
    assert spread < 0.2  # the paper's band is ~12 points wide
