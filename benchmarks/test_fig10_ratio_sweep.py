"""Bench: Fig. 10 — hybrid GFLOPS vs GPU flop-ratio sweep.

Paper: on two representative matrices (com-LiveJournal and nlpkkt200)
"the GFLOPS typically increases as we increase the ratio, but then
drops", with the fixed 65 % near the peak.
"""

from repro.experiments import fig10


def test_fig10_ratio_sweep(benchmark):
    series = benchmark.pedantic(fig10.collect, rounds=1, iterations=1)
    print("\n" + fig10.run())

    assert len(series) == 2
    for s in series:
        assert s.rises_then_drops(), s.abbr
        assert 0.55 <= s.peak_ratio <= 0.80, (s.abbr, s.peak_ratio)
        # 65% is within 5% of the peak GFLOPS
        at_65 = s.gflops[s.ratios.index(0.65)]
        assert at_65 >= 0.9 * max(s.gflops), s.abbr
