"""Triangle counting on a large graph via out-of-core SpGEMM.

One of the paper's motivating graph workloads: for an undirected simple
graph with adjacency ``A``, the wedge counts are ``A^2`` and the global
triangle count is ``sum(A^2 \u2218 A) / 6``.  The squaring is exactly the
paper's kernel; here the graph's square does not fit the simulated
device, so the hybrid CPU-GPU executor produces it chunk by chunk (the
``repro.apps.triangles`` library routes it through ``run_out_of_core``
when a node is passed).

Run:  python examples/triangle_counting.py
"""

import numpy as np

from repro.apps import count_triangles, symmetrize, triangles_per_vertex
from repro.core import run_hybrid
from repro.device import v100_node
from repro.sparse import rmat
from repro.sparse.ops import drop_explicit_zeros


def main() -> None:
    graph = symmetrize(rmat(11, 6.0, seed=7))
    print(f"graph: {graph.n_rows} vertices, {graph.nnz} directed edges")

    # the raw out-of-core squaring, to show the volume blow-up
    node = v100_node(device_memory_bytes=32 << 20)
    result = run_hybrid(graph, graph, node, name="triangles")
    a_squared = drop_explicit_zeros(result.matrix)
    print(
        f"A^2: nnz = {a_squared.nnz} "
        f"({a_squared.nnz / max(graph.nnz, 1):.1f}x the input, the paper's "
        "out-of-core motivation)"
    )
    print(f"simulated hybrid run: {result.summary()}")
    print(f"GPU chunks: {result.meta['num_gpu_chunks']} of {len(result.profile.chunks)}")

    # the library does the full computation (squaring + Hadamard + count)
    triangles = count_triangles(graph, node=node, assume_canonical=True)
    print(f"\ntriangles: {triangles}")

    per_vertex = triangles_per_vertex(graph, assume_canonical=True)
    top = np.argsort(per_vertex)[-3:][::-1]
    print("most triangle-dense vertices:", {int(v): int(per_vertex[v]) for v in top})

    # cross-check on the dense representation
    dense = graph.to_dense()
    expected = np.trace(dense @ dense @ dense) / 6.0
    assert abs(triangles - expected) < 1e-6, (triangles, expected)
    assert per_vertex.sum() == 3 * triangles
    print("verified against the dense trace formula")


if __name__ == "__main__":
    main()
