"""Schedule explorer: how the paper's design choices shape the timeline.

Profiles one evaluation-suite matrix and replays it under every executor
variant — synchronous, asynchronous (with/without divided transfers, with
pool vs dynamic allocation), hybrid with a ratio sweep — printing a
comparison table and a timeline excerpt showing the Fig. 6 transfer
interleaving.

Run:  python examples/schedule_explorer.py [matrix-abbr]
"""

import sys

from repro.core import simulate_cpu_baseline, simulate_hybrid, simulate_out_of_core
from repro.experiments.runner import all_abbrs, get_node, get_profile
from repro.metrics import format_table


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "nlp"
    if abbr not in all_abbrs():
        raise SystemExit(f"unknown matrix {abbr!r}; choose from {all_abbrs()}")

    print(f"building/loading profile for {abbr} ...")
    profile = get_profile(abbr)
    node = get_node(abbr)
    grid = profile.grid
    print(
        f"grid {grid.num_row_panels}x{grid.num_col_panels}, "
        f"{profile.total_flops / 1e6:.1f}M flops, "
        f"compression ratio {profile.compression_ratio():.2f}, "
        f"device memory {node.gpu.device_memory_bytes >> 20} MiB\n"
    )

    variants = [
        ("sync (partitioned spECK)",
         simulate_out_of_core(profile, node, mode="sync", order="natural")),
        ("async, natural order",
         simulate_out_of_core(profile, node, order="natural")),
        ("async, flops-desc (paper)",
         simulate_out_of_core(profile, node)),
        ("async, monolithic transfers",
         simulate_out_of_core(profile, node, divided_transfers=False)),
        ("async, dynamic allocation",
         simulate_out_of_core(profile, node, allocator="dynamic")),
        ("cpu baseline (Nagasaka)",
         simulate_cpu_baseline(profile, node)),
        ("hybrid 65% (paper)",
         simulate_hybrid(profile, node)),
        ("hybrid 65%, no reordering",
         simulate_hybrid(profile, node, reorder=False)),
    ]
    rows = [
        (name, round(r.elapsed * 1e3, 3), round(r.gflops, 3),
         round(r.transfer_fraction * 100, 1))
        for name, r in variants
    ]
    print(format_table(
        ["variant", "time (ms)", "GFLOPS", "transfer %"], rows,
        title=f"executor comparison on {abbr}",
    ))

    print("\nhybrid ratio sweep (Fig. 10):")
    for ratio in (0.45, 0.55, 0.65, 0.75, 0.85):
        r = simulate_hybrid(profile, node, ratio=ratio)
        bar = "#" * int(r.gflops * 30)
        print(f"  ratio {ratio:.2f}: {r.gflops:6.3f} GF  {bar}")

    print("\ntimeline excerpt (async pipeline, first ops — note the Fig. 6")
    print("interleaving of info and divided result transfers on d2h):")
    tl = simulate_out_of_core(profile, node).timeline
    print(tl.as_text(max_rows=24))


if __name__ == "__main__":
    main()
