"""Community detection with Markov clustering on the out-of-core executor.

MCL is a flagship SpGEMM consumer (the paper's related work runs it at
pre-exascale scale via pipelined Sparse SUMMA [33]).  Every *expansion*
step squares the column-stochastic matrix — here routed through the
out-of-core executor on a simulated device, exactly the paper's scenario
repeated once per iteration.

Run:  python examples/community_detection.py
"""

import numpy as np

from repro.apps import markov_clustering
from repro.device import v100_node
from repro.sparse import CSRMatrix, diagonal_blocks, random_csr
from repro.sparse.ops import add


def planted_partition(n: int, communities: int, *, seed: int) -> CSRMatrix:
    """Dense blocks on the diagonal + sparse background noise."""
    block = n // communities
    intra = diagonal_blocks(n, block, seed=seed, density=0.4)
    noise = random_csr(n, n, n // 2, seed=seed + 1)
    return add(intra, noise)


def main() -> None:
    communities = 5
    n = 250
    graph = planted_partition(n, communities, seed=77)
    print(f"planted-partition graph: {graph} with {communities} communities")

    node = v100_node(device_memory_bytes=1 << 30)
    result = markov_clustering(graph, inflation=2.0, node=node)

    print(
        f"MCL: {result.num_clusters} clusters in {result.iterations} iterations "
        f"(converged: {result.converged})"
    )

    # score the recovery: each planted community should be dominated by one
    # recovered cluster
    block = n // communities
    recovered = 0
    for c in range(communities):
        labels = result.labels[c * block : (c + 1) * block]
        counts = np.bincount(labels)
        purity = counts.max() / block
        marker = "recovered" if purity >= 0.9 else f"purity {purity:.0%}"
        print(f"  community {c}: {marker}")
        recovered += purity >= 0.9
    assert recovered >= communities - 1, "MCL failed to recover the planted structure"
    print(f"\n{recovered}/{communities} planted communities recovered")


if __name__ == "__main__":
    main()
