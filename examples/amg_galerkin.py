"""Algebraic-multigrid Galerkin product via out-of-core SpGEMM.

The paper's other motivating workload: AMG preconditioners build the
coarse-grid operator with the triple product ``A_c = R · A · P`` where
``P`` is the prolongation (here: piecewise-constant aggregation) and
``R = Pᵀ``.  Both multiplications run through the out-of-core executor.

Run:  python examples/amg_galerkin.py
"""

import numpy as np

from repro.core import run_out_of_core
from repro.core.chunks import ChunkGrid
from repro.device import v100_node
from repro.sparse import CSRMatrix, banded
from repro.sparse.ops import transpose


def aggregation_prolongator(n_fine: int, agg_size: int) -> CSRMatrix:
    """Piecewise-constant aggregation: fine point i -> aggregate i // k."""
    n_coarse = (n_fine + agg_size - 1) // agg_size
    cols = np.arange(n_fine, dtype=np.int64) // agg_size
    return CSRMatrix(
        n_fine, n_coarse,
        np.arange(n_fine + 1, dtype=np.int64),
        cols,
        np.ones(n_fine),
    )


def main() -> None:
    # a 2D-stencil-like fine operator
    n_fine = 20_000
    a_fine = banded(n_fine, 8, seed=3, fill=0.5)
    p = aggregation_prolongator(n_fine, agg_size=4)
    r = transpose(p)
    print(f"fine operator: {a_fine}")
    print(f"prolongator:   {p}")

    node = v100_node(device_memory_bytes=48 << 20)

    # step 1: AP = A x P   (tall-times-narrow; grid planned automatically)
    ap_run = run_out_of_core(a_fine, p, node, name="A*P")
    ap = ap_run.matrix
    print(f"\nA*P  : {ap}   [{ap_run.summary()}]")

    # step 2: A_c = R x AP  (explicit grid to show the manual path)
    grid = ChunkGrid.regular(r.n_rows, ap.n_cols, 2, 2)
    ac_run = run_out_of_core(r, ap, node, grid=grid, name="R*(AP)")
    a_coarse = ac_run.matrix
    print(f"R*AP : {a_coarse}   [{ac_run.summary()}]")

    # verify the Galerkin product against scipy's independent SpGEMM
    expected = (r.to_scipy() @ a_fine.to_scipy() @ p.to_scipy()).todense()
    np.testing.assert_allclose(np.asarray(a_coarse.to_dense()), expected, atol=1e-9)
    print("\nverified: out-of-core Galerkin product matches scipy R·A·P")

    coarsening = a_fine.n_rows / a_coarse.n_rows
    print(
        f"coarsening {a_fine.n_rows} -> {a_coarse.n_rows} rows "
        f"({coarsening:.0f}x), operator nnz {a_fine.nnz} -> {a_coarse.nnz}"
    )

    # close the loop: use the SpGEMM-built hierarchy to precondition CG on
    # an SPD Poisson system (the paper's "preconditioners such as AMG")
    from repro.apps import AMGPreconditioner, conjugate_gradient, spmv
    from repro.sparse import CSRMatrix

    n = 1200
    poisson = CSRMatrix.from_dense(
        2.0 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
    )
    rhs = np.ones(n)
    plain = conjugate_gradient(poisson, rhs, tol=1e-8, max_iterations=4000)
    pre = AMGPreconditioner(poisson, agg_size=4, max_levels=5, min_size=20, node=node)
    amg = conjugate_gradient(poisson, rhs, preconditioner=pre, tol=1e-8,
                             max_iterations=4000)
    print(
        f"\nPCG on 1-D Poisson (n={n}): plain CG {plain.iterations} iters, "
        f"AMG-preconditioned {amg.iterations} iters "
        f"({pre.num_levels} levels built via Galerkin SpGEMMs)"
    )
    assert amg.converged and amg.iterations < plain.iterations


if __name__ == "__main__":
    main()
