"""Quickstart: out-of-core SpGEMM on a simulated CPU-GPU node.

Builds a power-law graph matrix, squares it with the out-of-core
framework against a deliberately small simulated device (so the output
cannot fit), verifies the result against the in-core kernel, and prints
the simulated execution metrics of the synchronous baseline, the
asynchronous pipeline, and the hybrid CPU+GPU executor.

Run:  python examples/quickstart.py
"""

from repro.core import (
    run_out_of_core,
    simulate_cpu_baseline,
    simulate_hybrid,
    simulate_out_of_core,
    spgemm,
)
from repro.device import v100_node
from repro.sparse import rmat


def main() -> None:
    # a 4096-vertex social-style graph, C = A x A
    a = rmat(12, 10.0, seed=42)
    print(f"input: {a}")

    # a device small enough that the output working set cannot fit
    node = v100_node(device_memory_bytes=96 << 20)

    # real computation + simulated timeline in one call
    result = run_out_of_core(a, a, node, name="quickstart")
    grid = result.profile.grid
    print(
        f"chunk grid: {grid.num_row_panels} x {grid.num_col_panels} "
        f"({grid.num_chunks} chunks), output nnz = {result.matrix.nnz}"
    )

    # verify against the in-core kernel
    reference = spgemm(a, a)
    assert result.matrix.allclose(reference), "out-of-core result mismatch!"
    print("verified: chunked result equals the in-core product\n")

    # compare the three executors on the same profiled workload
    profile = result.profile
    sync = simulate_out_of_core(profile, node, mode="sync", order="natural")
    asyn = simulate_out_of_core(profile, node, mode="async")
    cpu = simulate_cpu_baseline(profile, node)
    hybrid = simulate_hybrid(profile, node)

    for r in (cpu, sync, asyn, hybrid):
        print(f"  {r.summary()}")

    print(
        f"\nasync over sync : {asyn.speedup_over(sync):5.3f}x  "
        f"(paper: 1.07-1.18x)"
    )
    print(
        f"GPU over CPU    : {asyn.speedup_over(cpu):5.3f}x  (paper: 1.98-3.03x)"
    )
    print(
        f"hybrid over GPU : {hybrid.speedup_over(asyn):5.3f}x  (paper: 1.16-1.57x)"
    )


if __name__ == "__main__":
    main()
