"""Multi-GPU scaling of the out-of-core pipeline (extension demo).

The paper runs on one V100; its motivation is scaling SpGEMM to ever
larger matrices.  This example distributes the output chunks of one
evaluation matrix over 1-8 simulated GPUs (LPT on estimated chunk time,
each device running the full Fig. 6 pipeline on its own copy engines) and
prints the scaling curve, plus a combined N-GPU + CPU run.

Run:  python examples/multi_gpu_scaling.py [matrix-abbr]
"""

import sys

from repro.core.multigpu import assign_lpt, build_multi_gpu_engine, simulate_multi_gpu
from repro.device.kernels import default_cost_model
from repro.experiments.runner import all_abbrs, get_node, get_profile


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "com-lj"
    if abbr not in all_abbrs():
        raise SystemExit(f"unknown matrix {abbr!r}; choose from {all_abbrs()}")

    profile = get_profile(abbr)
    cm = default_cost_model(get_node(abbr))
    flops = profile.total_flops

    print(f"{abbr}: {len(profile.chunks)} chunks, {flops / 1e6:.1f}M flops\n")
    print("GPUs   time (ms)   GFLOPS   speedup   efficiency")
    base = None
    for gpus in (1, 2, 3, 4, 8):
        tl = simulate_multi_gpu(profile, cm, gpus)
        t = tl.makespan()
        base = base or t
        speedup = base / t
        print(
            f"{gpus:>4}   {t * 1e3:9.3f}   {flops / t / 1e9:6.3f}   "
            f"{speedup:7.2f}   {speedup / gpus * 100:9.1f}%"
        )

    print("\nwith the CPU joining at a 15% flop share:")
    for gpus in (1, 2, 4):
        asn = assign_lpt(profile, cm, gpus, cpu_share=0.15)
        tl = build_multi_gpu_engine(profile, cm, asn).run()
        print(
            f"{gpus} GPU + CPU: {tl.makespan() * 1e3:9.3f} ms "
            f"({flops / tl.makespan() / 1e9:.3f} GFLOPS, "
            f"{len(asn.cpu_chunks)} chunks on the CPU)"
        )

    print(
        "\nScaling is sublinear on purpose: the Table III chunk-count regime "
        "leaves only a handful of heavy chunks, so the tail chunk bounds "
        "balance — exactly the granularity limit the paper's single-GPU "
        "chunk reordering also faces."
    )


if __name__ == "__main__":
    main()
