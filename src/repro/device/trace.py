"""Execution timelines and overlap analysis.

A :class:`Timeline` is the output of a simulation run: one record per
command with start/end times.  The analysis helpers compute exactly the
quantities the paper's evaluation reports:

* ``transfer_fraction`` — Fig. 4's "percentage of data transfer time over
  total execution time";
* ``busy_time`` / ``busy_fraction`` per resource;
* ``overlap_time`` between two resources — how much compute actually hid
  under transfers (the asynchronous pipeline's win, Fig. 8);
* ordering assertions for the divided-transfer schedule of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TraceRecord", "Timeline"]


@dataclass(frozen=True)
class TraceRecord:
    label: str
    resource: str
    stream: Optional[str]
    start: float
    end: float
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping intervals (for capacity > 1 resources)."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        if lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


@dataclass(frozen=True)
class Timeline:
    records: Tuple[TraceRecord, ...]

    def makespan(self) -> float:
        """Total simulated execution time."""
        return max((r.end for r in self.records), default=0.0)

    def ops_on(self, resource: str) -> Tuple[TraceRecord, ...]:
        return tuple(r for r in self.records if r.resource == resource)

    def with_label(self, prefix: str) -> Tuple[TraceRecord, ...]:
        return tuple(r for r in self.records if r.label.startswith(prefix))

    def busy_intervals(self, resource: str) -> List[Tuple[float, float]]:
        return _merge_intervals(
            [(r.start, r.end) for r in self.records if r.resource == resource and r.duration > 0]
        )

    def busy_time(self, resource: str) -> float:
        """Wall time during which the resource serves at least one op."""
        return sum(hi - lo for lo, hi in self.busy_intervals(resource))

    def busy_fraction(self, resource: str) -> float:
        span = self.makespan()
        return self.busy_time(resource) / span if span > 0 else 0.0

    def transfer_fraction(self, directions: Sequence[str] = ("d2h", "h2d")) -> float:
        """Fraction of total time with a data transfer in flight (Fig. 4)."""
        intervals: List[Tuple[float, float]] = []
        for d in directions:
            intervals.extend(self.busy_intervals(d))
        merged = _merge_intervals(intervals)
        span = self.makespan()
        return sum(hi - lo for lo, hi in merged) / span if span > 0 else 0.0

    def overlap_time(self, res_a: str, res_b: str) -> float:
        """Wall time during which both resources are simultaneously busy."""
        a = self.busy_intervals(res_a)
        b = self.busy_intervals(res_b)
        out = 0.0
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                out += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return out

    def order_of(self, labels: Sequence[str]) -> List[str]:
        """The given labels sorted by their start time (for schedule
        assertions a la Fig. 6).  Unknown labels raise KeyError."""
        by_label: Dict[str, TraceRecord] = {}
        for r in self.records:
            by_label.setdefault(r.label, r)
        missing = [l for l in labels if l not in by_label]
        if missing:
            raise KeyError(f"labels not in timeline: {missing}")
        return sorted(labels, key=lambda l: (by_label[l].start, by_label[l].end))

    def to_chrome_trace(self) -> list:
        """Export as Chrome-tracing events (load via chrome://tracing or
        https://ui.perfetto.dev).  Resources map to rows (tids); times are
        microseconds."""
        events = []
        tids = {}
        for r in sorted(self.records, key=lambda r: (r.resource, r.start)):
            tid = tids.setdefault(r.resource, len(tids))
            events.append(
                {
                    "name": r.label,
                    "cat": r.stream or "none",
                    "ph": "X",
                    "ts": r.start * 1e6,
                    "dur": r.duration * 1e6,
                    "pid": 0,
                    "tid": tid,
                    "args": dict(r.meta),
                }
            )
        return events

    def as_text(self, max_rows: int = 60) -> str:
        """Human-readable dump, ordered by start time."""
        rows = sorted(self.records, key=lambda r: (r.start, r.end))
        lines = [f"{'start':>12} {'end':>12} {'resource':<10} {'stream':<8} label"]
        for r in rows[:max_rows]:
            lines.append(
                f"{r.start * 1e3:>10.3f}ms {r.end * 1e3:>10.3f}ms "
                f"{r.resource:<10} {str(r.stream or '-'):<8} {r.label}"
            )
        if len(rows) > max_rows:
            lines.append(f"... ({len(rows) - max_rows} more)")
        return "\n".join(lines)
