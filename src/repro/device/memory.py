"""Device-memory management (paper Section IV.B, "Pre-Allocation to Avoid
Dynamic Memory Allocation").

Two allocators model the two designs the paper contrasts:

``MemoryPool``
    the paper's solution: "A large chunk of memory is pre-allocated on
    device memory and shared by all dynamic data structures.  For each
    data structure, we maintain an offset, which is assigned incrementally
    as memory requirements are determined."  Allocation is an offset bump;
    ``reset()`` recycles the whole pool between chunks.  No interaction
    with streams whatsoever.

``DynamicAllocator``
    the cudaMalloc/cudaFree behaviour the unmodified spECK kernel relies
    on.  Each call is also a *synchronization hazard*: per the CUDA
    programming guide, "two commands from different streams cannot run
    concurrently if the host issues any device memory allocation" — the
    schedule builders turn every dynamic allocation into a barrier op.

Both enforce the device-memory capacity, which is what makes the planner's
panel sizing meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["DeviceOutOfMemory", "Allocation", "MemoryPool", "DynamicAllocator"]

#: allocations are aligned as cudaMalloc aligns (256 B)
ALIGNMENT = 256


class DeviceOutOfMemory(MemoryError):
    """Requested allocation exceeds the simulated device memory."""


def _align(nbytes: int) -> int:
    return (int(nbytes) + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class Allocation:
    """A carved-out region: pool offset (or virtual address) + size."""

    offset: int
    nbytes: int
    tag: str


class MemoryPool:
    """Offset-bump pre-allocated pool (the paper's own memory manager)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._offset = 0
        self._high_water = 0
        self._live: List[Allocation] = []

    def alloc(self, nbytes: int, tag: str = "") -> Allocation:
        """Bump-allocate; raises :class:`DeviceOutOfMemory` on overflow."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        size = _align(nbytes)
        if self._offset + size > self.capacity:
            raise DeviceOutOfMemory(
                f"pool exhausted: need {size} B at offset {self._offset}, "
                f"capacity {self.capacity} B (tag={tag!r})"
            )
        a = Allocation(offset=self._offset, nbytes=size, tag=tag)
        self._offset += size
        self._high_water = max(self._high_water, self._offset)
        self._live.append(a)
        return a

    def reset(self) -> None:
        """Recycle the whole pool (between output chunks)."""
        self._offset = 0
        self._live.clear()

    @property
    def used(self) -> int:
        return self._offset

    @property
    def high_water(self) -> int:
        """Peak usage across the run — reported by the planner tests."""
        return self._high_water

    @property
    def live_allocations(self) -> List[Allocation]:
        return list(self._live)


class DynamicAllocator:
    """cudaMalloc/cudaFree-style allocator with capacity accounting.

    ``alloc``/``free`` return nothing stream-related themselves; the
    *schedule builders* consult :attr:`event_count` and insert barrier ops,
    because the serialization is a property of the command stream, not of
    the allocator state.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._next_addr = 0
        self._live: Dict[int, Allocation] = {}
        self._used = 0
        self._high_water = 0
        self.event_count = 0  # total malloc + free calls issued

    def alloc(self, nbytes: int, tag: str = "") -> Allocation:
        size = _align(nbytes)
        if self._used + size > self.capacity:
            raise DeviceOutOfMemory(
                f"device OOM: need {size} B with {self._used} B live, "
                f"capacity {self.capacity} B (tag={tag!r})"
            )
        a = Allocation(offset=self._next_addr, nbytes=size, tag=tag)
        self._next_addr += size
        self._live[a.offset] = a
        self._used += size
        self._high_water = max(self._high_water, self._used)
        self.event_count += 1
        return a

    def free(self, allocation: Allocation) -> None:
        found = self._live.pop(allocation.offset, None)
        if found is None:
            raise ValueError(f"double free or foreign allocation: {allocation}")
        self._used -= found.nbytes
        self.event_count += 1

    def free_all(self) -> None:
        for a in list(self._live.values()):
            self.free(a)

    @property
    def used(self) -> int:
        return self._used

    @property
    def high_water(self) -> int:
        return self._high_water

    @property
    def live_count(self) -> int:
        return len(self._live)
