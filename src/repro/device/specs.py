"""Hardware specifications of the simulated node (paper Table I + Sec. V.A).

The experiments ran on an NVIDIA Tesla V100 (16 GB HBM2) attached over
PCIe to a 14-core Intel Xeon E5-2680 v2 with 128 GB of host memory.
:func:`v100_node` reproduces that node; ``device_memory_bytes`` can be
scaled down so the (smaller) synthetic matrices are genuinely out-of-core
for the simulated device, preserving the chunk-count regime of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUSpec", "CPUSpec", "NodeSpec", "v100_spec", "xeon_e5_2680_spec", "v100_node"]

GIB = 1 << 30


@dataclass(frozen=True)
class GPUSpec:
    """GPU hardware description (fields follow Table I)."""

    name: str
    architecture: str
    num_sms: int
    device_memory_bytes: int
    fp32_cores: int
    memory_interface: str
    register_file_per_sm_kb: int
    max_registers_per_thread: int
    shared_memory_per_sm_kb: int
    max_thread_block_size: int


@dataclass(frozen=True)
class CPUSpec:
    """Host CPU description."""

    name: str
    physical_cores: int
    threads_per_core: int
    base_clock_ghz: float
    host_memory_bytes: int

    @property
    def hardware_threads(self) -> int:
        return self.physical_cores * self.threads_per_core


@dataclass(frozen=True)
class NodeSpec:
    """One CPU-GPU node: the two processors plus the PCIe link."""

    gpu: GPUSpec
    cpu: CPUSpec
    # effective (achieved) PCIe bandwidths for pinned-memory transfers;
    # one DMA engine per direction, as the paper stresses in Section IV.B
    h2d_bandwidth: float = 4.0e9
    d2h_bandwidth: float = 4.0e9
    transfer_latency: float = 2e-6  # per-transfer fixed cost
    kernel_launch_latency: float = 0.5e-6

    def with_device_memory(self, nbytes: int) -> "NodeSpec":
        return replace(self, gpu=replace(self.gpu, device_memory_bytes=int(nbytes)))


def v100_spec(device_memory_bytes: int = 16 * GIB) -> GPUSpec:
    """The Tesla V100 of Table I."""
    return GPUSpec(
        name="Tesla V100",
        architecture="Volta",
        num_sms=80,
        device_memory_bytes=device_memory_bytes,
        fp32_cores=5120,
        memory_interface="4096-bit HBM2",
        register_file_per_sm_kb=65536 // 1024,
        max_registers_per_thread=255,
        shared_memory_per_sm_kb=96,
        max_thread_block_size=1024,
    )


def xeon_e5_2680_spec(host_memory_bytes: int = 128 * GIB) -> CPUSpec:
    """The host CPU of Section V.A (28 hardware threads)."""
    return CPUSpec(
        name="Intel Xeon E5-2680 v2",
        physical_cores=14,
        threads_per_core=2,
        base_clock_ghz=2.4,
        host_memory_bytes=host_memory_bytes,
    )


def v100_node(device_memory_bytes: int = 16 * GIB) -> NodeSpec:
    """The paper's experimental node, optionally with scaled device memory."""
    return NodeSpec(gpu=v100_spec(device_memory_bytes), cpu=xeon_e5_2680_spec())
