"""Simulated CPU-GPU node: discrete-event engine, specs, cost models, memory."""

from .engine import DeadlockError, Resource, SimEngine, SimOp
from .kernels import CostModel, default_cost_model
from .memory import Allocation, DeviceOutOfMemory, DynamicAllocator, MemoryPool
from .specs import CPUSpec, GPUSpec, NodeSpec, v100_node, v100_spec, xeon_e5_2680_spec
from .trace import Timeline, TraceRecord
from .unified import UnifiedMemoryModel

__all__ = [
    "DeadlockError",
    "Resource",
    "SimEngine",
    "SimOp",
    "CostModel",
    "default_cost_model",
    "Allocation",
    "DeviceOutOfMemory",
    "DynamicAllocator",
    "MemoryPool",
    "CPUSpec",
    "GPUSpec",
    "NodeSpec",
    "v100_node",
    "v100_spec",
    "xeon_e5_2680_spec",
    "Timeline",
    "TraceRecord",
    "UnifiedMemoryModel",
]
