"""Discrete-event simulation engine for the CPU-GPU node.

The paper's contribution is a *schedule*: which kernel/transfer runs when,
on which engine, overlapped with what.  This module provides the machinery
to express and execute such schedules deterministically:

* an :class:`SimOp` is one command — a kernel launch or a DMA transfer —
  with a fixed duration (from the cost model), a *resource* it occupies,
  an optional *stream*, and explicit dependencies;
* a :class:`Resource` is a servicing engine.  GPU compute, the H2D copy
  engine, the D2H copy engine and the aggregate CPU are each one resource.
  Resources are **strict FIFO in submission order with head-of-line
  blocking**, which is how CUDA copy engines and the kernel dispatcher
  behave — this is precisely why the paper must *order* its transfers
  (Fig. 5/6) instead of just issuing them on different streams;
* a *stream* adds an implicit in-order chain between its ops (CUDA stream
  semantics).

``SimEngine.run`` executes the whole DAG and returns a
:class:`~repro.device.trace.Timeline`.  Everything is deterministic: no
wall clock, no randomness — simulated time is plain float seconds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .trace import Timeline, TraceRecord

__all__ = ["SimOp", "Resource", "SimEngine", "DeadlockError"]


class DeadlockError(RuntimeError):
    """The schedule cannot make progress (cyclic waits or a dependency on
    an op stuck behind head-of-line blocking)."""


@dataclass
class SimOp:
    """One simulated command."""

    op_id: int
    label: str
    resource: str
    duration: float
    deps: Tuple["SimOp", ...]
    stream: Optional[str]
    meta: dict = field(default_factory=dict)
    start: float = -1.0
    end: float = -1.0
    _remaining_deps: int = 0

    @property
    def done(self) -> bool:
        return self.end >= 0.0

    def __repr__(self) -> str:
        return f"SimOp({self.op_id}, {self.label!r}, res={self.resource})"

    def __hash__(self) -> int:
        return self.op_id


class Resource:
    """A FIFO engine with ``capacity`` identical servers.

    Ops are dispatched strictly in submission order: the op at the queue
    head must start before any op behind it may (head-of-line blocking).
    """

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.queue: List[SimOp] = []
        self.head = 0  # index of the first not-yet-started op
        self.busy = 0  # servers currently occupied

    def next_startable(self) -> Optional[SimOp]:
        """Head op if it is ready and a server is free, else None."""
        if self.busy >= self.capacity or self.head >= len(self.queue):
            return None
        op = self.queue[self.head]
        if op._remaining_deps == 0:
            return op
        return None


class SimEngine:
    """Builds and runs a schedule of :class:`SimOp`."""

    def __init__(self) -> None:
        self._resources: Dict[str, Resource] = {}
        self._ops: List[SimOp] = []
        self._stream_tail: Dict[str, SimOp] = {}
        self._counter = itertools.count()
        self._ran = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_resource(self, name: str, capacity: int = 1) -> Resource:
        if name in self._resources:
            raise ValueError(f"resource {name!r} already exists")
        res = Resource(name, capacity)
        self._resources[name] = res
        return res

    def submit(
        self,
        label: str,
        resource: str,
        duration: float,
        *,
        deps: Sequence[SimOp] = (),
        stream: Optional[str] = None,
        **meta,
    ) -> SimOp:
        """Append one op.  Submission order fixes FIFO order per resource;
        ``stream`` chains the op after the stream's previous op."""
        if self._ran:
            raise RuntimeError("cannot submit to an engine that already ran")
        if resource not in self._resources:
            raise KeyError(f"unknown resource {resource!r}")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        dep_list = list(deps)
        if stream is not None and stream in self._stream_tail:
            dep_list.append(self._stream_tail[stream])
        op = SimOp(
            op_id=next(self._counter),
            label=label,
            resource=resource,
            duration=float(duration),
            deps=tuple(dep_list),
            stream=stream,
            meta=dict(meta),
        )
        op._remaining_deps = len(op.deps)
        self._ops.append(op)
        self._resources[resource].queue.append(op)
        if stream is not None:
            self._stream_tail[stream] = op
        return op

    def all_submitted(self) -> Tuple[SimOp, ...]:
        """Snapshot of every op submitted so far — used by the dynamic-
        allocation model to make a malloc depend on everything in flight
        (the CUDA behaviour Section IV.B works around)."""
        return tuple(self._ops)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> Timeline:
        """Execute the DAG; returns the complete timeline.

        Raises :class:`DeadlockError` when no progress is possible.
        An engine runs exactly once — its op and resource state is
        consumed by the run; build a fresh engine per schedule.
        """
        if self._ran:
            raise RuntimeError("SimEngine.run() may only be called once")
        self._ran = True
        dependents: Dict[int, List[SimOp]] = {op.op_id: [] for op in self._ops}
        for op in self._ops:
            for dep in op.deps:
                dependents[dep.op_id].append(op)

        finish_heap: List[Tuple[float, int, SimOp]] = []
        now = 0.0
        finished = 0

        def try_start_all() -> None:
            nonlocal now
            progress = True
            while progress:
                progress = False
                for res in self._resources.values():
                    while True:
                        op = res.next_startable()
                        if op is None:
                            break
                        ready = max((d.end for d in op.deps), default=0.0)
                        op.start = max(now, ready)
                        # a FIFO server cannot start an op before its queue
                        # predecessor started (submission-order dispatch)
                        op.end = op.start + op.duration
                        res.head += 1
                        res.busy += 1
                        heapq.heappush(finish_heap, (op.end, op.op_id, op))
                        progress = True

        try_start_all()
        total = len(self._ops)
        while finished < total:
            if not finish_heap:
                stuck = [op for op in self._ops if not op.done and op.start < 0]
                raise DeadlockError(
                    f"no progress with {len(stuck)} ops pending; first stuck: "
                    f"{stuck[0] if stuck else None} "
                    f"(waiting on {[d for d in stuck[0].deps if not d.done] if stuck else []})"
                )
            end, _, op = heapq.heappop(finish_heap)
            now = end
            self._resources[op.resource].busy -= 1
            finished += 1
            for succ in dependents[op.op_id]:
                succ._remaining_deps -= 1
            try_start_all()

        records = [
            TraceRecord(
                label=op.label,
                resource=op.resource,
                stream=op.stream,
                start=op.start,
                end=op.end,
                meta=op.meta,
            )
            for op in self._ops
        ]
        return Timeline(records=tuple(records))
