"""Unified-memory transfer model (the paper's introduction argument).

The intro rejects CUDA unified memory for out-of-core SpGEMM: pages are
migrated on fault, each fault has fixed overhead, and a page "may contain
some data which are useless and waste the bandwidth".  This module models
that mechanism so the ablation bench can quantify the argument against the
explicit chunked transfers the paper builds instead.

Model: moving ``useful_bytes`` that are scattered with *utilization* ``u``
(useful bytes per migrated page / page size) costs

    pages = ceil(useful_bytes / (u * page_size))
    time  = pages * fault_latency + pages * page_size / bandwidth

Explicit transfers move exactly ``useful_bytes`` with one latency per
chunk.  For CSR output chunks written densely, utilization would be high —
but SpGEMM's *access* pattern on inputs (row gathers of B) and the paged
write-back of a result that the host touches later are scattered, which is
the regime the paper's argument addresses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .specs import NodeSpec

__all__ = ["UnifiedMemoryModel"]


@dataclass(frozen=True)
class UnifiedMemoryModel:
    """Page-fault-driven migration cost model."""

    node: NodeSpec
    page_size: int = 64 * 1024  # UM migrates in 64 KiB blocks on Volta
    fault_latency: float = 25e-6  # GPU page-fault handling round trip

    def pages_for(self, useful_bytes: int, utilization: float) -> int:
        """Number of pages migrated to cover ``useful_bytes``."""
        if not 0 < utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")
        if useful_bytes <= 0:
            return 0
        return math.ceil(useful_bytes / (utilization * self.page_size))

    def migration_time(self, useful_bytes: int, utilization: float, direction: str = "d2h") -> float:
        """Time to fault + migrate the pages covering ``useful_bytes``."""
        pages = self.pages_for(useful_bytes, utilization)
        bw = self.node.d2h_bandwidth if direction == "d2h" else self.node.h2d_bandwidth
        return pages * self.fault_latency + pages * self.page_size / bw

    def wasted_bytes(self, useful_bytes: int, utilization: float) -> int:
        """Bandwidth spent on data nobody asked for."""
        pages = self.pages_for(useful_bytes, utilization)
        return max(pages * self.page_size - useful_bytes, 0)

    def explicit_transfer_time(self, useful_bytes: int, direction: str = "d2h") -> float:
        """The chunked alternative: exactly the useful bytes, one latency."""
        bw = self.node.d2h_bandwidth if direction == "d2h" else self.node.h2d_bandwidth
        return self.node.transfer_latency + useful_bytes / bw

    def overhead_factor(self, useful_bytes: int, utilization: float, direction: str = "d2h") -> float:
        """UM time / explicit time — the intro's 'why not unified memory'."""
        explicit = self.explicit_transfer_time(useful_bytes, direction)
        return self.migration_time(useful_bytes, utilization, direction) / explicit
