"""Cost models for simulated kernels and transfers.

The paper measures on real hardware; we substitute explicit analytic cost
models (documented in DESIGN.md) chosen so that the evaluation's *shapes*
hold:

* SpGEMM throughput rises with the chunk's compression ratio — the paper's
  central observation ("the performance is positively correlated with
  compression ratio", Section V.C) — on both processors, but more steeply
  on the GPU, which is why dense chunks belong on the GPU (Fig. 9);
* data transfer per output byte is flat (bandwidth), so low-compression
  chunks are transfer-bound: Fig. 4's 77-90 % transfer fractions;
* the GPU-to-CPU throughput ratio lands in the paper's 2-3x band, putting
  the hybrid optimum near ``Ratio = S/(S+1) = 65 %``.

Every knob lives on one dataclass so ablations and recalibration are one
``replace()`` away.  Times are seconds; ``flops`` follow the paper's
convention (multiply-add = 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from .specs import NodeSpec

__all__ = [
    "CostModel",
    "default_cost_model",
    "STAGES",
    "StageFit",
    "CalibratedCostModel",
    "fit_cost_model",
]


@dataclass(frozen=True)
class CostModel:
    """Analytic durations for every simulated operation."""

    node: NodeSpec

    # GPU numeric phase: rate = coeff * cr^exponent flops/s.  Compression
    # ratio cr is flops/nnz_out of the chunk, clamped below.
    gpu_numeric_coeff: float = 2.6e9
    gpu_numeric_cr_exp: float = 1.0
    # symbolic phase runs ~3x faster than numeric (no value traffic)
    gpu_symbolic_speedup: float = 3.0
    # row analysis streams the input elements once
    gpu_analysis_rate: float = 10.0e9  # input elements / s

    # multicore CPU (Nagasaka et al. hash SpGEMM, 28 threads): flatter
    # cr-scaling than the GPU — hashing costs per product dominate
    cpu_coeff: float = 0.122e9
    cpu_cr_exp: float = 0.90
    # per-chunk fixed cost on the CPU side (task dispatch, panel setup)
    cpu_chunk_overhead: float = 20e-6

    cr_min: float = 1.0
    cr_max: float = 256.0

    # ------------------------------------------------------------------
    def _cr(self, flops: int, nnz_out: int) -> float:
        if nnz_out <= 0:
            return self.cr_min
        cr = flops / nnz_out
        return min(max(cr, self.cr_min), self.cr_max)

    # ---------------------------- GPU ---------------------------------
    def t_analysis(self, input_nnz: int) -> float:
        """Row-analysis kernel: one pass over the chunk's input elements."""
        return self.node.kernel_launch_latency + input_nnz / self.gpu_analysis_rate

    def t_symbolic(self, flops: int, nnz_out: int, kernels: int = 1) -> float:
        rate = self.gpu_symbolic_speedup * self._gpu_rate(flops, nnz_out)
        return max(kernels, 1) * self.node.kernel_launch_latency + flops / rate

    def t_numeric(self, flops: int, nnz_out: int, kernels: int = 1) -> float:
        rate = self._gpu_rate(flops, nnz_out)
        return max(kernels, 1) * self.node.kernel_launch_latency + flops / rate

    def _gpu_rate(self, flops: int, nnz_out: int) -> float:
        cr = self._cr(flops, nnz_out)
        return self.gpu_numeric_coeff * cr**self.gpu_numeric_cr_exp

    # -------------------------- transfers -----------------------------
    def t_h2d(self, nbytes: int) -> float:
        return self.node.transfer_latency + nbytes / self.node.h2d_bandwidth

    def t_d2h(self, nbytes: int) -> float:
        return self.node.transfer_latency + nbytes / self.node.d2h_bandwidth

    def t_malloc(self) -> float:
        """Device malloc/free call overhead.  The real damage of dynamic
        allocation is not this latency but the cross-stream serialization
        it forces — the simulation models that with barrier dependencies
        (Section IV.B)."""
        return 2e-6

    # ---------------------------- CPU ----------------------------------
    def t_cpu_chunk(self, flops: int, nnz_out: int, cr: float = None) -> float:
        """Multicore CPU SpGEMM of one chunk (all threads on the chunk).

        Unlike the GPU (whose per-chunk time is transfer-dominated and so
        scales with the *chunk's* compression ratio), the multicore hash
        kernel's throughput tracks the matrix-level regularity: callers
        pass the matrix-global ``cr`` so every chunk of one matrix runs at
        the same flops rate, which is also what makes Algorithm 4's single
        flop ratio a meaningful split."""
        if cr is None:
            cr = self._cr(flops, nnz_out)
        cr = min(max(cr, self.cr_min), self.cr_max)
        rate = self.cpu_coeff * cr**self.cpu_cr_exp
        return self.cpu_chunk_overhead + flops / rate

    def expected_gpu_speedup(self, flops: int, nnz_out: int) -> float:
        """Model estimate of S = t_cpu / t_gpu for a workload — the paper
        derives the GPU work share as ``Ratio = S/(S+1)``."""
        t_gpu = self.t_numeric(flops, nnz_out) + self.t_symbolic(flops, nnz_out) + self.t_d2h(
            16 * max(nnz_out, 1)
        )
        t_cpu = self.t_cpu_chunk(flops, nnz_out)
        return t_cpu / t_gpu if t_gpu > 0 else 1.0


def default_cost_model(node: NodeSpec) -> CostModel:
    """The calibrated cost model used throughout the experiments."""
    return CostModel(node=node)


# ----------------------------------------------------------------------
# Per-kernel recalibration from measured TwoPhaseStats
# ----------------------------------------------------------------------

STAGES = ("analysis", "symbolic", "numeric")


def _stage_features(stage: str, c) -> Tuple[float, ...]:
    """Regression features of one chunk for one pipeline stage.

    Analysis streams the input once: [1, input_nnz].  Symbolic and
    numeric pay per-launch overhead plus per-flop and per-output work:
    [launches, flops, nnz_out].  Each kernel kind gets its own
    coefficients, so e.g. the native Gustavson kernel's ~15x lower
    per-flop cost no longer poisons the ESC fit (the post-PR-6 outlier
    class).
    """
    if stage == "analysis":
        return (1.0, float(c.input_nnz))
    launches = c.symbolic_kernels if stage == "symbolic" else c.numeric_kernels
    return (float(max(launches, 1)), float(c.flops), float(max(c.nnz_out, 0)))


@dataclass(frozen=True)
class StageFit:
    """Fitted nonnegative linear coefficients for one (kernel, stage)."""

    kernel: str
    stage: str
    coeffs: Tuple[float, ...]
    samples: int

    def seconds(self, c) -> float:
        feats = _stage_features(self.stage, c)
        return float(sum(w * x for w, x in zip(self.coeffs, feats)))


def _nonneg_lstsq(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Weighted least squares with iterative pruning of negative
    coefficients — a cheap stand-in for NNLS that keeps every stage
    prediction monotone in its workload features."""
    n_feat = x.shape[1]
    active = list(range(n_feat))
    while active:
        sol, *_ = np.linalg.lstsq(x[:, active], y, rcond=None)
        if (sol >= 0).all():
            full = np.zeros(n_feat)
            full[active] = sol
            return full
        active.pop(int(np.argmin(sol)))
    return np.zeros(n_feat)


class CalibratedCostModel:
    """Analytic :class:`CostModel` overlaid with per-kernel stage fits.

    Chunks whose :class:`~repro.core.chunks.ChunkStats` carry a kernel
    wire form with a fit are priced by the fitted per-stage linear
    model via :meth:`chunk_seconds`; everything else (transfers, CPU
    chunks, unknown kernels) falls through to the analytic base model.
    Consumers duck-type on ``chunk_seconds`` — see
    :func:`repro.metrics.modelerror.modeled_chunk_seconds`.
    """

    def __init__(self, base: CostModel, fits: Dict[Tuple[str, str], StageFit]):
        self.base = base
        self.fits = dict(fits)

    def __getattr__(self, name):
        return getattr(self.base, name)

    def kernels(self) -> Tuple[str, ...]:
        return tuple(sorted({kernel for kernel, _ in self.fits}))

    def chunk_seconds(self, c) -> float:
        """Modeled seconds of one executed chunk (all three stages)."""
        total = 0.0
        for stage in STAGES:
            fit = self.fits.get((c.kernel, stage))
            if fit is not None:
                total += max(fit.seconds(c), 0.0)
            elif stage == "analysis":
                total += self.base.t_analysis(c.input_nnz)
            elif stage == "symbolic":
                total += self.base.t_symbolic(c.flops, c.nnz_out, c.symbolic_kernels)
            else:
                total += self.base.t_numeric(c.flops, c.nnz_out, c.numeric_kernels)
        return total


def fit_cost_model(
    profiles: Iterable,
    node: NodeSpec = None,
    *,
    base: CostModel = None,
) -> CalibratedCostModel:
    """Fit per-kernel stage coefficients from measured chunk profiles.

    Every executed chunk with per-stage timings contributes one sample
    per stage, keyed by its recorded kernel wire form.  The regression
    is weighted by 1/measured so small chunks (whose absolute error is
    tiny but relative error dominates the model-error report) count as
    much as large ones.

    Stage targets are rescaled so they sum to the chunk's measured wall
    clock (``measured_seconds``) when it is available: the model-error
    report compares fitted totals against the wall clock, which includes
    per-chunk dispatch overhead beyond the instrumented stage spans, so
    fitting raw stage times alone would systematically under-predict
    small chunks.
    """
    if base is None:
        if node is None:
            from .specs import v100_node

            node = v100_node()
        base = default_cost_model(node)
    samples: Dict[Tuple[str, str], list] = {}
    for profile in profiles:
        for c in profile.chunks:
            if not c.executed:
                continue
            stage_secs = {
                stage: getattr(c, f"{stage}_seconds") for stage in STAGES
            }
            total = sum(sec for sec in stage_secs.values() if sec > 0)
            measured = getattr(c, "measured_seconds", -1.0)
            factor = measured / total if measured > 0 and total > 0 else 1.0
            for stage, sec in stage_secs.items():
                if sec < 0:
                    continue
                samples.setdefault((c.kernel, stage), []).append(
                    (_stage_features(stage, c), float(sec) * factor)
                )
    fits: Dict[Tuple[str, str], StageFit] = {}
    for (kernel, stage), rows in samples.items():
        x = np.array([feats for feats, _ in rows], dtype=np.float64)
        y = np.array([sec for _, sec in rows], dtype=np.float64)
        w = 1.0 / np.maximum(y, 1e-7)
        coeffs = _nonneg_lstsq(x * w[:, None], y * w)
        fits[(kernel, stage)] = StageFit(kernel, stage, tuple(coeffs), len(rows))
    return CalibratedCostModel(base, fits)
