"""Panel partitioning of the input matrices (paper Section III.D).

The out-of-core framework needs ``A`` split into *row panels* and ``B`` into
*column panels*:

* Row panels are trivial under CSR — rows are stored contiguously, so a
  panel is a slice of ``row_offsets`` plus a copy of the element range
  (:meth:`CSRMatrix.row_slice`).
* Column panels are the hard case: CSR cannot address a column range
  directly.  The paper uses a two-stage *count then fill* algorithm, and
  accelerates the scan with an auxiliary ``col_offset`` structure — a
  rolling per-row pointer marking where the next panel's elements begin —
  parallelized "in a prefix sum fashion".

Three implementations are provided:

``partition_columns_naive``
    the simplistic algorithm the paper describes first: for every panel,
    rescan every row from ``row_offsets[r]``.  Cost grows with
    ``num_panels × nnz``.
``build_col_offsets`` + ``partition_columns``
    the optimized scheme: one vectorized pass computes, for every row, the
    split points of all panels (this matrix *is* the paper's ``col_offset``
    structure — column ``p`` holds the pointer state after panel ``p`` is
    consumed); panels are then gathered with prefix-sum address arithmetic
    and no rescanning.

Both return panels whose column ids are renumbered to panel-local indices,
which is what the in-core SpGEMM kernel consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = [
    "panel_boundaries",
    "partition_rows",
    "partition_columns_naive",
    "build_col_offsets",
    "partition_columns",
    "PanelSet",
]


def panel_boundaries(n: int, num_panels: int) -> np.ndarray:
    """Boundaries of ``num_panels`` near-equal contiguous ranges of [0, n).

    Returns an int64 array of length ``num_panels + 1`` starting at 0 and
    ending at ``n``; earlier panels get the remainder (like
    ``numpy.array_split``).
    """
    if num_panels <= 0:
        raise ValueError("num_panels must be positive")
    if num_panels > max(n, 1):
        raise ValueError(f"cannot split {n} indices into {num_panels} panels")
    base, extra = divmod(n, num_panels)
    sizes = np.full(num_panels, base, dtype=INDEX_DTYPE)
    sizes[:extra] += 1
    out = np.zeros(num_panels + 1, dtype=INDEX_DTYPE)
    np.cumsum(sizes, out=out[1:])
    return out


@dataclass(frozen=True)
class PanelSet:
    """Panels of one matrix plus the boundaries they were cut at."""

    panels: Tuple[CSRMatrix, ...]
    boundaries: np.ndarray  # length num_panels + 1
    axis: str  # "rows" or "cols"

    def __len__(self) -> int:
        return len(self.panels)

    def __getitem__(self, i: int) -> CSRMatrix:
        return self.panels[i]

    def sizes(self) -> np.ndarray:
        return np.diff(self.boundaries)


def partition_rows(a: CSRMatrix, num_panels: int) -> PanelSet:
    """Split ``A`` into contiguous row panels (paper: the easy direction)."""
    bounds = panel_boundaries(a.n_rows, num_panels)
    panels = tuple(
        a.row_slice(int(bounds[i]), int(bounds[i + 1])) for i in range(num_panels)
    )
    return PanelSet(panels=panels, boundaries=bounds, axis="rows")


# ----------------------------------------------------------------------
# column panels — naive rescan
# ----------------------------------------------------------------------
def partition_columns_naive(b: CSRMatrix, num_panels: int) -> PanelSet:
    """Two-stage count/fill with full per-panel rescans (paper's baseline).

    For each panel ``[start_col, end_col)`` every row is scanned from its
    beginning; elements inside the column range are counted, then copied.
    Kept deliberately close to the paper's description — the per-row scan
    uses binary search rather than a linear walk so the test suite stays
    fast, but the panel × row rescan structure (the inefficiency the
    ``col_offset`` scheme removes) is preserved.
    """
    bounds = panel_boundaries(b.n_cols, num_panels)
    panels: List[CSRMatrix] = []
    for p in range(num_panels):
        start_col, end_col = int(bounds[p]), int(bounds[p + 1])
        # stage 1: count nnz of this panel per row
        counts = np.zeros(b.n_rows, dtype=INDEX_DTYPE)
        lo_idx = np.empty(b.n_rows, dtype=INDEX_DTYPE)
        for r in range(b.n_rows):
            lo, hi = b.row_offsets[r], b.row_offsets[r + 1]
            row_cols = b.col_ids[lo:hi]
            i0 = np.searchsorted(row_cols, start_col, side="left")
            i1 = np.searchsorted(row_cols, end_col, side="left")
            counts[r] = i1 - i0
            lo_idx[r] = lo + i0
        # stage 2: allocate, then fill
        row_offsets = np.zeros(b.n_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=row_offsets[1:])
        col_ids = np.empty(int(row_offsets[-1]), dtype=INDEX_DTYPE)
        data = np.empty(int(row_offsets[-1]), dtype=VALUE_DTYPE)
        for r in range(b.n_rows):
            n = counts[r]
            if n:
                dst = row_offsets[r]
                src = lo_idx[r]
                col_ids[dst : dst + n] = b.col_ids[src : src + n] - start_col
                data[dst : dst + n] = b.data[src : src + n]
        panels.append(
            CSRMatrix(b.n_rows, end_col - start_col, row_offsets, col_ids, data, check=False)
        )
    return PanelSet(panels=tuple(panels), boundaries=bounds, axis="cols")


# ----------------------------------------------------------------------
# column panels — col_offset structure, prefix-sum parallel fill
# ----------------------------------------------------------------------
def build_col_offsets(b: CSRMatrix, boundaries: Sequence[int]) -> np.ndarray:
    """The paper's ``col_offset`` structure for all panels at once.

    Returns an ``(n_rows, num_panels + 1)`` int64 matrix ``S`` where
    ``S[r, p]`` is the index into ``col_ids``/``data`` of the first element
    of row ``r`` belonging to panel ``p`` or later; ``S[r, num_panels]`` is
    the end of the row.  Row ``r``'s elements of panel ``p`` live in
    ``[S[r, p], S[r, p + 1])`` — no rescanning.

    Built in one vectorized pass ("prefix sum fashion"): classify every
    element into its panel, histogram per (row, panel), and prefix-sum
    along the panel axis.
    """
    bounds = np.asarray(boundaries, dtype=INDEX_DTYPE)
    if bounds[0] != 0 or bounds[-1] != b.n_cols or np.any(np.diff(bounds) <= 0):
        raise ValueError("boundaries must be strictly increasing from 0 to n_cols")
    num_panels = bounds.size - 1

    panel_of_elem = np.searchsorted(bounds, b.col_ids, side="right") - 1
    rows = b.expand_row_ids()
    counts = np.bincount(
        rows * num_panels + panel_of_elem, minlength=b.n_rows * num_panels
    ).reshape(b.n_rows, num_panels)

    splits = np.empty((b.n_rows, num_panels + 1), dtype=INDEX_DTYPE)
    splits[:, 0] = b.row_offsets[:-1]
    np.cumsum(counts, axis=1, out=splits[:, 1:])
    splits[:, 1:] += b.row_offsets[:-1, None]
    return splits


def partition_columns(b: CSRMatrix, num_panels: int) -> PanelSet:
    """Optimized column partition using the ``col_offset`` split matrix.

    Because rows are sorted by column id, each panel's elements occupy a
    contiguous sub-range of every row; the split matrix gives the ranges
    and one gather per panel copies them — total work O(nnz + rows·panels).
    """
    bounds = panel_boundaries(b.n_cols, num_panels)
    splits = build_col_offsets(b, bounds)

    panels: List[CSRMatrix] = []
    for p in range(num_panels):
        lo = splits[:, p]
        hi = splits[:, p + 1]
        counts = hi - lo
        row_offsets = np.zeros(b.n_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=row_offsets[1:])
        nnz = int(row_offsets[-1])
        # prefix-sum gather: element j of the panel comes from
        # lo[row(j)] + (j - row_offsets[row(j)])
        src = np.repeat(lo - row_offsets[:-1], counts) + np.arange(nnz, dtype=INDEX_DTYPE)
        col_ids = b.col_ids[src] - bounds[p]
        data = b.data[src]
        panels.append(
            CSRMatrix(
                b.n_rows, int(bounds[p + 1] - bounds[p]),
                row_offsets, col_ids, data, check=False,
            )
        )
    return PanelSet(panels=tuple(panels), boundaries=bounds, axis="cols")
