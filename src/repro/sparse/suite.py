"""The nine-matrix evaluation suite (paper Table II analogs).

The paper evaluates on nine SuiteSparse matrices too large for a V100:
three LiveJournal social graphs, three Wikipedia link-graph snapshots, the
uk-2002 web crawl, and two regular PDE/optimization matrices (stokes,
nlpkkt200).  Downloading SuiteSparse is impossible here, so each matrix
gets a *synthetic analog* reproducing the property that drives every
figure — the compression ratio ``flop(A^2)/nnz(A^2)`` and the row-length
skew — at a scale pure Python handles (DESIGN.md, substitution table):

====================  ==========  =====================  ===========
paper matrix          abbr        analog generator       target cr
====================  ==========  =====================  ===========
ljournal-2008         lj2008      R-MAT, strong skew     1.84 (~2+)
com-LiveJournal       com-lj      R-MAT, strong skew     1.77 (~2+)
soc-LiveJournal1      soc-lj      R-MAT, strong skew     1.76 (~2+)
stokes                stokes      banded, bw 2           4.46
uk-2002               uk-2002     banded + hub overlay   9.14
wikipedia-20070206    wiki0206    mild-skew R-MAT        2.66
nlpkkt200             nlp         banded, bw 5           10.28
wikipedia-20061104    wiki1104    mild-skew R-MAT        2.67
wikipedia-20060925    wiki0925    mild-skew R-MAT        2.67
====================  ==========  =====================  ===========

(A compression ratio below 2 is unreachable when every product is distinct
— the paper's sub-2 values for the LiveJournal graphs reflect its own flop
accounting; our analogs sit just above 2, preserving the *ranking*, which
is what the evaluation depends on.)

``C = A x A`` throughout, "as is the convention in other studies on
SpGEMM" (Section V.B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .formats import CSRMatrix
from .generators import banded, rmat
from .ops import add, row_stats

__all__ = ["SuiteEntry", "MatrixFeatures", "SUITE", "suite_names", "build_matrix", "matrix_features"]


@dataclass(frozen=True)
class SuiteEntry:
    """One matrix of the evaluation suite."""

    name: str          # paper's matrix name
    abbr: str          # paper's abbreviation (Table II column 2)
    family: str        # "social" | "wiki" | "web" | "mesh"
    build: Callable[[], CSRMatrix]
    paper_cr: float    # Table II compression ratio, for reference
    description: str


@dataclass(frozen=True)
class MatrixFeatures:
    """The Table II feature columns for one matrix."""

    name: str
    abbr: str
    n: int
    nnz: int
    flops: int           # flop(A^2)
    nnz_out: int         # nnz(A^2)
    gini: float          # row-length skew

    @property
    def compression_ratio(self) -> float:
        return self.flops / self.nnz_out if self.nnz_out else 0.0


def _social(seed: int, a: float, deg: float = 4.0) -> Callable[[], CSRMatrix]:
    """LiveJournal-style: heavy-tailed R-MAT at the lowest compression
    ratio of the suite (sparse rows, few product collisions)."""
    return lambda: rmat(15, deg, seed=seed, a=a, b=0.21, c=0.21)


def _wiki(seed: int) -> Callable[[], CSRMatrix]:
    """Wikipedia-style: milder skew, denser rows, slightly higher
    compression than the social graphs."""
    return lambda: rmat(13, 14.0, seed=seed, a=0.45, b=0.22, c=0.22)


def _stokes() -> CSRMatrix:
    """PDE mesh: regular sparse band, near-constant row length."""
    return banded(10_000, 14, seed=101, fill=0.32)


def _uk2002() -> CSRMatrix:
    """Web crawl: strong locality (wide sparse band) plus a hub overlay."""
    base = banded(1 << 14, 16, seed=202, fill=0.5)
    hubs = rmat(14, 0.3, seed=203, a=0.6, b=0.18, c=0.18)
    return add(base, hubs)


def _nlp() -> CSRMatrix:
    """KKT optimization matrix: widest band, highest compression."""
    return banded(20_000, 12, seed=303, fill=0.6)


SUITE: List[SuiteEntry] = [
    SuiteEntry("ljournal-2008", "lj2008", "social", _social(11, 0.50), 1.84,
               "LiveJournal follower graph (heavy-tailed degrees)"),
    SuiteEntry("com-LiveJournal", "com-lj", "social", _social(12, 0.52), 1.77,
               "LiveJournal community graph (heaviest skew of the three)"),
    SuiteEntry("soc-LiveJournal1", "soc-lj", "social", _social(13, 0.48, deg=4.2), 1.76,
               "LiveJournal social network"),
    SuiteEntry("stokes", "stokes", "mesh", _stokes, 4.46,
               "Stokes-flow discretization (regular narrow band)"),
    SuiteEntry("uk-2002", "uk-2002", "web", _uk2002, 9.14,
               ".uk web crawl (local link structure + hub pages)"),
    SuiteEntry("wikipedia-20070206", "wiki0206", "wiki", _wiki(21), 2.66,
               "Wikipedia link snapshot 2007-02-06"),
    SuiteEntry("nlpkkt200", "nlp", "mesh", _nlp, 10.28,
               "Nonlinear-programming KKT system (widest band)"),
    SuiteEntry("wikipedia-20061104", "wiki1104", "wiki", _wiki(22), 2.67,
               "Wikipedia link snapshot 2006-11-04"),
    SuiteEntry("wikipedia-20060925", "wiki0925", "wiki", _wiki(23), 2.67,
               "Wikipedia link snapshot 2006-09-25"),
]

_BY_NAME: Dict[str, SuiteEntry] = {}
for _e in SUITE:
    _BY_NAME[_e.name] = _e
    _BY_NAME[_e.abbr] = _e


def suite_names() -> List[str]:
    """Paper-order matrix names (Table II row order)."""
    return [e.name for e in SUITE]


def build_matrix(name: str) -> CSRMatrix:
    """Construct a suite matrix by name or abbreviation (deterministic)."""
    try:
        entry = _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown suite matrix {name!r}; known: {suite_names()}") from None
    return entry.build()


def matrix_features(
    name: str, matrix: Optional[CSRMatrix] = None
) -> MatrixFeatures:
    """Compute the Table II feature row for a suite matrix.

    ``nnz(A^2)`` requires a symbolic pass; pass a prebuilt ``matrix`` to
    skip regeneration.
    """
    from ..spgemm.flops import total_flops
    from ..spgemm.symbolic import symbolic_sort

    entry = _BY_NAME[name]
    a = matrix if matrix is not None else entry.build()
    flops = total_flops(a, a)
    nnz_out = int(symbolic_sort(a, a).sum())
    return MatrixFeatures(
        name=entry.name,
        abbr=entry.abbr,
        n=a.n_rows,
        nnz=a.nnz,
        flops=flops,
        nnz_out=nnz_out,
        gini=row_stats(a)["gini"],
    )
