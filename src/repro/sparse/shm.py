"""Zero-copy CSR operand transport over POSIX shared memory.

The process executor backend (:mod:`repro.core.executor`) escapes the GIL
by running chunk kernels in worker *processes*.  Shipping the CSR panels
of ``A`` and ``B`` to every worker by pickling would copy each panel once
per task through a pipe; instead the parent places each panel into one
:class:`multiprocessing.shared_memory.SharedMemory` block — a single
copy, once per run — and workers reconstruct read-only
:class:`~repro.sparse.formats.CSRMatrix` *views* over the mapped buffer
from a tiny :class:`SharedCSRDescriptor`.  Attachment is zero-copy: the
numpy arrays alias the shared mapping directly.

Layout of one segment (one CSR matrix)::

    [ row_offsets : (n_rows + 1) x int64 ]
    [ col_ids     :  nnz x int64        ]
    [ data        :  nnz x float64      ]

Lifecycle rules (see ``docs/EXECUTORS.md``):

* the *creator* owns the segment and must :meth:`~SharedCSR.unlink` it;
  attachers only :meth:`~SharedCSR.close`;
* attaching avoids ``resource_tracker`` churn: ``track=False`` on
  Python >= 3.13, and on earlier interpreters the duplicate registration
  is simply tolerated — the tracker is one process shared by the whole
  process tree and its cache is a *set*, so re-registering an attached
  name is a no-op while unregistering it would erase the creator's entry
  and make the eventual ``unlink`` complain about an unknown name;
* all segments of one executor run share a :func:`run_prefix` name
  prefix, so a crash anywhere can be swept up with
  :func:`cleanup_segments` (used in ``finally`` blocks and ``atexit``
  guards) by scanning ``/dev/shm``.
"""

from __future__ import annotations

import atexit
import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import List, Optional

import numpy as np

from .formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = [
    "SharedCSRDescriptor",
    "SharedCSR",
    "run_prefix",
    "cleanup_segments",
    "register_cleanup_prefix",
    "unregister_cleanup_prefix",
]

_INDEX_ITEMSIZE = np.dtype(INDEX_DTYPE).itemsize
_VALUE_ITEMSIZE = np.dtype(VALUE_DTYPE).itemsize


@dataclass(frozen=True)
class SharedCSRDescriptor:
    """Everything needed to reattach a shared CSR block: ``(name, shape,
    nnz)``.  Small and picklable — this tuple is the whole per-operand
    payload a worker receives."""

    name: str
    n_rows: int
    n_cols: int
    nnz: int

    @property
    def nbytes(self) -> int:
        return (self.n_rows + 1) * _INDEX_ITEMSIZE + self.nnz * (
            _INDEX_ITEMSIZE + _VALUE_ITEMSIZE
        )


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without disturbing the resource tracker.

    ``track=False`` (Python >= 3.13) skips registration outright.  Earlier
    interpreters register every attachment, but against the *shared*
    tracker process whose cache is a set — the duplicate is a no-op, and
    the one unregister issued by the owner's ``unlink`` keeps the books
    balanced.  (Explicitly unregistering here instead would erase the
    creator's entry and break that final unregister.)"""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= not supported (< 3.13)
        return shared_memory.SharedMemory(name=name)


class SharedCSR:
    """A CSR matrix living in one shared-memory segment.

    Create with :meth:`create` (copies the matrix in, once) in the owning
    process; reconstruct with :meth:`attach` (zero-copy views) in
    workers.  The object exposes ``.matrix`` — a
    :class:`~repro.sparse.formats.CSRMatrix` whose arrays alias the
    shared mapping — and ``.descriptor`` for shipping to other processes.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 descriptor: SharedCSRDescriptor, *, owner: bool) -> None:
        self._shm = shm
        self._descriptor = descriptor
        self._owner = owner
        self._unlinked = False
        self._matrix: Optional[CSRMatrix] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, matrix: CSRMatrix, name: str) -> "SharedCSR":
        """Copy ``matrix`` into a new shared segment named ``name``."""
        desc = SharedCSRDescriptor(
            name=name, n_rows=matrix.n_rows, n_cols=matrix.n_cols,
            nnz=matrix.nnz,
        )
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(desc.nbytes, 1)
        )
        shared = cls(shm, desc, owner=True)
        ro, ci, da = shared._views()
        ro[:] = matrix.row_offsets
        ci[:] = matrix.col_ids
        da[:] = matrix.data
        return shared

    @classmethod
    def attach(cls, descriptor: SharedCSRDescriptor) -> "SharedCSR":
        """Map an existing segment; ``.matrix`` gives zero-copy views."""
        return cls(_attach_untracked(descriptor.name), descriptor, owner=False)

    def _views(self):
        d = self._descriptor
        buf = self._shm.buf
        off_ro = 0
        off_ci = (d.n_rows + 1) * _INDEX_ITEMSIZE
        off_da = off_ci + d.nnz * _INDEX_ITEMSIZE
        ro = np.ndarray(d.n_rows + 1, dtype=INDEX_DTYPE, buffer=buf, offset=off_ro)
        ci = np.ndarray(d.nnz, dtype=INDEX_DTYPE, buffer=buf, offset=off_ci)
        da = np.ndarray(d.nnz, dtype=VALUE_DTYPE, buffer=buf, offset=off_da)
        return ro, ci, da

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def descriptor(self) -> SharedCSRDescriptor:
        return self._descriptor

    @property
    def name(self) -> str:
        return self._descriptor.name

    @property
    def matrix(self) -> CSRMatrix:
        """The CSR matrix as views over the shared buffer (no copy).

        The returned matrix must be treated as read-only and must not
        outlive this object — its arrays alias the mapping."""
        if self._matrix is None:
            ro, ci, da = self._views()
            self._matrix = CSRMatrix(
                self._descriptor.n_rows, self._descriptor.n_cols,
                ro, ci, da, check=False,
            )
        return self._matrix

    def copy_matrix(self) -> CSRMatrix:
        """An independent (heap-allocated) copy of the stored matrix."""
        ro, ci, da = self._views()
        return CSRMatrix(
            self._descriptor.n_rows, self._descriptor.n_cols,
            ro.copy(), ci.copy(), da.copy(), check=False,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (the segment itself survives)."""
        self._matrix = None
        try:
            self._shm.close()
        except BufferError:
            # numpy views of the buffer are still referenced somewhere;
            # the mapping is released when the process exits
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner only, idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        if self._owner:
            self.unlink()


# ----------------------------------------------------------------------
# run-scoped naming and crash-proof cleanup
# ----------------------------------------------------------------------
def run_prefix(run_id: Optional[str] = None) -> str:
    """A run-unique shared-memory name prefix.

    Every segment of one executor run — operand panels and per-chunk
    result blocks alike — is named under one prefix, so cleanup after
    *any* failure (worker SIGKILL, KeyboardInterrupt, sink exception)
    reduces to one directory sweep.

    The prefix embeds the creating pid *and* a random token, so two
    concurrent runs — whether in one process (server jobs) or in two
    processes on one host — can never collide, and a sweep of one
    prefix can never touch another run's live segments.  ``run_id``
    adds an explicit namespace component (e.g. a server run id) so
    long-lived owners like the serve-time operand cache get their own
    recognizable family of names."""
    tag = f"-{run_id}" if run_id else ""
    return f"repro{tag}-{os.getpid()}-{secrets.token_hex(4)}"


def cleanup_segments(prefix: str) -> List[str]:
    """Unlink every shared segment whose name starts with ``prefix``.

    Scans ``/dev/shm`` where available (Linux); harmless when the
    directory does not exist.  Returns the names removed — an empty list
    is the "no leaks" assertion the cleanup tests make."""
    removed: List[str] = []
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        for path in shm_dir.glob(f"{prefix}*"):
            try:
                path.unlink()
                removed.append(path.name)
            except OSError:
                pass
    return removed


# prefix -> pid of the process that registered it.  The sweep is
# per-registration pid-guarded: a forked child inherits the hook and
# the registry, but sweeps only prefixes *it* registered after the
# fork — never the parent's live segments.  (A single import-time pid
# guard would also silence legitimate sweeps in children that go on to
# create their own runs.)
_CLEANUP_PREFIXES: dict = {}


def _atexit_sweep() -> None:
    pid = os.getpid()
    for prefix, owner_pid in list(_CLEANUP_PREFIXES.items()):
        if owner_pid == pid:
            cleanup_segments(prefix)


atexit.register(_atexit_sweep)


def register_cleanup_prefix(prefix: str) -> None:
    """Guarantee ``prefix``'s segments are swept at interpreter exit.

    The sweep fires only in the registering process: children forked
    after registration inherit the entry but skip it, so a worker exit
    can never unlink segments its parent is still using."""
    _CLEANUP_PREFIXES[prefix] = os.getpid()


def unregister_cleanup_prefix(prefix: str) -> None:
    """Drop the exit-time sweep after an orderly cleanup."""
    _CLEANUP_PREFIXES.pop(prefix, None)
