"""Compressed Sparse Column (CSC) format and CSR<->CSC conversion.

The paper's column-panel partition of ``B`` (Section III.D) is effectively a
blocked CSR->CSC-ish traversal; having a real CSC type lets tests validate
the panel partitioner against an independent implementation of "give me the
elements of columns [lo, hi)".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = ["CSCMatrix", "csr_to_csc_arrays"]


def csr_to_csc_arrays(csr: CSRMatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(col_offsets, row_ids, data)`` for the CSC view of ``csr``.

    Vectorized transpose-style conversion: counting sort on column ids.
    Rows come out sorted within each column because the stable argsort
    preserves CSR's row-major element order.
    """
    col_offsets = np.zeros(csr.n_cols + 1, dtype=INDEX_DTYPE)
    np.add.at(col_offsets, csr.col_ids + 1, 1)
    np.cumsum(col_offsets, out=col_offsets)

    order = np.argsort(csr.col_ids, kind="stable")
    row_ids = csr.expand_row_ids()[order]
    data = csr.data[order]
    return col_offsets, row_ids, data


class CSCMatrix:
    """A sparse matrix in CSC format (column-major analog of CSR)."""

    __slots__ = ("n_rows", "n_cols", "col_offsets", "row_ids", "data")

    def __init__(self, n_rows: int, n_cols: int, col_offsets, row_ids, data, *, check: bool = True):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.col_offsets = np.ascontiguousarray(col_offsets, dtype=INDEX_DTYPE)
        self.row_ids = np.ascontiguousarray(row_ids, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if check:
            self.validate()

    def validate(self) -> None:
        if self.col_offsets.shape[0] != self.n_cols + 1:
            raise ValueError("col_offsets must have length n_cols + 1")
        if self.row_ids.shape[0] != self.data.shape[0]:
            raise ValueError("row_ids and data lengths differ")
        if self.col_offsets[0] != 0 or self.col_offsets[-1] != self.row_ids.shape[0]:
            raise ValueError("col_offsets must span [0, nnz]")
        if np.any(np.diff(self.col_offsets) < 0):
            raise ValueError("col_offsets must be non-decreasing")
        if self.row_ids.size:
            if self.row_ids.min() < 0 or self.row_ids.max() >= self.n_rows:
                raise ValueError("row_ids out of range")

    @property
    def nnz(self) -> int:
        return int(self.row_ids.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCMatrix":
        col_offsets, row_ids, data = csr_to_csc_arrays(csr)
        return cls(csr.n_rows, csr.n_cols, col_offsets, row_ids, data, check=False)

    def to_csr(self) -> CSRMatrix:
        """Back to CSR via a counting sort on row ids."""
        row_offsets = np.zeros(self.n_rows + 1, dtype=INDEX_DTYPE)
        np.add.at(row_offsets, self.row_ids + 1, 1)
        np.cumsum(row_offsets, out=row_offsets)

        order = np.argsort(self.row_ids, kind="stable")
        # expand column ids of CSC elements
        col_of_elem = np.repeat(
            np.arange(self.n_cols, dtype=INDEX_DTYPE), np.diff(self.col_offsets)
        )
        col_ids = col_of_elem[order]
        data = self.data[order]
        return CSRMatrix(self.n_rows, self.n_cols, row_offsets, col_ids, data, check=False)

    def col(self, c: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of (row_ids, data) for column ``c``."""
        if not 0 <= c < self.n_cols:
            raise IndexError(f"column {c} out of range")
        lo, hi = self.col_offsets[c], self.col_offsets[c + 1]
        return self.row_ids[lo:hi], self.data[lo:hi]

    def col_slice(self, start: int, stop: int) -> "CSCMatrix":
        """Contiguous column panel ``[start, stop)`` (columns renumbered)."""
        if not 0 <= start <= stop <= self.n_cols:
            raise IndexError(f"invalid column slice [{start}, {stop})")
        lo, hi = self.col_offsets[start], self.col_offsets[stop]
        return CSCMatrix(
            self.n_rows,
            stop - start,
            self.col_offsets[start : stop + 1] - lo,
            self.row_ids[lo:hi].copy(),
            self.data[lo:hi].copy(),
            check=False,
        )

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.n_rows}x{self.n_cols}, nnz={self.nnz})"
