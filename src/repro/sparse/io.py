"""Matrix I/O: MatrixMarket text format and compressed .npz archives.

SuiteSparse distributes matrices as MatrixMarket ``.mtx`` files; a real
deployment of this framework would load the paper's nine inputs through
:func:`read_matrix_market`.  The synthetic suite is cached on disk as
``.npz`` for fast benchmark re-runs.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .coo import coo_to_csr_arrays
from .formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, os.PathLike]


def read_matrix_market(path: PathLike) -> CSRMatrix:
    """Parse a MatrixMarket coordinate file into a canonical CSR matrix.

    Supports ``real``, ``integer`` and ``pattern`` fields and the
    ``general`` / ``symmetric`` / ``skew-symmetric`` symmetry qualifiers
    (symmetric entries are mirrored, as SuiteSparse expects).
    """
    with open(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing MatrixMarket header")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"{path}: malformed header {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError(f"{path}: only coordinate matrices are supported")
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        # skip comments
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())

        rows = np.empty(nnz, dtype=INDEX_DTYPE)
        cols = np.empty(nnz, dtype=INDEX_DTYPE)
        data = np.empty(nnz, dtype=VALUE_DTYPE)
        for i in range(nnz):
            toks = fh.readline().split()
            rows[i] = int(toks[0]) - 1  # 1-based in the file
            cols[i] = int(toks[1]) - 1
            data[i] = float(toks[2]) if field != "pattern" else 1.0

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off_diag]])
        cols_full = np.concatenate([cols, rows[: nnz][off_diag]])
        data = np.concatenate([data, sign * data[off_diag]])
        cols = cols_full

    row_offsets, col_ids, vals = coo_to_csr_arrays(n_rows, rows, cols, data)
    return CSRMatrix(n_rows, n_cols, row_offsets, col_ids, vals, check=False)


def write_matrix_market(path: PathLike, mat: CSRMatrix, comment: str = "") -> None:
    """Write a CSR matrix as a general real coordinate MatrixMarket file."""
    rows = mat.expand_row_ids()
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{mat.n_rows} {mat.n_cols} {mat.nnz}\n")
        for r, c, v in zip(rows, mat.col_ids, mat.data):
            fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")


def save_npz(path: PathLike, mat: CSRMatrix, *, extra=None) -> None:
    """Save a CSR matrix as a compressed numpy archive.

    ``extra`` adds named arrays alongside the CSR fields (e.g. the chunk
    stores' integrity checksum); names must not collide with the CSR
    keys.  Plain :func:`load_npz` ignores extras, so archives written
    with them stay readable by older loaders.
    """
    extra = dict(extra or {})
    reserved = {"shape", "row_offsets", "col_ids", "data"} & set(extra)
    if reserved:
        raise ValueError(f"extra keys collide with CSR fields: {sorted(reserved)}")
    np.savez_compressed(
        path,
        shape=np.array(mat.shape, dtype=INDEX_DTYPE),
        row_offsets=mat.row_offsets,
        col_ids=mat.col_ids,
        data=mat.data,
        **extra,
    )


def load_npz(path: PathLike, *, with_extras: bool = False):
    """Load a CSR matrix saved by :func:`save_npz`.

    With ``with_extras`` returns ``(matrix, extras)`` where ``extras``
    holds any non-CSR arrays stored in the archive.
    """
    with np.load(path) as archive:
        shape = archive["shape"]
        mat = CSRMatrix(
            int(shape[0]),
            int(shape[1]),
            archive["row_offsets"],
            archive["col_ids"],
            archive["data"],
            check=True,
        )
        if not with_extras:
            return mat
        extras = {
            key: archive[key] for key in archive.files
            if key not in ("shape", "row_offsets", "col_ids", "data")
        }
        return mat, extras
