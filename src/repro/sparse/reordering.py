"""Matrix reordering for locality (the related-work partitioning theme).

The paper's related work (Akbudak & Aykanat; Ballard et al.) reorders and
partitions matrices to improve SpGEMM locality and communication.  This
module provides the classic light-weight orderings:

* **degree ordering** — rows by descending degree; concentrates the heavy
  rows into the leading panels, which is what makes the hybrid's
  dense-chunks-to-GPU assignment sharpest;
* **reverse Cuthill-McKee** — BFS-based bandwidth reduction; narrows the
  band so column panels intersect fewer rows (fewer, fuller chunks).

plus the symmetric permutation ``P A Pᵀ`` and a bandwidth metric.
Validated against scipy's RCM in the test suite.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .formats import CSRMatrix, INDEX_DTYPE

__all__ = ["degree_order", "rcm_order", "permute_symmetric", "bandwidth"]


def degree_order(a: CSRMatrix, *, descending: bool = True) -> np.ndarray:
    """Permutation ordering rows by (out-)degree.

    ``perm[k]`` is the original index of the row placed at position ``k``.
    Stable, so equal-degree rows keep their relative order.
    """
    degrees = a.row_nnz()
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    return order.astype(INDEX_DTYPE)


def _symmetric_adjacency(a: CSRMatrix):
    """Neighbor lists of the symmetrized structure, degree-sorted."""
    from .ops import add, transpose

    sym = add(a, transpose(a))
    degrees = sym.row_nnz()
    neighbors = []
    for r in range(sym.n_rows):
        cols, _ = sym.row(r)
        cols = cols[cols != r]
        # Cuthill-McKee visits neighbors in increasing degree
        neighbors.append(cols[np.argsort(degrees[cols], kind="stable")])
    return neighbors, degrees


def rcm_order(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of a square matrix's structure.

    BFS from the minimum-degree vertex of each component, visiting
    neighbors in increasing-degree order; the concatenated visit order is
    reversed.  Returns ``perm`` with ``perm[k]`` = original index at
    position ``k``.
    """
    if a.n_rows != a.n_cols:
        raise ValueError("RCM needs a square matrix")
    n = a.n_rows
    neighbors, degrees = _symmetric_adjacency(a)

    visited = np.zeros(n, dtype=bool)
    order = []
    # component starts in increasing-degree order
    for start in np.argsort(degrees, kind="stable"):
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([int(start)])
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in neighbors[v]:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))
    return np.asarray(order[::-1], dtype=INDEX_DTYPE)


def permute_symmetric(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """``P A Pᵀ``: row ``perm[k]`` becomes row ``k``, same for columns."""
    if a.n_rows != a.n_cols:
        raise ValueError("symmetric permutation needs a square matrix")
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    if perm.size != a.n_rows or not np.array_equal(np.sort(perm), np.arange(a.n_rows)):
        raise ValueError("perm must be a permutation of range(n)")

    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(a.n_rows, dtype=INDEX_DTYPE)

    from .ops import take_rows

    rows_permuted = take_rows(a, perm)
    # renumber columns and re-sort each row
    return CSRMatrix(
        a.n_rows, a.n_cols,
        rows_permuted.row_offsets,
        inverse[rows_permuted.col_ids],
        rows_permuted.data,
        check=False,
        sort_rows=True,
    )


def bandwidth(a: CSRMatrix) -> int:
    """``max |i - j|`` over stored entries (0 for empty matrices)."""
    if a.nnz == 0:
        return 0
    return int(np.abs(a.expand_row_ids() - a.col_ids).max())
