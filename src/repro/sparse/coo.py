"""Coordinate (COO) sparse format and conversion to CSR.

COO is the natural output of the random generators and of the
Expansion-Sort-Compress SpGEMM baseline: triplets ``(row, col, value)`` in
arbitrary order, possibly with duplicates.  ``to_csr`` performs the
sort + duplicate-combine that ESC calls the *Sort* and *Compression* steps.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = ["COOMatrix", "coo_to_csr_arrays"]


def coo_to_csr_arrays(
    n_rows: int,
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
    *,
    sum_duplicates: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triplets by (row, col), optionally combine duplicates, and return
    ``(row_offsets, col_ids, data)`` CSR arrays.

    Fully vectorized: one lexsort + one reduceat.  This is the hot path of
    both the generators and the ESC baseline, so no Python-level loops.
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    cols = np.asarray(cols, dtype=INDEX_DTYPE)
    data = np.asarray(data, dtype=VALUE_DTYPE)
    if not (rows.shape == cols.shape == data.shape):
        raise ValueError("rows, cols, data must have identical shapes")

    order = np.lexsort((cols, rows))
    rows, cols, data = rows[order], cols[order], data[order]

    if sum_duplicates and rows.size:
        # boundaries where (row, col) changes
        new_group = np.empty(rows.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_starts = np.flatnonzero(new_group)
        data = np.add.reduceat(data, group_starts)
        rows = rows[group_starts]
        cols = cols[group_starts]

    row_offsets = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(row_offsets, rows + 1, 1)
    np.cumsum(row_offsets, out=row_offsets)
    return row_offsets, cols, data


class COOMatrix:
    """Triplet-format sparse matrix.

    Unlike :class:`CSRMatrix` the triplets may be unsorted and contain
    duplicates; ``to_csr`` canonicalizes.
    """

    __slots__ = ("n_rows", "n_cols", "rows", "cols", "data")

    def __init__(self, n_rows: int, n_cols: int, rows, cols, data, *, check: bool = True):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
        self.cols = np.ascontiguousarray(cols, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if check:
            self.validate()

    def validate(self) -> None:
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise ValueError("rows, cols, data must have identical lengths")
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= self.n_rows:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.n_cols:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (duplicates counted separately)."""
        return int(self.rows.shape[0])

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "COOMatrix":
        return cls(
            csr.n_rows,
            csr.n_cols,
            csr.expand_row_ids(),
            csr.col_ids.copy(),
            csr.data.copy(),
            check=False,
        )

    def to_csr(self, *, sum_duplicates: bool = True) -> CSRMatrix:
        """Canonical CSR: rows sorted, columns sorted within rows,
        duplicates summed (unless disabled)."""
        row_offsets, col_ids, data = coo_to_csr_arrays(
            self.n_rows, self.rows, self.cols, self.data, sum_duplicates=sum_duplicates
        )
        return CSRMatrix(self.n_rows, self.n_cols, row_offsets, col_ids, data, check=False)

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.n_rows}x{self.n_cols}, triplets={self.nnz})"
