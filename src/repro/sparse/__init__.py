"""Sparse-matrix substrate: formats, generators, I/O, and panel partitioning."""

from .coo import COOMatrix
from .csc import CSCMatrix
from .formats import CSRMatrix
from .generators import banded, diagonal_blocks, erdos_renyi, kronecker_power, random_csr, rmat
from .ops import (
    add,
    drop_explicit_zeros,
    extract_columns,
    hstack,
    row_stats,
    scale,
    take_rows,
    transpose,
    vstack,
)
from .reordering import bandwidth, degree_order, permute_symmetric, rcm_order
from .shm import SharedCSR, SharedCSRDescriptor
from .partition import (
    PanelSet,
    build_col_offsets,
    panel_boundaries,
    partition_columns,
    partition_columns_naive,
    partition_rows,
)

__all__ = [
    "CSRMatrix",
    "COOMatrix",
    "CSCMatrix",
    "banded",
    "diagonal_blocks",
    "erdos_renyi",
    "kronecker_power",
    "random_csr",
    "rmat",
    "add",
    "drop_explicit_zeros",
    "extract_columns",
    "hstack",
    "row_stats",
    "scale",
    "take_rows",
    "transpose",
    "vstack",
    "bandwidth",
    "degree_order",
    "permute_symmetric",
    "rcm_order",
    "SharedCSR",
    "SharedCSRDescriptor",
    "PanelSet",
    "build_col_offsets",
    "panel_boundaries",
    "partition_columns",
    "partition_columns_naive",
    "partition_rows",
]
