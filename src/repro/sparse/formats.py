"""Compressed Sparse Row (CSR) matrix, built from scratch on numpy.

This is the central data structure of the reproduction.  Following the paper
(Section II.A), a CSR matrix is three arrays:

``row_offsets``
    ``n_rows + 1`` int64 values; row ``r`` occupies the half-open slice
    ``[row_offsets[r], row_offsets[r + 1])`` of ``col_ids`` and ``data``.
``col_ids``
    column index of each stored element, sorted within each row.
``data``
    the stored values, aligned with ``col_ids``.

We deliberately do *not* wrap :class:`scipy.sparse.csr_matrix`: the paper's
partitioning and kernel code manipulates the raw arrays (rolling
``col_offset`` pointers, panel-local column renumbering, group-wise numeric
writes), so the substrate must expose them first-class.  scipy is used only
as a cross-checking oracle in :mod:`repro.spgemm.reference`.

Indices are int64 throughout — the paper rejects MKL precisely because its
32-bit ``row_offsets``/``col_ids`` cannot address large outputs.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["CSRMatrix"]

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64


def _as_index_array(arr, name: str) -> np.ndarray:
    out = np.ascontiguousarray(arr, dtype=INDEX_DTYPE)
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {out.shape}")
    return out


class CSRMatrix:
    """A sparse matrix in CSR format.

    Parameters
    ----------
    n_rows, n_cols:
        Logical dimensions of the matrix.
    row_offsets:
        int64 array of length ``n_rows + 1``; must start at 0, end at
        ``len(col_ids)``, and be non-decreasing.
    col_ids:
        int64 array of column indices, each in ``[0, n_cols)``.
    data:
        float64 array of values, same length as ``col_ids``.
    check:
        When True (default) the invariants above are validated eagerly.
        Kernels that construct known-good matrices pass ``check=False``.
    sort_rows:
        When True, column ids within each row are sorted (stable, values
        carried along).  The paper assumes sorted rows (Section II.A).
    """

    __slots__ = ("n_rows", "n_cols", "row_offsets", "col_ids", "data")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        row_offsets,
        col_ids,
        data,
        *,
        check: bool = True,
        sort_rows: bool = False,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.row_offsets = _as_index_array(row_offsets, "row_offsets")
        self.col_ids = _as_index_array(col_ids, "col_ids")
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if sort_rows:
            self._sort_rows_inplace()
        if check:
            self.validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CSRMatrix":
        """An all-zero matrix with no stored elements."""
        return cls(
            n_rows,
            n_cols,
            np.zeros(n_rows + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
            check=False,
        )

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        return cls(
            n,
            n,
            np.arange(n + 1, dtype=INDEX_DTYPE),
            np.arange(n, dtype=INDEX_DTYPE),
            np.ones(n, dtype=VALUE_DTYPE),
            check=False,
        )

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        """Build from a 2-D array, storing exactly the non-zero entries."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        row_offsets = np.zeros(dense.shape[0] + 1, dtype=INDEX_DTYPE)
        np.add.at(row_offsets, rows + 1, 1)
        np.cumsum(row_offsets, out=row_offsets)
        return cls(
            dense.shape[0],
            dense.shape[1],
            row_offsets,
            cols.astype(INDEX_DTYPE),
            dense[rows, cols],
            check=False,
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Convert from any scipy.sparse matrix (via CSR, duplicates summed)."""
        csr = mat.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(
            csr.shape[0],
            csr.shape[1],
            csr.indptr.astype(INDEX_DTYPE),
            csr.indices.astype(INDEX_DTYPE),
            csr.data.astype(VALUE_DTYPE),
            check=False,
        )

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (copies arrays)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.col_ids.copy(), self.row_offsets.copy()),
            shape=(self.n_rows, self.n_cols),
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D float64 array."""
        out = np.zeros((self.n_rows, self.n_cols), dtype=VALUE_DTYPE)
        rows = self.expand_row_ids()
        # += via add.at to honour (unexpected) duplicate entries
        np.add.at(out, (rows, self.col_ids), self.data)
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            self.row_offsets.copy(),
            self.col_ids.copy(),
            self.data.copy(),
            check=False,
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if any CSR invariant is violated."""
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.row_offsets.shape[0] != self.n_rows + 1:
            raise ValueError(
                f"row_offsets has length {self.row_offsets.shape[0]}, "
                f"expected n_rows + 1 = {self.n_rows + 1}"
            )
        if self.col_ids.shape[0] != self.data.shape[0]:
            raise ValueError("col_ids and data lengths differ")
        if self.row_offsets[0] != 0:
            raise ValueError("row_offsets must start at 0")
        if self.row_offsets[-1] != self.col_ids.shape[0]:
            raise ValueError("row_offsets must end at nnz")
        if np.any(np.diff(self.row_offsets) < 0):
            raise ValueError("row_offsets must be non-decreasing")
        if self.col_ids.size:
            if self.col_ids.min() < 0 or self.col_ids.max() >= self.n_cols:
                raise ValueError("col_ids out of range")

    def has_sorted_rows(self) -> bool:
        """True when column ids are strictly increasing within every row."""
        if self.nnz < 2:
            return True
        diffs = np.diff(self.col_ids)
        # positions where a new row starts in col_ids: diffs there are free
        row_starts = self.row_offsets[1:-1]
        mask = np.ones(self.nnz - 1, dtype=bool)
        mask[row_starts[(row_starts > 0) & (row_starts < self.nnz)] - 1] = False
        return bool(np.all(diffs[mask] > 0))

    def _sort_rows_inplace(self) -> None:
        rows = self.expand_row_ids()
        order = np.lexsort((self.col_ids, rows))
        self.col_ids = self.col_ids[order]
        self.data = self.data[order]

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored elements."""
        return int(self.col_ids.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def row_nnz(self) -> np.ndarray:
        """nnz of every row, length ``n_rows``."""
        return np.diff(self.row_offsets)

    def nbytes(self) -> int:
        """Exact storage footprint of the three arrays in bytes.

        This is what the paper's transfer-cost accounting charges when a
        chunk moves across PCIe.
        """
        return self.row_offsets.nbytes + self.col_ids.nbytes + self.data.nbytes

    def density(self) -> float:
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    def expand_row_ids(self) -> np.ndarray:
        """Row index of every stored element (COO-style row array)."""
        return np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.row_offsets)
        )

    # ------------------------------------------------------------------
    # row access / slicing
    # ------------------------------------------------------------------
    def row(self, r: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of (col_ids, data) for row ``r``."""
        if not 0 <= r < self.n_rows:
            raise IndexError(f"row {r} out of range for {self.n_rows}-row matrix")
        lo, hi = self.row_offsets[r], self.row_offsets[r + 1]
        return self.col_ids[lo:hi], self.data[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(r, col_ids_view, data_view)`` for every row."""
        for r in range(self.n_rows):
            lo, hi = self.row_offsets[r], self.row_offsets[r + 1]
            yield r, self.col_ids[lo:hi], self.data[lo:hi]

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Contiguous row panel ``[start, stop)`` as a new CSR matrix.

        This is the paper's row-panel partition of ``A`` (Section III.D):
        trivially cheap under CSR because rows are stored contiguously.
        """
        if not 0 <= start <= stop <= self.n_rows:
            raise IndexError(f"invalid row slice [{start}, {stop})")
        lo, hi = self.row_offsets[start], self.row_offsets[stop]
        return CSRMatrix(
            stop - start,
            self.n_cols,
            self.row_offsets[start : stop + 1] - lo,
            self.col_ids[lo:hi].copy(),
            self.data[lo:hi].copy(),
            check=False,
        )

    # ------------------------------------------------------------------
    # comparison / repr
    # ------------------------------------------------------------------
    def allclose(self, other: "CSRMatrix", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Structural + numerical equality (both sides must be canonical:
        sorted rows, no duplicates, no explicit zeros are *not* required —
        explicit zeros are compared as stored)."""
        if self.shape != other.shape:
            return False
        if not np.array_equal(self.row_offsets, other.row_offsets):
            return False
        if not np.array_equal(self.col_ids, other.col_ids):
            return False
        return bool(np.allclose(self.data, other.data, rtol=rtol, atol=atol))

    def __eq__(self, other: object) -> bool:  # exact equality
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.row_offsets, other.row_offsets)
            and np.array_equal(self.col_ids, other.col_ids)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self):  # mutable container
        raise TypeError("CSRMatrix is unhashable")

    def __matmul__(self, other: "CSRMatrix") -> "CSRMatrix":
        """``A @ B`` via the in-core two-phase SpGEMM kernel."""
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        from ..spgemm.twophase import spgemm_twophase

        return spgemm_twophase(self, other).matrix

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape={self.n_rows}x{self.n_cols}, nnz={self.nnz}, "
            f"density={self.density():.2e})"
        )
