"""Element-wise and structural operations on CSR matrices.

These are support routines for the SpGEMM kernels, chunk assembly, and the
test suite (e.g. verifying ``C = A @ A`` against the dense product).
All operations are vectorized.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from .coo import coo_to_csr_arrays
from .csc import CSCMatrix
from .formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = [
    "transpose",
    "add",
    "scale",
    "hstack",
    "vstack",
    "drop_explicit_zeros",
    "extract_columns",
    "take_rows",
    "RowSliceCache",
    "DEFAULT_CACHE_BYTES",
    "row_stats",
]


def transpose(a: CSRMatrix) -> CSRMatrix:
    """Transpose: CSR -> CSC arrays of A are exactly CSR arrays of Aᵀ."""
    csc = CSCMatrix.from_csr(a)
    return CSRMatrix(
        a.n_cols, a.n_rows, csc.col_offsets, csc.row_ids, csc.data, check=False
    )


def scale(a: CSRMatrix, alpha: float) -> CSRMatrix:
    """Return ``alpha * A`` (structure preserved, including explicit zeros)."""
    return CSRMatrix(
        a.n_rows, a.n_cols, a.row_offsets.copy(), a.col_ids.copy(),
        a.data * float(alpha), check=False,
    )


def add(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sparse ``A + B`` via merged COO triplets (duplicates summed).

    Entries that cancel to exactly 0.0 remain stored; callers that need a
    pruned structure apply :func:`drop_explicit_zeros`.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    rows = np.concatenate([a.expand_row_ids(), b.expand_row_ids()])
    cols = np.concatenate([a.col_ids, b.col_ids])
    data = np.concatenate([a.data, b.data])
    row_offsets, col_ids, out = coo_to_csr_arrays(a.n_rows, rows, cols, data)
    return CSRMatrix(a.n_rows, a.n_cols, row_offsets, col_ids, out, check=False)


def drop_explicit_zeros(a: CSRMatrix, tol: float = 0.0) -> CSRMatrix:
    """Remove stored entries with ``|value| <= tol`` and recompute offsets."""
    keep = np.abs(a.data) > tol
    rows = a.expand_row_ids()[keep]
    row_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(row_offsets, rows + 1, 1)
    np.cumsum(row_offsets, out=row_offsets)
    return CSRMatrix(
        a.n_rows, a.n_cols, row_offsets, a.col_ids[keep], a.data[keep], check=False
    )


def hstack(mats: Sequence[CSRMatrix]) -> CSRMatrix:
    """Concatenate matrices horizontally ``[M0 | M1 | ...]``.

    This is exactly how the out-of-core framework stitches the chunks
    ``C[row][0..num_col_panels)`` of one output row panel back together
    (column panels are contiguous column ranges).
    """
    if not mats:
        raise ValueError("hstack of zero matrices")
    n_rows = mats[0].n_rows
    if any(m.n_rows != n_rows for m in mats):
        raise ValueError("hstack requires equal row counts")

    col_shift = np.cumsum([0] + [m.n_cols for m in mats])
    total_cols = int(col_shift[-1])

    per_row = sum(m.row_nnz() for m in mats)
    row_offsets = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
    row_offsets[1:] = np.cumsum(per_row)
    nnz = int(row_offsets[-1])

    col_ids = np.empty(nnz, dtype=INDEX_DTYPE)
    data = np.empty(nnz, dtype=VALUE_DTYPE)

    # write each matrix's rows into its interleaved destination slots
    cursor = row_offsets[:-1].copy()
    for m, shift in zip(mats, col_shift[:-1]):
        cnt = m.row_nnz()
        # destination index for each element of m: cursor[row] + intra-row pos
        starts = np.repeat(cursor, cnt)
        intra = np.arange(m.nnz, dtype=INDEX_DTYPE) - np.repeat(
            m.row_offsets[:-1], cnt
        )
        dest = starts + intra
        col_ids[dest] = m.col_ids + shift
        data[dest] = m.data
        cursor += cnt

    return CSRMatrix(n_rows, total_cols, row_offsets, col_ids, data, check=False)


def vstack(mats: Sequence[CSRMatrix]) -> CSRMatrix:
    """Concatenate matrices vertically (row panels back into one matrix)."""
    if not mats:
        raise ValueError("vstack of zero matrices")
    n_cols = mats[0].n_cols
    if any(m.n_cols != n_cols for m in mats):
        raise ValueError("vstack requires equal column counts")

    n_rows = sum(m.n_rows for m in mats)
    row_offsets = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
    pos, base = 1, 0
    for m in mats:
        row_offsets[pos : pos + m.n_rows] = m.row_offsets[1:] + base
        base += m.nnz
        pos += m.n_rows
    col_ids = np.concatenate([m.col_ids for m in mats]) if mats else np.empty(0)
    data = np.concatenate([m.data for m in mats])
    return CSRMatrix(n_rows, n_cols, row_offsets, col_ids, data, check=False)


def extract_columns(a: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """Reference implementation of the column-panel extraction.

    Returns rows restricted to columns ``[start, stop)``, renumbered to
    ``[0, stop - start)``.  Deliberately simple (mask + recount); the
    optimized ``col_offset`` partitioner in :mod:`repro.sparse.partition`
    is validated against this.
    """
    if not 0 <= start <= stop <= a.n_cols:
        raise IndexError(f"invalid column range [{start}, {stop})")
    mask = (a.col_ids >= start) & (a.col_ids < stop)
    rows = a.expand_row_ids()[mask]
    row_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(row_offsets, rows + 1, 1)
    np.cumsum(row_offsets, out=row_offsets)
    return CSRMatrix(
        a.n_rows, stop - start, row_offsets,
        a.col_ids[mask] - start, a.data[mask], check=False,
    )


def take_rows(a: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """Gather an arbitrary subset of rows into a compact CSR matrix.

    Output row ``i`` is input row ``rows[i]`` (order preserved, repeats
    allowed).  Used by the row-group kernels, which process scattered row
    sets selected by the load balancer.
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size and (rows.min() < 0 or rows.max() >= a.n_rows):
        raise IndexError("row index out of range")
    counts = a.row_nnz()[rows]
    row_offsets = np.zeros(rows.size + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=row_offsets[1:])
    nnz = int(row_offsets[-1])
    starts = a.row_offsets[rows]
    src = np.repeat(starts - row_offsets[:-1], counts) + np.arange(nnz, dtype=INDEX_DTYPE)
    return CSRMatrix(
        rows.size, a.n_cols, row_offsets, a.col_ids[src], a.data[src], check=False
    )


#: default byte budget of one :class:`RowSliceCache` (64 MiB).  Slices
#: are keyed per row panel, so the executor's total cache footprint is
#: bounded by ``num_row_panels x DEFAULT_CACHE_BYTES``.
DEFAULT_CACHE_BYTES = 64 << 20


class RowSliceCache:
    """Memoizing, thread-safe wrapper around :func:`take_rows` for one matrix.

    The SpGEMM kernels slice the same A panel repeatedly: the symbolic and
    numeric passes each gather their row groups, and every chunk of one row
    panel re-derives groups from a different B panel that frequently
    coincide (regular matrices produce identical groupings across column
    panels).  Keying on the row-id bytes makes those repeats free.

    The footprint is bounded two ways, both enforced LRU: ``max_entries``
    caps the entry count and ``max_bytes`` caps the summed
    :meth:`~repro.sparse.formats.CSRMatrix.nbytes` of the cached slices —
    entry counts alone let a few huge slices grow the cache without bound
    across a long chunk run.  The freshest entry always survives, even
    when it alone exceeds the byte budget (otherwise a single oversized
    slice would defeat memoization entirely).  ``hits`` / ``misses`` /
    ``evictions`` counters and ``held_bytes`` feed the tracer's
    slice-cache gauges.  A lock makes concurrent lookups from the
    parallel chunk executor safe (a duplicated computation under a race
    is benign — the slices are immutable and identical).
    """

    def __init__(self, matrix: CSRMatrix, max_entries: int = 64,
                 max_bytes: Optional[int] = DEFAULT_CACHE_BYTES) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None: unbounded)")
        self._matrix = matrix
        self._max = max_entries
        self._max_bytes = max_bytes
        self._entries: "OrderedDict[bytes, CSRMatrix]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.held_bytes = 0

    @property
    def matrix(self) -> CSRMatrix:
        return self._matrix

    @property
    def max_bytes(self) -> Optional[int]:
        return self._max_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def _over_budget(self) -> bool:
        if len(self._entries) > self._max:
            return True
        return (
            self._max_bytes is not None
            and self.held_bytes > self._max_bytes
            and len(self._entries) > 1  # the freshest entry always survives
        )

    def take(self, rows: np.ndarray) -> CSRMatrix:
        """``take_rows(matrix, rows)``, memoized on the row-id array."""
        rows = np.asarray(rows, dtype=INDEX_DTYPE)
        key = rows.tobytes()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        sub = take_rows(self._matrix, rows)  # computed outside the lock
        with self._lock:
            prev = self._entries.pop(key, None)
            if prev is not None:  # raced with another thread; replace
                self.held_bytes -= prev.nbytes()
            self._entries[key] = sub
            self.held_bytes += sub.nbytes()
            self.misses += 1
            while self._over_budget():
                _, victim = self._entries.popitem(last=False)
                self.held_bytes -= victim.nbytes()
                self.evictions += 1
        return sub


def row_stats(a: CSRMatrix) -> dict:
    """Summary statistics of the row-length distribution (skew diagnostics
    used when characterizing the input suite, cf. Section V.C)."""
    cnt = a.row_nnz()
    if cnt.size == 0:
        return {"min": 0, "max": 0, "mean": 0.0, "std": 0.0, "gini": 0.0}
    mean = float(cnt.mean())
    sorted_cnt = np.sort(cnt)
    n = cnt.size
    cum = np.cumsum(sorted_cnt, dtype=np.float64)
    # Gini coefficient of row lengths: 0 = perfectly regular, ->1 = skewed
    gini = float((n + 1 - 2 * (cum / cum[-1]).sum()) / n) if cum[-1] > 0 else 0.0
    return {
        "min": int(cnt.min()),
        "max": int(cnt.max()),
        "mean": mean,
        "std": float(cnt.std()),
        "gini": gini,
    }
