"""Synthetic sparse-matrix generators.

The paper evaluates on nine SuiteSparse matrices spanning three families:

* heavy-tailed social / web graphs (LiveJournal, uk-2002, Wikipedia dumps) —
  generated here by an R-MAT / Kronecker process with tunable skew;
* regular PDE-style meshes (``stokes``, ``nlpkkt200``) — generated as banded
  matrices with fixed stencil width;
* plus uniform Erdős–Rényi matrices as a neutral control.

All generators are deterministic under a caller-provided seed and return
canonical :class:`CSRMatrix` objects (sorted rows, no duplicates).
"""

from __future__ import annotations

import numpy as np

from .coo import coo_to_csr_arrays
from .formats import CSRMatrix, INDEX_DTYPE

__all__ = [
    "random_csr",
    "erdos_renyi",
    "banded",
    "rmat",
    "kronecker_power",
    "diagonal_blocks",
]


def _finish(n_rows: int, n_cols: int, rows, cols, data) -> CSRMatrix:
    row_offsets, col_ids, vals = coo_to_csr_arrays(n_rows, rows, cols, data)
    return CSRMatrix(n_rows, n_cols, row_offsets, col_ids, vals, check=False)


def random_csr(
    n_rows: int,
    n_cols: int,
    nnz: int,
    *,
    seed: int,
    values: str = "uniform",
) -> CSRMatrix:
    """Uniformly random matrix with ~``nnz`` stored elements.

    Duplicate draws are combined, so the realized nnz can be slightly lower
    than requested (exactly as with hashed sampling).
    """
    if n_rows == 0 or n_cols == 0 or nnz == 0:
        return CSRMatrix.empty(n_rows, n_cols)
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, size=nnz, dtype=INDEX_DTYPE)
    cols = rng.integers(0, n_cols, size=nnz, dtype=INDEX_DTYPE)
    data = _values(rng, nnz, values)
    return _finish(n_rows, n_cols, rows, cols, data)


def erdos_renyi(n: int, avg_degree: float, *, seed: int) -> CSRMatrix:
    """Square Erdős–Rényi matrix with expected ``avg_degree`` nnz per row."""
    nnz = int(round(n * avg_degree))
    return random_csr(n, n, nnz, seed=seed)


def banded(n: int, bandwidth: int, *, seed: int, fill: float = 1.0) -> CSRMatrix:
    """Banded matrix: entries within ``bandwidth`` of the diagonal.

    ``fill`` < 1 drops entries at random inside the band.  Models regular
    mesh matrices (``stokes`` / ``nlpkkt200``): near-constant row lengths,
    high SpGEMM compression ratio because products collide heavily.
    """
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    rng = np.random.default_rng(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1, dtype=INDEX_DTYPE)
    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), offsets.size)
    cols = rows + np.tile(offsets, n)
    keep = (cols >= 0) & (cols < n)
    if fill < 1.0:
        keep &= rng.random(cols.size) < fill
        # always retain the diagonal so rows never empty out entirely
        keep |= np.tile(offsets, n) == 0
        keep &= (cols >= 0) & (cols < n)
    rows, cols = rows[keep], cols[keep]
    data = _values(rng, rows.size, "uniform")
    return _finish(n, n, rows, cols, data)


def rmat(
    scale: int,
    avg_degree: float,
    *,
    seed: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRMatrix:
    """R-MAT (recursive matrix) power-law graph, the standard model for
    social/web graphs such as LiveJournal and uk-2002.

    ``n = 2**scale`` vertices; the probabilities ``(a, b, c, d)`` with
    ``d = 1 - a - b - c`` steer edges into quadrants recursively, producing
    the heavy-tailed degree distribution that drives the paper's chunk-size
    skew.  Fully vectorized: all edges descend the recursion simultaneously.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("quadrant probabilities must sum to <= 1")
    n = 1 << scale
    n_edges = int(round(n * avg_degree))
    rng = np.random.default_rng(seed)

    rows = np.zeros(n_edges, dtype=INDEX_DTYPE)
    cols = np.zeros(n_edges, dtype=INDEX_DTYPE)
    for level in range(scale):
        r = rng.random(n_edges)
        # quadrant thresholds: [a | b | c | d]
        right = (r >= a) & (r < a + b) | (r >= a + b + c)
        down = r >= a + b
        bit = INDEX_DTYPE(1 << (scale - level - 1))
        rows += down * bit
        cols += right * bit
    data = _values(rng, n_edges, "uniform")
    return _finish(n, n, rows, cols, data)


def kronecker_power(seed_matrix: np.ndarray, power: int, *, seed: int) -> CSRMatrix:
    """Stochastic Kronecker graph: sample edges from ``S ⊗ S ⊗ ... ⊗ S``.

    ``seed_matrix`` is a small (k x k) probability matrix; the result has
    ``k**power`` vertices.  Used for Wikipedia-like graphs whose skew is
    milder than RMAT's default.
    """
    s = np.asarray(seed_matrix, dtype=np.float64)
    if s.ndim != 2 or s.shape[0] != s.shape[1]:
        raise ValueError("seed_matrix must be square")
    k = s.shape[0]
    n = k**power
    expected_edges = int(round(s.sum() ** power))
    rng = np.random.default_rng(seed)

    flat = s.ravel() / s.sum()
    rows = np.zeros(expected_edges, dtype=INDEX_DTYPE)
    cols = np.zeros(expected_edges, dtype=INDEX_DTYPE)
    for _ in range(power):
        pick = rng.choice(k * k, size=expected_edges, p=flat)
        rows = rows * k + pick // k
        cols = cols * k + pick % k
    data = _values(rng, expected_edges, "uniform")
    return _finish(n, n, rows, cols, data)


def diagonal_blocks(n: int, block: int, *, seed: int, density: float = 0.5) -> CSRMatrix:
    """Block-diagonal random matrix (disconnected communities).

    Handy for partitioning tests: column panels aligned with blocks are
    empty off the diagonal.
    """
    if block <= 0:
        raise ValueError("block must be positive")
    rng = np.random.default_rng(seed)
    rows_list, cols_list = [], []
    for start in range(0, n, block):
        stop = min(start + block, n)
        size = stop - start
        m = rng.random((size, size)) < density
        r, c = np.nonzero(m)
        rows_list.append(r + start)
        cols_list.append(c + start)
    rows = np.concatenate(rows_list) if rows_list else np.empty(0, dtype=INDEX_DTYPE)
    cols = np.concatenate(cols_list) if cols_list else np.empty(0, dtype=INDEX_DTYPE)
    data = _values(rng, rows.size, "uniform")
    return _finish(n, n, rows, cols, data)


def _values(rng: np.random.Generator, size: int, kind: str) -> np.ndarray:
    """Draw nonzero values. ``uniform`` in [0.5, 1.5) keeps products well
    conditioned (no cancellation), ``ones`` gives exact integer arithmetic
    for oracle comparisons."""
    if kind == "uniform":
        return rng.uniform(0.5, 1.5, size=size)
    if kind == "ones":
        return np.ones(size)
    raise ValueError(f"unknown value kind {kind!r}")
