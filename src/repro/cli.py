"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Show the simulated device (Table I) and package metadata.
``suite [--features]``
    List the nine evaluation matrices, optionally with their Table II rows.
``gen <family> --n N [options] --out FILE``
    Generate a synthetic matrix (rmat / erdos-renyi / banded) to .npz/.mtx.
``multiply A [B] [--mode ...] [--device-mem MB] [--workers N] [--backend ...] [--out FILE]``
    (alias: ``run``) Out-of-core multiply: operands are .npz/.mtx paths
    or suite names; ``B`` defaults to ``A`` (the paper's ``C = A x A``).
    Prints the run summary; optionally writes the product.  ``--workers
    N`` executes the chunks through the execution engine; ``--backend``
    picks where the kernels run (``serial`` / ``thread`` / ``process``).
    Fault tolerance: ``--retries N`` retries failed chunks with backoff,
    ``--crash-budget N`` lets the process backend survive worker deaths,
    ``--checkpoint PATH`` writes a resumable run manifest, and
    ``--resume PATH`` continues an interrupted run, recomputing only its
    unfinished chunks (see docs/FAULT_TOLERANCE.md).
``bench [--matrices ...] [--workers N] [--backend ...] [--repeats N] [--out FILE]``
    Serial-vs-parallel wall-clock benchmark over suite matrices; times
    the thread and/or process backends against the serial baseline
    (min + median over ``--repeats``) and writes a JSON record
    (``BENCH_parallel.json``) for cross-PR perf trajectories.  Flags
    single-core hosts, where "speedup" only measures overhead.
``kernel-bench [--matrices ...] [--kernels ...] [--repeats N] [--out FILE]``
    Single-thread shoot-out of the accumulator kernels (hash / dense /
    esc / merge / native) with cross-kernel equivalence checks; writes
    ``BENCH_kernels.json`` and exits nonzero on any equivalence failure.
``trace MATRIX [--mode ...] [--workers N] [--backend ...] [--trace-out FILE]``
    Run the real pipeline under the tracer and export a Chrome-trace JSON
    (measured spans as pid 0, the simulated schedule as pid 1) plus a
    per-lane utilization and critical-path summary.
``experiment <name|all>``
    Regenerate a paper table/figure (fig4, fig7, fig8, fig9, fig10,
    table1, table2, table3, ablations, all).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.api import run_hybrid, run_out_of_core
from .device.specs import v100_node
from .sparse import generators
from .sparse.formats import CSRMatrix
from .sparse.io import load_npz, read_matrix_market, save_npz, write_matrix_market
from .sparse.suite import SUITE
from .spgemm.kernels import KERNEL_KINDS

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-core CPU-GPU SpGEMM (IPDPS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="simulated device and package info")

    p_suite = sub.add_parser("suite", help="list the evaluation matrices")
    p_suite.add_argument("--features", action="store_true",
                         help="compute Table II feature rows (slower)")

    p_gen = sub.add_parser("gen", help="generate a synthetic matrix")
    p_gen.add_argument("family", choices=["rmat", "erdos-renyi", "banded"])
    p_gen.add_argument("--n", type=int, required=True,
                       help="rows (rmat: rounded up to a power of two)")
    p_gen.add_argument("--degree", type=float, default=8.0,
                       help="average nonzeros per row (graphs)")
    p_gen.add_argument("--bandwidth", type=int, default=4, help="banded half-width")
    p_gen.add_argument("--fill", type=float, default=1.0, help="banded fill ratio")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output .npz or .mtx path")

    p_mul = sub.add_parser("multiply", aliases=["run"],
                           help="out-of-core SpGEMM")
    p_mul.add_argument("a", help="matrix A: .npz/.mtx path or suite name")
    p_mul.add_argument("b", nargs="?", default=None,
                       help="matrix B (default: A, computing A^2)")
    p_mul.add_argument("--mode", choices=["sync", "async", "hybrid"],
                       default="async")
    p_mul.add_argument("--ratio", type=float, default=0.65,
                       help="hybrid GPU flop share")
    p_mul.add_argument("--device-mem", type=int, default=None, metavar="MiB",
                       help="simulated device memory (default: auto out-of-core)")
    p_mul.add_argument("--workers", type=_positive_int, default=1,
                       help="workers for real chunk execution (default 1)")
    p_mul.add_argument("--backend", choices=["serial", "thread", "process"],
                       default=None,
                       help="chunk executor backend (default: serial for "
                            "--workers 1, thread otherwise)")
    p_mul.add_argument("--kernel", choices=list(KERNEL_KINDS), default=None,
                       help="SpGEMM accumulator kernel (default: auto — "
                            "native C when buildable, else a dense/esc "
                            "split; see docs/KERNELS.md)")
    p_mul.add_argument("--retries", type=_positive_int, default=1,
                       metavar="N",
                       help="max attempts per chunk (default 1 = no retry)")
    p_mul.add_argument("--retry-delay", type=float, default=0.05,
                       metavar="SECONDS",
                       help="base backoff delay between chunk attempts "
                            "(default 0.05; doubles per attempt, jittered)")
    p_mul.add_argument("--crash-budget", type=int, default=0, metavar="N",
                       help="process backend: worker deaths absorbed by "
                            "respawn before the run aborts (default 0)")
    p_mul.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-chunk wall-clock deadline; a chunk past it "
                            "raises ChunkTimeout (retryable), and under the "
                            "process backend the hung worker is killed")
    p_mul.add_argument("--heartbeat-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="process backend: worker heartbeat period; a "
                            "worker silent for 2x this is presumed frozen "
                            "and killed by the watchdog")
    p_mul.add_argument("--host-mem-budget", type=int, default=None,
                       metavar="MiB",
                       help="cap on in-flight + stored chunk bytes; "
                            "dispatch blocks (and spills the chunk store "
                            "when possible) instead of exceeding it")
    p_mul.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="write a resumable run manifest to PATH and "
                            "spill chunks next to it (PATH.chunks/)")
    p_mul.add_argument("--resume", default=None, metavar="PATH",
                       help="resume from the manifest at PATH, recomputing "
                            "only its unfinished chunks")
    p_mul.add_argument("--out", default=None, help="write the product (.npz/.mtx)")

    p_bench = sub.add_parser(
        "bench", help="serial vs parallel chunk-execution benchmark")
    p_bench.add_argument("--matrices", default="stokes,nlp",
                        help="comma-separated suite names/abbrs")
    p_bench.add_argument("--workers", type=_positive_int, default=4,
                        help="parallel worker count to compare against serial")
    p_bench.add_argument("--backend", choices=["thread", "process", "both"],
                        default="both",
                        help="parallel backend(s) to time against serial "
                             "(default: both)")
    p_bench.add_argument("--grid", type=int, default=None, metavar="N",
                        help="force an NxN chunk grid (default: planned)")
    p_bench.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per configuration; min and "
                             "median wall times are reported, speedup uses "
                             "the mins (default 3)")
    p_bench.add_argument("--kernel", choices=list(KERNEL_KINDS), default=None,
                        help="SpGEMM accumulator kernel for every timed run "
                             "(default: auto)")
    p_bench.add_argument("--autotune", action="store_true",
                        help="also time a serial run whose grid, kernel, and "
                             "hybrid ratio come from the sampled nnz "
                             "estimator (spgemm/estimate.py) and record it "
                             "against the default grid")
    p_bench.add_argument("--no-estimate", action="store_true",
                        help="disable sampled estimation in the governed "
                             "run (pure upper-bound sizing fallback)")
    p_bench.add_argument("--gate-model-error", type=float, default=None,
                        metavar="FRAC",
                        help="exit nonzero when any run's recalibrated "
                             "model_mean_abs_rel_error reaches FRAC or any "
                             "chunk is an outlier (CI gate)")
    p_bench.add_argument("--shards", type=_positive_int, default=None,
                         metavar="N",
                         help="additionally run each matrix sharded across "
                              "N simulated devices (distributed.shard) and "
                              "record per-shard utilization/transfers")
    p_bench.add_argument("--transport", choices=["local", "socket"],
                         default="local",
                         help="transport for the --shards leg: 'socket' "
                              "spawns shard-worker processes and records "
                              "measured transfer walls")
    p_bench.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path")

    p_kb = sub.add_parser(
        "kernel-bench",
        help="single-thread kernel shoot-out: time every accumulator "
             "kernel on whole matrices and verify cross-kernel equivalence")
    p_kb.add_argument("--matrices", default="stokes,nlp",
                      help="comma-separated suite names/abbrs or .npz/.mtx paths")
    p_kb.add_argument("--kernels", default="all",
                      help="comma-separated kernel kinds to time (default: "
                           "all; native is skipped when not buildable)")
    p_kb.add_argument("--repeats", type=int, default=3,
                      help="timed repetitions per kernel; min and median "
                           "wall times are recorded (default 3)")
    p_kb.add_argument("--out", default="BENCH_kernels.json",
                      help="output JSON path")

    p_tr = sub.add_parser(
        "trace",
        help="run the real pipeline under the tracer and export a Chrome "
             "trace (measured spans + simulated schedule side by side)")
    p_tr.add_argument("matrix", help="suite name or .npz/.mtx path")
    p_tr.add_argument("--mode", choices=["sync", "async", "hybrid"], default="async")
    p_tr.add_argument("--device-mem", type=int, default=None, metavar="MiB")
    p_tr.add_argument("--workers", type=_positive_int, default=1,
                      help="workers for the real traced execution (default 1)")
    p_tr.add_argument("--backend", choices=["serial", "thread", "process"],
                      default=None,
                      help="chunk executor backend; process-backend worker "
                           "spans are merged into the exported trace")
    p_tr.add_argument("--kernel", choices=list(KERNEL_KINDS), default=None,
                      help="SpGEMM accumulator kernel (kernel and per-stage "
                           "throughput gauges land in the exported trace)")
    p_tr.add_argument("--window", type=_positive_int, default=None,
                      help="bounded in-flight window (default: 2 x workers)")
    p_tr.add_argument("--trace-out", "--out", dest="trace_out",
                      default="trace.json",
                      help="output .json (chrome://tracing / Perfetto)")

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "name",
        choices=["table1", "table2", "table3", "fig4", "fig7", "fig8",
                 "fig9", "fig10", "fig56", "ablations", "scaling", "breakdown", "chunksweep", "reorder", "all"],
    )

    p_srv = sub.add_parser(
        "serve",
        help="run the async multi-tenant SpGEMM job server "
             "(HTTP/JSON + NDJSON event streaming; see docs/SERVING.md)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 = ephemeral, printed at start)")
    p_srv.add_argument("--unix-socket", default=None, metavar="PATH",
                       help="additionally serve on this unix socket")
    p_srv.add_argument("--slots", type=_positive_int, default=4,
                       help="concurrent jobs on the shared worker pool")
    p_srv.add_argument("--host-mem", type=int, default=2048, metavar="MiB",
                       help="cross-job host-memory admission budget "
                            "(default 2048 MiB)")
    p_srv.add_argument("--cache-mem", type=int, default=256, metavar="MiB",
                       help="content-addressed operand cache budget "
                            "(default 256 MiB)")
    p_srv.add_argument("--shards", type=_positive_int, default=1,
                       help="device shards jobs are placed across "
                            "(least-loaded placement; default 1)")
    p_srv.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="write one Chrome trace per traced job here")

    p_sb = sub.add_parser(
        "serve-bench",
        help="serving load test: drive concurrent jobs through a real "
             "socket; p50/p99 latency, throughput, cache hit rate -> "
             "BENCH_serve.json")
    p_sb.add_argument("--jobs", type=_positive_int, default=120,
                      help="jobs per phase, all submitted concurrently "
                           "(two phases: cold then warm; default 120)")
    p_sb.add_argument("--tenants", type=_positive_int, default=4)
    p_sb.add_argument("--operands", type=_positive_int, default=6,
                      help="distinct operands in the warm phase's shared "
                           "pool (default 6)")
    p_sb.add_argument("--slots", type=_positive_int, default=4,
                      help="server worker-pool slots (default 4)")
    p_sb.add_argument("--workers", type=_positive_int, default=1,
                      help="engine workers per job (default 1)")
    p_sb.add_argument("--backend", choices=["serial", "thread", "process"],
                      default=None, help="engine backend per job")
    p_sb.add_argument("--scale", type=int, default=9,
                      help="rmat scale of the workload operands (default 9)")
    p_sb.add_argument("--degree", type=int, default=8,
                      help="rmat average degree (default 8)")
    p_sb.add_argument("--host-mem", type=int, default=1024, metavar="MiB",
                      help="server admission budget (default 1024 MiB)")
    p_sb.add_argument("--no-oracle", action="store_true",
                      help="skip the bit-identity oracle recomputation")
    p_sb.add_argument("--oracle-scipy", action="store_true",
                      help="additionally verify oracle products against "
                           "scipy (slower; the CI smoke uses this)")
    p_sb.add_argument("--out", default="BENCH_serve.json",
                      help="output JSON path (deltas are printed against "
                           "the previous record there)")
    p_shb = sub.add_parser(
        "shard-bench",
        help="multi-device scaling curve: one workload sharded across "
             "1..N simulated devices -> BENCH_scaling.json")
    p_shb.add_argument("--matrix", default=None,
                       help="suite name or .npz/.mtx path (default: a "
                            "seeded rmat of --scale)")
    p_shb.add_argument("--scale", type=int, default=11,
                       help="rmat scale of the default workload (default 11)")
    p_shb.add_argument("--degree", type=int, default=8,
                       help="rmat average degree (default 8)")
    p_shb.add_argument("--seed", type=int, default=0)
    p_shb.add_argument("--shards", default="1,2,4,8",
                       help="comma-separated shard counts (default 1,2,4,8)")
    p_shb.add_argument("--workers", type=_positive_int, default=1,
                       help="engine workers per shard (default 1)")
    p_shb.add_argument("--backend", choices=["serial", "thread", "process"],
                       default=None, help="engine backend per shard")
    p_shb.add_argument("--grid", type=int, default=16, metavar="N",
                       help="row panels of the chunk grid (default 16; "
                            "column panels fixed at 2)")
    p_shb.add_argument("--host-mem", type=int, default=512, metavar="MiB",
                       help="node host-memory budget shared by all shards "
                            "(default 512 MiB)")
    p_shb.add_argument("--transport", choices=["local", "socket"],
                       default="local",
                       help="'local' runs shards in-process with modeled "
                            "transfers; 'socket' drives spawned "
                            "shard-worker processes and records *measured* "
                            "transfer walls")
    p_shb.add_argument("--socket-kind", choices=["unix", "tcp"],
                       default="unix",
                       help="socket flavor for --transport socket "
                            "(default unix)")
    p_shb.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the largest shard count's merged Chrome "
                            "trace (tracer streams + transfer timeline) here")
    p_shb.add_argument("--out", default=None,
                       help="output JSON path (default BENCH_scaling.json, "
                            "or BENCH_scaling_socket.json with "
                            "--transport socket — the two curves never "
                            "clobber each other)")

    p_sw = sub.add_parser(
        "shard-worker",
        help="host one remote shard's executor: serve run requests over "
             "the length-prefixed socket transport (see docs/SHARDING.md)")
    p_sw.add_argument("--listen", default="tcp:127.0.0.1:0",
                      metavar="ADDR",
                      help="listen address, tcp:HOST:PORT or unix:PATH "
                           "(default tcp:127.0.0.1:0 = ephemeral port)")
    p_sw.add_argument("--announce", action="store_true",
                      help="print 'LISTENING <addr>' on stdout once bound "
                           "(how a spawning node discovers the real port)")
    return parser


def _load_matrix(spec: str) -> CSRMatrix:
    """Resolve a CLI matrix operand: file path or suite name."""
    by_name = {e.name: e for e in SUITE}
    by_name.update({e.abbr: e for e in SUITE})
    if spec in by_name:
        from .experiments.runner import get_matrix

        return get_matrix(by_name[spec].abbr)
    if spec.endswith(".npz"):
        return load_npz(spec)
    if spec.endswith(".mtx"):
        return read_matrix_market(spec)
    raise SystemExit(
        f"cannot resolve matrix {spec!r}: not a suite name and not .npz/.mtx"
    )


def _save_matrix(path: str, mat: CSRMatrix) -> None:
    if path.endswith(".npz"):
        save_npz(path, mat)
    elif path.endswith(".mtx"):
        write_matrix_market(path, mat)
    else:
        raise SystemExit(f"output must be .npz or .mtx, got {path!r}")


def _cmd_info(_args) -> int:
    from . import __version__
    from .experiments.table1 import run as table1_run

    print(f"repro {__version__} — out-of-core CPU-GPU SpGEMM reproduction")
    print(table1_run())
    return 0


def _cmd_suite(args) -> int:
    if args.features:
        from .experiments.table2 import run as table2_run

        print(table2_run())
    else:
        for e in SUITE:
            print(f"{e.abbr:<10} {e.name:<22} [{e.family}]  {e.description}")
    return 0


def _cmd_gen(args) -> int:
    if args.family == "rmat":
        scale = max(1, (args.n - 1).bit_length())
        mat = generators.rmat(scale, args.degree, seed=args.seed)
    elif args.family == "erdos-renyi":
        mat = generators.erdos_renyi(args.n, args.degree, seed=args.seed)
    else:
        mat = generators.banded(args.n, args.bandwidth, seed=args.seed, fill=args.fill)
    _save_matrix(args.out, mat)
    print(f"wrote {mat} -> {args.out}")
    return 0


def _cmd_multiply(args) -> int:
    a = _load_matrix(args.a)
    b = _load_matrix(args.b) if args.b else a
    if args.device_mem is not None:
        node = v100_node(args.device_mem << 20)
    else:
        from .core.planner import working_set_bytes
        from .spgemm.flops import total_flops
        from .spgemm.symbolic import symbolic_sort

        flops = total_flops(a, b)
        nnz_out = int(symbolic_sort(a, b).sum())
        from .core.chunks import csr_bytes

        inputs = csr_bytes(a.n_rows, a.nnz) + csr_bytes(b.n_rows, b.nnz)
        rest = working_set_bytes(a.n_rows, max(a.nnz, b.nnz), flops, nnz_out) - inputs
        node = v100_node(inputs + max(rest // 2, 8 << 20))

    keep = args.out is not None
    retry = None
    if args.retries > 1:
        from .core.executor import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries,
                            base_delay=args.retry_delay)
    governor = None
    if (args.deadline is not None or args.heartbeat_interval is not None
            or args.host_mem_budget is not None):
        from .core.governor import Governor, GovernorConfig

        governor = Governor(GovernorConfig(
            deadline_seconds=args.deadline,
            heartbeat_interval=args.heartbeat_interval,
            host_mem_budget_bytes=(args.host_mem_budget << 20
                                   if args.host_mem_budget is not None
                                   else None),
        ))
    if args.mode == "hybrid":
        if args.checkpoint or args.resume:
            raise SystemExit(
                "--checkpoint/--resume support the sync/async modes only"
            )
        result = run_hybrid(a, b, node, ratio=args.ratio, keep_output=keep,
                            name=args.a, workers=args.workers,
                            backend=args.backend, kernel=args.kernel,
                            retry=retry, crash_budget=args.crash_budget,
                            governor=governor)
    else:
        store = None
        checkpoint = resume = None
        if args.resume:
            from .core.spill import DiskChunkStore, RunManifest

            resume = RunManifest.load(args.resume)
            if resume.store_dir is not None:
                store = DiskChunkStore(resume.store_dir)
            elif keep:
                raise SystemExit(
                    f"manifest {args.resume} records no spill directory; "
                    "cannot rebuild the full product (--out) from it"
                )
        elif args.checkpoint:
            from .core.spill import DiskChunkStore

            store = DiskChunkStore(args.checkpoint + ".chunks")
            checkpoint = args.checkpoint
        result = run_out_of_core(
            a, b, node, mode=args.mode, keep_output=keep, name=args.a,
            order="natural" if args.mode == "sync" else "flops_desc",
            workers=args.workers, backend=args.backend, kernel=args.kernel,
            retry=retry, crash_budget=args.crash_budget,
            chunk_store=store, checkpoint=checkpoint, resume=resume,
            governor=governor,
        )
    grid = result.profile.grid
    print(result.summary())
    if governor is not None and governor.hostmem is not None:
        hm = governor.hostmem
        print(f"host-mem budget {hm.budget_bytes >> 20} MiB: "
              f"peak {hm.peak_bytes} bytes, overcommits {hm.overcommits}")
    if args.mode != "hybrid":
        if args.resume:
            done = result.profile.grid.num_chunks - result.resumed_chunks
            print(f"resumed {result.resumed_chunks} chunks from "
                  f"{args.resume}; recomputed {done}")
        elif args.checkpoint:
            print(f"checkpoint manifest -> {args.checkpoint} "
                  f"(chunks in {args.checkpoint}.chunks/)")
    print(
        f"grid {grid.num_row_panels}x{grid.num_col_panels}, "
        f"device {node.gpu.device_memory_bytes >> 20} MiB, "
        f"output nnz {result.profile.total_nnz_out}"
    )
    if keep:
        _save_matrix(args.out, result.matrix)
        print(f"product written to {args.out}")
    return 0


def _cmd_bench(args) -> int:
    """Serial vs parallel chunk execution on suite matrices -> JSON record.

    Each matrix runs through the real out-of-core chunk pipeline with
    ``workers=1`` (serial baseline) and ``workers=N`` on the requested
    backend(s) — thread, process, or both — asserting bit-identical
    products and recording measured wall-clock (min and median over
    ``--repeats``), GFLOPS, and the model-vs-measured error, so future
    PRs have a perf trajectory to compare against.  Speedups divide the
    min serial time by the min parallel time (min is the standard
    low-noise wall-clock estimator).  The legacy top-level keys
    (``parallel_seconds`` / ``speedup`` / ``identical``) report the
    *primary* backend — the one with the best measured ``min_seconds``
    on that matrix (a fixed preference order would headline a backend
    that measured slower, e.g. process on a single-core host).
    """
    import json
    import os
    import statistics

    import numpy as np

    from .core.assemble import assemble_chunks
    from .core.chunks import ChunkGrid, profile_chunks
    from .core.planner import plan_grid
    from .device.kernels import fit_cost_model
    from .metrics.modelerror import model_error_report

    names = [s.strip() for s in args.matrices.split(",") if s.strip()]
    if not names:
        raise SystemExit("bench: no matrices given")
    if args.workers < 2:
        raise SystemExit("bench: --workers must be >= 2 to compare against serial")
    backends = ["thread", "process"] if args.backend == "both" else [args.backend]
    repeats = max(args.repeats, 1)

    runs = []
    for spec in names:
        a = _load_matrix(spec)
        from .experiments.runner import get_node
        from .sparse.suite import SUITE as _S

        known = {e.abbr for e in _S} | {e.name for e in _S}
        node = get_node(spec) if spec in known else v100_node()
        if args.grid is not None:
            grid = ChunkGrid.regular(a.n_rows, a.n_cols, args.grid, args.grid)
        else:
            grid = plan_grid(a, a, node).grid

        # one sampled estimate per matrix (OCEAN-style, spgemm/estimate):
        # feeds the governed run's admission/pre-check and --autotune
        estimate = None
        if not args.no_estimate:
            from .spgemm.estimate import estimate_row_nnz

            estimate = estimate_row_nnz(a, a, seed=0)

        def timed(workers: int, backend: str, grid=grid, kernel=args.kernel):
            """One full profiled run (outputs kept, for the identity check
            and the model-error report), then ``repeats - 1`` timing-only
            repeats — the workload statistics are deterministic, so only
            the wall clock needs re-measuring."""
            profile, outputs = profile_chunks(
                a, a, grid, keep_outputs=True, name=spec,
                workers=workers, backend=backend, kernel=kernel,
            )
            times = [profile.measured_wall_seconds]
            for _ in range(repeats - 1):
                rep, _none = profile_chunks(
                    a, a, grid, keep_outputs=False, name=spec,
                    workers=workers, backend=backend, kernel=kernel,
                )
                times.append(rep.measured_wall_seconds)
            return profile, outputs, min(times), statistics.median(times)

        # warm the kernel path once on a toy matrix (native lib load,
        # allocator pools) so the first timed chunk doesn't absorb
        # one-time process costs and skew the model-error report
        from .sparse.generators import banded as _banded
        from .spgemm.twophase import spgemm_twophase as _warm

        _warm(_banded(64, 3, seed=0), _banded(64, 3, seed=0), kernel=args.kernel)

        serial_profile, serial_out, s_min, s_median = timed(1, "serial")
        c_serial = assemble_chunks(serial_out)

        per_backend = {}
        for backend in backends:
            profile, outputs, p_min, p_median = timed(args.workers, backend)
            c_par = assemble_chunks(outputs)
            identical = (
                np.array_equal(c_serial.row_offsets, c_par.row_offsets)
                and np.array_equal(c_serial.col_ids, c_par.col_ids)
                and np.array_equal(c_serial.data, c_par.data)
            )
            per_backend[backend] = {
                "min_seconds": p_min,
                "median_seconds": p_median,
                "speedup": s_min / p_min if p_min > 0 else 0.0,
                # throughput against the best (min) wall time
                "gflops": (profile.total_flops / p_min / 1e9
                           if p_min > 0 else 0.0),
                "identical": bool(identical),
                "profile": profile,
            }
            print(
                f"{spec:<10} grid {grid.num_row_panels}x{grid.num_col_panels}  "
                f"serial {s_min * 1e3:8.1f} ms  "
                f"{backend}[{args.workers}w] min {p_min * 1e3:8.1f} ms "
                f"median {p_median * 1e3:8.1f} ms  "
                f"speedup {per_backend[backend]['speedup']:5.2f}x  "
                f"identical={identical}"
            )

        # headline backend: whichever measured fastest on this matrix
        primary = min(backends, key=lambda k: per_backend[k]["min_seconds"])
        if len(backends) > 1:
            print(f"{spec:<10} primary backend: {primary} "
                  f"(best min_seconds of {', '.join(backends)})")

        # governed run: a host budget below the total output forces the
        # spill-under-pressure path and an undersized device pool
        # (sized from the *upper bound*) exercises the pre-check, so the
        # record carries a robustness trajectory (peak host bytes,
        # spilled bytes, timeouts, re-splits) alongside the perf one.
        # With estimation on, the pre-check consumes sampled chunk
        # bytes: chunks whose UB footprint exceeds the pool but whose
        # estimated footprint fits run whole (avoided_resplits), and
        # re-splits only fire on real pressure.
        import tempfile
        from pathlib import Path

        from .core.chunks import chunk_flops
        from .core.executor.plan import chunk_output_estimates
        from .core.governor import Governor, GovernorConfig
        from .core.memcheck import chunk_device_bytes
        from .core.spill import SpillableChunkStore
        from .observability import Tracer

        estimates = chunk_output_estimates(a, a, grid)
        host_budget = 2 * max(estimates)
        products = (chunk_flops(a, a, grid) // 2).ravel()
        row_counts = np.diff(grid.row_bounds)
        per_chunk_dev = [
            chunk_device_bytes(int(row_counts[cid // grid.num_col_panels]),
                               int(products[cid]))
            for cid in range(grid.num_chunks)
        ]
        # just under the largest chunk: the densest chunk(s) re-split,
        # the rest run whole — exercises recovery without dominating
        # the bench wall clock
        device_pool = max(int(0.9 * max(per_chunk_dev)), 1024)
        gov_tracer = Tracer()
        governed = {}
        with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as sd:
            store = SpillableChunkStore(Path(sd) / "chunks",
                                        tracer=gov_tracer)
            gov = Governor(GovernorConfig(host_mem_budget_bytes=host_budget,
                                          device_pool_bytes=device_pool),
                           tracer=gov_tracer)
            gov.attach_store(store)
            gov_profile, _ = profile_chunks(
                a, a, grid, keep_outputs=False, chunk_sink=store.put,
                name=spec, workers=args.workers, backend=primary,
                tracer=gov_tracer, governor=gov, kernel=args.kernel,
                estimate=estimate,
            )
            c_gov = store.assemble()
            gov_identical = (
                np.array_equal(c_serial.row_offsets, c_gov.row_offsets)
                and np.array_equal(c_serial.col_ids, c_gov.col_ids)
                and np.array_equal(c_serial.data, c_gov.data)
            )
            counters = gov_tracer.counters("faults")
            governed = {
                "backend": primary,
                "host_budget_bytes": int(host_budget),
                "device_pool_bytes": int(device_pool),
                "peak_host_bytes": int(gov.hostmem.peak_bytes),
                "spilled_bytes": int(store.spilled_bytes_total),
                "overcommits": int(gov.hostmem.overcommits),
                "timeouts": int(counters.get("timeouts", 0)),
                "resplits": int(counters.get("resplits", 0)),
                "avoided_resplits": int(counters.get("avoided_resplits", 0)),
                "estimated": estimate is not None,
                "wall_seconds": gov_profile.measured_wall_seconds,
                "identical": bool(gov_identical),
            }
        print(
            f"{spec:<10} governed[{primary}]  "
            f"peak host {governed['peak_host_bytes']} / "
            f"{host_budget} B  spilled {governed['spilled_bytes']} B  "
            f"resplits {governed['resplits']} "
            f"(avoided {governed['avoided_resplits']})  "
            f"identical={gov_identical}"
        )

        prim = per_backend[primary]
        # model error against the *recalibrated* per-kernel cost model:
        # stage coefficients fitted from the serial profile's measured
        # per-chunk stage times (contention-free), then compared chunk by
        # chunk.  The analytic model's fixed coefficients date from the
        # pre-fast-kernel era and misprice every kernel by a different
        # shape — the post-PR-6 outlier class.
        cost = fit_cost_model([serial_profile], node=v100_node())
        err = model_error_report(serial_profile, cost)
        # per-stage throughput of the serial run: host seconds each stage
        # spent summed over chunks, and the whole-workload GFLOP/s it
        # implies (stage gauges mirror the tracer's throughput[...] gauges)
        flops_total = serial_profile.total_flops
        stage_seconds = {}
        stage_gflops = {}
        for stage in ("analysis", "symbolic", "numeric"):
            secs = [getattr(c, f"{stage}_seconds")
                    for c in serial_profile.chunks]
            secs = [s for s in secs if s >= 0.0]
            total = float(sum(secs)) if secs else -1.0
            stage_seconds[stage] = total
            stage_gflops[stage] = (flops_total / total / 1e9
                                   if total > 0 else 0.0)
        kernel_used = (serial_profile.chunks[0].kernel
                       or (args.kernel or "auto"))
        print(
            f"{spec:<10} stages[serial/{kernel_used}]  "
            + "  ".join(f"{st} {stage_seconds[st] * 1e3:7.1f} ms "
                        f"({stage_gflops[st]:.3f} GF/s)"
                        for st in ("analysis", "symbolic", "numeric"))
        )
        serial_gflops = (serial_profile.total_flops / s_min / 1e9
                         if s_min > 0 else 0.0)

        # --autotune: grid + kernel + hybrid ratio from one sampled
        # estimate (core.planner.plan_autotuned), timed serially against
        # the default grid above and checked bit-identical against it
        autotune = None
        if args.autotune:
            from .core.planner import plan_autotuned

            # measured trial: the estimate prunes the grid space to a
            # short admissible list (estimate-planned, UB default, and a
            # row-only ladder); one quick serial run per candidate picks
            # the winner by wall clock rather than by model
            def _trial(g, kspec):
                p, _none = profile_chunks(
                    a, a, g, keep_outputs=False, name=spec,
                    workers=1, backend="serial", kernel=kspec.encode(),
                )
                return p.measured_wall_seconds

            at = plan_autotuned(a, a, node, seed=0, trial=_trial)
            at_kernel = at.kernel.encode()
            at_profile, at_out, at_min, at_median = timed(
                1, "serial", grid=at.grid, kernel=at_kernel)
            # re-time the default grid back-to-back with the tuned one:
            # minutes of benching separate the first serial measurement
            # from this point, and cache/load drift would otherwise
            # dominate the few-percent grid effect being compared
            _p, _o, base_min, _m = timed(1, "serial")
            base_gflops = (_p.total_flops / base_min / 1e9
                           if base_min > 0 else 0.0)
            c_at = assemble_chunks(at_out)
            at_identical = (
                np.array_equal(c_serial.row_offsets, c_at.row_offsets)
                and np.array_equal(c_serial.col_ids, c_at.col_ids)
                and np.array_equal(c_serial.data, c_at.data)
            )
            at_gflops = (at_profile.total_flops / at_min / 1e9
                         if at_min > 0 else 0.0)
            actual_nnz = at_profile.total_nnz_out
            est_nnz = at.estimate.total_nnz
            autotune = {
                "grid": [at.grid.num_row_panels, at.grid.num_col_panels],
                "kernel": at_kernel,
                "hybrid_ratio": at.ratio,
                "sampled_rows": int(at.estimate.sampled_rows.size),
                "sample_fraction": at.estimate.sample_fraction,
                "estimated_nnz": est_nnz,
                "estimated_nnz_hi": at.estimate.total_nnz_hi,
                "actual_nnz": int(actual_nnz),
                "estimate_rel_error": (abs(est_nnz - actual_nnz) / actual_nnz
                                       if actual_nnz else 0.0),
                "serial_seconds": at_min,
                "serial_median_seconds": at_median,
                "serial_gflops": at_gflops,
                "default_serial_seconds": base_min,
                "default_serial_gflops": base_gflops,
                "beats_default": bool(at_gflops > base_gflops),
                "identical": bool(at_identical),
            }
            print(
                f"{spec:<10} autotune  grid "
                f"{at.grid.num_row_panels}x{at.grid.num_col_panels} "
                f"kernel {at_kernel}  ratio {at.ratio:.2f}  "
                f"est nnz {est_nnz:.0f} vs actual {actual_nnz} "
                f"({autotune['estimate_rel_error']:.1%} off)  "
                f"serial {at_min * 1e3:8.1f} ms "
                f"({at_gflops:.4f} GF/s vs default {base_gflops:.4f})  "
                f"beats_default={autotune['beats_default']}  "
                f"identical={at_identical}"
            )

        # --shards: the same workload across N simulated devices under
        # one shared node ledger; identity against the serial product is
        # the cross-layer bit-identity gate (engine -> shard -> assemble)
        sharded = None
        if args.shards:
            from .distributed.shard import (ShardConfig, ShardedRunError,
                                            run_sharded)

            try:
                sh = run_sharded(
                    a, a, ShardConfig(
                        num_shards=args.shards, workers=args.workers,
                        backend=(args.backend if args.backend != "both"
                                 else None),
                        kernel=args.kernel,
                        host_mem_budget_bytes=host_budget,
                        transport=getattr(args, "transport", "local"),
                    ),
                    grid=grid, name=spec,
                )
            except ShardedRunError as err:
                _print_sharded_error("bench", err)
                return 1
            sh_identical = sh.matrix == c_serial
            sharded = {
                "shards": sh.num_shards,
                "transport": sh.transport,
                "wall_seconds": sh.wall_seconds,
                "sim_makespan_seconds": sh.sim_makespan,
                "transfer_bytes_total": sh.transfer_bytes_total,
                "transfer_seconds_measured": sh.measured_transfer_seconds,
                "ledger_peak_bytes": sh.ledger_peak_bytes,
                "overcommits": sh.ledger_overcommits,
                "identical": bool(sh_identical),
                "per_shard": [r.as_dict() for r in sh.records],
            }
            print(
                f"{spec:<10} sharded[{sh.num_shards}]  wall "
                f"{sh.wall_seconds * 1e3:8.1f} ms  sim makespan "
                f"{sh.sim_makespan * 1e3:8.1f} ms  transfers "
                f"{sh.transfer_bytes_total} B  identical={sh_identical}"
            )

        # model_mean_abs_rel_error is a dimensionless *fraction* (1.0 =
        # 100% relative error), see repro.metrics.modelerror
        runs.append({
            "matrix": spec,
            "n": a.n_rows,
            "nnz": a.nnz,
            "flops": serial_profile.total_flops,
            "grid": [grid.num_row_panels, grid.num_col_panels],
            "workers": args.workers,
            "backend": primary,
            "kernel": kernel_used,
            "serial_stage_seconds": stage_seconds,
            "serial_stage_gflops": stage_gflops,
            "serial_seconds": s_min,
            "serial_median_seconds": s_median,
            "parallel_seconds": prim["min_seconds"],
            "parallel_median_seconds": prim["median_seconds"],
            "speedup": prim["speedup"],
            "serial_gflops": serial_gflops,
            "parallel_gflops": prim["gflops"],
            "identical": all(r["identical"] for r in per_backend.values()),
            "backends": {
                name: {k: v for k, v in rec.items() if k != "profile"}
                for name, rec in per_backend.items()
            },
            "model_mean_abs_rel_error": err.mean_abs_rel_error,
            "model_median_abs_rel_error": err.median_abs_rel_error,
            "model_p95_abs_rel_error": err.p95_abs_rel_error,
            "model_outliers": err.outliers,
            "model_correlation": err.correlation,
            "model_cost": "per_kernel_stage_fit",
            "governed": governed,
            "autotune": autotune,
            "sharded": sharded,
        })

    cpu_count = os.cpu_count() or 1
    single_core = cpu_count <= 1
    if single_core:
        print(
            "WARNING: single-core host (cpu_count == 1): workers cannot run "
            "concurrently, so the speedup numbers above measure executor "
            "overhead, not parallel scaling."
        )
    payload = {
        "bench": "parallel_chunk_execution",
        "cpu_count": cpu_count,
        # speedup on a single-core host measures executor overhead only;
        # consumers should skip speedup comparisons when this flag is set
        "single_core_host": single_core,
        "units": {
            "model_mean_abs_rel_error": "fraction (1.0 = 100%)",
            "model_median_abs_rel_error": "fraction (1.0 = 100%)",
            "model_p95_abs_rel_error": "fraction (1.0 = 100%)",
            "model_outliers": "chunks with rel error > 0.5",
            "serial_stage_seconds": "seconds (summed over chunks; -1 = unmeasured)",
            "serial_stage_gflops": "GFLOP/s (total flops / stage seconds)",
            "serial_seconds": "seconds",
            "parallel_seconds": "seconds",
            "min_seconds": "seconds",
            "median_seconds": "seconds",
            "governed.host_budget_bytes": "bytes",
            "governed.device_pool_bytes": "bytes",
            "governed.peak_host_bytes": "bytes",
            "governed.spilled_bytes": "bytes",
            "governed.wall_seconds": "seconds",
            "governed.avoided_resplits": (
                "chunks the UB pre-check would have re-split but the "
                "sampled estimate admitted whole"),
            "autotune.hybrid_ratio": "GPU work share S/(S+1), fraction",
            "autotune.estimate_rel_error": "fraction (1.0 = 100%)",
        },
        "workers": args.workers,
        "backends": backends,
        # most common per-matrix primary (each matrix headlines its own
        # fastest backend; ties resolve to the earliest in --backend)
        "primary_backend": max(
            backends, key=lambda b: sum(r["backend"] == b for r in runs)
        ),
        "repeats": repeats,
        "runs": runs,
    }
    # compare against the previous record at --out, if one exists; a
    # fresh clone (or a corrupt file) has no baseline and that is fine
    baseline_runs = {}
    try:
        with open(args.out) as fh:
            baseline = json.load(fh)
        baseline_runs = {r["matrix"]: r for r in baseline.get("runs", [])
                         if isinstance(r, dict) and "matrix" in r}
    except (OSError, ValueError):
        pass
    if baseline_runs:
        for run in runs:
            prev = baseline_runs.get(run["matrix"])
            if prev is None or not prev.get("speedup"):
                continue
            delta = run["speedup"] / prev["speedup"] - 1.0
            print(f"{run['matrix']:<10} speedup vs previous record: "
                  f"{prev['speedup']:.2f}x -> {run['speedup']:.2f}x "
                  f"({delta:+.1%})")
            prev_g = prev.get("serial_gflops")
            if prev_g:
                g = run["serial_gflops"]
                print(f"{run['matrix']:<10} serial GFLOP/s vs previous "
                      f"record: {prev_g:.4f} -> {g:.4f} "
                      f"({g / prev_g - 1.0:+.1%})")
    else:
        print(f"no previous benchmark record at {args.out}; writing a fresh baseline")

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {len(runs)} run(s) -> {args.out}")

    if args.gate_model_error is not None:
        failed = []
        for run in runs:
            if (run["model_mean_abs_rel_error"] >= args.gate_model_error
                    or run["model_outliers"] > 0):
                failed.append(
                    f"{run['matrix']}: mean_abs_rel_error="
                    f"{run['model_mean_abs_rel_error']:.4f} "
                    f"(gate {args.gate_model_error}), "
                    f"outliers={run['model_outliers']}"
                )
            at = run.get("autotune")
            if at is not None and not at["identical"]:
                failed.append(f"{run['matrix']}: autotuned product diverged")
        if failed:
            for line in failed:
                print(f"MODEL-ERROR GATE FAILED  {line}")
            return 1
        print(f"model-error gate passed (< {args.gate_model_error}, 0 outliers)")
    return 0


def _cmd_kernel_bench(args) -> int:
    """Single-thread shoot-out of the accumulator kernels -> JSON record.

    Every requested kernel multiplies each matrix by itself through
    :func:`~repro.spgemm.twophase.spgemm_twophase` (whole matrix, one
    thread — the per-kernel number parallel speedups build on), and every
    product is checked against the ``hash`` kernel's: ``hash`` / ``dense``
    / ``esc`` / ``native`` / ``auto`` sum duplicates in the same expansion
    order and must be **bit-identical**; ``merge`` combines in tree order
    and is held to ``allclose`` (see docs/KERNELS.md).  Any equivalence
    failure makes the command exit nonzero, so CI can gate on it.
    """
    import json
    import statistics
    import time

    import numpy as np

    from .spgemm.flops import total_flops
    from .spgemm.native import native_available, native_build_error
    from .spgemm.twophase import spgemm_twophase

    # kernels whose products must be byte-identical to hash's (same
    # ascending-k duplicate-combination order); merge is tree-order
    exact = {"hash", "dense", "esc", "native", "auto"}

    if args.kernels.strip() == "all":
        kernels = [k for k in KERNEL_KINDS if k != "auto"]
    else:
        kernels = [s.strip() for s in args.kernels.split(",") if s.strip()]
        bad = sorted(set(kernels) - set(KERNEL_KINDS))
        if bad:
            raise SystemExit(f"kernel-bench: unknown kernel(s) {bad}; "
                             f"choose from {list(KERNEL_KINDS)}")
    if "native" in kernels and not native_available():
        print(f"kernel-bench: native kernel unavailable "
              f"({native_build_error()}); skipping it")
        kernels = [k for k in kernels if k != "native"]
    if not kernels:
        raise SystemExit("kernel-bench: no kernels to run")
    names = [s.strip() for s in args.matrices.split(",") if s.strip()]
    if not names:
        raise SystemExit("kernel-bench: no matrices given")
    repeats = max(args.repeats, 1)

    runs = []
    failures = 0
    for spec in names:
        a = _load_matrix(spec)
        flops = total_flops(a, a)
        ref = spgemm_twophase(a, a, kernel="hash").matrix
        rows = {}
        for kind in kernels:
            times = []
            result = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = spgemm_twophase(a, a, kernel=kind)
                times.append(time.perf_counter() - t0)
            c = result.matrix
            structure_ok = (
                np.array_equal(ref.row_offsets, c.row_offsets)
                and np.array_equal(ref.col_ids, c.col_ids)
            )
            if kind in exact:
                policy = "bit_identical"
                equivalent = structure_ok and np.array_equal(ref.data, c.data)
            else:
                policy = "allclose"
                equivalent = structure_ok and np.allclose(
                    ref.data, c.data, rtol=1e-10, atol=1e-12)
            if not equivalent:
                failures += 1
            best = min(times)
            rows[kind] = {
                "min_seconds": best,
                "median_seconds": statistics.median(times),
                "gflops": flops / best / 1e9 if best > 0 else 0.0,
                "equivalence_policy": policy,
                "equivalent": bool(equivalent),
            }
            print(
                f"{spec:<10} {kind:<7} min {best * 1e3:8.1f} ms  "
                f"median {statistics.median(times) * 1e3:8.1f} ms  "
                f"{rows[kind]['gflops']:7.4f} GFLOP/s  "
                f"{policy}={equivalent}"
            )
        runs.append({
            "matrix": spec,
            "n": a.n_rows,
            "nnz": a.nnz,
            "flops": flops,
            "kernels": rows,
        })

    payload = {
        "bench": "kernel_shootout",
        "reference_kernel": "hash",
        "native_available": bool(native_available()),
        "repeats": repeats,
        "units": {
            "min_seconds": "seconds",
            "median_seconds": "seconds",
            "gflops": "GFLOP/s (2*flops convention of total_flops)",
        },
        "runs": runs,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {len(runs)} run(s) x {len(kernels)} kernel(s) -> {args.out}")
    if failures:
        print(f"kernel-bench: {failures} equivalence FAILURE(S)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    """Run the real out-of-core pipeline under the tracer and export a
    Chrome trace: measured spans (queue wait, analysis/symbolic/numeric,
    sink writes, lane gauges) as pid 0, the cost-model schedule of the
    same workload as pid 1 — loadable side by side in Perfetto.  Prints
    the per-lane utilization and critical-path summary."""
    from .core.api import run_hybrid, run_out_of_core
    from .core.schedule import export_chrome_events
    from .observability import Tracer, render_summary, tracer_events, write_chrome_trace

    a = _load_matrix(args.matrix)
    if args.device_mem is not None:
        node = v100_node(args.device_mem << 20)
    else:
        from .experiments.runner import get_node
        from .sparse.suite import SUITE as _S

        known = {e.abbr for e in _S} | {e.name for e in _S}
        if args.matrix in known:
            node = get_node(args.matrix)
        else:
            node = v100_node()

    tracer = Tracer()
    # a traced store receives every chunk, so the trace shows the full
    # lifecycle including sink/store_put spans and the bytes-held gauge
    from .core.spill import MemoryChunkStore

    store = MemoryChunkStore(tracer=tracer)
    if args.mode == "hybrid":
        # run_hybrid has no chunk_store hook; keeping outputs exercises
        # the same traced sink path
        result = run_hybrid(a, a, node, keep_output=True, name=args.matrix,
                            workers=args.workers, window=args.window,
                            tracer=tracer, backend=args.backend,
                            kernel=args.kernel)
    else:
        result = run_out_of_core(
            a, a, node, mode=args.mode, keep_output=False, name=args.matrix,
            order="natural" if args.mode == "sync" else "flops_desc",
            workers=args.workers, window=args.window, tracer=tracer,
            chunk_store=store, backend=args.backend, kernel=args.kernel,
        )
    events = tracer_events(tracer) + export_chrome_events(result.timeline)
    write_chrome_trace(args.trace_out, events, metadata={
        "matrix": args.matrix, "mode": result.mode, "workers": args.workers,
        "backend": args.backend or "auto", "kernel": args.kernel or "auto",
    })
    print(render_summary(tracer))
    print(
        f"wrote {len(events)} events ({result.mode}, measured "
        f"{tracer.wall_seconds() * 1e3:.3f} ms + simulated "
        f"{result.elapsed * 1e3:.3f} ms) -> {args.trace_out}"
    )
    print("open with chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_experiment(args) -> int:
    from . import experiments

    table = {
        "table1": experiments.table1.run,
        "table2": experiments.table2.run,
        "table3": experiments.table3.run,
        "fig4": experiments.fig04.run,
        "fig7": experiments.fig07.run,
        "fig8": experiments.fig08.run,
        "fig9": experiments.fig09.run,
        "fig10": experiments.fig10.run,
        "fig56": experiments.fig56.run,
        "ablations": experiments.ablations.run,
        "scaling": experiments.scaling.run,
        "breakdown": experiments.breakdown.run,
        "chunksweep": experiments.chunksweep.run,
        "reorder": experiments.reorder_matrix.run,
        "all": experiments.run_all,
    }
    print(table[args.name]())
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import ServerConfig, SpgemmServer

    config = ServerConfig(
        host=args.host, port=args.port, unix_socket=args.unix_socket,
        slots=args.slots, shards=args.shards,
        host_mem_bytes=args.host_mem << 20,
        cache_bytes=args.cache_mem << 20,
        trace_dir=args.trace_dir,
    )

    async def _serve() -> None:
        server = SpgemmServer(config)
        await server.start()
        host, port = server.address
        print(f"repro serve: listening on http://{host}:{port}"
              + (f" and {config.unix_socket}" if config.unix_socket else ""))
        print(f"  slots={config.slots} shards={config.shards} host-mem="
              f"{config.host_mem_bytes >> 20}MiB "
              f"cache={config.cache_bytes >> 20}MiB")
        try:
            await asyncio.Event().wait()  # until interrupted
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: shut down")
    return 0


def _cmd_serve_bench(args) -> int:
    from .serve.bench import run_serve_bench

    payload = run_serve_bench(
        jobs=args.jobs, tenants=args.tenants, operands=args.operands,
        slots=args.slots, workers=args.workers, backend=args.backend,
        scale=args.scale, degree=args.degree,
        host_mem_bytes=args.host_mem << 20,
        oracle=not args.no_oracle, oracle_scipy=args.oracle_scipy,
        out=args.out,
    )
    failures = (payload["phases"]["cold"]["failed"]
                + payload["phases"]["warm"]["failed"])
    if failures:
        print(f"serve-bench: {failures} jobs failed")
        return 1
    if payload["oracle"].get("enabled") and payload["oracle"]["mismatches"]:
        print("serve-bench: served results diverged from the single-run "
              "engine (CRC mismatch)")
        return 1
    if not payload["ledger_within_budget"]:
        print("serve-bench: host-mem ledger exceeded its budget without "
              "an accounted overcommit")
        return 1
    return 0


def _print_sharded_error(where: str, err) -> None:
    """Render a :class:`~repro.distributed.shard.ShardedRunError` with
    its per-shard tracebacks (which die with their shard threads /
    worker processes unless carried on the error itself)."""
    print(f"{where}: {err}", file=sys.stderr)
    for t in sorted(err.failures):
        exc = err.failures[t]
        print(f"--- shard {t}: {type(exc).__name__}: {exc} ---",
              file=sys.stderr)
        tb = err.tracebacks.get(t, "").rstrip()
        print(tb if tb else "  (no traceback recorded)", file=sys.stderr)


def _cmd_shard_worker(args) -> int:
    from .distributed.transport import shard_worker_main

    return shard_worker_main(args.listen, announce=args.announce)


def _cmd_shard_bench(args) -> int:
    """One workload across 1..N devices -> a scaling-curve JSON.

    Every shard count runs the same chunk grid through
    :func:`repro.distributed.shard.run_sharded` under one node
    host-memory budget.  With the default ``--transport local`` the
    curve records, per count, the *simulated* makespan (per-shard
    measured kernel seconds + alpha-beta modeled B-broadcast/C-gather
    transfers — the honest multi-device number on a host whose cores
    the shards share) next to the measured node wall.  With
    ``--transport socket`` each count drives real ``shard-worker``
    processes over one shared pool and the transfer legs are *measured*
    walls clocked on the wire, so no compute normalization is applied.
    Exit 1 if any count's product is not bit-identical to the 1-shard
    product.
    """
    import json

    from .core.chunks import ChunkGrid
    from .distributed.shard import ShardConfig, ShardedRunError, run_sharded
    from .sparse import generators

    if args.matrix:
        a = _load_matrix(args.matrix)
        label = args.matrix
    else:
        a = generators.rmat(args.scale, args.degree, seed=args.seed)
        label = f"rmat{args.scale}"
    counts = sorted({int(x) for x in args.shards.split(",") if x.strip()})
    if not counts or counts[0] < 1:
        raise SystemExit("shard-bench: --shards needs positive counts")
    row_panels = max(args.grid, max(counts))
    grid = ChunkGrid.regular(a.n_rows, a.n_cols, row_panels, 2)
    budget = args.host_mem << 20
    socket_transport = args.transport == "socket"
    out = args.out or ("BENCH_scaling_socket.json" if socket_transport
                       else "BENCH_scaling.json")

    # warm the kernel path (native lib load, allocator pools) so the
    # 1-shard baseline's per-chunk walls don't absorb one-time costs
    from .sparse.generators import banded as _banded
    from .spgemm.twophase import spgemm_twophase as _warm

    _warm(_banded(64, 3, seed=0), _banded(64, 3, seed=0))

    pool = None
    if socket_transport:
        from .distributed.transport import RemoteShardPool

        # one worker per device across the whole curve: every count
        # drives a prefix of the same pool (1 -> N real processes)
        pool = RemoteShardPool.spawn(max(counts), kind=args.socket_kind)

    baseline = None
    base_makespan = None
    base_secs = None
    curve = []
    trace_events = None
    try:
        for n in counts:
            cfg = ShardConfig(num_shards=n, workers=args.workers,
                              backend=args.backend,
                              host_mem_budget_bytes=budget,
                              transport=args.transport,
                              socket_kind=args.socket_kind)
            try:
                res = run_sharded(a, a, cfg, grid=grid,
                                  name=f"{label}.s{n}", worker_pool=pool)
            except ShardedRunError as err:
                _print_sharded_error("shard-bench", err)
                return 1
            if socket_transport:
                # measured walls: no normalization — the whole point of
                # the socket leg is that transfers are clocked, not priced
                pass
            elif base_secs is None:
                base_secs = {c.chunk_id: max(c.measured_seconds, 0.0)
                             for c in res.profile.chunks}
            else:
                # normalize the curve: price every count's compute from the
                # first run's per-chunk walls, so shard counts differ only
                # in partitioning + transfers, not in host-contention noise
                # (N shards time-share this host's cores while the simulated
                # devices they stand for would not)
                from .distributed.sharding import shard_transfer_timeline

                C = grid.num_col_panels
                for rec in res.records:
                    rec.compute_seconds = sum(
                        base_secs[rp * C + cp]
                        for rp in range(rec.rp_lo, rec.rp_hi)
                        for cp in range(C)
                    )
                res.timeline = shard_transfer_timeline(
                    res.records, b_bytes=a.nbytes(), network=cfg.network)
            if baseline is None:
                baseline = res.matrix
                base_makespan = res.sim_makespan
            identical = res.matrix == baseline
            speedup = (base_makespan / res.sim_makespan
                       if res.sim_makespan > 0 else 0.0)
            entry = {
                "shards": res.num_shards,
                "transport": args.transport,
                "wall_seconds": res.wall_seconds,
                "sim_makespan_seconds": res.sim_makespan,
                "sim_speedup": speedup,
                "transfer_bytes_total": res.transfer_bytes_total,
                "ledger_peak_bytes": res.ledger_peak_bytes,
                "overcommits": res.ledger_overcommits,
                "identical": bool(identical),
                "per_shard": [r.as_dict() for r in res.records],
            }
            if socket_transport:
                entry["transfer_seconds_measured"] = \
                    res.measured_transfer_seconds
                entry["bcast_seconds"] = sum(
                    r.bcast_seconds for r in res.records)
                entry["gather_seconds"] = sum(
                    r.gather_seconds for r in res.records)
                entry["reconnects"] = sum(
                    r.reconnects for r in res.records)
            curve.append(entry)
            trace_events = res.trace_events()
            util = "/".join(f"{r.utilization:.2f}" for r in res.records)
            xfer = (f"xfer {res.measured_transfer_seconds * 1e3:7.2f} ms"
                    if socket_transport
                    else f"transfers {res.transfer_bytes_total:>10} B")
            print(
                f"{label:<10} shards {res.num_shards:>2}  sim makespan "
                f"{res.sim_makespan * 1e3:8.2f} ms  speedup {speedup:5.2f}x  "
                f"{xfer}  util {util}  identical={identical}"
            )
    finally:
        if pool is not None:
            pool.close()

    all_identical = all(c["identical"] for c in curve)
    payload = {
        "bench": "shard_scaling",
        "matrix": label,
        "n": a.n_rows,
        "nnz": a.nnz,
        "grid": [grid.num_row_panels, grid.num_col_panels],
        "workers_per_shard": args.workers,
        "backend": args.backend or "auto",
        "transport": args.transport,
        "host_mem_bytes": budget,
        "units": {
            "sim_makespan_seconds": (
                "device/NIC makespan: per-shard measured kernel walls + "
                + ("measured socket bcast/gather walls"
                   if socket_transport else "alpha-beta modeled transfers")),
            "wall_seconds": "measured node wall (shards share host cores)",
            "utilization": "per-shard device busy fraction of the makespan",
        },
        "identical": all_identical,
        "curve": curve,
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"shard-bench: wrote {out}")
    if args.trace_out and trace_events is not None:
        from .observability import write_chrome_trace

        write_chrome_trace(args.trace_out, trace_events, metadata={
            "bench": "shard_scaling", "matrix": label,
            "transport": args.transport, "shards": counts[-1],
        })
        print(f"shard-bench: wrote {args.trace_out}")
    if not all_identical:
        print("shard-bench: FAIL — sharded product diverged from 1-shard")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "suite": _cmd_suite,
        "gen": _cmd_gen,
        "multiply": _cmd_multiply,
        "run": _cmd_multiply,
        "bench": _cmd_bench,
        "kernel-bench": _cmd_kernel_bench,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "serve-bench": _cmd_serve_bench,
        "shard-bench": _cmd_shard_bench,
        "shard-worker": _cmd_shard_worker,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
