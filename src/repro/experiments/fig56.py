"""Figs. 5 & 6: the transfer-scheduling illustrations, rendered from the
actual simulated timelines.

Fig. 5 (the problem): with one monolithic result transfer per chunk, the
next chunk's symbolic-info transfer queues behind it on the single D2H
engine, so its numeric kernel stalls.  Fig. 6 (the solution): the result
transfer is divided 33/67 and interleaved with the info transfers.

This module renders the first pipeline steady-state window of both
schedules for one matrix, so the paper's two diagrams can be read
directly off the simulation.
"""

from __future__ import annotations

from typing import List

from ..core.api import simulate_out_of_core
from ..metrics.report import write_result
from .runner import get_node, get_profile

__all__ = ["render", "run", "MATRIX"]

MATRIX = "com-lj"


def _window(timeline, resource: str, limit: int = 12) -> List[str]:
    ops = sorted(timeline.ops_on(resource), key=lambda r: r.start)[:limit]
    return [
        f"    {r.start * 1e3:8.3f}ms  {r.label:<22} ({r.duration * 1e3:7.3f} ms)"
        for r in ops
    ]


def render(abbr: str = MATRIX) -> str:
    profile, node = get_profile(abbr), get_node(abbr)
    naive = simulate_out_of_core(profile, node, divided_transfers=False)
    divided = simulate_out_of_core(profile, node, divided_transfers=True)

    lines = [
        f"Figs. 5/6 rendered from the simulation ({abbr}, D2H engine, first ops)",
        "",
        f"Fig. 5 schedule (monolithic transfers) — makespan {naive.elapsed * 1e3:.3f} ms:",
        *_window(naive.timeline, "d2h"),
        "",
        f"Fig. 6 schedule (divided 33/67 transfers) — makespan {divided.elapsed * 1e3:.3f} ms:",
        *_window(divided.timeline, "d2h"),
        "",
        "Note how Fig. 6 slots each chunk's two info transfers *between* the",
        "previous chunk's result portions, so the numeric kernel never waits",
        "behind a full result transfer.",
    ]
    return "\n".join(lines)


def run() -> str:
    text = render()
    write_result("fig56_schedules", text)
    return text
