"""Fig. 10: hybrid GFLOPS vs the GPU flop-ratio, two representative
matrices.

The paper sweeps the ratio for com-LiveJournal and nlpkkt200 (one
irregular, one regular): "the GFLOPS typically increases as we increase
the ratio, but then drops", peaking around the fixed 65 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.api import simulate_hybrid
from ..metrics.report import format_series, write_result
from .runner import get_node, get_profile

__all__ = ["Fig10Series", "RATIOS", "MATRICES", "collect", "run"]

RATIOS: Tuple[float, ...] = (0.35, 0.45, 0.55, 0.60, 0.65, 0.70, 0.75, 0.85, 0.95)
MATRICES: Tuple[str, ...] = ("com-lj", "nlp")


@dataclass(frozen=True)
class Fig10Series:
    abbr: str
    ratios: Tuple[float, ...]
    gflops: Tuple[float, ...]

    @property
    def peak_ratio(self) -> float:
        best = max(range(len(self.gflops)), key=lambda i: self.gflops[i])
        return self.ratios[best]

    def rises_then_drops(self) -> bool:
        """The paper's qualitative shape: strictly below peak at both ends."""
        peak = max(self.gflops)
        return self.gflops[0] < peak and self.gflops[-1] < peak


def collect(matrices: Sequence[str] = MATRICES) -> List[Fig10Series]:
    out = []
    for abbr in matrices:
        profile = get_profile(abbr)
        node = get_node(abbr)
        gf = tuple(
            simulate_hybrid(profile, node, ratio=r).gflops for r in RATIOS
        )
        out.append(Fig10Series(abbr=abbr, ratios=RATIOS, gflops=gf))
    return out


def run() -> str:
    series = collect()
    lines = ["Fig. 10: hybrid GFLOPS vs GPU flop ratio (paper: rise, peak near 65%, drop)"]
    for s in series:
        lines.append(format_series(s.abbr, [f"{r:.2f}" for r in s.ratios], s.gflops))
        lines.append(f"  peak at ratio {s.peak_ratio:.2f}")
    text = "\n".join(lines)
    write_result("fig10_ratio_sweep", text)
    return text
