"""Fig. 4: percentage of data-transfer time over total execution time for
synchronous (partitioned) spECK.

The paper measures 77.55-89.65 % across the nine matrices — the
motivation for the whole asynchronous design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.api import simulate_out_of_core
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_node, get_profile

__all__ = ["Fig4Row", "collect", "run", "PAPER_BAND"]

#: the band the paper reports (min, max), as a fraction
PAPER_BAND = (0.7755, 0.8965)


@dataclass(frozen=True)
class Fig4Row:
    abbr: str
    transfer_fraction: float
    d2h_fraction: float
    elapsed: float


def collect() -> List[Fig4Row]:
    rows = []
    for abbr in all_abbrs():
        profile = get_profile(abbr)
        node = get_node(abbr)
        res = simulate_out_of_core(profile, node, mode="sync", order="natural")
        rows.append(
            Fig4Row(
                abbr=abbr,
                transfer_fraction=res.transfer_fraction,
                d2h_fraction=res.d2h_fraction,
                elapsed=res.elapsed,
            )
        )
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix", "transfer %", "d2h %", "total (ms)"],
        [(r.abbr, round(r.transfer_fraction * 100, 2),
          round(r.d2h_fraction * 100, 2), round(r.elapsed * 1e3, 3)) for r in rows],
        title=(
            "Fig. 4: data-transfer time share, synchronous spECK "
            f"(paper band: {PAPER_BAND[0]*100:.2f}%..{PAPER_BAND[1]*100:.2f}%)"
        ),
        floatfmt=".2f",
    )
    write_result("fig4_transfer_fraction", table)
    return table
