"""Table I: specifications of the simulated GPU."""

from __future__ import annotations

from ..device.specs import v100_spec
from ..metrics.report import format_table, write_result

__all__ = ["run"]


def run() -> str:
    """Render the simulated device's Table I."""
    spec = v100_spec()
    rows = [
        ("GPUs", spec.name),
        ("Architecture", spec.architecture),
        ("#SM", spec.num_sms),
        ("Size of device memory", f"{spec.device_memory_bytes >> 30}GB"),
        ("FP32 CUDA Cores/GPU", spec.fp32_cores),
        ("Memory Interface", spec.memory_interface),
        ("Register File Size / SM (KB)", spec.register_file_per_sm_kb * 1024),
        ("Max Registers / Thread", spec.max_registers_per_thread),
        ("Shared Memory Size / SM (KB)", f"Configurable up to {spec.shared_memory_per_sm_kb} KB"),
        ("Max Thread Block Size", spec.max_thread_block_size),
    ]
    text = format_table(["field", "value"], rows, title="Table I: Nvidia Tesla V100 Specifications (simulated)")
    write_result("table1_specs", text)
    return text
