"""Table III: GPU chunk count at the fixed 65 % ratio vs exhaustive best.

The paper finds the fixed ratio picks the optimal chunk count for 7 of 9
matrices, and is within 2.95 % / 4.30 % for the other two — the evidence
that one ratio suffices.  The exhaustive search simulates every possible
GPU chunk count (Algorithm 4 prefix lengths over the flops-sorted order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.api import DEFAULT_RATIO
from ..core.hybrid import assign_chunks, best_gpu_chunk_count
from ..device.kernels import default_cost_model
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_node, get_profile

__all__ = ["Table3Row", "collect", "run"]

#: the paper's own Table III (best vs 65%-ratio chunk counts)
PAPER_COUNTS = {
    "lj2008": (4, 4), "com-lj": (3, 3), "soc-lj": (5, 5), "stokes": (5, 5),
    "uk-2002": (2, 2), "wiki0206": (3, 2), "nlp": (3, 2), "wiki1104": (5, 5),
    "wiki0925": (5, 5),
}


@dataclass(frozen=True)
class Table3Row:
    abbr: str
    ratio_count: int       # chunks to GPU at the fixed 65 % ratio
    best_count: int        # exhaustive-search optimum
    drop_percent: float    # slowdown of the 65 % choice vs the optimum

    @property
    def matches(self) -> bool:
        return self.ratio_count == self.best_count


def collect() -> List[Table3Row]:
    rows = []
    for abbr in all_abbrs():
        profile = get_profile(abbr)
        node = get_node(abbr)
        cm = default_cost_model(node)
        n65 = assign_chunks(profile, DEFAULT_RATIO).num_gpu
        best, times = best_gpu_chunk_count(profile, cm)
        drop = (times[n65] / times[best] - 1.0) * 100.0
        rows.append(Table3Row(abbr=abbr, ratio_count=n65, best_count=best, drop_percent=drop))
    return rows


def run() -> str:
    rows = collect()
    matches = sum(r.matches for r in rows)
    table = format_table(
        ["matrix", "best #GPU chunks", "65% ratio #chunks", "drop %", "paper best/65%"],
        [
            (r.abbr, r.best_count, r.ratio_count, round(r.drop_percent, 2),
             "{}/{}".format(*PAPER_COUNTS[r.abbr]))
            for r in rows
        ],
        title=(
            f"Table III: fixed 65% ratio vs exhaustive best — {matches}/9 exact "
            "(paper: 7/9 exact, misses within 2.95%/4.30%)"
        ),
        floatfmt=".2f",
    )
    write_result("table3_ratio", table)
    return table
