"""Fig. 7: GFLOPS of the multicore CPU, the out-of-core GPU, and the
hybrid implementation on all nine matrices.

The paper's headline numbers: GPU over CPU between 1.98x and 3.03x (most
around 2x); hybrid over GPU between 1.16x and 1.57x (most around 1.5x);
GPU GFLOPS 0.34-2.42 tracking the compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.api import simulate_cpu_baseline, simulate_hybrid, simulate_out_of_core
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_features, get_node, get_profile

__all__ = ["Fig7Row", "collect", "run", "PAPER_GPU_CPU_BAND", "PAPER_HYBRID_GPU_BAND"]

PAPER_GPU_CPU_BAND = (1.98, 3.03)
PAPER_HYBRID_GPU_BAND = (1.16, 1.57)


@dataclass(frozen=True)
class Fig7Row:
    abbr: str
    compression_ratio: float
    cpu_gflops: float
    gpu_gflops: float
    hybrid_gflops: float

    @property
    def gpu_over_cpu(self) -> float:
        return self.gpu_gflops / self.cpu_gflops if self.cpu_gflops else 0.0

    @property
    def hybrid_over_gpu(self) -> float:
        return self.hybrid_gflops / self.gpu_gflops if self.gpu_gflops else 0.0

    @property
    def hybrid_over_cpu(self) -> float:
        return self.hybrid_gflops / self.cpu_gflops if self.cpu_gflops else 0.0


def collect() -> List[Fig7Row]:
    rows = []
    for abbr in all_abbrs():
        profile = get_profile(abbr)
        node = get_node(abbr)
        cpu = simulate_cpu_baseline(profile, node)
        gpu = simulate_out_of_core(profile, node, mode="async")
        hyb = simulate_hybrid(profile, node)
        rows.append(
            Fig7Row(
                abbr=abbr,
                compression_ratio=get_features(abbr).compression_ratio,
                cpu_gflops=cpu.gflops,
                gpu_gflops=gpu.gflops,
                hybrid_gflops=hyb.gflops,
            )
        )
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix", "cr", "CPU GF", "GPU GF", "Hybrid GF", "GPU/CPU", "Hyb/GPU", "Hyb/CPU"],
        [
            (r.abbr, round(r.compression_ratio, 2), round(r.cpu_gflops, 3),
             round(r.gpu_gflops, 3), round(r.hybrid_gflops, 3),
             round(r.gpu_over_cpu, 2), round(r.hybrid_over_gpu, 2),
             round(r.hybrid_over_cpu, 2))
            for r in rows
        ],
        title=(
            "Fig. 7: GFLOPS comparison (paper: GPU/CPU "
            f"{PAPER_GPU_CPU_BAND[0]}-{PAPER_GPU_CPU_BAND[1]}x, hybrid/GPU "
            f"{PAPER_HYBRID_GPU_BAND[0]}-{PAPER_HYBRID_GPU_BAND[1]}x)"
        ),
        floatfmt=".3f",
    )
    write_result("fig7_gflops", table)
    return table
