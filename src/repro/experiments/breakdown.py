"""Supplementary experiment: per-phase time breakdown of the async run.

Not a numbered figure, but the quantity the paper's Section IV reasons
about throughout: where the wall-clock goes — output transfers, info
transfers, the three kernel stages — and how much of the compute ends up
hidden under transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.api import simulate_out_of_core
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_node, get_profile

__all__ = ["BreakdownRow", "collect", "run"]


@dataclass(frozen=True)
class BreakdownRow:
    abbr: str
    makespan: float
    output_share: float      # D2H result-chunk busy time / makespan
    info_share: float        # D2H info-transfer busy / makespan
    numeric_share: float     # GPU numeric busy / makespan
    symbolic_share: float
    analysis_share: float
    hidden_compute: float    # GPU busy overlapped with D2H / makespan


def _busy(records, pred) -> float:
    ivs = sorted((r.start, r.end) for r in records if pred(r) and r.duration > 0)
    total, cur_lo, cur_hi = 0.0, None, None
    for lo, hi in ivs:
        if cur_hi is None or lo > cur_hi:
            if cur_hi is not None:
                total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    if cur_hi is not None:
        total += cur_hi - cur_lo
    return total


def collect() -> List[BreakdownRow]:
    rows = []
    for abbr in all_abbrs():
        profile, node = get_profile(abbr), get_node(abbr)
        res = simulate_out_of_core(profile, node)
        tl = res.timeline
        span = tl.makespan()
        rows.append(
            BreakdownRow(
                abbr=abbr,
                makespan=span,
                output_share=_busy(tl.records, lambda r: r.meta.get("kind") == "output") / span,
                info_share=_busy(tl.records, lambda r: r.meta.get("kind") == "info") / span,
                numeric_share=_busy(tl.records, lambda r: r.meta.get("kind") == "numeric") / span,
                symbolic_share=_busy(tl.records, lambda r: r.meta.get("kind") == "symbolic") / span,
                analysis_share=_busy(tl.records, lambda r: r.meta.get("kind") == "analysis") / span,
                hidden_compute=tl.overlap_time("gpu", "d2h") / span,
            )
        )
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix", "makespan ms", "output %", "info %", "numeric %",
         "symbolic %", "analysis %", "hidden compute %"],
        [
            (r.abbr, round(r.makespan * 1e3, 3), round(r.output_share * 100, 1),
             round(r.info_share * 100, 1), round(r.numeric_share * 100, 1),
             round(r.symbolic_share * 100, 1), round(r.analysis_share * 100, 1),
             round(r.hidden_compute * 100, 1))
            for r in rows
        ],
        title="Supplementary: async-pipeline phase breakdown (busy shares of makespan)",
        floatfmt=".1f",
    )
    write_result("phase_breakdown", table)
    return table
