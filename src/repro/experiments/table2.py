"""Table II: features of the input matrices.

Reports, for every suite matrix, the same columns as the paper — n,
nnz(A), flop(A^2), nnz(A^2), compression ratio — plus the paper's own
compression ratio for side-by-side comparison.  Counts are reported in
thousands/millions at our scale (the paper's column unit is millions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_features

__all__ = ["Table2Row", "collect", "run"]

#: Table II compression ratios from the paper, keyed by abbreviation
PAPER_CR = {
    "lj2008": 1.84, "com-lj": 1.77, "soc-lj": 1.76, "stokes": 4.46,
    "uk-2002": 9.14, "wiki0206": 2.66, "nlp": 10.28, "wiki1104": 2.67,
    "wiki0925": 2.67,
}


@dataclass(frozen=True)
class Table2Row:
    abbr: str
    n: int
    nnz: int
    flops: int
    nnz_out: int
    cr: float
    paper_cr: float


def collect() -> List[Table2Row]:
    rows = []
    for abbr in all_abbrs():
        f = get_features(abbr)
        rows.append(
            Table2Row(
                abbr=abbr, n=f.n, nnz=f.nnz, flops=f.flops, nnz_out=f.nnz_out,
                cr=f.compression_ratio, paper_cr=PAPER_CR[abbr],
            )
        )
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix", "n (K)", "nnz(A) (K)", "flop(A^2) (M)", "nnz(A^2) (M)",
         "compr. ratio", "paper ratio"],
        [
            (r.abbr, round(r.n / 1e3, 2), round(r.nnz / 1e3, 1),
             round(r.flops / 1e6, 2), round(r.nnz_out / 1e6, 3),
             round(r.cr, 2), r.paper_cr)
            for r in rows
        ],
        title="Table II: features of input matrices (synthetic analogs)",
        floatfmt=".2f",
    )
    write_result("table2_matrices", table)
    return table
