"""Chunk-size sensitivity: the paper's tuning methodology made explicit.

Section IV.A: "The percentage varies with the chunk size.  Thus, we
select the results when synchronous spECK achieves the best performance."
This experiment sweeps the grid from very coarse (2x2) to very fine
(12x12) on representative matrices and reports sync/async GFLOPS per
grid — showing the coarse-grid latency win, the fine-grid overhead loss,
and where the planner's automatic choice lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.api import simulate_out_of_core
from ..core.memcheck import replay_pool
from ..metrics.report import format_table, write_result
from .runner import get_node, get_profile, get_profile_for_grid

__all__ = ["SweepPoint", "GRIDS", "MATRICES", "collect", "run"]

GRIDS: Tuple[Tuple[int, int], ...] = ((2, 2), (3, 3), (4, 4), (6, 6), (9, 9), (12, 12))
MATRICES: Tuple[str, ...] = ("stokes", "nlp", "wiki0206")


@dataclass(frozen=True)
class SweepPoint:
    abbr: str
    grid: Tuple[int, int]
    chunks: int
    sync_gflops: float
    async_gflops: float
    fits: bool  # does the grid fit the device memory (pool replay)?


def collect(matrices: Sequence[str] = MATRICES) -> List[SweepPoint]:
    points = []
    for abbr in matrices:
        node = get_node(abbr)
        for rows, cols in GRIDS:
            profile = get_profile_for_grid(abbr, rows, cols)
            sync = simulate_out_of_core(profile, node, mode="sync", order="natural")
            asy = simulate_out_of_core(profile, node)
            replay = replay_pool(profile, node.gpu.device_memory_bytes)
            points.append(
                SweepPoint(
                    abbr=abbr, grid=(rows, cols), chunks=rows * cols,
                    sync_gflops=sync.gflops, async_gflops=asy.gflops,
                    fits=replay.fits,
                )
            )
    return points


def run() -> str:
    points = collect()
    rows = []
    for p in points:
        planner_grid = get_profile(p.abbr).grid
        chosen = (planner_grid.num_row_panels, planner_grid.num_col_panels)
        rows.append(
            (p.abbr, f"{p.grid[0]}x{p.grid[1]}", p.chunks,
             round(p.sync_gflops, 3), round(p.async_gflops, 3),
             "yes" if p.fits else "NO",
             "<- planner" if p.grid == chosen else "")
        )
    table = format_table(
        ["matrix", "grid", "chunks", "sync GF", "async GF", "fits device", ""],
        rows,
        title=(
            "Chunk-size sensitivity (paper Sec. IV.A's tuning): coarser grids "
            "are faster but must fit the device pool"
        ),
        floatfmt=".3f",
    )
    write_result("chunk_sweep", table)
    return table
