"""Extension experiment: multi-GPU scaling (beyond the paper).

The paper's conclusion motivates scaling SpGEMM further; this experiment
runs the asynchronous pipeline over 1/2/4 simulated GPUs (each with its
own DMA engines) with LPT chunk distribution, and reports the speedup
curve per matrix.  Scaling is expectedly sublinear: the chunk count per
matrix is small (Table III regime), so the tail chunk limits balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.multigpu import simulate_multi_gpu
from ..device.kernels import default_cost_model
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_node, get_profile

__all__ = ["ScalingRow", "GPU_COUNTS", "collect", "run"]

GPU_COUNTS: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class ScalingRow:
    abbr: str
    times: Tuple[float, ...]  # makespan per GPU count

    def speedup(self, i: int) -> float:
        return self.times[0] / self.times[i]


def collect() -> List[ScalingRow]:
    rows = []
    for abbr in all_abbrs():
        profile = get_profile(abbr)
        cm = default_cost_model(get_node(abbr))
        times = tuple(
            simulate_multi_gpu(profile, cm, g).makespan() for g in GPU_COUNTS
        )
        rows.append(ScalingRow(abbr=abbr, times=times))
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix"] + [f"{g} GPU (ms)" for g in GPU_COUNTS]
        + [f"speedup x{g}" for g in GPU_COUNTS[1:]],
        [
            tuple([r.abbr]
                  + [round(t * 1e3, 3) for t in r.times]
                  + [round(r.speedup(i), 2) for i in range(1, len(GPU_COUNTS))])
            for r in rows
        ],
        title="Extension: multi-GPU scaling of the async pipeline (LPT distribution)",
        floatfmt=".3f",
    )
    write_result("scaling_multigpu", table)
    return table
