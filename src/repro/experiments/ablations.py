"""Ablations of the paper's design choices (DESIGN.md Section 5).

Each ablation flips exactly one design decision and reports the cost of
the naive alternative:

* ``preallocation`` — the pre-allocated memory pool vs dynamic device
  allocation (whose malloc barriers serialize the two streams);
* ``divided_transfers`` — the 33/67 split of Fig. 6 vs one monolithic
  result transfer that blocks the next chunk's info transfers (Fig. 5);
* ``chunk_order`` — decreasing-flops vs natural vs increasing-flops
  execution order on the GPU-only async pipeline (Section IV.C);
* ``unified_memory`` — explicit chunked transfers vs page-fault-driven
  unified-memory migration (the introduction's argument);
* ``input_residency`` — resident input panels (the paper's regime) vs
  streaming panels per chunk (the arbitrarily-large-inputs extension):
  what keeping the inputs on the device is worth;
* ``pinned_memory`` — DMA into pinned host buffers (the paper's setup) vs
  pageable memory, whose staging copy roughly halves effective PCIe
  bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from dataclasses import replace as _replace

from ..core.api import simulate_out_of_core
from ..device.unified import UnifiedMemoryModel
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_node, get_profile

__all__ = [
    "AblationRow",
    "preallocation_rows",
    "divided_transfer_rows",
    "chunk_order_rows",
    "unified_memory_rows",
    "input_residency_rows",
    "pinned_memory_rows",
    "run",
]


@dataclass(frozen=True)
class AblationRow:
    abbr: str
    baseline_seconds: float   # the paper's design
    ablated_seconds: float    # the naive alternative

    @property
    def penalty(self) -> float:
        """Slowdown of the alternative (>1 = the paper's choice wins)."""
        return self.ablated_seconds / self.baseline_seconds


def preallocation_rows() -> List[AblationRow]:
    out = []
    for abbr in all_abbrs():
        p, node = get_profile(abbr), get_node(abbr)
        pool = simulate_out_of_core(p, node, allocator="pool")
        dyn = simulate_out_of_core(p, node, allocator="dynamic")
        out.append(AblationRow(abbr, pool.elapsed, dyn.elapsed))
    return out


def divided_transfer_rows() -> List[AblationRow]:
    out = []
    for abbr in all_abbrs():
        p, node = get_profile(abbr), get_node(abbr)
        divided = simulate_out_of_core(p, node, divided_transfers=True)
        mono = simulate_out_of_core(p, node, divided_transfers=False)
        out.append(AblationRow(abbr, divided.elapsed, mono.elapsed))
    return out


def chunk_order_rows() -> List[AblationRow]:
    """Decreasing-flops (paper) vs increasing-flops (worst case)."""
    out = []
    for abbr in all_abbrs():
        p, node = get_profile(abbr), get_node(abbr)
        desc = simulate_out_of_core(p, node, order="flops_desc")
        asc = simulate_out_of_core(p, node, order=list(reversed(p.order_by_flops_desc())))
        out.append(AblationRow(abbr, desc.elapsed, asc.elapsed))
    return out


def unified_memory_rows(utilization: float = 0.35) -> List[AblationRow]:
    """Explicit chunked D2H vs unified-memory page migration of the same
    output bytes at the given page utilization."""
    out = []
    for abbr in all_abbrs():
        p, node = get_profile(abbr), get_node(abbr)
        um = UnifiedMemoryModel(node=node)
        explicit = sum(um.explicit_transfer_time(c.output_bytes) for c in p.chunks)
        faulted = sum(um.migration_time(c.output_bytes, utilization) for c in p.chunks)
        out.append(AblationRow(abbr, explicit, faulted))
    return out


def input_residency_rows() -> List[AblationRow]:
    """Resident panels (paper) vs per-chunk streamed panels."""
    out = []
    for abbr in all_abbrs():
        p, node = get_profile(abbr), get_node(abbr)
        resident = simulate_out_of_core(p, node, input_mode="resident")
        streamed = simulate_out_of_core(p, node, input_mode="streamed")
        out.append(AblationRow(abbr, resident.elapsed, streamed.elapsed))
    return out


def pinned_memory_rows(pageable_factor: float = 0.55) -> List[AblationRow]:
    """Pinned-buffer transfers (paper) vs pageable host memory."""
    out = []
    for abbr in all_abbrs():
        p, node = get_profile(abbr), get_node(abbr)
        pinned = simulate_out_of_core(p, node)
        slow_node = _replace(
            node,
            d2h_bandwidth=node.d2h_bandwidth * pageable_factor,
            h2d_bandwidth=node.h2d_bandwidth * pageable_factor,
        )
        pageable = simulate_out_of_core(p, slow_node)
        out.append(AblationRow(abbr, pinned.elapsed, pageable.elapsed))
    return out


def run() -> str:
    sections = [
        ("pre-allocation vs dynamic malloc", preallocation_rows()),
        ("divided vs monolithic transfers", divided_transfer_rows()),
        ("flops-desc vs flops-asc order", chunk_order_rows()),
        ("explicit transfers vs unified memory", unified_memory_rows()),
        ("resident vs streamed input panels", input_residency_rows()),
        ("pinned vs pageable host buffers", pinned_memory_rows()),
    ]
    blocks = []
    for title, rows in sections:
        blocks.append(
            format_table(
                ["matrix", "paper design (ms)", "alternative (ms)", "penalty x"],
                [
                    (r.abbr, round(r.baseline_seconds * 1e3, 3),
                     round(r.ablated_seconds * 1e3, 3), round(r.penalty, 3))
                    for r in rows
                ],
                title=f"Ablation: {title}",
                floatfmt=".3f",
            )
        )
    text = "\n\n".join(blocks)
    write_result("ablations", text)
    return text
