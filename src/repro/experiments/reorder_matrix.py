"""Extension experiment: does reordering the *matrix* help the pipeline?

The paper reorders the *chunk schedule*; its related work (Akbudak &
Aykanat, Ballard et al.) reorders the *matrix* for locality.  This
experiment permutes a heavy-tailed suite matrix symmetrically —
degree-descending and reverse Cuthill-McKee — re-plans, re-profiles, and
compares the out-of-core executors on the permuted workloads.

Degree ordering concentrates the hub rows into the leading panels,
sharpening the chunk-flop skew that the hybrid's dense-chunks-to-GPU
assignment feeds on; RCM narrows the structure toward a band.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Sequence

from ..core.api import simulate_hybrid, simulate_out_of_core
from ..core.chunks import ChunkProfile
from ..core.profilecache import profile_for
from ..metrics.report import format_table, write_result
from ..sparse.reordering import degree_order, permute_symmetric, rcm_order
from .runner import cache_dir, get_matrix, get_node

__all__ = ["ReorderRow", "ORDERINGS", "collect", "run"]

ORDERINGS = ("original", "degree", "rcm")
MATRICES = ("lj2008", "wiki0206")


@dataclass(frozen=True)
class ReorderRow:
    abbr: str
    ordering: str
    async_gflops: float
    hybrid_gflops: float
    chunk_flop_skew: float  # max/mean chunk flops — what degree-sort sharpens


def _profile(abbr: str, ordering: str) -> ChunkProfile:
    from ..spgemm.kernels import resolved_wire

    wire = resolved_wire()
    key = f"profile_{abbr}_order-{ordering}.json"
    path = cache_dir() / key
    if path.exists():
        payload = json.loads(path.read_text())
        # profiles measured under another kernel are stale (see
        # runner._load_profile_payload); rebuild instead of reusing
        if payload.pop("kernel", "") == wire:
            return ChunkProfile.from_dict(payload)
        path.unlink()
    a = get_matrix(abbr)
    if ordering == "degree":
        a = permute_symmetric(a, degree_order(a))
    elif ordering == "rcm":
        a = permute_symmetric(a, rcm_order(a))
    elif ordering != "original":
        raise ValueError(f"unknown ordering {ordering!r}")
    profile = profile_for(a, a, get_node(abbr), name=f"{abbr}:{ordering}")
    path.write_text(json.dumps({"kernel": wire, **profile.to_dict()}))
    return profile


def collect(matrices: Sequence[str] = MATRICES) -> List[ReorderRow]:
    rows = []
    for abbr in matrices:
        node = get_node(abbr)
        for ordering in ORDERINGS:
            profile = _profile(abbr, ordering)
            flops = [c.flops for c in profile.chunks]
            mean = sum(flops) / len(flops) if flops else 1
            asy = simulate_out_of_core(profile, node)
            hyb = simulate_hybrid(profile, node)
            rows.append(
                ReorderRow(
                    abbr=abbr, ordering=ordering,
                    async_gflops=asy.gflops, hybrid_gflops=hyb.gflops,
                    chunk_flop_skew=max(flops) / mean if flops else 0.0,
                )
            )
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix", "ordering", "chunk-flop skew", "async GF", "hybrid GF"],
        [
            (r.abbr, r.ordering, round(r.chunk_flop_skew, 2),
             round(r.async_gflops, 3), round(r.hybrid_gflops, 3))
            for r in rows
        ],
        title="Extension: symmetric matrix reordering vs the out-of-core pipeline",
        floatfmt=".3f",
    )
    write_result("matrix_reordering", table)
    return table
