"""Fig. 8: asynchronous vs synchronous out-of-core GPU execution.

The paper measures 6.8-17.7 % speedup from overlapping the output-chunk
transfers with the SpGEMM phases, bounded by Fig. 4's transfer share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.api import simulate_out_of_core
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_node, get_profile

__all__ = ["Fig8Row", "collect", "run", "PAPER_BAND"]

#: the paper's speedup band (as fractions of 1)
PAPER_BAND = (1.068, 1.177)


@dataclass(frozen=True)
class Fig8Row:
    abbr: str
    sync_seconds: float
    async_seconds: float
    sync_gflops: float
    async_gflops: float

    @property
    def speedup(self) -> float:
        return self.sync_seconds / self.async_seconds


def collect() -> List[Fig8Row]:
    rows = []
    for abbr in all_abbrs():
        profile = get_profile(abbr)
        node = get_node(abbr)
        # both arms share the chunk grid; the async arm additionally uses
        # the paper's decreasing-flops order and divided transfers
        sync = simulate_out_of_core(profile, node, mode="sync", order="natural")
        asy = simulate_out_of_core(profile, node, mode="async")
        rows.append(
            Fig8Row(
                abbr=abbr,
                sync_seconds=sync.elapsed,
                async_seconds=asy.elapsed,
                sync_gflops=sync.gflops,
                async_gflops=asy.gflops,
            )
        )
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix", "sync GF", "async GF", "speedup", "speedup %"],
        [
            (r.abbr, round(r.sync_gflops, 3), round(r.async_gflops, 3),
             round(r.speedup, 3), round((r.speedup - 1) * 100, 1))
            for r in rows
        ],
        title=(
            "Fig. 8: asynchronous vs synchronous GPU execution "
            f"(paper speedups: {(PAPER_BAND[0]-1)*100:.1f}%..{(PAPER_BAND[1]-1)*100:.1f}%)"
        ),
        floatfmt=".3f",
    )
    write_result("fig8_async", table)
    return table
