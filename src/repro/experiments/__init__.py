"""Reproductions of every table and figure in the paper's evaluation.

Each module exposes ``collect()`` (structured rows) and ``run()``
(rendered text, also written under ``results/``).  ``run_all()`` renders
everything in paper order.
"""

from . import ablations, breakdown, chunksweep, fig04, fig56, reorder_matrix, fig07, fig08, fig09, fig10, runner, scaling, table1, table2, table3

__all__ = [
    "ablations", "breakdown", "chunksweep", "fig04", "fig56", "reorder_matrix", "fig07", "fig08", "fig09", "fig10",
    "runner", "scaling", "table1", "table2", "table3", "run_all",
]


def run_all() -> str:
    """Render every experiment; returns the concatenated report."""
    parts = [
        table1.run(),
        table2.run(),
        fig04.run(),
        fig07.run(),
        fig08.run(),
        fig09.run(),
        fig10.run(),
        fig56.run(),
        table3.run(),
        ablations.run(),
        scaling.run(),
        breakdown.run(),
    ]
    return "\n\n".join(parts)
