"""Shared experiment driver: matrices, nodes, profiles — with disk caching.

Every figure/table reproduction needs the same expensive artifacts per
matrix: the built matrix, its Table II features, a simulated node whose
device memory makes the workload genuinely out-of-core, and the executed
chunk profile.  This module computes each once and caches it under
``<repo>/.cache`` (override with ``REPRO_CACHE_DIR``), so re-running a
bench is pure scheduling simulation.

Device-memory scaling rule (the substitution documented in DESIGN.md):
the paper picks matrices whose *output-side* footprint exceeds the V100's
16 GB while the inputs fit and stay resident; we size the simulated
device to hold the inputs plus one third of the output-side working set,
so the output cannot fit and the planner must chunk — the same regime at
laptop scale.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Callable, Dict, TypeVar

T = TypeVar("T")

from ..core.chunks import ChunkProfile, csr_bytes
from ..core.planner import working_set_bytes
from ..core.profilecache import profile_for
from ..device.specs import NodeSpec, v100_node
from ..spgemm.kernels import resolved_wire
from ..sparse.formats import CSRMatrix
from ..sparse.io import load_npz, save_npz
from ..sparse.suite import SUITE, MatrixFeatures, build_matrix, matrix_features

__all__ = [
    "cache_dir",
    "get_matrix",
    "get_features",
    "get_node",
    "get_profile",
    "get_profile_for_grid",
    "all_abbrs",
]

#: floor for the simulated device memory, so tiny matrices still get a
#: non-degenerate pool
MIN_DEVICE_MEMORY = 8 << 20

_matrix_cache: Dict[str, CSRMatrix] = {}
_features_cache: Dict[str, MatrixFeatures] = {}
_profile_cache: Dict[str, ChunkProfile] = {}


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        # repo root when running from a checkout; cwd otherwise
        here = Path(__file__).resolve()
        candidate = here.parents[3]
        root = candidate if (candidate / "pyproject.toml").exists() else Path.cwd()
    path = Path(root) / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def all_abbrs() -> list:
    """Suite abbreviations in paper (Table II) order."""
    return [e.abbr for e in SUITE]


def _load_cached(path: Path, loader: Callable[[Path], T]) -> T:
    """Load a cache artifact, discarding it when corrupt.

    The disk cache is disposable — everything in it can be regenerated
    deterministically — so *any* failure to read an artifact (truncated
    ``.npz`` from an interrupted write, garbage JSON, missing arrays) is
    handled by deleting the file and signalling the caller to rebuild,
    never by crashing the run.
    """
    try:
        return loader(path)
    except Exception as exc:
        warnings.warn(
            f"discarding corrupt cache file {path.name}: {exc!r}; regenerating",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            path.unlink()
        except OSError:
            pass
        raise _CorruptCacheEntry from exc


class _CorruptCacheEntry(Exception):
    """Internal: a cache artifact was unreadable and has been removed."""


def _load_profile_payload(path: Path, wire: str) -> ChunkProfile:
    """Parse a cached profile, rejecting entries from another kernel.

    Profiles carry measured per-chunk stage times, which are only
    meaningful under the kernel that produced them — a profile cached
    under an old kernel default (or on a box where ``auto`` resolved
    differently) must be discarded, not silently reused, or model-error
    metrics compare against mismatched timings.  Raising here routes
    through :func:`_load_cached`, which unlinks the stale file and
    triggers regeneration.
    """
    payload = json.loads(path.read_text())
    cached = payload.pop("kernel", "")
    if cached != wire:
        raise ValueError(
            f"profile cached under kernel {cached!r} but current kernel "
            f"resolves to {wire!r}"
        )
    return ChunkProfile.from_dict(payload)


def get_matrix(abbr: str) -> CSRMatrix:
    """Build (or load from cache) one suite matrix."""
    if abbr in _matrix_cache:
        return _matrix_cache[abbr]
    path = cache_dir() / f"matrix_{abbr}.npz"
    mat = None
    if path.exists():
        try:
            mat = _load_cached(path, load_npz)
        except _CorruptCacheEntry:
            mat = None
    if mat is None:
        mat = build_matrix(abbr)
        save_npz(path, mat)
    _matrix_cache[abbr] = mat
    return mat


def get_features(abbr: str) -> MatrixFeatures:
    """Table II feature row (cached)."""
    if abbr in _features_cache:
        return _features_cache[abbr]
    path = cache_dir() / f"features_{abbr}.json"
    feat = None
    if path.exists():
        try:
            feat = _load_cached(
                path, lambda p: MatrixFeatures(**json.loads(p.read_text()))
            )
        except _CorruptCacheEntry:
            feat = None
    if feat is None:
        feat = matrix_features(abbr, get_matrix(abbr))
        path.write_text(json.dumps(feat.__dict__))
    _features_cache[abbr] = feat
    return feat


def device_memory_for(abbr: str) -> int:
    """Inputs resident + one third of the output-side working set.

    The paper's inputs (<= 7 GB) fit its 16 GB device; the output plus the
    per-chunk intermediates do not.  We mirror that regime: the simulated
    device holds the inputs entirely, plus half of the remaining
    working set (intermediates + worst-case output), which forces grids of
    a few panels per side — the chunk-count regime of Table III.
    """
    feat = get_features(abbr)
    inputs = 2 * csr_bytes(feat.n, feat.nnz)
    rest = working_set_bytes(feat.n, feat.nnz, feat.flops, feat.nnz_out) - inputs
    return inputs + max(rest // 2, MIN_DEVICE_MEMORY)


def get_node(abbr: str) -> NodeSpec:
    """The simulated V100 node scaled for this matrix."""
    return v100_node(device_memory_for(abbr))


def get_profile(abbr: str, kernel=None) -> ChunkProfile:
    """Planned + executed chunk profile for ``C = A x A`` (cached).

    Cache entries — in memory and on disk — are keyed on the *resolved*
    kernel wire form, so profiles measured under one kernel are never
    served for another (stale disk entries are invalidated in place).
    """
    wire = resolved_wire(kernel)
    key = f"{abbr}|{wire}"
    if key in _profile_cache:
        return _profile_cache[key]
    path = cache_dir() / f"profile_{abbr}.json"
    profile = None
    if path.exists():
        try:
            profile = _load_cached(path, lambda p: _load_profile_payload(p, wire))
        except _CorruptCacheEntry:
            profile = None
    if profile is None:
        a = get_matrix(abbr)
        node = get_node(abbr)
        profile = profile_for(a, a, node, name=abbr, kernel=kernel)
        path.write_text(json.dumps({"kernel": wire, **profile.to_dict()}))
    _profile_cache[key] = profile
    return profile


def get_profile_for_grid(abbr: str, rows: int, cols: int, kernel=None) -> ChunkProfile:
    """Executed profile at an explicit grid (cached per grid and per
    resolved kernel) — used by the chunk-size sensitivity sweep."""
    wire = resolved_wire(kernel)
    key = f"{abbr}@{rows}x{cols}|{wire}"
    if key in _profile_cache:
        return _profile_cache[key]
    path = cache_dir() / f"profile_{abbr}_{rows}x{cols}.json"
    profile = None
    if path.exists():
        try:
            profile = _load_cached(path, lambda p: _load_profile_payload(p, wire))
        except _CorruptCacheEntry:
            profile = None
    if profile is None:
        from ..core.chunks import ChunkGrid, profile_chunks

        a = get_matrix(abbr)
        grid = ChunkGrid.regular(a.n_rows, a.n_cols, rows, cols)
        profile, _ = profile_chunks(a, a, grid, name=key, kernel=kernel)
        path.write_text(json.dumps({"kernel": wire, **profile.to_dict()}))
    _profile_cache[key] = profile
    return profile
