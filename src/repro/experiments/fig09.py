"""Fig. 9: hybrid implementation with and without chunk reordering.

Both arms use the same 65 % flop ratio and the same grid; the reordering
arm sorts chunks by decreasing flops before assignment (dense chunks to
the GPU) — the paper's "significant performance improvement over the
default implementation".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.api import simulate_hybrid
from ..metrics.report import format_table, write_result
from .runner import all_abbrs, get_node, get_profile

__all__ = ["Fig9Row", "collect", "run"]


@dataclass(frozen=True)
class Fig9Row:
    abbr: str
    reordered_gflops: float
    default_gflops: float

    @property
    def gain(self) -> float:
        return self.reordered_gflops / self.default_gflops if self.default_gflops else 0.0


def collect() -> List[Fig9Row]:
    rows = []
    for abbr in all_abbrs():
        profile = get_profile(abbr)
        node = get_node(abbr)
        reordered = simulate_hybrid(profile, node, reorder=True)
        default = simulate_hybrid(profile, node, reorder=False)
        rows.append(
            Fig9Row(
                abbr=abbr,
                reordered_gflops=reordered.gflops,
                default_gflops=default.gflops,
            )
        )
    return rows


def run() -> str:
    rows = collect()
    table = format_table(
        ["matrix", "reordered GF", "default GF", "gain"],
        [
            (r.abbr, round(r.reordered_gflops, 3), round(r.default_gflops, 3),
             round(r.gain, 3))
            for r in rows
        ],
        title="Fig. 9: hybrid with vs without reordering (gain > 1 = reordering wins)",
        floatfmt=".3f",
    )
    write_result("fig9_reordering", table)
    return table
