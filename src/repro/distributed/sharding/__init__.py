"""Glue for sharded execution: transfer modeling and job placement.

:mod:`.transfers` prices a sharded run's inter-device traffic (B-panel
broadcast out, C-strip gather back) with the same alpha-beta
:class:`~repro.distributed.summa.NetworkModel` the SUMMA simulator
uses, producing a :class:`~repro.device.trace.Timeline` per run.
:mod:`.placement` is the serve-scheduler side: a least-loaded
:class:`ShardPlacement` that spreads admitted jobs across shard worker
pools ("many jobs placed across shards", where
:func:`~repro.distributed.shard.run_sharded` is "one job sharded wide").
"""

from .placement import ShardPlacement
from .transfers import measured_transfer_timeline, shard_transfer_timeline

__all__ = ["ShardPlacement", "measured_transfer_timeline",
           "shard_transfer_timeline"]
