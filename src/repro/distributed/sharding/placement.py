"""Least-loaded job placement across shard worker pools.

The serve scheduler admits jobs against one host-memory ledger and (with
``shards > 1``) runs them on per-shard executor pools.  Placement policy
is deliberately the simplest thing that balances: pick the shard with
the fewest running jobs, breaking ties by fewest reserved bytes, then by
lowest shard id — deterministic, O(shards) per decision, and starvation-
free because every completed job decrements its shard's load before the
next dispatch.  Affinity-aware placement (route jobs sharing an operand
digest to the shard whose cache already holds it) is the documented next
step in ``docs/SHARDING.md``.
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = ["ShardPlacement"]


class ShardPlacement:
    """Tracks per-shard load and picks a shard for each admitted job."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        self._lock = threading.Lock()
        self._running: List[int] = [0] * self.num_shards
        self._reserved: List[int] = [0] * self.num_shards
        self._placed: List[int] = [0] * self.num_shards
        self._down: List[bool] = [False] * self.num_shards

    def mark_down(self, shard: int) -> None:
        """Steer new placements away from a shard whose remote worker is
        lost (the transport pool's ``on_worker_lost`` hook)."""
        with self._lock:
            self._down[int(shard)] = True

    def mark_up(self, shard: int) -> None:
        with self._lock:
            self._down[int(shard)] = False

    def pick(self, cost_bytes: int = 0) -> int:
        """Choose a shard for a job and charge it there immediately.

        Down shards are skipped; with *every* shard down placement falls
        back to all of them (jobs degrade in-process rather than queue
        forever)."""
        with self._lock:
            candidates = [t for t in range(self.num_shards)
                          if not self._down[t]]
            if not candidates:
                candidates = list(range(self.num_shards))
            shard = min(
                candidates,
                key=lambda t: (self._running[t], self._reserved[t], t),
            )
            self._running[shard] += 1
            self._reserved[shard] += max(int(cost_bytes), 0)
            self._placed[shard] += 1
            return shard

    def release(self, shard: int, cost_bytes: int = 0) -> None:
        """Return a finished/failed job's charge to its shard."""
        with self._lock:
            self._running[shard] = max(0, self._running[shard] - 1)
            self._reserved[shard] = max(
                0, self._reserved[shard] - max(int(cost_bytes), 0))

    def snapshot(self) -> Dict[str, List[int]]:
        with self._lock:
            return {
                "running": list(self._running),
                "reserved_bytes": list(self._reserved),
                "placed_total": list(self._placed),
                "down": [t for t in range(self.num_shards)
                         if self._down[t]],
            }
