"""Alpha-beta transfer timeline for a sharded chunk-grid run.

A sharded run's data motion has exactly three legs:

* **broadcast** — every shard needs all of ``B``'s column panels; shards
  other than shard 0 (which is co-located with the host copy) receive
  them over the interconnect.  Priced as one binomial-tree broadcast
  (:meth:`~repro.distributed.summa.NetworkModel.t_broadcast`) landing on
  each receiving shard's NIC — the staged inter-shard broadcast of the
  SUMMA simulator, collapsed to one stage because the chunk engine
  streams column panels internally;
* **compute** — each shard's measured per-chunk kernel seconds, serial
  on its simulated device (the shard's workers overlap *host* work, but
  one simulated device executes its strip's kernels back to back);
* **gather** — each non-host shard ships its finished C strip back,
  one alpha-beta point-to-point transfer on its NIC after its compute.

NIC and device are distinct resources per shard, so broadcasts overlap
other shards' compute exactly the way the node simulator overlaps PCIe
with kernels.  The resulting :class:`~repro.device.trace.Timeline` is
what ``repro shard-bench`` turns into the 1 -> N scaling curve; the
function also backfills each record's ``transfer_bytes`` and
``utilization`` (device busy fraction over the makespan).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...device.engine import SimEngine
from ...device.trace import Timeline
from ..summa import NetworkModel

__all__ = ["shard_transfer_timeline", "measured_transfer_timeline"]


def shard_transfer_timeline(
    records: Sequence,
    *,
    b_bytes: int,
    network: Optional[NetworkModel] = None,
) -> Timeline:
    """Build the simulated device/NIC timeline for one sharded run.

    ``records`` are :class:`~repro.distributed.shard.ShardRecord`-likes
    (``shard_id``, ``compute_seconds``, ``output_bytes`` read;
    ``transfer_bytes`` and ``utilization`` written back).
    """
    net = network or NetworkModel()
    eng = SimEngine()
    for rec in records:
        eng.add_resource(f"dev{rec.shard_id}")
        eng.add_resource(f"nic{rec.shard_id}")

    fanout = len(records) - 1
    for rec in records:
        t = rec.shard_id
        stream = f"shard{t}"
        deps = []
        moved = 0
        if t != 0 and fanout > 0:
            moved += int(b_bytes)
            bcast = eng.submit(
                f"bcast-B[shard{t}]", f"nic{t}",
                net.t_broadcast(int(b_bytes), fanout),
                stream=stream, kind="comm", bytes=int(b_bytes),
            )
            deps = [bcast]
        compute = eng.submit(
            f"compute[shard{t}]", f"dev{t}",
            float(rec.compute_seconds), deps=deps,
            stream=stream, kind="compute",
        )
        if t != 0 and fanout > 0:
            out = int(rec.output_bytes)
            moved += out
            eng.submit(
                f"gather-C[shard{t}]", f"nic{t}",
                net.latency + out / net.bandwidth, deps=[compute],
                stream=stream, kind="comm", bytes=out,
            )
        rec.transfer_bytes = moved

    timeline = eng.run()
    makespan = timeline.makespan()
    for rec in records:
        rec.utilization = (
            float(rec.compute_seconds) / makespan if makespan > 0 else 0.0
        )
    return timeline


def measured_transfer_timeline(records: Sequence) -> Timeline:
    """The socket-transport counterpart of :func:`shard_transfer_timeline`:
    the same dev/NIC timeline shape, but every transfer span carries the
    *measured* wall clocked on the wire — the run-frame ``sendall`` wall
    (operand broadcast) and the summed chunk-frame wire seconds (C-strip
    gather) recorded in each :class:`~repro.distributed.shard.ShardRecord`
    — instead of an alpha-beta estimate.  No resource is exempted as
    "co-located": with real sockets even shard 0's operands cross the
    wire, and a shard that never transferred simply contributes
    zero-length spans.
    """
    eng = SimEngine()
    for rec in records:
        eng.add_resource(f"dev{rec.shard_id}")
        eng.add_resource(f"nic{rec.shard_id}")

    for rec in records:
        t = rec.shard_id
        stream = f"shard{t}"
        sent = int(getattr(rec, "bytes_sent", 0))
        received = int(getattr(rec, "bytes_received", 0))
        bcast = eng.submit(
            f"bcast-B[shard{t}]", f"nic{t}",
            float(getattr(rec, "bcast_seconds", 0.0)),
            stream=stream, kind="comm", bytes=sent,
        )
        compute = eng.submit(
            f"compute[shard{t}]", f"dev{t}",
            float(rec.compute_seconds), deps=[bcast],
            stream=stream, kind="compute",
        )
        eng.submit(
            f"gather-C[shard{t}]", f"nic{t}",
            float(getattr(rec, "gather_seconds", 0.0)), deps=[compute],
            stream=stream, kind="comm", bytes=received,
        )
        rec.transfer_bytes = sent + received

    timeline = eng.run()
    makespan = timeline.makespan()
    for rec in records:
        rec.utilization = (
            float(rec.compute_seconds) / makespan if makespan > 0 else 0.0
        )
    return timeline
