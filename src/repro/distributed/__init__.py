"""Distributed-memory SpGEMM: the simulated Sparse SUMMA comparator."""

from .summa import BlockGrid, NetworkModel, SummaResult, distribute_blocks, sparse_summa

__all__ = ["BlockGrid", "NetworkModel", "SummaResult", "distribute_blocks", "sparse_summa"]
