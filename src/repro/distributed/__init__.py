"""Distributed-memory SpGEMM: sharded multi-device scale-out + SUMMA.

Two layers (see ``docs/SHARDING.md``):

* :func:`run_sharded` — the out-of-core chunk grid across N simulated
  devices under one global scheduler and one shared host-memory ledger;
* :func:`sparse_summa` — the related-work Sparse SUMMA on a simulated
  ``q x q`` process grid, optionally executed for real
  (:class:`SummaExecution`).
"""

from .shard import (
    ShardConfig,
    ShardRecord,
    ShardSpan,
    ShardedResult,
    ShardedRunError,
    plan_shards,
    run_sharded,
)
from .sharding import (
    ShardPlacement,
    measured_transfer_timeline,
    shard_transfer_timeline,
)
from .summa import (
    BlockGrid,
    NetworkModel,
    SummaExecution,
    SummaResult,
    distribute_blocks,
    sparse_summa,
)
from .transport import (
    RemoteShardPool,
    RemoteShardError,
    RemoteWorker,
    ShardWorker,
    TransportDegradedWarning,
    TransportError,
    TransportWorkerLost,
    shard_worker_main,
)

__all__ = [
    "BlockGrid",
    "NetworkModel",
    "RemoteShardError",
    "RemoteShardPool",
    "RemoteWorker",
    "ShardConfig",
    "ShardPlacement",
    "ShardRecord",
    "ShardSpan",
    "ShardWorker",
    "ShardedResult",
    "ShardedRunError",
    "SummaExecution",
    "SummaResult",
    "TransportDegradedWarning",
    "TransportError",
    "TransportWorkerLost",
    "distribute_blocks",
    "measured_transfer_timeline",
    "plan_shards",
    "run_sharded",
    "shard_transfer_timeline",
    "shard_worker_main",
    "sparse_summa",
]
