"""Sharded multi-device execution of the out-of-core chunk grid.

One chunk grid, N simulated devices: the grid's row panels are split
into contiguous *shards*, each shard computes its row strip of
``C = A x B`` through its own :func:`~repro.core.executor.execute_chunk_grid`
run — its own executor backend and worker pool, its own lane budget
(``workers`` / ``window``), its own device pool and deadline governor,
its own tracer stream — while one global scheduler thread-fans the
shards out and one shared :class:`~repro.core.governor.HostMemoryGovernor`
ledger keeps the *node's* host-memory budget enforced across all of
them (each shard admits through a :class:`~repro.core.governor.\
ScopedLedger` view, so local chunk ids never collide).

Why this is bit-identical to the single-device run: shards own whole
row panels, so every chunk is computed from exactly the same
``(A row panel, B column panel)`` pair by exactly the same kernel as in
the unsharded grid — sharding only changes *where* a chunk runs, never
*what* it computes.  Reassembling the shard strips in row order is the
same :func:`~repro.core.assemble.assemble_chunks` call the unsharded
path uses.

``B`` is partitioned into column panels **once** and every shard reads
the same panel objects (the in-process analog of SUMMA's stage
broadcast); the cost the real network would charge for that broadcast —
and for gathering the shard outputs back to the host — is modeled with
the same alpha-beta :class:`~repro.distributed.summa.NetworkModel` the
SUMMA simulator uses, producing a per-shard transfer/compute timeline
(:mod:`repro.distributed.sharding.transfers`).

Fault tolerance composes per shard: each shard may checkpoint to its
own :class:`~repro.core.spill.RunManifest` + :class:`~repro.core.spill.\
DiskChunkStore` under one ``checkpoint_dir``, so killing one shard's
worker pool mid-run loses only that shard's unfinished chunks —
``resume=True`` re-validates every shard manifest, CRC-checks the
stored chunks, recomputes only what is missing, and the assembled
product is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.assemble import assemble_chunks
from ..core.chunks import ChunkGrid, ChunkProfile, ChunkStats, chunk_flops
from ..core.executor import execute_chunk_grid
from ..core.governor import Governor, GovernorConfig, HostMemoryGovernor
from ..core.spill import DiskChunkStore, RunManifest
from ..observability import Tracer
from ..observability.chrome import multi_tracer_events, timeline_events
from ..sparse.formats import CSRMatrix
from ..sparse.partition import PanelSet, panel_boundaries, partition_columns
from .summa import NetworkModel

__all__ = [
    "ShardConfig",
    "ShardSpan",
    "ShardRecord",
    "ShardedResult",
    "ShardedRunError",
    "plan_shards",
    "run_sharded",
]


@dataclass(frozen=True)
class ShardConfig:
    """How to run one grid across N simulated devices.

    ``workers`` / ``window`` / ``backend`` are *per shard* — each shard
    gets its own executor pool (the process backend gives every shard
    its own worker processes).  ``device_pool_bytes`` and the deadline
    fields configure each shard's private governor;
    ``host_mem_budget_bytes`` is the **node-global** ledger all shards
    share.  ``balance`` picks how row panels map to shards:
    ``"flops"`` cuts at near-equal cumulative flops (LPT-style load
    balance on contiguous spans), ``"panels"`` at near-equal panel
    counts.
    """

    num_shards: int = 2
    workers: int = 1
    backend: Optional[str] = None
    window: Optional[int] = None
    kernel: Optional[str] = None
    device_pool_bytes: Optional[int] = None
    deadline_seconds: Optional[float] = None
    heartbeat_interval: Optional[float] = None
    host_mem_budget_bytes: Optional[int] = None
    max_resplit_depth: int = 8
    balance: str = "flops"
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1 per shard")
        if self.balance not in ("flops", "panels"):
            raise ValueError(
                f"balance must be 'flops' or 'panels', got {self.balance!r}"
            )


@dataclass(frozen=True)
class ShardSpan:
    """One shard's slice of the grid: row panels ``[rp_lo, rp_hi)``."""

    shard_id: int
    rp_lo: int
    rp_hi: int

    @property
    def num_row_panels(self) -> int:
        return self.rp_hi - self.rp_lo


@dataclass
class ShardRecord:
    """What one shard did: workload, timing, and modeled transfers."""

    shard_id: int
    rp_lo: int
    rp_hi: int
    chunks: int = 0
    flops: int = 0
    output_bytes: int = 0
    #: end-to-end wall of this shard's execute_chunk_grid call (includes
    #: contention with the other shards on the test host)
    wall_seconds: float = 0.0
    #: sum of per-chunk measured kernel seconds — the shard's CPU work,
    #: used as its compute span on the simulated device timeline
    compute_seconds: float = 0.0
    #: alpha-beta-modeled bytes this shard moves: the B-panel broadcast
    #: it receives plus the C strip it ships back to the host (shard 0
    #: is co-located with the host and moves nothing)
    transfer_bytes: int = 0
    #: busy fraction of this shard's simulated device over the makespan
    utilization: float = 0.0
    resumed_chunks: int = 0
    corrupt_recomputed: int = 0

    def as_dict(self) -> dict:
        return {
            "shard": self.shard_id,
            "row_panels": [self.rp_lo, self.rp_hi],
            "chunks": self.chunks,
            "flops": self.flops,
            "output_bytes": self.output_bytes,
            "wall_seconds": self.wall_seconds,
            "compute_seconds": self.compute_seconds,
            "transfer_bytes": self.transfer_bytes,
            "utilization": self.utilization,
            "resumed_chunks": self.resumed_chunks,
        }


class ShardedRunError(RuntimeError):
    """One or more shards failed; the survivors' checkpoints are intact.

    ``failures`` maps shard id -> the exception that killed it;
    ``completed`` lists the shards that finished (and, when
    checkpointing, whose chunks are durably on disk).  Re-running with
    ``resume=True`` over the same ``checkpoint_dir`` recomputes only
    the missing chunks.
    """

    def __init__(self, failures: Dict[int, BaseException],
                 completed: Sequence[int]) -> None:
        self.failures = dict(failures)
        self.completed = list(completed)
        names = {t: type(e).__name__ for t, e in sorted(failures.items())}
        super().__init__(
            f"shard(s) {sorted(failures)} failed ({names}); "
            f"shards {sorted(completed)} completed"
        )


@dataclass
class ShardedResult:
    """The assembled product plus everything observable about the run."""

    matrix: Optional[CSRMatrix]
    profile: ChunkProfile
    grid: ChunkGrid
    records: List[ShardRecord]
    tracers: Dict[str, Tracer]
    timeline: object  # simulated transfer/compute Timeline
    num_shards: int
    wall_seconds: float
    ledger_budget_bytes: Optional[int] = None
    ledger_peak_bytes: int = 0
    ledger_overcommits: int = 0

    @property
    def sim_makespan(self) -> float:
        return self.timeline.makespan()

    @property
    def resumed_chunks(self) -> int:
        return sum(r.resumed_chunks for r in self.records)

    @property
    def transfer_bytes_total(self) -> int:
        return sum(r.transfer_bytes for r in self.records)

    def trace_events(self) -> List[dict]:
        """Per-shard tracer streams merged one Chrome process each, with
        the simulated device/NIC timeline as a sibling process."""
        events = multi_tracer_events(self.tracers)
        events.extend(timeline_events(
            self.timeline, pid=len(self.tracers) + 1,
            process_name="simulated (shard transfers)",
        ))
        return events


def plan_shards(grid: ChunkGrid, num_shards: int,
                flops: Optional[np.ndarray] = None,
                balance: str = "flops") -> List[ShardSpan]:
    """Cut the grid's row panels into contiguous shard spans.

    ``flops`` is the per-chunk matrix from
    :func:`~repro.core.chunks.chunk_flops`; with ``balance="flops"``
    the cuts land at near-equal cumulative flops so a skewed (power-law)
    grid does not pile all the work on one shard.  Spans are always
    non-empty: ``num_shards`` is clamped to the panel count.
    """
    parts = max(1, min(int(num_shards), grid.num_row_panels))
    n = grid.num_row_panels
    if balance == "flops" and flops is not None and flops.sum() > 0:
        weights = flops.sum(axis=1).astype(float)
        prefix = np.cumsum(weights)
        total = float(prefix[-1])
        bounds = [0]
        for s in range(1, parts):
            target = total * s / parts
            i = int(np.searchsorted(prefix, target, side="left")) + 1
            i = max(i, bounds[-1] + 1)      # every span stays non-empty
            i = min(i, n - (parts - s))     # leave room for later spans
            bounds.append(i)
        bounds.append(n)
    else:
        bounds = panel_boundaries(n, parts).tolist()
    return [ShardSpan(shard_id=s, rp_lo=int(bounds[s]), rp_hi=int(bounds[s + 1]))
            for s in range(parts)]


def _sub_grid(grid: ChunkGrid, span: ShardSpan) -> ChunkGrid:
    """The shard's local grid: its row-bound slice rebased to 0.

    Contiguous slices of a :func:`~repro.sparse.partition.\
    panel_boundaries` split are themselves near-equal splits (the +1
    remainder panels form a prefix), so the engine's own
    ``partition_rows`` reproduces these bounds exactly — verified here
    so an irregular custom grid fails loudly instead of deep inside the
    engine."""
    rb = grid.row_bounds
    sub_bounds = (rb[span.rp_lo:span.rp_hi + 1] - rb[span.rp_lo]).copy()
    n_rows = int(sub_bounds[-1])
    if not np.array_equal(
        sub_bounds, panel_boundaries(n_rows, span.num_row_panels)
    ):
        raise ValueError(
            f"shard {span.shard_id}: row panels {span.rp_lo}..{span.rp_hi} "
            "do not form a near-equal split of their row range — sharding "
            "requires a regular (panel_boundaries) grid"
        )
    return ChunkGrid(row_bounds=sub_bounds, col_bounds=grid.col_bounds)


def _verify_resumed(manifest, store, resume_stats):
    # the same CRC gate api.run_out_of_core applies on --resume
    from ..core.api import _verify_resumed_chunks

    return _verify_resumed_chunks(manifest, store, resume_stats)


def run_sharded(
    a: CSRMatrix,
    b: CSRMatrix,
    config: Optional[ShardConfig] = None,
    *,
    grid: Optional[ChunkGrid] = None,
    name: str = "",
    checkpoint_dir=None,
    resume: bool = False,
    shard_faults: Optional[Mapping[int, object]] = None,
    retry=None,
    crash_budget: int = 0,
    tracer=None,
    keep_output: bool = True,
) -> ShardedResult:
    """Run ``C = A x B`` across N simulated devices (see module docs).

    ``grid`` defaults to a regular split with at least one row panel per
    shard.  ``checkpoint_dir`` enables per-shard manifests + disk chunk
    stores under that directory; ``resume=True`` reloads them and
    recomputes only unfinished chunks.  ``shard_faults`` maps shard id
    -> a fault spec/injector delivered to that shard's run only (chaos
    testing); ``retry`` / ``crash_budget`` apply to every shard.
    ``tracer`` is the *node* tracer (shared-ledger ``host_mem`` gauges
    land there); each shard additionally gets its own stream, all
    merged by :meth:`ShardedResult.trace_events`.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    cfg = config if config is not None else ShardConfig()
    if grid is None:
        rp = max(cfg.num_shards, min(a.n_rows, 2 * cfg.num_shards))
        cp = min(b.n_cols, 2)
        grid = ChunkGrid.regular(a.n_rows, b.n_cols, rp, cp)

    flops = chunk_flops(a, b, grid)
    spans = plan_shards(grid, cfg.num_shards, flops, cfg.balance)
    num_shards = len(spans)
    shard_faults = dict(shard_faults or {})

    node_tracer = tracer if tracer is not None else Tracer(stream="node")
    ledger = None
    if cfg.host_mem_budget_bytes is not None:
        ledger = HostMemoryGovernor(cfg.host_mem_budget_bytes,
                                    tracer=node_tracer)

    # partition B's column panels once; every shard reads the same
    # panels (the in-process stage broadcast — see execute_chunk_grid)
    shared_col_panels: PanelSet = partition_columns(b, grid.num_col_panels)

    ckpt = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if ckpt is not None:
        ckpt.mkdir(parents=True, exist_ok=True)

    records = [ShardRecord(shard_id=s.shard_id, rp_lo=s.rp_lo, rp_hi=s.rp_hi)
               for s in spans]
    tracers: Dict[str, Tracer] = {"node": node_tracer}
    shard_outputs: List[Optional[List[List[Optional[CSRMatrix]]]]] = \
        [None] * num_shards
    shard_profiles: List[Optional[ChunkProfile]] = [None] * num_shards
    failures: Dict[int, BaseException] = {}
    rb = grid.row_bounds

    def shard_main(span: ShardSpan) -> None:
        t = span.shard_id
        rec = records[t]
        shard_tracer = Tracer(stream=f"shard{t}")
        tracers[f"shard{t}"] = shard_tracer
        a_shard = a.row_slice(int(rb[span.rp_lo]), int(rb[span.rp_hi]))
        sub = _sub_grid(grid, span)
        gov = Governor(
            GovernorConfig(
                deadline_seconds=cfg.deadline_seconds,
                heartbeat_interval=cfg.heartbeat_interval,
                device_pool_bytes=cfg.device_pool_bytes,
                max_resplit_depth=cfg.max_resplit_depth,
                # the scoped view below supplies host admission; a
                # per-shard private budget here would double-govern
                host_mem_budget_bytes=(
                    cfg.host_mem_budget_bytes if ledger is None else None),
            ),
            hostmem=None if ledger is None else ledger.scoped(f"shard{t}"),
        )
        store = None
        manifest = None
        resume_stats = None
        if ckpt is not None:
            store = DiskChunkStore(ckpt / f"shard{t}.chunks")
            manifest_path = ckpt / f"shard{t}.manifest.json"
            if resume and manifest_path.exists():
                manifest = RunManifest.load(manifest_path)
                manifest.validate(a_shard, b, sub)
                resume_stats = manifest.completed_stats()
                resume_stats, dropped = _verify_resumed(
                    manifest, store, resume_stats)
                rec.resumed_chunks = len(resume_stats)
                rec.corrupt_recomputed = dropped
            else:
                manifest = RunManifest.create(
                    manifest_path, a_shard, b, sub,
                    store_dir=store.directory)
            if gov.hostmem is not None:
                gov.attach_store(store)
        import time as _time

        t0 = _time.perf_counter()
        profile, outputs = execute_chunk_grid(
            a_shard, b, sub,
            # the serial backend is single-worker by definition; a
            # lane-budget of N means "N per shard" only where a pool exists
            workers=1 if cfg.backend == "serial" else cfg.workers,
            window=cfg.window,
            keep_outputs=keep_output,
            chunk_sink=None if store is None else store.put,
            name=f"{name}.shard{t}" if name else f"shard{t}",
            tracer=shard_tracer, backend=cfg.backend,
            retry=retry, crash_budget=crash_budget,
            faults=shard_faults.get(t),
            manifest=manifest,
            resume_stats=resume_stats or None,
            governor=gov, kernel=cfg.kernel,
            col_panels=shared_col_panels,
        )
        rec.wall_seconds = _time.perf_counter() - t0
        if keep_output and resume_stats:
            # the engine skipped these; serve them from the checkpoint
            for cid in resume_stats:
                lrp, cp = sub.panel_of(cid)
                if outputs[lrp][cp] is None:
                    outputs[lrp][cp] = store.get(lrp, cp)
        shard_profiles[t] = profile
        shard_outputs[t] = outputs
        rec.chunks = len(profile.chunks)
        rec.flops = profile.total_flops
        rec.output_bytes = profile.total_output_bytes
        rec.compute_seconds = sum(
            c.measured_seconds for c in profile.chunks if c.measured)

    def shard_guard(span: ShardSpan) -> None:
        try:
            shard_main(span)
        except BaseException as exc:  # collected; peers keep running
            failures[span.shard_id] = exc

    import time as _time

    wall0 = _time.perf_counter()
    if num_shards == 1:
        shard_guard(spans[0])
    else:
        threads = [
            threading.Thread(target=shard_guard, args=(s,),
                             name=f"shard{s.shard_id}")
            for s in spans
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
    wall = _time.perf_counter() - wall0

    if failures:
        completed = [t for t in range(num_shards) if shard_profiles[t]]
        raise ShardedRunError(failures, completed)

    # ---- alpha-beta transfer model over the per-shard records --------
    from .sharding.transfers import shard_transfer_timeline

    timeline = shard_transfer_timeline(
        records, b_bytes=b.nbytes(), network=cfg.network)

    # ---- merge shard profiles back into one global profile -----------
    stats_global: List[Optional[ChunkStats]] = [None] * grid.num_chunks
    for span, profile in zip(spans, shard_profiles):
        for st in profile.chunks:
            grp = span.rp_lo + st.row_panel
            gcid = grid.chunk_id(grp, st.col_panel)
            stats_global[gcid] = dataclasses.replace(
                st, chunk_id=gcid, row_panel=grp)
    merged = ChunkProfile(
        grid=grid, chunks=tuple(stats_global), name=name,
        measured_wall_seconds=wall,
    )

    matrix = None
    if keep_output:
        outputs: List[List[Optional[CSRMatrix]]] = [
            [None] * grid.num_col_panels for _ in range(grid.num_row_panels)
        ]
        for span, outs in zip(spans, shard_outputs):
            for lrp in range(span.num_row_panels):
                outputs[span.rp_lo + lrp] = outs[lrp]
        matrix = assemble_chunks(outputs)

    return ShardedResult(
        matrix=matrix, profile=merged, grid=grid, records=records,
        tracers=tracers, timeline=timeline, num_shards=num_shards,
        wall_seconds=wall,
        ledger_budget_bytes=None if ledger is None else ledger.budget_bytes,
        ledger_peak_bytes=0 if ledger is None else ledger.peak_bytes,
        ledger_overcommits=0 if ledger is None else ledger.overcommits,
    )
