"""Sharded multi-device execution of the out-of-core chunk grid.

One chunk grid, N simulated devices: the grid's row panels are split
into contiguous *shards*, each shard computes its row strip of
``C = A x B`` through its own :func:`~repro.core.executor.execute_chunk_grid`
run — its own executor backend and worker pool, its own lane budget
(``workers`` / ``window``), its own device pool and deadline governor,
its own tracer stream — while one global scheduler thread-fans the
shards out and one shared :class:`~repro.core.governor.HostMemoryGovernor`
ledger keeps the *node's* host-memory budget enforced across all of
them (each shard admits through a :class:`~repro.core.governor.\
ScopedLedger` view, so local chunk ids never collide).

Why this is bit-identical to the single-device run: shards own whole
row panels, so every chunk is computed from exactly the same
``(A row panel, B column panel)`` pair by exactly the same kernel as in
the unsharded grid — sharding only changes *where* a chunk runs, never
*what* it computes.  Reassembling the shard strips in row order is the
same :func:`~repro.core.assemble.assemble_chunks` call the unsharded
path uses.

``B`` is partitioned into column panels **once** and every shard reads
the same panel objects (the in-process analog of SUMMA's stage
broadcast); the cost the real network would charge for that broadcast —
and for gathering the shard outputs back to the host — is modeled with
the same alpha-beta :class:`~repro.distributed.summa.NetworkModel` the
SUMMA simulator uses, producing a per-shard transfer/compute timeline
(:mod:`repro.distributed.sharding.transfers`).

Fault tolerance composes per shard: each shard may checkpoint to its
own :class:`~repro.core.spill.RunManifest` + :class:`~repro.core.spill.\
DiskChunkStore` under one ``checkpoint_dir``, so killing one shard's
worker pool mid-run loses only that shard's unfinished chunks —
``resume=True`` re-validates every shard manifest, CRC-checks the
stored chunks, recomputes only what is missing, and the assembled
product is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import threading
import traceback as _tb
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.assemble import assemble_chunks
from ..core.chunks import ChunkGrid, ChunkProfile, ChunkStats, chunk_flops
from ..core.executor import execute_chunk_grid
from ..core.governor import Governor, GovernorConfig, HostMemoryGovernor
from ..core.governor.integrity import ChunkCorruption, crc32_matrix
from ..core.spill import DiskChunkStore, RunManifest
from ..observability import Tracer
from ..observability.chrome import multi_tracer_events, timeline_events
from ..sparse.formats import CSRMatrix
from ..sparse.partition import PanelSet, panel_boundaries, partition_columns
from .summa import NetworkModel
from .transport import (
    RemoteShardPool,
    TransportDegradedWarning,
    TransportError,
    TransportWorkerLost,
    csr_arrays,
    run_remote_span,
)

__all__ = [
    "ShardConfig",
    "ShardSpan",
    "ShardRecord",
    "ShardedResult",
    "ShardedRunError",
    "plan_shards",
    "run_sharded",
]


@dataclass(frozen=True)
class ShardConfig:
    """How to run one grid across N simulated devices.

    ``workers`` / ``window`` / ``backend`` are *per shard* — each shard
    gets its own executor pool (the process backend gives every shard
    its own worker processes).  ``device_pool_bytes`` and the deadline
    fields configure each shard's private governor;
    ``host_mem_budget_bytes`` is the **node-global** ledger all shards
    share.  ``balance`` picks how row panels map to shards:
    ``"flops"`` cuts at near-equal cumulative flops (LPT-style load
    balance on contiguous spans), ``"panels"`` at near-equal panel
    counts.
    """

    num_shards: int = 2
    workers: int = 1
    backend: Optional[str] = None
    window: Optional[int] = None
    kernel: Optional[str] = None
    device_pool_bytes: Optional[int] = None
    deadline_seconds: Optional[float] = None
    heartbeat_interval: Optional[float] = None
    host_mem_budget_bytes: Optional[int] = None
    max_resplit_depth: int = 8
    balance: str = "flops"
    network: NetworkModel = field(default_factory=NetworkModel)
    #: ``"local"`` runs every shard in-process (PR 9 behavior);
    #: ``"socket"`` ships each span to a ``repro shard-worker`` process
    #: over the :mod:`~repro.distributed.transport` protocol, replacing
    #: the alpha-beta transfer model with *measured* walls
    transport: str = "local"
    #: socket flavor for auto-spawned workers: ``"unix"`` or ``"tcp"``
    socket_kind: str = "unix"
    #: attach to externally launched workers instead of spawning
    #: (``tcp:HOST:PORT`` / ``unix:PATH`` strings, one per worker)
    worker_addresses: Optional[Tuple[str, ...]] = None
    #: wire heartbeat period (seconds) pushed by each remote worker
    transport_heartbeat: float = 0.25
    #: lease expires after ``transport_heartbeat x lease_grace`` of
    #: total wire silence — the claims-array "2x interval" rule, made
    #: configurable for chaos tests
    lease_grace: float = 3.0
    #: reconnect policy for transient socket loss (None -> the pool's
    #: DEFAULT_RECONNECT); its jitter is deterministic in
    #: ``(attempt, shard id)`` so chaos runs replay byte-identically
    reconnect: Optional[object] = None
    connect_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1 per shard")
        if self.balance not in ("flops", "panels"):
            raise ValueError(
                f"balance must be 'flops' or 'panels', got {self.balance!r}"
            )
        if self.transport not in ("local", "socket"):
            raise ValueError(
                f"transport must be 'local' or 'socket', got {self.transport!r}"
            )
        if self.socket_kind not in ("unix", "tcp"):
            raise ValueError(
                f"socket_kind must be 'unix' or 'tcp', got {self.socket_kind!r}"
            )


@dataclass(frozen=True)
class ShardSpan:
    """One shard's slice of the grid: row panels ``[rp_lo, rp_hi)``."""

    shard_id: int
    rp_lo: int
    rp_hi: int

    @property
    def num_row_panels(self) -> int:
        return self.rp_hi - self.rp_lo


@dataclass
class ShardRecord:
    """What one shard did: workload, timing, and modeled transfers."""

    shard_id: int
    rp_lo: int
    rp_hi: int
    chunks: int = 0
    flops: int = 0
    output_bytes: int = 0
    #: end-to-end wall of this shard's execute_chunk_grid call (includes
    #: contention with the other shards on the test host)
    wall_seconds: float = 0.0
    #: sum of per-chunk measured kernel seconds — the shard's CPU work,
    #: used as its compute span on the simulated device timeline
    compute_seconds: float = 0.0
    #: alpha-beta-modeled bytes this shard moves: the B-panel broadcast
    #: it receives plus the C strip it ships back to the host (shard 0
    #: is co-located with the host and moves nothing)
    transfer_bytes: int = 0
    #: busy fraction of this shard's simulated device over the makespan
    utilization: float = 0.0
    resumed_chunks: int = 0
    corrupt_recomputed: int = 0
    #: ``"local"`` (in-process thread) or ``"socket"`` (remote worker)
    transport: str = "local"
    #: *measured* wall of shipping this shard's operands (A slice + B)
    #: over the socket — replaces the modeled broadcast for socket runs
    bcast_seconds: float = 0.0
    #: *measured* wire seconds of the chunk frames gathered back
    gather_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: successful transport reconnects while driving this span
    reconnects: int = 0
    #: empty, ``"workerN"`` (re-placed on a survivor), or ``"local"``
    #: (degraded to in-process under a TransportDegradedWarning)
    failover: str = ""

    @property
    def transfer_seconds(self) -> float:
        return self.bcast_seconds + self.gather_seconds

    def as_dict(self) -> dict:
        out = {
            "shard": self.shard_id,
            "row_panels": [self.rp_lo, self.rp_hi],
            "chunks": self.chunks,
            "flops": self.flops,
            "output_bytes": self.output_bytes,
            "wall_seconds": self.wall_seconds,
            "compute_seconds": self.compute_seconds,
            "transfer_bytes": self.transfer_bytes,
            "utilization": self.utilization,
            "resumed_chunks": self.resumed_chunks,
            "transport": self.transport,
        }
        if self.transport == "socket":
            out.update({
                "bcast_seconds": self.bcast_seconds,
                "gather_seconds": self.gather_seconds,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "reconnects": self.reconnects,
                "failover": self.failover,
            })
        return out


class ShardedRunError(RuntimeError):
    """One or more shards failed; the survivors' checkpoints are intact.

    ``failures`` maps shard id -> the exception that killed it;
    ``tracebacks`` maps shard id -> that exception's formatted traceback
    (the *remote* traceback when the shard ran on a socket worker, via
    :class:`~repro.distributed.transport.RemoteShardError`) — the
    ``__cause__``-style context that a cross-thread collection would
    otherwise drop.  ``completed`` lists the shards that finished (and,
    when checkpointing, whose chunks are durably on disk).  Re-running
    with ``resume=True`` over the same ``checkpoint_dir`` recomputes
    only the missing chunks.
    """

    def __init__(self, failures: Dict[int, BaseException],
                 completed: Sequence[int]) -> None:
        self.failures = dict(failures)
        self.completed = list(completed)
        self.tracebacks: Dict[int, str] = {}
        for t, exc in self.failures.items():
            remote = getattr(exc, "remote_traceback", None)
            if remote:
                self.tracebacks[t] = remote
            else:
                self.tracebacks[t] = "".join(_tb.format_exception(
                    type(exc), exc, exc.__traceback__))
        names = {t: type(e).__name__ for t, e in sorted(failures.items())}
        super().__init__(
            f"shard(s) {sorted(failures)} failed ({names}); "
            f"shards {sorted(completed)} completed"
        )
        if self.failures:
            # chain the first failure so a bare `raise` still shows a
            # root cause even when the caller ignores .tracebacks
            self.__cause__ = self.failures[min(self.failures)]


@dataclass
class ShardedResult:
    """The assembled product plus everything observable about the run."""

    matrix: Optional[CSRMatrix]
    profile: ChunkProfile
    grid: ChunkGrid
    records: List[ShardRecord]
    tracers: Dict[str, Tracer]
    timeline: object  # simulated transfer/compute Timeline
    num_shards: int
    wall_seconds: float
    ledger_budget_bytes: Optional[int] = None
    ledger_peak_bytes: int = 0
    ledger_overcommits: int = 0

    @property
    def sim_makespan(self) -> float:
        return self.timeline.makespan()

    @property
    def resumed_chunks(self) -> int:
        return sum(r.resumed_chunks for r in self.records)

    @property
    def transfer_bytes_total(self) -> int:
        return sum(r.transfer_bytes for r in self.records)

    @property
    def transport(self) -> str:
        return self.records[0].transport if self.records else "local"

    @property
    def measured_transfer_seconds(self) -> float:
        """Sum of measured socket bcast+gather walls (0.0 for local)."""
        return sum(r.bcast_seconds + r.gather_seconds for r in self.records)

    def trace_events(self) -> List[dict]:
        """Per-shard tracer streams merged one Chrome process each, with
        the simulated device/NIC timeline as a sibling process."""
        events = multi_tracer_events(self.tracers)
        events.extend(timeline_events(
            self.timeline, pid=len(self.tracers) + 1,
            process_name="simulated (shard transfers)",
        ))
        return events


def plan_shards(grid: ChunkGrid, num_shards: int,
                flops: Optional[np.ndarray] = None,
                balance: str = "flops") -> List[ShardSpan]:
    """Cut the grid's row panels into contiguous shard spans.

    ``flops`` is the per-chunk matrix from
    :func:`~repro.core.chunks.chunk_flops`; with ``balance="flops"``
    the cuts land at near-equal cumulative flops so a skewed (power-law)
    grid does not pile all the work on one shard.  Spans are always
    non-empty: ``num_shards`` is clamped to the panel count.
    """
    parts = max(1, min(int(num_shards), grid.num_row_panels))
    n = grid.num_row_panels
    if balance == "flops" and flops is not None and flops.sum() > 0:
        weights = flops.sum(axis=1).astype(float)
        prefix = np.cumsum(weights)
        total = float(prefix[-1])
        bounds = [0]
        for s in range(1, parts):
            target = total * s / parts
            i = int(np.searchsorted(prefix, target, side="left")) + 1
            i = max(i, bounds[-1] + 1)      # every span stays non-empty
            i = min(i, n - (parts - s))     # leave room for later spans
            bounds.append(i)
        bounds.append(n)
    else:
        bounds = panel_boundaries(n, parts).tolist()
    return [ShardSpan(shard_id=s, rp_lo=int(bounds[s]), rp_hi=int(bounds[s + 1]))
            for s in range(parts)]


def _sub_grid(grid: ChunkGrid, span: ShardSpan) -> ChunkGrid:
    """The shard's local grid: its row-bound slice rebased to 0.

    Contiguous slices of a :func:`~repro.sparse.partition.\
    panel_boundaries` split are themselves near-equal splits (the +1
    remainder panels form a prefix), so the engine's own
    ``partition_rows`` reproduces these bounds exactly — verified here
    so an irregular custom grid fails loudly instead of deep inside the
    engine."""
    rb = grid.row_bounds
    sub_bounds = (rb[span.rp_lo:span.rp_hi + 1] - rb[span.rp_lo]).copy()
    n_rows = int(sub_bounds[-1])
    if not np.array_equal(
        sub_bounds, panel_boundaries(n_rows, span.num_row_panels)
    ):
        raise ValueError(
            f"shard {span.shard_id}: row panels {span.rp_lo}..{span.rp_hi} "
            "do not form a near-equal split of their row range — sharding "
            "requires a regular (panel_boundaries) grid"
        )
    return ChunkGrid(row_bounds=sub_bounds, col_bounds=grid.col_bounds)


def _verify_resumed(manifest, store, resume_stats):
    # the same CRC gate api.run_out_of_core applies on --resume
    from ..core.api import _verify_resumed_chunks

    return _verify_resumed_chunks(manifest, store, resume_stats)


def run_sharded(
    a: CSRMatrix,
    b: CSRMatrix,
    config: Optional[ShardConfig] = None,
    *,
    grid: Optional[ChunkGrid] = None,
    name: str = "",
    checkpoint_dir=None,
    resume: bool = False,
    shard_faults: Optional[Mapping[int, object]] = None,
    shard_debug: Optional[Mapping[int, Mapping]] = None,
    retry=None,
    crash_budget: int = 0,
    tracer=None,
    keep_output: bool = True,
    worker_pool: Optional[RemoteShardPool] = None,
) -> ShardedResult:
    """Run ``C = A x B`` across N simulated devices (see module docs).

    ``grid`` defaults to a regular split with at least one row panel per
    shard.  ``checkpoint_dir`` enables per-shard manifests + disk chunk
    stores under that directory; ``resume=True`` reloads them and
    recomputes only unfinished chunks.  ``shard_faults`` maps shard id
    -> a fault spec/injector delivered to that shard's run only (chaos
    testing; for socket transport it must be an encoded spec string);
    ``shard_debug`` maps shard id -> transport chaos hooks
    (``{"sever_after": N, "heartbeat_stall": seconds}``) forwarded to
    that shard's remote worker.  ``retry`` / ``crash_budget`` apply to
    every shard.  ``tracer`` is the *node* tracer (shared-ledger
    ``host_mem`` gauges land there); each shard additionally gets its
    own stream, all merged by :meth:`ShardedResult.trace_events`.

    With ``config.transport == "socket"`` every span runs on a remote
    ``repro shard-worker`` process driven through ``worker_pool`` (one
    is spawned — and reaped — automatically when neither ``worker_pool``
    nor ``config.worker_addresses`` is given).  Checkpoints stay on the
    node: workers are stateless, so worker death costs only in-flight
    chunks and failover re-placement splices the already-received,
    CRC-verified chunks into a survivor's (or the local fallback's)
    resume set — bit-identical to a run that never failed.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    cfg = config if config is not None else ShardConfig()
    if grid is None:
        rp = max(cfg.num_shards, min(a.n_rows, 2 * cfg.num_shards))
        cp = min(b.n_cols, 2)
        grid = ChunkGrid.regular(a.n_rows, b.n_cols, rp, cp)

    flops = chunk_flops(a, b, grid)
    spans = plan_shards(grid, cfg.num_shards, flops, cfg.balance)
    num_shards = len(spans)
    shard_faults = dict(shard_faults or {})
    shard_debug = dict(shard_debug or {})
    use_socket = cfg.transport == "socket"

    node_tracer = tracer if tracer is not None else Tracer(stream="node")
    ledger = None
    # the shared host-memory ledger cannot span worker processes; socket
    # runs hand each worker a 1/N share of the budget instead (enforced
    # by that worker's own governor)
    if cfg.host_mem_budget_bytes is not None and not use_socket:
        ledger = HostMemoryGovernor(cfg.host_mem_budget_bytes,
                                    tracer=node_tracer)

    pool = worker_pool
    owns_pool = False
    if use_socket and pool is None:
        if cfg.worker_addresses:
            pool = RemoteShardPool.connect(
                list(cfg.worker_addresses),
                connect_timeout=cfg.connect_timeout)
        else:
            pool = RemoteShardPool.spawn(
                num_shards, kind=cfg.socket_kind,
                connect_timeout=cfg.connect_timeout)
        owns_pool = True

    # partition B's column panels once; every shard reads the same
    # panels (the in-process stage broadcast — see execute_chunk_grid)
    shared_col_panels: PanelSet = partition_columns(b, grid.num_col_panels)

    ckpt = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if ckpt is not None:
        ckpt.mkdir(parents=True, exist_ok=True)

    records = [ShardRecord(shard_id=s.shard_id, rp_lo=s.rp_lo, rp_hi=s.rp_hi)
               for s in spans]
    tracers: Dict[str, Tracer] = {"node": node_tracer}
    shard_outputs: List[Optional[List[List[Optional[CSRMatrix]]]]] = \
        [None] * num_shards
    shard_profiles: List[Optional[ChunkProfile]] = [None] * num_shards
    failures: Dict[int, BaseException] = {}
    rb = grid.row_bounds

    def make_governor(t: int) -> Governor:
        return Governor(
            GovernorConfig(
                deadline_seconds=cfg.deadline_seconds,
                heartbeat_interval=cfg.heartbeat_interval,
                device_pool_bytes=cfg.device_pool_bytes,
                max_resplit_depth=cfg.max_resplit_depth,
                # the scoped view below supplies host admission; a
                # per-shard private budget here would double-govern
                host_mem_budget_bytes=(
                    cfg.host_mem_budget_bytes if ledger is None else None),
            ),
            hostmem=None if ledger is None else ledger.scoped(f"shard{t}"),
        )

    def worker_config() -> dict:
        """The remote worker's executor config (the run-frame payload)."""
        share = None
        if cfg.host_mem_budget_bytes is not None:
            share = max(1, int(cfg.host_mem_budget_bytes) // num_shards)
        return {
            "workers": 1 if cfg.backend == "serial" else cfg.workers,
            "window": cfg.window,
            "backend": cfg.backend,
            "kernel": cfg.kernel,
            "retries": getattr(retry, "max_attempts", 1) if retry else 1,
            "retry_delay": getattr(retry, "base_delay", 0.05) if retry else 0.05,
            "crash_budget": crash_budget,
            "deadline_seconds": cfg.deadline_seconds,
            "heartbeat_interval_governor": cfg.heartbeat_interval,
            "device_pool_bytes": cfg.device_pool_bytes,
            "max_resplit_depth": cfg.max_resplit_depth,
            "host_mem_budget_bytes": share,
        }

    def run_span_socket(span, rec, shard_tracer, a_shard, sub,
                        store, manifest, resume_stats):
        """Drive one span over the pool, with failover re-placement.

        Returns ``(profile, outputs)`` shaped exactly like the local
        :func:`~repro.core.executor.execute_chunk_grid` return, so the
        merge/assembly epilogue cannot tell the transports apart.
        """
        t = span.shard_id
        run_name = f"{name}.shard{t}" if name else f"shard{t}"
        completed: Dict[int, ChunkStats] = dict(resume_stats or {})
        outputs: List[List[Optional[CSRMatrix]]] = [
            [None] * sub.num_col_panels for _ in range(sub.num_row_panels)]
        if keep_output and store is not None:
            for cid in completed:
                lrp, cp = sub.panel_of(cid)
                outputs[lrp][cp] = store.get(lrp, cp)

        a_meta, a_arrays = csr_arrays(a_shard, prefix="a_")
        b_meta, b_arrays = csr_arrays(b, prefix="b_")
        run_meta = {
            "name": run_name,
            "grid": {"row_bounds": sub.row_bounds.tolist(),
                     "col_bounds": sub.col_bounds.tolist()},
            "config": worker_config(),
        }
        run_meta.update(a_meta)
        run_meta.update(b_meta)
        fault = shard_faults.get(t)
        if fault is not None:
            if not isinstance(fault, str):
                raise TypeError(
                    f"shard {t}: socket transport needs an encoded fault "
                    f"spec string, got {type(fault).__name__}"
                )
            run_meta["faults"] = fault
        dbg = shard_debug.get(t)
        if dbg:
            run_meta["debug"] = dict(dbg)
        run_arrays = dict(a_arrays)
        run_arrays.update(b_arrays)

        def on_chunk(stats: ChunkStats, matrix: CSRMatrix,
                     crc: Optional[int]) -> None:
            actual = crc32_matrix(matrix)
            if crc is not None and int(crc) != actual:
                raise ChunkCorruption(
                    f"shard {t} chunk {stats.chunk_id}: worker-side CRC "
                    f"{int(crc):#010x} != node-side {actual:#010x}"
                )
            if store is not None:
                store.put(stats.row_panel, stats.col_panel, matrix)
            if manifest is not None:
                manifest.mark_done(stats, crc32=actual)
            completed[stats.chunk_id] = stats
            if keep_output:
                outputs[stats.row_panel][stats.col_panel] = matrix

        tried: Set[int] = set()
        worker = pool.worker_for(t)
        chaos = True
        last_result = None
        while True:
            tried.add(worker.worker_id)
            meta = dict(run_meta)
            if not chaos:
                # chaos hooks fired on (or died with) the original
                # worker; a re-placed run must not re-inject them
                meta.pop("faults", None)
                meta.pop("debug", None)
            try:
                with worker.lock, shard_tracer.span(
                        f"remote[shard{t}]", "transport",
                        worker=worker.worker_id):
                    last_result = run_remote_span(
                        worker, run_meta=meta, run_arrays=run_arrays,
                        completed=completed, on_chunk=on_chunk,
                        heartbeat_interval=cfg.transport_heartbeat,
                        lease_grace=cfg.lease_grace,
                        reconnect=cfg.reconnect, salt=t,
                        mark_lost=pool.mark_lost,
                    )
            except TransportWorkerLost as lost:
                chaos = False
                candidates = pool.failover_targets(tried)
                if candidates:
                    worker = candidates[0]
                    rec.failover = f"worker{worker.worker_id}"
                    rec.reconnects += 1
                    continue
                warnings.warn(TransportDegradedWarning(
                    f"shard {t}: no live workers left ({lost}); "
                    "re-placing the remaining span in-process"
                ))
                rec.failover = "local"
                return run_span_degraded(span, rec, shard_tracer, a_shard,
                                         sub, store, manifest, completed,
                                         outputs, run_name)
            rec.bcast_seconds += last_result.bcast_seconds
            rec.gather_seconds += last_result.gather_seconds
            rec.bytes_sent += last_result.bytes_sent
            rec.bytes_received += last_result.bytes_received
            rec.reconnects += last_result.reconnects
            break

        missing = [cid for cid in range(sub.num_chunks)
                   if cid not in completed]
        if missing:
            raise TransportError(
                f"shard {t}: worker reported done but chunks {missing} "
                "never arrived"
            )
        now = shard_tracer.now()
        span_wall = last_result.wall_seconds
        shard_tracer.add_span(
            f"bcast-B[shard{t}]", "transport",
            max(0.0, now - span_wall),
            max(0.0, now - span_wall) + rec.bcast_seconds,
            bytes=rec.bytes_sent)
        shard_tracer.add_span(
            f"gather-C[shard{t}]", "transport",
            max(0.0, now - rec.gather_seconds), now,
            bytes=rec.bytes_received)
        profile = ChunkProfile(
            grid=sub,
            chunks=tuple(completed[cid] for cid in range(sub.num_chunks)),
            name=run_name,
            measured_wall_seconds=span_wall,
        )
        return profile, outputs

    def run_span_degraded(span, rec, shard_tracer, a_shard, sub,
                          store, manifest, completed, outputs, run_name):
        """Local fallback: finish the span in-process, splicing the
        CRC-verified chunks already received/checkpointed as a resume
        set — the same skip semantics a reconnect would use, so the
        result stays bit-identical."""
        t = span.shard_id
        profile, outs = execute_chunk_grid(
            a_shard, b, sub,
            workers=1 if cfg.backend == "serial" else cfg.workers,
            window=cfg.window,
            keep_outputs=keep_output,
            chunk_sink=None if store is None else store.put,
            name=run_name,
            tracer=shard_tracer, backend=cfg.backend,
            retry=retry, crash_budget=crash_budget,
            manifest=manifest,
            resume_stats=completed or None,
            governor=make_governor(t), kernel=cfg.kernel,
            col_panels=shared_col_panels,
        )
        if keep_output:
            for lrp in range(sub.num_row_panels):
                for cp in range(sub.num_col_panels):
                    if outs[lrp][cp] is None:
                        outs[lrp][cp] = outputs[lrp][cp]
        return profile, outs

    def shard_main(span: ShardSpan) -> None:
        t = span.shard_id
        rec = records[t]
        rec.transport = cfg.transport
        shard_tracer = Tracer(stream=f"shard{t}")
        tracers[f"shard{t}"] = shard_tracer
        a_shard = a.row_slice(int(rb[span.rp_lo]), int(rb[span.rp_hi]))
        sub = _sub_grid(grid, span)
        store = None
        manifest = None
        resume_stats = None
        if ckpt is not None:
            store = DiskChunkStore(ckpt / f"shard{t}.chunks")
            manifest_path = ckpt / f"shard{t}.manifest.json"
            if resume and manifest_path.exists():
                manifest = RunManifest.load(manifest_path)
                manifest.validate(a_shard, b, sub)
                resume_stats = manifest.completed_stats()
                resume_stats, dropped = _verify_resumed(
                    manifest, store, resume_stats)
                rec.resumed_chunks = len(resume_stats)
                rec.corrupt_recomputed = dropped
            else:
                manifest = RunManifest.create(
                    manifest_path, a_shard, b, sub,
                    store_dir=store.directory)
        import time as _time

        t0 = _time.perf_counter()
        if use_socket:
            profile, outputs = run_span_socket(
                span, rec, shard_tracer, a_shard, sub,
                store, manifest, resume_stats)
        else:
            gov = make_governor(t)
            if store is not None and gov.hostmem is not None:
                gov.attach_store(store)
            profile, outputs = execute_chunk_grid(
                a_shard, b, sub,
                # the serial backend is single-worker by definition; a
                # lane-budget of N means "N per shard" only where a pool exists
                workers=1 if cfg.backend == "serial" else cfg.workers,
                window=cfg.window,
                keep_outputs=keep_output,
                chunk_sink=None if store is None else store.put,
                name=f"{name}.shard{t}" if name else f"shard{t}",
                tracer=shard_tracer, backend=cfg.backend,
                retry=retry, crash_budget=crash_budget,
                faults=shard_faults.get(t),
                manifest=manifest,
                resume_stats=resume_stats or None,
                governor=gov, kernel=cfg.kernel,
                col_panels=shared_col_panels,
            )
            if keep_output and resume_stats:
                # the engine skipped these; serve them from the checkpoint
                for cid in resume_stats:
                    lrp, cp = sub.panel_of(cid)
                    if outputs[lrp][cp] is None:
                        outputs[lrp][cp] = store.get(lrp, cp)
        rec.wall_seconds = _time.perf_counter() - t0
        shard_profiles[t] = profile
        shard_outputs[t] = outputs
        rec.chunks = len(profile.chunks)
        rec.flops = profile.total_flops
        rec.output_bytes = profile.total_output_bytes
        rec.compute_seconds = sum(
            c.measured_seconds for c in profile.chunks if c.measured)

    def shard_guard(span: ShardSpan) -> None:
        try:
            shard_main(span)
        except BaseException as exc:  # collected; peers keep running
            failures[span.shard_id] = exc

    import time as _time

    wall0 = _time.perf_counter()
    try:
        if num_shards == 1:
            shard_guard(spans[0])
        else:
            threads = [
                threading.Thread(target=shard_guard, args=(s,),
                                 name=f"shard{s.shard_id}")
                for s in spans
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
    finally:
        if owns_pool:
            pool.close()
    wall = _time.perf_counter() - wall0

    if failures:
        completed = [t for t in range(num_shards) if shard_profiles[t]]
        raise ShardedRunError(failures, completed)

    # ---- transfer timeline over the per-shard records ----------------
    # socket runs carry *measured* walls; local runs price the in-process
    # broadcast/gather with the alpha-beta model
    if use_socket:
        from .sharding.transfers import measured_transfer_timeline

        timeline = measured_transfer_timeline(records)
    else:
        from .sharding.transfers import shard_transfer_timeline

        timeline = shard_transfer_timeline(
            records, b_bytes=b.nbytes(), network=cfg.network)

    # ---- merge shard profiles back into one global profile -----------
    stats_global: List[Optional[ChunkStats]] = [None] * grid.num_chunks
    for span, profile in zip(spans, shard_profiles):
        for st in profile.chunks:
            grp = span.rp_lo + st.row_panel
            gcid = grid.chunk_id(grp, st.col_panel)
            stats_global[gcid] = dataclasses.replace(
                st, chunk_id=gcid, row_panel=grp)
    merged = ChunkProfile(
        grid=grid, chunks=tuple(stats_global), name=name,
        measured_wall_seconds=wall,
    )

    matrix = None
    if keep_output:
        outputs: List[List[Optional[CSRMatrix]]] = [
            [None] * grid.num_col_panels for _ in range(grid.num_row_panels)
        ]
        for span, outs in zip(spans, shard_outputs):
            for lrp in range(span.num_row_panels):
                outputs[span.rp_lo + lrp] = outs[lrp]
        matrix = assemble_chunks(outputs)

    return ShardedResult(
        matrix=matrix, profile=merged, grid=grid, records=records,
        tracers=tracers, timeline=timeline, num_shards=num_shards,
        wall_seconds=wall,
        ledger_budget_bytes=None if ledger is None else ledger.budget_bytes,
        ledger_peak_bytes=0 if ledger is None else ledger.peak_bytes,
        ledger_overcommits=0 if ledger is None else ledger.overcommits,
    )
