"""Remote shard worker: one process hosting one shard's full executor.

``repro shard-worker --listen tcp:127.0.0.1:0`` runs this loop.  The
worker is deliberately *stateless between runs*: it accepts one
connection at a time, answers ``run`` requests by executing the framed
``(A shard, B)`` operands through the ordinary
:func:`~repro.core.executor.execute_chunk_grid` — its own backend,
worker pool, kernel dispatch, and governor, exactly as an in-process
shard would — and streams every finished chunk straight back as a
CRC-stamped binary frame.  All durable state (checkpoint manifests,
chunk stores, resume decisions) lives on the *node*: a worker that dies
loses nothing but its in-flight chunks, and a reconnecting node simply
re-sends the run request with the chunks it already holds listed in
``skip``.

Liveness is pushed, not polled: a daemon thread sends a monotonically
counted ``hb`` frame every ``heartbeat_interval / 2`` seconds — the
process backend's shared-memory heartbeat slot
(:mod:`repro.core.governor.watchdog`) extended across the wire.  The
node arms a :class:`~repro.core.governor.watchdog.HeartbeatLease` per
worker and declares the worker stalled when the lease expires.

Chunk frames and heartbeats share one send lock, so frames never
interleave; a send failure anywhere marks the connection dead and
aborts the current run (the node owns recovery).

Chaos hooks (tests / CI only, requested per run by the node):
``faults`` forwards an encoded :class:`~repro.core.executor.faults.\
FaultSpec` list into the executor (``kill`` hard-exits this process
mid-run); ``debug.sever_after`` hard-closes the socket halfway through
the Nth chunk frame; ``debug.heartbeat_stall`` wedges the heartbeat
thread (holding the send lock) so the node's lease expires while the
process is still alive.
"""

from __future__ import annotations

import os
import socket
import struct
import sys
import threading
import time
import traceback
from typing import Dict, Optional

import numpy as np

from ...core.chunks import STAT_FIELDS, ChunkGrid, ChunkStats
from ...core.executor import execute_chunk_grid
from ...core.executor.faults import RetryPolicy
from ...core.governor import Governor, GovernorConfig
from ...sparse.formats import CSRMatrix
from .wire import (
    PROTOCOL_VERSION,
    Frame,
    TransportClosed,
    TransportError,
    create_listener,
    csr_arrays,
    csr_from_arrays,
    pack_frame,
    recv_frame,
    send_frame,
)

__all__ = ["ShardWorker", "shard_worker_main", "stats_record", "stats_from_record"]

#: default wire heartbeat period (seconds) when a run does not set one
DEFAULT_HEARTBEAT_INTERVAL = 0.25


def stats_record(stats: ChunkStats) -> dict:
    """JSON-safe dict of one :class:`ChunkStats` (the manifest encoding)."""
    record = {}
    for f in STAT_FIELDS:
        v = getattr(stats, f)
        if isinstance(v, np.generic):
            v = v.item()
        record[f] = v
    return record


def stats_from_record(record: dict) -> ChunkStats:
    return ChunkStats(**{f: record[f] for f in STAT_FIELDS})


class _Shutdown(Exception):
    """Internal: the node asked this worker process to exit."""


class _StreamingSink:
    """Chunk sink + manifest shim that streams finished chunks back.

    The engine calls ``chunk_sink(rp, cp, matrix)`` and then —
    still under its sink lock — ``manifest.mark_done(stats, crc32=...)``
    for the same chunk.  The sink buffers the matrix; ``mark_done``
    marries it to its stats and sends one combined ``chunk`` frame.  A
    send failure raises out of the engine's sink stage, aborting the
    run — the node drives all recovery.
    """

    def __init__(self, connection: "_Connection") -> None:
        self._connection = connection
        self._pending: Dict[tuple, CSRMatrix] = {}

    def sink(self, row_panel: int, col_panel: int, matrix: CSRMatrix) -> None:
        self._pending[(row_panel, col_panel)] = matrix

    # the engine treats this object as a RunManifest
    def mark_done(self, stats: ChunkStats, crc32: Optional[int] = None) -> None:
        matrix = self._pending.pop((stats.row_panel, stats.col_panel))
        meta, arrays = csr_arrays(matrix, prefix="c_")
        meta["stats"] = stats_record(stats)
        meta["crc32"] = int(crc32) if crc32 is not None else None
        self._connection.send_chunk("chunk", meta, arrays)


class _Connection:
    """One accepted node connection: send lock, heartbeats, chaos hooks."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.send_lock = threading.Lock()
        self.dead = False
        self.chunks_sent = 0
        # chaos hooks, re-armed per run request
        self.sever_after = 0       # 0 = disabled
        self.heartbeat_stall = 0.0
        self._stalled_once = False

    def send(self, kind: str, meta: Optional[dict] = None,
             arrays=None) -> None:
        with self.send_lock:
            self._send_locked(kind, meta, arrays)

    def _send_locked(self, kind, meta, arrays) -> None:
        if self.dead:
            raise TransportClosed("connection already marked dead")
        try:
            send_frame(self.sock, kind, meta, arrays)
        except (TransportError, OSError):
            self.dead = True
            raise

    def send_chunk(self, kind: str, meta: dict, arrays) -> None:
        with self.send_lock:
            self.chunks_sent += 1
            if self.sever_after and self.chunks_sent == self.sever_after:
                self._sever(kind, meta, arrays)
            self._send_locked(kind, meta, arrays)

    def _sever(self, kind, meta, arrays) -> None:
        """Chaos: put *half* a frame on the wire, then hard-close."""
        self.dead = True
        frame = pack_frame(kind, meta, arrays)
        try:
            self.sock.sendall(frame[: max(1, len(frame) // 2)])
            # RST instead of FIN: the node must see a torn stream, not a
            # tidy end-of-stream
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                 struct.pack("ii", 1, 0))
        except OSError:
            pass
        finally:
            try:
                self.sock.close()
            except OSError:
                pass
        raise TransportClosed("chaos: connection severed mid-frame")

    def heartbeat_loop(self, interval: float, stop: threading.Event) -> None:
        counter = 0
        while not stop.wait(interval / 2.0):
            try:
                with self.send_lock:
                    if (self.heartbeat_stall > 0 and not self._stalled_once
                            and self.chunks_sent >= 1):
                        # chaos: wedge *with the send lock held* so chunk
                        # frames stall too — total silence on the wire
                        self._stalled_once = True
                        time.sleep(self.heartbeat_stall)
                    counter += 1
                    self._send_locked("hb", {"counter": counter}, None)
            except (TransportError, OSError):
                return


class ShardWorker:
    """The remote shard worker loop (see module docstring)."""

    def __init__(self, address: str, *, announce: bool = False,
                 announce_to=None) -> None:
        self._listener, self.address = create_listener(address)
        if announce:
            out = announce_to if announce_to is not None else sys.stdout
            print(f"LISTENING {self.address}", file=out, flush=True)
        self._shutdown = False

    def serve_forever(self) -> None:
        try:
            while not self._shutdown:
                try:
                    sock, _ = self._listener.accept()
                except OSError:
                    break
                try:
                    self._serve_connection(sock)
                except _Shutdown:
                    self._shutdown = True
                except (TransportError, OSError):
                    pass  # connection lost; wait for the node to return
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
        finally:
            self.close()

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass
        kind = self.address.partition(":")[0]
        if kind == "unix":
            path = self.address.partition(":")[2]
            try:
                os.unlink(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------
    def _serve_connection(self, sock: socket.socket) -> None:
        sock.settimeout(None)
        conn = _Connection(sock)
        conn.send("hello", {"proto": PROTOCOL_VERSION, "pid": os.getpid(),
                            "address": self.address})
        while True:
            frame = recv_frame(sock)
            if frame.kind == "run":
                self._handle_run(conn, frame)
                if conn.dead:
                    raise TransportClosed("connection died during run")
            elif frame.kind == "ping":
                conn.send("pong", {})
            elif frame.kind == "shutdown":
                try:
                    conn.send("bye", {})
                except TransportError:
                    pass
                raise _Shutdown()
            # unknown kinds are ignored: forward-compatible protocol

    def _handle_run(self, conn: _Connection, frame: Frame) -> None:
        meta = frame.meta
        hb_interval = float(meta.get("heartbeat_interval")
                            or DEFAULT_HEARTBEAT_INTERVAL)
        debug = meta.get("debug") or {}
        conn.sever_after = int(debug.get("sever_after") or 0)
        conn.heartbeat_stall = float(debug.get("heartbeat_stall") or 0.0)
        conn._stalled_once = False
        stop = threading.Event()
        hb = threading.Thread(
            target=conn.heartbeat_loop, args=(hb_interval, stop),
            name="shard-worker-hb", daemon=True,
        )
        hb.start()
        try:
            self._execute_run(conn, frame)
        except (TransportError, OSError):
            raise  # connection-level failure; nothing left to report on it
        except BaseException as exc:
            if not conn.dead:
                conn.send("error", {
                    "exc_type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": "".join(traceback.format_exception(
                        type(exc), exc, exc.__traceback__)),
                })
        finally:
            stop.set()
            hb.join(timeout=2.0)

    def _execute_run(self, conn: _Connection, frame: Frame) -> None:
        meta = frame.meta
        a = csr_from_arrays(meta, frame.arrays, prefix="a_")
        b = csr_from_arrays(meta, frame.arrays, prefix="b_")
        grid = ChunkGrid(
            row_bounds=np.asarray(meta["grid"]["row_bounds"], dtype=np.int64),
            col_bounds=np.asarray(meta["grid"]["col_bounds"], dtype=np.int64),
        )
        cfg = meta.get("config") or {}
        skip = {int(rec["chunk_id"]): stats_from_record(rec)
                for rec in meta.get("skip", [])}
        retries = int(cfg.get("retries") or 1)
        retry = None
        if retries > 1:
            retry = RetryPolicy(max_attempts=retries,
                                base_delay=float(cfg.get("retry_delay", 0.05)))
        governor = None
        if any(cfg.get(k) is not None for k in
               ("deadline_seconds", "heartbeat_interval_governor",
                "device_pool_bytes", "host_mem_budget_bytes")):
            governor = Governor(GovernorConfig(
                deadline_seconds=cfg.get("deadline_seconds"),
                heartbeat_interval=cfg.get("heartbeat_interval_governor"),
                device_pool_bytes=cfg.get("device_pool_bytes"),
                max_resplit_depth=int(cfg.get("max_resplit_depth") or 8),
                host_mem_budget_bytes=cfg.get("host_mem_budget_bytes"),
            ))
        streamer = _StreamingSink(conn)
        conn.send("run-ack", {"chunks": grid.num_chunks,
                              "skipped": len(skip)})
        t0 = time.perf_counter()
        execute_chunk_grid(
            a, b, grid,
            workers=int(cfg.get("workers") or 1),
            window=cfg.get("window"),
            keep_outputs=False,
            chunk_sink=streamer.sink,
            manifest=streamer,
            name=str(meta.get("name") or "remote-shard"),
            backend=cfg.get("backend"),
            kernel=cfg.get("kernel"),
            retry=retry,
            crash_budget=int(cfg.get("crash_budget") or 0),
            faults=meta.get("faults") or None,
            resume_stats=skip or None,
            governor=governor,
        )
        conn.send("done", {
            "wall_seconds": time.perf_counter() - t0,
            "chunks": grid.num_chunks,
            "computed": grid.num_chunks - len(skip),
        })


def shard_worker_main(listen: str, *, announce: bool = False) -> int:
    """Entry point for ``repro shard-worker``."""
    worker = ShardWorker(listen, announce=announce)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        worker.close()
    return 0
