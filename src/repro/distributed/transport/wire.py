"""Length-prefixed socket framing for shard transport messages.

One frame carries one protocol message between the node and a remote
shard worker:

```
+--------+------------+-------------+---------+----------------+---------+
| magic  | header len | payload len | crc32   | header (JSON)  | payload |
| 4 B    | u32 BE     | u64 BE      | u32 BE  | header_len B   | raw B   |
+--------+------------+-------------+---------+----------------+---------+
```

The JSON header names the message ``kind``, its scalar ``meta`` fields,
and the dtype/shape manifest of the binary arrays concatenated in the
payload — CSR operands and result chunks travel as their raw
``row_offsets`` / ``col_ids`` / ``data`` buffers, never pickled.  The
CRC32 (:func:`repro.core.governor.integrity.crc32_bytes` — the same
integrity layer that stamps spilled and checkpointed chunks) covers
header *and* payload, so a torn write, a truncated stream, or a
bit-flip on the wire surfaces as a typed :class:`FrameCorruption`
instead of a silently wrong operand.

A clean EOF between frames is a normal connection end; an EOF *inside*
a frame is a severed connection and raises :class:`TransportClosed` —
callers (the node-side pool) treat both as reconnectable transport
faults, never as data.

Addresses are strings — ``tcp:HOST:PORT`` or ``unix:PATH`` — so the
same worker binary, CLI flag, and test can run over localhost TCP or a
unix domain socket.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ...core.governor.integrity import crc32_bytes
from ...sparse.formats import CSRMatrix

__all__ = [
    "PROTOCOL_VERSION",
    "TransportError",
    "TransportClosed",
    "FrameCorruption",
    "Frame",
    "pack_frame",
    "send_frame",
    "recv_frame",
    "csr_arrays",
    "csr_from_arrays",
    "parse_address",
    "format_address",
    "create_listener",
    "connect_address",
]

#: bump on any incompatible frame/message change; ``hello`` carries it
#: and the node refuses a worker speaking a different version.
PROTOCOL_VERSION = 1

_MAGIC = b"RSW1"
_HEADER = struct.Struct(">4sIQI")  # magic, header_len, payload_len, crc32
#: sanity caps — a corrupted length field must fail fast, not allocate
_MAX_HEADER_BYTES = 64 << 20
_MAX_PAYLOAD_BYTES = 1 << 40


class TransportError(RuntimeError):
    """Base class for shard-transport failures (all reconnectable)."""


class TransportClosed(TransportError):
    """The peer closed (or the kernel severed) the connection."""


class FrameCorruption(TransportError):
    """A frame failed its CRC32 or did not parse.

    The transport treats this exactly like a severed connection: the
    stream can no longer be trusted, so the node drops it and
    re-requests the remaining work over a fresh connection (chunks are
    deterministic — the redo is bit-identical)."""


@dataclass
class Frame:
    """One decoded message: kind, scalar meta, named arrays."""

    kind: str
    meta: dict = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    #: total framed size (header struct + header + payload)
    nbytes: int = 0
    #: wall seconds spent reading the frame *after* its first bytes
    #: arrived — the measured wire time, excluding the wait for the
    #: peer to start sending (that wait is compute, not transfer)
    wire_seconds: float = 0.0


def _recv_exact(sock: socket.socket, n: int, *, mid_frame: bool) -> bytes:
    """Read exactly ``n`` bytes; raise :class:`TransportClosed` on EOF."""
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            part = sock.recv(min(remaining, 1 << 20))
        except (ConnectionError, BrokenPipeError) as exc:
            raise TransportClosed(f"connection reset mid-read: {exc}") from exc
        if not part:
            where = "mid-frame" if mid_frame or chunks else "between frames"
            raise TransportClosed(f"peer closed the connection {where}")
        chunks.append(part)
        remaining -= len(part)
    return b"".join(chunks)


def pack_frame(kind: str, meta: Optional[dict] = None,
               arrays: Optional[Dict[str, np.ndarray]] = None) -> bytes:
    """The full wire encoding of one message (header struct included)."""
    payload_parts = []
    manifest = []
    for name, arr in (arrays or {}).items():
        buf = np.ascontiguousarray(arr)
        manifest.append({"name": name, "dtype": buf.dtype.str,
                         "shape": list(buf.shape)})
        payload_parts.append(buf.tobytes())
    header = json.dumps(
        {"kind": kind, "meta": meta or {}, "arrays": manifest},
        separators=(",", ":"),
    ).encode("utf-8")
    payload = b"".join(payload_parts)
    crc = crc32_bytes(header, payload)
    prefix = _HEADER.pack(_MAGIC, len(header), len(payload), crc)
    return prefix + header + payload


def send_frame(sock: socket.socket, kind: str, meta: Optional[dict] = None,
               arrays: Optional[Dict[str, np.ndarray]] = None) -> int:
    """Frame and send one message; returns the bytes put on the wire.

    ``sendall`` under the caller's send lock — frames from the
    heartbeat thread and the chunk sink must never interleave.
    """
    frame = pack_frame(kind, meta, arrays)
    try:
        sock.sendall(frame)
    except (ConnectionError, BrokenPipeError, OSError) as exc:
        raise TransportClosed(f"send failed: {exc}") from exc
    return len(frame)


def recv_frame(sock: socket.socket) -> Frame:
    """Read and verify one frame (blocking; honors the socket timeout).

    A ``socket.timeout`` while waiting for the *first* byte propagates
    to the caller (that is the heartbeat-lease poll); once a frame has
    started arriving the read runs to completion.
    """
    prefix = _recv_exact(sock, _HEADER.size, mid_frame=False)
    t0 = time.perf_counter()
    magic, header_len, payload_len, crc = _HEADER.unpack(prefix)
    if magic != _MAGIC:
        raise FrameCorruption(f"bad frame magic {magic!r}")
    if header_len > _MAX_HEADER_BYTES or payload_len > _MAX_PAYLOAD_BYTES:
        raise FrameCorruption(
            f"implausible frame lengths (header {header_len}, "
            f"payload {payload_len}) — corrupted stream"
        )
    # the frame has started: finish it even under a short poll timeout
    timeout = sock.gettimeout()
    if timeout is not None:
        sock.settimeout(max(timeout, 30.0))
    try:
        header = _recv_exact(sock, header_len, mid_frame=True)
        payload = _recv_exact(sock, payload_len, mid_frame=True)
    finally:
        sock.settimeout(timeout)
    actual = crc32_bytes(header, payload)
    if actual != crc:
        raise FrameCorruption(
            f"frame checksum mismatch (stored {crc:#010x}, "
            f"recomputed {actual:#010x})"
        )
    try:
        decoded = json.loads(header.decode("utf-8"))
        kind = decoded["kind"]
        meta = decoded.get("meta", {})
        manifest = decoded.get("arrays", [])
    except (ValueError, KeyError) as exc:
        raise FrameCorruption(f"unparseable frame header: {exc}") from exc
    arrays: Dict[str, np.ndarray] = {}
    offset = 0
    for entry in manifest:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(s) for s in entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(payload):
            raise FrameCorruption(
                f"array {entry['name']!r} overruns the frame payload"
            )
        arrays[entry["name"]] = np.frombuffer(
            payload, dtype=dtype, count=count, offset=offset
        ).reshape(shape).copy()  # own the memory; payload buffer dies here
        offset += nbytes
    total = _HEADER.size + header_len + payload_len
    return Frame(kind=kind, meta=meta, arrays=arrays, nbytes=total,
                 wire_seconds=time.perf_counter() - t0)


# ----------------------------------------------------------------------
# CSR codec — binary, never pickled
# ----------------------------------------------------------------------
def csr_arrays(mat: CSRMatrix, prefix: str = "") -> Tuple[dict, Dict[str, np.ndarray]]:
    """``(meta, arrays)`` encoding of a CSR matrix for one frame."""
    meta = {f"{prefix}shape": [int(mat.n_rows), int(mat.n_cols)]}
    arrays = {
        f"{prefix}row_offsets": mat.row_offsets,
        f"{prefix}col_ids": mat.col_ids,
        f"{prefix}data": mat.data,
    }
    return meta, arrays


def csr_from_arrays(meta: dict, arrays: Dict[str, np.ndarray],
                    prefix: str = "") -> CSRMatrix:
    """Decode a CSR matrix framed by :func:`csr_arrays` (validated —
    a corrupt structure raises before it can reach a kernel)."""
    try:
        shape = meta[f"{prefix}shape"]
        return CSRMatrix(
            int(shape[0]), int(shape[1]),
            arrays[f"{prefix}row_offsets"],
            arrays[f"{prefix}col_ids"],
            arrays[f"{prefix}data"],
            check=True,
        )
    except (KeyError, ValueError, IndexError) as exc:
        raise FrameCorruption(
            f"framed CSR matrix (prefix {prefix!r}) failed validation: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# addresses
# ----------------------------------------------------------------------
def parse_address(address: str) -> Tuple[str, object]:
    """``tcp:HOST:PORT`` -> ``("tcp", (host, port))``;
    ``unix:PATH`` -> ``("unix", path)``."""
    scheme, _, rest = address.partition(":")
    if scheme == "tcp":
        host, _, port = rest.rpartition(":")
        if not host or not port:
            raise ValueError(f"malformed tcp address {address!r} "
                             "(want tcp:HOST:PORT)")
        return "tcp", (host, int(port))
    if scheme == "unix":
        if not rest:
            raise ValueError(f"malformed unix address {address!r} "
                             "(want unix:PATH)")
        return "unix", rest
    raise ValueError(f"unknown address scheme {scheme!r} in {address!r} "
                     "(want tcp: or unix:)")


def format_address(kind: str, target) -> str:
    if kind == "tcp":
        return f"tcp:{target[0]}:{target[1]}"
    return f"unix:{target}"


def create_listener(address: str, backlog: int = 8) -> Tuple[socket.socket, str]:
    """Bind + listen on an address; returns ``(socket, bound address)``.

    ``tcp:HOST:0`` binds an ephemeral port — the returned address
    carries the real one (the worker announces it to its spawner)."""
    kind, target = parse_address(address)
    if kind == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(target)
        bound = sock.getsockname()
        resolved = format_address("tcp", (target[0], bound[1]))
    else:
        if os.path.exists(target):
            os.unlink(target)  # stale socket from a killed worker
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(target)
        resolved = format_address("unix", target)
    sock.listen(backlog)
    return sock, resolved


def connect_address(address: str, timeout: Optional[float] = None) -> socket.socket:
    """Connect to a worker address (one attempt; backoff is the
    caller's reconnect policy)."""
    kind, target = parse_address(address)
    if kind == "tcp":
        sock = socket.create_connection(target, timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(target)
    return sock
