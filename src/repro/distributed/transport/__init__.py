"""Socket transport for remote shard workers.

The node ships each shard's operands to a ``repro shard-worker``
process over a length-prefixed, CRC-framed socket protocol
(:mod:`.wire`), the worker (:mod:`.worker`) runs the span through the
ordinary chunk executor and streams results back, and the node-side
pool (:mod:`.pool`) supplies heartbeat-lease liveness, deterministic
exponential-backoff reconnect, and failover re-placement when a worker
dies for good.
"""

from .pool import (
    DEFAULT_RECONNECT,
    RemoteRunResult,
    RemoteShardError,
    RemoteShardPool,
    RemoteWorker,
    TransportDegradedWarning,
    TransportWorkerLost,
    run_remote_span,
)
from .wire import (
    PROTOCOL_VERSION,
    Frame,
    FrameCorruption,
    TransportClosed,
    TransportError,
    connect_address,
    create_listener,
    csr_arrays,
    csr_from_arrays,
    format_address,
    pack_frame,
    parse_address,
    recv_frame,
    send_frame,
)
from .worker import (
    DEFAULT_HEARTBEAT_INTERVAL,
    ShardWorker,
    shard_worker_main,
    stats_from_record,
    stats_record,
)

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_RECONNECT",
    "Frame",
    "FrameCorruption",
    "TransportClosed",
    "TransportError",
    "TransportDegradedWarning",
    "TransportWorkerLost",
    "RemoteRunResult",
    "RemoteShardError",
    "RemoteShardPool",
    "RemoteWorker",
    "ShardWorker",
    "connect_address",
    "create_listener",
    "csr_arrays",
    "csr_from_arrays",
    "format_address",
    "pack_frame",
    "parse_address",
    "recv_frame",
    "run_remote_span",
    "send_frame",
    "shard_worker_main",
    "stats_from_record",
    "stats_record",
]
