"""Node-side pool of remote shard workers: drive, watch, reconnect.

The :class:`RemoteShardPool` owns N :class:`RemoteWorker` connections
(optionally the worker *processes* too, spawned via ``repro
shard-worker``) and :func:`run_remote_span` drives one shard's chunk
strip over one of them:

* **operand broadcast** — the run request frames the shard's A slice
  and the full B in binary CSR; the measured ``sendall`` wall is the
  shard's *B-broadcast transfer wall* (what the alpha-beta model used
  to guess);
* **chunk gather** — every finished chunk streams back as a CRC-stamped
  frame; per-frame wire seconds accumulate into the shard's measured
  *C-gather wall*;
* **liveness** — a :class:`~repro.core.governor.watchdog.HeartbeatLease`
  is renewed by every received frame (heartbeats and chunks alike) and
  polled between reads; an expired lease means the worker is stalled
  even though its socket is open;
* **reconnect** — any transport fault (severed socket, torn frame,
  expired lease) tears the connection down and retries it under an
  exponential-backoff :class:`~repro.core.executor.faults.RetryPolicy`
  whose jitter is deterministic in ``(attempt, shard id)`` — chaos runs
  replay byte-identically.  A successful reconnect re-sends the run
  request with every chunk the node already holds listed in ``skip``,
  so the worker recomputes only what was in flight — bit-identical by
  chunk determinism;
* **permanent loss** — a worker whose reconnect budget is exhausted is
  marked dead and surfaces as :class:`TransportWorkerLost`; the caller
  (``run_sharded``) re-places the span's remaining chunks on a
  surviving worker or degrades to an in-process shard under a
  :class:`TransportDegradedWarning`.

Chaos injection (``faults`` / ``debug`` in the run request) is sent on
the *first* attempt only: a re-sent request after a transport fault
must not re-kill the replacement, mirroring the latch rule of
:class:`~repro.core.executor.faults.FaultSpec`.
"""

from __future__ import annotations

import os
import select
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, Dict, List, Optional, Sequence, Set

from ...core.chunks import ChunkStats
from ...core.executor.faults import RetryPolicy
from ...core.governor.integrity import ChunkCorruption
from ...core.governor.watchdog import HeartbeatLease
from ...sparse.shm import cleanup_segments
from .wire import (
    PROTOCOL_VERSION,
    FrameCorruption,
    TransportClosed,
    TransportError,
    connect_address,
    csr_from_arrays,
    recv_frame,
    send_frame,
)
from .worker import DEFAULT_HEARTBEAT_INTERVAL, stats_from_record, stats_record

__all__ = [
    "DEFAULT_RECONNECT",
    "TransportDegradedWarning",
    "TransportWorkerLost",
    "RemoteShardError",
    "RemoteWorker",
    "RemoteShardPool",
    "RemoteRunResult",
    "run_remote_span",
]

#: default reconnect policy: 3 retry attempts behind exponential backoff
#: with deterministic jitter (salted by shard id — replayable chaos)
DEFAULT_RECONNECT = RetryPolicy(max_attempts=4, base_delay=0.05,
                                max_delay=1.0, jitter=0.5)


class TransportDegradedWarning(RuntimeWarning):
    """A remote shard was lost and its span re-placed in-process."""


class TransportWorkerLost(TransportError):
    """A remote worker is permanently gone (reconnect budget exhausted)."""

    def __init__(self, worker_id: int, address: str, reason: str) -> None:
        super().__init__(
            f"shard worker {worker_id} at {address} lost: {reason}"
        )
        self.worker_id = worker_id
        self.address = address
        self.reason = reason


class RemoteShardError(RuntimeError):
    """The remote run itself failed (a compute error, not a transport
    fault) — carries the worker-side traceback for the node's error
    report.  Not retried over the transport: the same deterministic
    failure would recur."""

    def __init__(self, exc_type: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"remote shard run failed: {exc_type}: {message}")
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback


class RemoteWorker:
    """One remote shard worker endpoint (connection + owned process)."""

    def __init__(self, worker_id: int, address: str, *,
                 process: Optional[subprocess.Popen] = None,
                 connect_timeout: float = 10.0) -> None:
        self.worker_id = worker_id
        self.address = address
        self.process = process
        self.connect_timeout = connect_timeout
        #: serializes runs on this worker (one run per connection at a
        #: time; failover re-placement queues behind the owner's run)
        self.lock = Lock()
        self.sock: Optional[socket.socket] = None
        self.hello: dict = {}
        #: cleared when the reconnect budget is exhausted; a dead worker
        #: is never picked as a failover target
        self.alive = True
        self.reconnects = 0

    @property
    def connected(self) -> bool:
        return self.sock is not None

    def connect(self) -> None:
        """One connection attempt: socket + ``hello`` handshake.

        A TCP connect can succeed against a wedged worker's listen
        backlog — only the ``hello`` frame proves a live serve loop, so
        the handshake runs under ``connect_timeout`` too.
        """
        self.disconnect()
        sock = connect_address(self.address, timeout=self.connect_timeout)
        try:
            sock.settimeout(self.connect_timeout)
            frame = recv_frame(sock)
            if frame.kind != "hello":
                raise TransportError(
                    f"expected hello from {self.address}, got {frame.kind!r}"
                )
            proto = frame.meta.get("proto")
            if proto != PROTOCOL_VERSION:
                raise TransportError(
                    f"worker at {self.address} speaks protocol {proto!r}, "
                    f"node speaks {PROTOCOL_VERSION}"
                )
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        self.sock = sock
        self.hello = frame.meta

    def disconnect(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def request_shutdown(self, timeout: float = 2.0) -> None:
        """Ask the worker process to exit (best-effort, for owned pools)."""
        try:
            if self.sock is None:
                self.connect()
            self.sock.settimeout(timeout)
            send_frame(self.sock, "shutdown", {})
            recv_frame(self.sock)  # bye (or EOF — either is fine)
        except (TransportError, OSError):
            pass
        finally:
            self.disconnect()

    def kill(self) -> None:
        """Chaos helper / teardown: SIGKILL the owned worker process."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)
        self.disconnect()
        self.sweep_shm()

    def sweep_shm(self) -> None:
        """Reclaim ``/dev/shm`` segments a hard-killed worker left.

        Segment names embed the creating pid, so the sweep can only
        touch the dead worker's own run prefixes — a SIGKILL skips the
        worker's atexit sweep, making this the last line of defence
        against leaked shared memory."""
        if self.process is not None and self.process.poll() is not None:
            cleanup_segments(f"repro-{self.process.pid}-")


class RemoteShardPool:
    """N remote shard workers behind one handle.

    Build it with :meth:`spawn` (local ``repro shard-worker``
    subprocesses over unix sockets or localhost TCP — the pool owns and
    reaps them) or :meth:`connect` (externally launched workers, e.g.
    on other hosts reachable by TCP).  More shards than workers is
    fine: spans map onto workers round-robin and serialize on each
    worker's lock.
    """

    def __init__(self, workers: Sequence[RemoteWorker], *,
                 tmpdir: Optional[str] = None,
                 owns_processes: bool = False) -> None:
        if not workers:
            raise ValueError("a RemoteShardPool needs >= 1 worker")
        self.workers: List[RemoteWorker] = list(workers)
        self._tmpdir = tmpdir
        self._owns = owns_processes
        #: observer called with (worker_id, reason) when a worker is
        #: declared permanently lost — the serve scheduler hooks this to
        #: steer new jobs away from the dead shard
        self.on_worker_lost: Optional[Callable[[int, str], None]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def spawn(cls, count: int, *, kind: str = "unix",
              python: Optional[str] = None,
              startup_timeout: float = 30.0,
              connect_timeout: float = 10.0) -> "RemoteShardPool":
        """Launch ``count`` local worker processes and connect to them.

        ``kind="unix"`` binds one unix socket per worker under a fresh
        temp dir; ``kind="tcp"`` binds ephemeral localhost TCP ports
        (each worker announces its real port on stdout).
        """
        if kind not in ("unix", "tcp"):
            raise ValueError(f"socket kind must be 'unix' or 'tcp', got {kind!r}")
        tmpdir = tempfile.mkdtemp(prefix="repro-transport-")
        env = os.environ.copy()
        pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p)
        workers: List[RemoteWorker] = []
        procs: List[subprocess.Popen] = []
        try:
            for t in range(count):
                listen = (f"unix:{tmpdir}/worker{t}.sock" if kind == "unix"
                          else "tcp:127.0.0.1:0")
                proc = subprocess.Popen(
                    [python or sys.executable, "-m", "repro", "shard-worker",
                     "--listen", listen, "--announce"],
                    stdout=subprocess.PIPE, text=True, env=env,
                )
                procs.append(proc)
                address = cls._read_announcement(proc, startup_timeout)
                workers.append(RemoteWorker(t, address, process=proc,
                                            connect_timeout=connect_timeout))
            for w in workers:
                w.connect()
        except BaseException:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10.0)
            shutil.rmtree(tmpdir, ignore_errors=True)
            raise
        return cls(workers, tmpdir=tmpdir, owns_processes=True)

    @classmethod
    def connect(cls, addresses: Sequence[str], *,
                connect_timeout: float = 10.0) -> "RemoteShardPool":
        """Attach to already-running workers (``tcp:...`` / ``unix:...``)."""
        workers = [RemoteWorker(t, addr, connect_timeout=connect_timeout)
                   for t, addr in enumerate(addresses)]
        for w in workers:
            w.connect()
        return cls(workers)

    @staticmethod
    def _read_announcement(proc: subprocess.Popen, timeout: float) -> str:
        """Wait for the worker's ``LISTENING <addr>`` line on stdout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or proc.poll() is not None:
                raise TransportError(
                    "shard worker failed to announce its address "
                    f"(exit code {proc.poll()})"
                )
            ready, _, _ = select.select([proc.stdout], [], [],
                                        min(remaining, 0.25))
            if not ready:
                continue
            line = proc.stdout.readline()
            if not line:
                continue
            if line.startswith("LISTENING "):
                return line.split(" ", 1)[1].strip()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def worker_for(self, shard_id: int) -> RemoteWorker:
        """The span's home worker (round-robin when shards > workers)."""
        return self.workers[shard_id % len(self.workers)]

    def failover_targets(self, exclude: Set[int]) -> List[RemoteWorker]:
        """Live candidate workers for a dead span, idle ones first."""
        candidates = [w for w in self.workers
                      if w.alive and w.worker_id not in exclude]
        return sorted(candidates,
                      key=lambda w: (w.lock.locked(), w.worker_id))

    def mark_lost(self, worker: RemoteWorker, reason: str) -> None:
        worker.alive = False
        worker.disconnect()
        if self.on_worker_lost is not None:
            try:
                self.on_worker_lost(worker.worker_id, reason)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # chaos / lifecycle
    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one owned worker process (chaos testing)."""
        self.workers[worker_id].kill()

    def close(self) -> None:
        for w in self.workers:
            if self._owns and w.alive:
                w.request_shutdown()
            else:
                w.disconnect()
        if self._owns:
            for w in self.workers:
                if w.process is not None:
                    if w.process.poll() is None:
                        w.process.terminate()
                        try:
                            w.process.wait(timeout=5.0)
                        except subprocess.TimeoutExpired:
                            w.process.kill()
                            w.process.wait(timeout=10.0)
                    if w.process.stdout is not None:
                        w.process.stdout.close()
                    w.sweep_shm()
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)

    def __enter__(self) -> "RemoteShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# driving one span over one worker
# ----------------------------------------------------------------------
@dataclass
class RemoteRunResult:
    """Measured transport accounting for one span's remote run."""

    wall_seconds: float = 0.0
    #: measured wall of the operand-broadcast send(s) (A slice + B)
    bcast_seconds: float = 0.0
    #: measured wire seconds of the gathered chunk frames
    gather_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    reconnects: int = 0
    heartbeats: int = 0


def run_remote_span(
    worker: RemoteWorker,
    *,
    run_meta: dict,
    run_arrays: Dict[str, object],
    completed: Dict[int, ChunkStats],
    on_chunk: Callable[[ChunkStats, object, Optional[int]], None],
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    lease_grace: float = 3.0,
    reconnect: Optional[RetryPolicy] = None,
    salt: int = 0,
    mark_lost: Optional[Callable[[RemoteWorker, str], None]] = None,
) -> RemoteRunResult:
    """Drive one shard span to completion on ``worker``.

    ``completed`` maps local chunk id -> stats the node already holds
    (checkpoint-resumed chunks plus chunks received on earlier
    attempts); it is read on every (re)send to build the skip list and
    **mutated by the caller's** ``on_chunk``.  ``on_chunk(stats, matrix,
    crc)`` is invoked per received chunk and must raise
    :class:`~repro.core.governor.integrity.ChunkCorruption` if the
    chunk fails its end-to-end CRC — the driver converts that into a
    transport fault so the chunk is recomputed, never trusted.

    Raises :class:`TransportWorkerLost` when the reconnect budget runs
    out and :class:`RemoteShardError` when the remote run itself fails.
    """
    policy = reconnect if reconnect is not None else DEFAULT_RECONNECT
    result = RemoteRunResult()
    t0 = time.perf_counter()
    attempt = 0
    include_chaos = True
    while True:
        try:
            if worker.sock is None:
                worker.connect()
            _drive_once(worker, run_meta, run_arrays, completed, on_chunk,
                        heartbeat_interval, lease_grace, result,
                        include_chaos=include_chaos)
            result.wall_seconds = time.perf_counter() - t0
            return result
        except RemoteShardError:
            raise
        except (TransportError, OSError) as exc:
            worker.disconnect()
            failure = exc
            attempt += 1
            # chaos already fired (or the fault predates it) — a re-sent
            # request must not re-inject it into the recovered worker
            include_chaos = False
            while True:
                if not policy.should_retry(failure, attempt):
                    reason = f"{type(failure).__name__}: {failure}"
                    if mark_lost is not None:
                        mark_lost(worker, reason)
                    else:
                        worker.alive = False
                    raise TransportWorkerLost(
                        worker.worker_id, worker.address, reason
                    ) from failure
                time.sleep(policy.delay_for(attempt, salt=salt))
                try:
                    worker.connect()
                    worker.reconnects += 1
                    result.reconnects += 1
                    break
                except (TransportError, OSError) as retry_exc:
                    failure = retry_exc
                    attempt += 1


def _drive_once(worker, run_meta, run_arrays, completed, on_chunk,
                heartbeat_interval, lease_grace, result, *,
                include_chaos: bool) -> None:
    sock = worker.sock
    meta = dict(run_meta)
    meta["heartbeat_interval"] = heartbeat_interval
    meta["skip"] = [stats_record(st) for st in completed.values()]
    if not include_chaos:
        meta.pop("faults", None)
        meta.pop("debug", None)
    sock.settimeout(60.0)
    t_send = time.perf_counter()
    result.bytes_sent += send_frame(sock, "run", meta, run_arrays)
    result.bcast_seconds += time.perf_counter() - t_send
    lease = HeartbeatLease(heartbeat_interval, grace=lease_grace)
    poll = max(min(heartbeat_interval / 2.0, 0.2), 0.02)
    while True:
        sock.settimeout(poll)
        try:
            frame = recv_frame(sock)
        except socket.timeout:
            if lease.expired():
                raise TransportError(
                    f"heartbeat lease expired: worker {worker.worker_id} "
                    f"silent for > {lease.deadline_seconds:.3g}s"
                ) from None
            continue
        lease.beat(frame.meta.get("counter") if frame.kind == "hb" else None)
        if frame.kind == "hb":
            result.heartbeats += 1
        elif frame.kind == "chunk":
            result.bytes_received += frame.nbytes
            result.gather_seconds += frame.wire_seconds
            stats = stats_from_record(frame.meta["stats"])
            matrix = csr_from_arrays(frame.meta, frame.arrays, prefix="c_")
            crc = frame.meta.get("crc32")
            try:
                on_chunk(stats, matrix,
                         int(crc) if crc is not None else None)
            except ChunkCorruption as exc:
                # a chunk that fails its end-to-end CRC poisons the
                # stream: reconnect and let the worker recompute it
                raise FrameCorruption(
                    f"received chunk failed integrity check: {exc}"
                ) from exc
        elif frame.kind == "done":
            return
        elif frame.kind == "error":
            raise RemoteShardError(
                frame.meta.get("exc_type", "Exception"),
                frame.meta.get("message", ""),
                frame.meta.get("traceback", ""),
            )
        # run-ack and unknown kinds renew the lease and are ignored
