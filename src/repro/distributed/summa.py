"""Sparse SUMMA: distributed-memory SpGEMM on a simulated process grid.

The paper's related work singles out the *pipelined Sparse SUMMA* of
Selvitopi et al. [33] as the distributed counterpart of its single-node
framework.  This module implements the algorithm for real — block
distribution, staged broadcasts, local SpGEMM with accumulation — and
simulates its execution on a ``q x q`` process grid with an alpha-beta
network model, using the same discrete-event engine as the node simulator.

Algorithm (stationary-C 2D SUMMA over ``q`` stages):

* ``A`` and ``B`` are distributed in ``q x q`` blocks; process ``(i, j)``
  owns ``A[i][j]``, ``B[i][j]`` and accumulates ``C[i][j]``;
* at stage ``k``, the owners broadcast ``A[i][k]`` along process row ``i``
  and ``B[k][j]`` along process column ``j``;
* every process computes ``C[i][j] += A[i][k] x B[k][j]``.

The *pipelined* variant overlaps the stage ``k+1`` broadcasts with the
stage ``k`` local multiply (communication on the NIC resource, compute on
the core resource, prefetch depth 1) — the same
communication/computation-overlap idea the paper applies to PCIe.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.chunks import csr_bytes
from ..core.governor.hostmem import HostMemoryGovernor
from ..device.engine import SimEngine
from ..device.trace import Timeline
from ..observability import Tracer
from ..sparse.formats import CSRMatrix
from ..sparse.ops import add, extract_columns
from ..sparse.partition import panel_boundaries
from ..spgemm.flops import total_flops
from ..spgemm.twophase import spgemm_twophase

__all__ = [
    "NetworkModel",
    "BlockGrid",
    "SummaExecution",
    "SummaResult",
    "distribute_blocks",
    "sparse_summa",
]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta point-to-point model with a tree broadcast."""

    latency: float = 5e-6          # alpha, per message
    bandwidth: float = 10.0e9      # beta⁻¹, bytes/s
    #: local SpGEMM rate of one process (flops/s); SUMMA nodes are CPUs
    compute_rate: float = 2.0e9

    def t_broadcast(self, nbytes: int, fanout: int) -> float:
        """Binomial-tree broadcast to ``fanout`` peers (log2 rounds)."""
        if fanout <= 0:
            return 0.0
        rounds = int(np.ceil(np.log2(fanout + 1)))
        return rounds * (self.latency + nbytes / self.bandwidth)

    def t_compute(self, flops: int) -> float:
        return flops / self.compute_rate


@dataclass(frozen=True)
class BlockGrid:
    """A q x q block distribution of one matrix."""

    q: int
    row_bounds: np.ndarray
    col_bounds: np.ndarray
    blocks: Tuple[Tuple[CSRMatrix, ...], ...]  # blocks[i][j]

    def block(self, i: int, j: int) -> CSRMatrix:
        return self.blocks[i][j]


def distribute_blocks(m: CSRMatrix, q: int) -> BlockGrid:
    """Cut a matrix into a q x q block grid (near-equal block sizes)."""
    if q < 1:
        raise ValueError("grid size must be >= 1")
    row_bounds = panel_boundaries(m.n_rows, q)
    col_bounds = panel_boundaries(m.n_cols, q)
    blocks: List[Tuple[CSRMatrix, ...]] = []
    for i in range(q):
        strip = m.row_slice(int(row_bounds[i]), int(row_bounds[i + 1]))
        blocks.append(
            tuple(
                extract_columns(strip, int(col_bounds[j]), int(col_bounds[j + 1]))
                for j in range(q)
            )
        )
    return BlockGrid(q=q, row_bounds=row_bounds, col_bounds=col_bounds, blocks=tuple(blocks))


@dataclass(frozen=True)
class SummaExecution:
    """Run SUMMA's local multiplies for real instead of only pricing them.

    The executed path keeps the algorithm and the simulated network
    identical to the pure simulation, but the per-process ``gemm`` ops
    take their durations from *measured* kernel walls: every grid cell
    runs concurrently on its own thread (``workers`` caps the pool;
    ``0`` means one thread per cell), its ``q`` stage multiplies run
    sequentially in ``k`` order — which is what makes the accumulated
    ``C`` blocks bit-identical to the serial path — through the chunk
    pipeline's kernel dispatch (``kernel`` wire spec, ``None`` = auto).

    ``host_mem_budget_bytes`` arms one shared
    :class:`~repro.core.governor.HostMemoryGovernor` that every process
    admits its stage output against (keys ``(i, j, k)``), modeling the
    node-memory ceiling a real gather node would impose.  ``trace``
    gives each process a tracer stream ``p{i}.{j}``, merged by
    :meth:`SummaResult.trace_events`.
    """

    workers: int = 0
    kernel: Optional[str] = None
    host_mem_budget_bytes: Optional[int] = None
    trace: bool = True

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per cell)")


@dataclass(frozen=True)
class SummaResult:
    """Distributed product: per-process C blocks + the simulated timeline."""

    c_blocks: Tuple[Tuple[CSRMatrix, ...], ...]
    timeline: Timeline
    total_flops: int
    pipelined: bool
    #: real-execution extras (``sparse_summa(..., execution=...)``):
    #: per-process tracer streams, and the shared ledger's high-water
    #: mark / forced admissions.  All inert on the pure simulation.
    executed: bool = False
    tracers: Optional[Dict[str, Tracer]] = None
    ledger_peak_bytes: int = 0
    ledger_overcommits: int = 0

    @property
    def elapsed(self) -> float:
        return self.timeline.makespan()

    @property
    def gflops(self) -> float:
        return self.total_flops / self.elapsed / 1e9 if self.elapsed > 0 else 0.0

    def assemble(self) -> CSRMatrix:
        """The full C (what a gather to one node would produce)."""
        from ..core.assemble import assemble_chunks

        return assemble_chunks([list(row) for row in self.c_blocks])

    def trace_events(self) -> List[dict]:
        """Chrome events: one process per ``p{i}.{j}`` tracer stream plus
        the simulated grid timeline as a sibling process."""
        from ..observability.chrome import multi_tracer_events, timeline_events

        events: List[dict] = []
        n = 0
        if self.tracers:
            events.extend(multi_tracer_events(self.tracers))
            n = len(self.tracers)
        events.extend(timeline_events(
            self.timeline, pid=n + 1, process_name="simulated (summa grid)"))
        return events


def sparse_summa(
    a: CSRMatrix,
    b: CSRMatrix,
    q: int,
    *,
    network: Optional[NetworkModel] = None,
    pipelined: bool = True,
    execution: Optional[SummaExecution] = None,
) -> SummaResult:
    """Run Sparse SUMMA on a simulated ``q x q`` process grid.

    Computes the exact product (block-wise, with sparse accumulation) and
    the simulated distributed timeline.  With ``execution`` the local
    multiplies run for real — concurrently across processes, through the
    kernel-dispatch pipeline, against an optional shared host-memory
    ledger — and the timeline's ``gemm`` durations are measured, not
    modeled (see :class:`SummaExecution`); the product stays
    bit-identical either way.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    net = network or NetworkModel()

    ga = distribute_blocks(a, q)
    gb = distribute_blocks(b, q)
    if execution is not None:
        return _sparse_summa_executed(ga, gb, q, net, pipelined, execution)

    eng = SimEngine()
    for i in range(q):
        for j in range(q):
            eng.add_resource(f"nic{i}.{j}")
            eng.add_resource(f"cpu{i}.{j}")

    # real accumulation state + simulated ops
    c_blocks: List[List[Optional[CSRMatrix]]] = [[None] * q for _ in range(q)]
    flops_total = 0

    comm_ops: dict = {}
    for k in range(q):
        for i in range(q):
            for j in range(q):
                a_blk = ga.block(i, k)
                b_blk = gb.block(k, j)
                # ---- real compute -------------------------------------
                partial = spgemm_twophase(a_blk, b_blk)
                flops_total += partial.stats.flops
                prev = c_blocks[i][j]
                c_blocks[i][j] = (
                    partial.matrix if prev is None else add(prev, partial.matrix)
                )

                # ---- simulated schedule -------------------------------
                # stage-k receive: the A block rides the row broadcast,
                # the B block the column broadcast; charged on this
                # process's NIC (owners skip their own block)
                nbytes = 0
                if k != j:
                    nbytes += a_blk.nbytes()
                if k != i:
                    nbytes += b_blk.nbytes()
                comm = eng.submit(
                    f"recv[{i}.{j}@{k}]", f"nic{i}.{j}",
                    net.t_broadcast(nbytes, q - 1) if nbytes else 0.0,
                    stream=f"nic{i}.{j}" if pipelined else f"p{i}.{j}",
                    stage=k, kind="comm", bytes=nbytes,
                )
                eng.submit(
                    f"gemm[{i}.{j}@{k}]", f"cpu{i}.{j}",
                    net.t_compute(partial.stats.flops),
                    deps=[comm],
                    stream=f"cpu{i}.{j}" if pipelined else f"p{i}.{j}",
                    stage=k, kind="compute", flops=partial.stats.flops,
                )

    timeline = eng.run()
    return SummaResult(
        c_blocks=tuple(tuple(row) for row in c_blocks),
        timeline=timeline,
        total_flops=flops_total,
        pipelined=pipelined,
    )


def _sparse_summa_executed(
    ga: BlockGrid,
    gb: BlockGrid,
    q: int,
    net: NetworkModel,
    pipelined: bool,
    exe: SummaExecution,
) -> SummaResult:
    """The real-execution path behind ``sparse_summa(execution=...)``.

    Concurrency model: one thread per grid cell ``(i, j)``, each running
    its ``q`` stage multiplies *sequentially in k order* and accumulating
    as it goes.  Accumulation order is therefore identical to the serial
    simulation loop, which is the whole bit-identity argument — floating
    point addition is not associative, so the stages of one cell must
    never be reordered; only whole cells (which share no state) run in
    parallel.  The simulated schedule is built afterwards, serially, in
    the same ``(k, i, j)`` submission order the serial path uses, so the
    two paths differ in exactly one way: measured gemm durations.
    """
    ledger = None
    if exe.host_mem_budget_bytes is not None:
        ledger = HostMemoryGovernor(exe.host_mem_budget_bytes)
    tracers: Dict[str, Tracer] = {}
    c_blocks: List[List[Optional[CSRMatrix]]] = [[None] * q for _ in range(q)]
    #: (i, j, k) -> (flops, measured gemm seconds)
    stages: Dict[Tuple[int, int, int], Tuple[int, float]] = {}

    def cell_main(i: int, j: int) -> None:
        tracer = Tracer(stream=f"p{i}.{j}") if exe.trace else None
        if tracer is not None:
            tracers[f"p{i}.{j}"] = tracer
        acc: Optional[CSRMatrix] = None
        for k in range(q):
            a_blk = ga.block(i, k)
            b_blk = gb.block(k, j)
            key = (i, j, k)
            if ledger is not None:
                # worst case one nonzero per product: the same UB the
                # chunk engine admits with
                ub = csr_bytes(a_blk.n_rows, total_flops(a_blk, b_blk))
                ledger.admit(key, ub, may_wait=True)
            try:
                t0 = time.perf_counter()
                partial = spgemm_twophase(
                    a_blk, b_blk, kernel=exe.kernel,
                    tracer=tracer, trace_label=f"gemm[{i}.{j}@{k}]",
                )
                dt = time.perf_counter() - t0
                acc = (partial.matrix if acc is None
                       else add(acc, partial.matrix))
            finally:
                if ledger is not None:
                    ledger.release(key)
            stages[key] = (partial.stats.flops, dt)
        c_blocks[i][j] = acc

    cells = [(i, j) for i in range(q) for j in range(q)]
    max_workers = exe.workers if exe.workers > 0 else len(cells)
    if max_workers == 1 or len(cells) == 1:
        for i, j in cells:
            cell_main(i, j)
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(cell_main, i, j) for i, j in cells]
            for fut in futures:
                fut.result()  # re-raise the first cell failure

    # simulated schedule, grounded in the measured gemm walls; built
    # serially because SimEngine submission order is its FIFO order
    eng = SimEngine()
    for i in range(q):
        for j in range(q):
            eng.add_resource(f"nic{i}.{j}")
            eng.add_resource(f"cpu{i}.{j}")
    flops_total = 0
    for k in range(q):
        for i in range(q):
            for j in range(q):
                flops, dt = stages[(i, j, k)]
                flops_total += flops
                nbytes = 0
                if k != j:
                    nbytes += ga.block(i, k).nbytes()
                if k != i:
                    nbytes += gb.block(k, j).nbytes()
                comm = eng.submit(
                    f"recv[{i}.{j}@{k}]", f"nic{i}.{j}",
                    net.t_broadcast(nbytes, q - 1) if nbytes else 0.0,
                    stream=f"nic{i}.{j}" if pipelined else f"p{i}.{j}",
                    stage=k, kind="comm", bytes=nbytes,
                )
                eng.submit(
                    f"gemm[{i}.{j}@{k}]", f"cpu{i}.{j}",
                    dt, deps=[comm],
                    stream=f"cpu{i}.{j}" if pipelined else f"p{i}.{j}",
                    stage=k, kind="compute", flops=flops, measured=True,
                )

    return SummaResult(
        c_blocks=tuple(tuple(row) for row in c_blocks),
        timeline=eng.run(),
        total_flops=flops_total,
        pipelined=pipelined,
        executed=True,
        tracers=tracers or None,
        ledger_peak_bytes=0 if ledger is None else ledger.peak_bytes,
        ledger_overcommits=0 if ledger is None else ledger.overcommits,
    )
