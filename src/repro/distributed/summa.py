"""Sparse SUMMA: distributed-memory SpGEMM on a simulated process grid.

The paper's related work singles out the *pipelined Sparse SUMMA* of
Selvitopi et al. [33] as the distributed counterpart of its single-node
framework.  This module implements the algorithm for real — block
distribution, staged broadcasts, local SpGEMM with accumulation — and
simulates its execution on a ``q x q`` process grid with an alpha-beta
network model, using the same discrete-event engine as the node simulator.

Algorithm (stationary-C 2D SUMMA over ``q`` stages):

* ``A`` and ``B`` are distributed in ``q x q`` blocks; process ``(i, j)``
  owns ``A[i][j]``, ``B[i][j]`` and accumulates ``C[i][j]``;
* at stage ``k``, the owners broadcast ``A[i][k]`` along process row ``i``
  and ``B[k][j]`` along process column ``j``;
* every process computes ``C[i][j] += A[i][k] x B[k][j]``.

The *pipelined* variant overlaps the stage ``k+1`` broadcasts with the
stage ``k`` local multiply (communication on the NIC resource, compute on
the core resource, prefetch depth 1) — the same
communication/computation-overlap idea the paper applies to PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..device.engine import SimEngine
from ..device.trace import Timeline
from ..sparse.formats import CSRMatrix
from ..sparse.ops import add, extract_columns
from ..sparse.partition import panel_boundaries
from ..spgemm.flops import total_flops
from ..spgemm.twophase import spgemm_twophase

__all__ = ["NetworkModel", "BlockGrid", "SummaResult", "distribute_blocks", "sparse_summa"]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta point-to-point model with a tree broadcast."""

    latency: float = 5e-6          # alpha, per message
    bandwidth: float = 10.0e9      # beta⁻¹, bytes/s
    #: local SpGEMM rate of one process (flops/s); SUMMA nodes are CPUs
    compute_rate: float = 2.0e9

    def t_broadcast(self, nbytes: int, fanout: int) -> float:
        """Binomial-tree broadcast to ``fanout`` peers (log2 rounds)."""
        if fanout <= 0:
            return 0.0
        rounds = int(np.ceil(np.log2(fanout + 1)))
        return rounds * (self.latency + nbytes / self.bandwidth)

    def t_compute(self, flops: int) -> float:
        return flops / self.compute_rate


@dataclass(frozen=True)
class BlockGrid:
    """A q x q block distribution of one matrix."""

    q: int
    row_bounds: np.ndarray
    col_bounds: np.ndarray
    blocks: Tuple[Tuple[CSRMatrix, ...], ...]  # blocks[i][j]

    def block(self, i: int, j: int) -> CSRMatrix:
        return self.blocks[i][j]


def distribute_blocks(m: CSRMatrix, q: int) -> BlockGrid:
    """Cut a matrix into a q x q block grid (near-equal block sizes)."""
    if q < 1:
        raise ValueError("grid size must be >= 1")
    row_bounds = panel_boundaries(m.n_rows, q)
    col_bounds = panel_boundaries(m.n_cols, q)
    blocks: List[Tuple[CSRMatrix, ...]] = []
    for i in range(q):
        strip = m.row_slice(int(row_bounds[i]), int(row_bounds[i + 1]))
        blocks.append(
            tuple(
                extract_columns(strip, int(col_bounds[j]), int(col_bounds[j + 1]))
                for j in range(q)
            )
        )
    return BlockGrid(q=q, row_bounds=row_bounds, col_bounds=col_bounds, blocks=tuple(blocks))


@dataclass(frozen=True)
class SummaResult:
    """Distributed product: per-process C blocks + the simulated timeline."""

    c_blocks: Tuple[Tuple[CSRMatrix, ...], ...]
    timeline: Timeline
    total_flops: int
    pipelined: bool

    @property
    def elapsed(self) -> float:
        return self.timeline.makespan()

    @property
    def gflops(self) -> float:
        return self.total_flops / self.elapsed / 1e9 if self.elapsed > 0 else 0.0

    def assemble(self) -> CSRMatrix:
        """The full C (what a gather to one node would produce)."""
        from ..core.assemble import assemble_chunks

        return assemble_chunks([list(row) for row in self.c_blocks])


def sparse_summa(
    a: CSRMatrix,
    b: CSRMatrix,
    q: int,
    *,
    network: Optional[NetworkModel] = None,
    pipelined: bool = True,
) -> SummaResult:
    """Run Sparse SUMMA on a simulated ``q x q`` process grid.

    Computes the exact product (block-wise, with sparse accumulation) and
    the simulated distributed timeline.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    net = network or NetworkModel()

    ga = distribute_blocks(a, q)
    gb = distribute_blocks(b, q)

    eng = SimEngine()
    for i in range(q):
        for j in range(q):
            eng.add_resource(f"nic{i}.{j}")
            eng.add_resource(f"cpu{i}.{j}")

    # real accumulation state + simulated ops
    c_blocks: List[List[Optional[CSRMatrix]]] = [[None] * q for _ in range(q)]
    flops_total = 0

    comm_ops: dict = {}
    for k in range(q):
        for i in range(q):
            for j in range(q):
                a_blk = ga.block(i, k)
                b_blk = gb.block(k, j)
                # ---- real compute -------------------------------------
                partial = spgemm_twophase(a_blk, b_blk)
                flops_total += partial.stats.flops
                prev = c_blocks[i][j]
                c_blocks[i][j] = (
                    partial.matrix if prev is None else add(prev, partial.matrix)
                )

                # ---- simulated schedule -------------------------------
                # stage-k receive: the A block rides the row broadcast,
                # the B block the column broadcast; charged on this
                # process's NIC (owners skip their own block)
                nbytes = 0
                if k != j:
                    nbytes += a_blk.nbytes()
                if k != i:
                    nbytes += b_blk.nbytes()
                comm = eng.submit(
                    f"recv[{i}.{j}@{k}]", f"nic{i}.{j}",
                    net.t_broadcast(nbytes, q - 1) if nbytes else 0.0,
                    stream=f"nic{i}.{j}" if pipelined else f"p{i}.{j}",
                    stage=k, kind="comm", bytes=nbytes,
                )
                eng.submit(
                    f"gemm[{i}.{j}@{k}]", f"cpu{i}.{j}",
                    net.t_compute(partial.stats.flops),
                    deps=[comm],
                    stream=f"cpu{i}.{j}" if pipelined else f"p{i}.{j}",
                    stage=k, kind="compute", flops=partial.stats.flops,
                )

    timeline = eng.run()
    return SummaResult(
        c_blocks=tuple(tuple(row) for row in c_blocks),
        timeline=timeline,
        total_flops=flops_total,
        pipelined=pipelined,
    )
