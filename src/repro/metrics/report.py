"""Plain-text tables and series for the benchmark harness.

Each figure/table reproduction prints the same rows/series the paper
reports; these helpers keep the formatting consistent and also write the
rendered text under ``results/`` so a bench run leaves artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence

__all__ = ["format_table", "format_series", "results_dir", "write_result"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    floatfmt: str = ".3f",
) -> str:
    """Fixed-width text table (numbers right-aligned, text left-aligned)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:{floatfmt}}"
        return str(cell)

    cells = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]

    def line(parts: Sequence[str], row_vals: Optional[Sequence[object]] = None) -> str:
        out = []
        for i, p in enumerate(parts):
            numeric = row_vals is not None and isinstance(row_vals[i], (int, float))
            out.append(p.rjust(widths[i]) if numeric else p.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for raw, rendered in zip(rows, cells):
        lines.append(line(rendered, raw))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float], yfmt: str = ".3f") -> str:
    """One labelled x->y series (a figure's line), one point per row."""
    pts = "  ".join(f"{x}:{y:{yfmt}}" for x, y in zip(xs, ys))
    return f"{name}: {pts}"


def results_dir() -> Path:
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        here = Path(__file__).resolve()
        candidate = here.parents[3]
        root = candidate if (candidate / "pyproject.toml").exists() else Path.cwd()
    path = Path(root) / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_result(name: str, text: str) -> Path:
    """Persist a rendered experiment table under ``results/``."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    return path
