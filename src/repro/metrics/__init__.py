"""Measurement helpers: GFLOPS accounting and text reporting."""

from .gflops import gflops, speedup
from .report import format_series, format_table, results_dir, write_result

__all__ = ["gflops", "speedup", "format_series", "format_table", "results_dir", "write_result"]
