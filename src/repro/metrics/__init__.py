"""Measurement helpers: GFLOPS accounting, model-vs-measured comparison,
and text reporting."""

from .gflops import gflops, speedup
from .modelerror import (
    ModelErrorReport,
    measured_chunk_seconds,
    model_error_report,
    modeled_chunk_seconds,
)
from .report import format_series, format_table, results_dir, write_result

__all__ = [
    "gflops",
    "speedup",
    "ModelErrorReport",
    "measured_chunk_seconds",
    "model_error_report",
    "modeled_chunk_seconds",
    "format_series",
    "format_table",
    "results_dir",
    "write_result",
]
