"""GFLOPS accounting (paper Section V.C).

The paper reports GFLOPS against end-to-end time *including* the transfer
of every output chunk to host memory; a multiply-add counts as 2 flops.
"""

from __future__ import annotations

__all__ = ["gflops", "speedup"]


def gflops(flops: int, seconds: float) -> float:
    """Floating-point throughput in GFLOPS; 0.0 for zero time."""
    if seconds <= 0:
        return 0.0
    return flops / seconds / 1e9


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How much faster the candidate is than the baseline (>1 = faster)."""
    if candidate_seconds <= 0:
        raise ZeroDivisionError("candidate time must be positive")
    return baseline_seconds / candidate_seconds
