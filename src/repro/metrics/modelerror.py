"""Model-vs-measured comparison of per-chunk execution times.

The simulators price every chunk with the analytic cost model
(:mod:`repro.device.kernels`); the parallel execution engine records the
*measured* host wall-clock of each chunk's real kernel run.  The absolute
scales differ by construction — the model prices a simulated V100, the
measurement times numpy on the host — so the meaningful comparison is of
*shape*: after one global rescale, how well do modeled chunk costs predict
measured ones?  That is exactly what the scheduling decisions (transfer
order, hybrid split) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.chunks import ChunkProfile
from ..device.kernels import CostModel

__all__ = [
    "OUTLIER_REL_ERROR",
    "modeled_chunk_seconds",
    "measured_chunk_seconds",
    "ModelErrorReport",
    "model_error_report",
]

#: a chunk whose rescaled-model prediction is off by more than this
#: fraction of its measured time counts as an outlier in the report
OUTLIER_REL_ERROR = 0.5


def modeled_chunk_seconds(profile: ChunkProfile, cost: CostModel) -> np.ndarray:
    """Cost-model GPU time of every chunk (analysis + symbolic + numeric).

    Calibrated models (anything exposing ``chunk_seconds``, e.g.
    :class:`repro.device.kernels.CalibratedCostModel`) price the whole
    chunk themselves — per-kernel stage fits; the plain analytic model
    sums its three stage formulas.
    """
    priced = getattr(cost, "chunk_seconds", None)
    out = np.empty(len(profile.chunks), dtype=np.float64)
    for i, c in enumerate(profile.chunks):
        if not c.executed:
            raise ValueError(f"chunk {c.chunk_id} not executed")
        if priced is not None:
            out[i] = priced(c)
        else:
            out[i] = (
                cost.t_analysis(c.input_nnz)
                + cost.t_symbolic(c.flops, c.nnz_out, c.symbolic_kernels)
                + cost.t_numeric(c.flops, c.nnz_out, c.numeric_kernels)
            )
    return out


def measured_chunk_seconds(profile: ChunkProfile) -> np.ndarray:
    """Measured wall-clock of every chunk's real kernel run."""
    if not profile.has_measured_times:
        raise ValueError("profile has no measured per-chunk times")
    return np.array([c.measured_seconds for c in profile.chunks], dtype=np.float64)


@dataclass(frozen=True)
class ModelErrorReport:
    """How well the analytic model predicts measured chunk times.

    **Units.** All ``*_abs_rel_error`` fields are dimensionless
    *fractions*, not percentages: ``0.25`` means the rescaled model is
    off by 25% of the measured time for a chunk; values above ``1.0``
    mean the prediction is off by more than the measurement itself
    (possible — and common for near-zero measured times, whose relative
    errors are unbounded; that is why the mean can reach tens on noisy
    hosts while the median stays small).  Multiply by 100 to display a
    percentage.  ``scale`` is a pure ratio (host seconds per modeled
    device second), ``correlation`` is Pearson r in ``[-1, 1]``.
    """

    scale: float                  # sum(measured) / sum(modeled), ratio
    mean_abs_rel_error: float     # fraction (1.0 = 100%), per chunk mean
    median_abs_rel_error: float   # fraction; robust to near-zero outliers
    max_abs_rel_error: float      # fraction
    correlation: float            # Pearson r between modeled and measured
    p95_abs_rel_error: float = 0.0  # fraction; tail error short of the max
    outliers: int = 0             # chunks with rel error > OUTLIER_REL_ERROR

    def rows(self) -> List[List[object]]:
        return [[
            self.scale, self.mean_abs_rel_error, self.median_abs_rel_error,
            self.p95_abs_rel_error, self.max_abs_rel_error,
            self.correlation, self.outliers,
        ]]


def model_error_report(profile: ChunkProfile, cost: CostModel) -> ModelErrorReport:
    """Compare modeled and measured per-chunk times after a global rescale.

    ``scale`` maps model seconds onto host seconds; the remaining per-chunk
    relative error is the model's *shape* error — the quantity that matters
    for every scheduling decision made on modeled costs.

    All relative errors are dimensionless fractions (see
    :class:`ModelErrorReport`); chunks whose measured time is near zero
    produce unbounded relative errors and can dominate the mean, so the
    median is reported alongside as the robust shape-error figure.
    """
    modeled = modeled_chunk_seconds(profile, cost)
    measured = measured_chunk_seconds(profile)
    total_model = float(modeled.sum())
    total_meas = float(measured.sum())
    if total_model <= 0 or total_meas <= 0:
        raise ValueError("degenerate totals; nothing to compare")
    scale = total_meas / total_model
    rescaled = modeled * scale
    denom = np.maximum(measured, 1e-12)
    rel = np.abs(rescaled - measured) / denom
    if modeled.size >= 2 and np.std(modeled) > 0 and np.std(measured) > 0:
        corr = float(np.corrcoef(modeled, measured)[0, 1])
    else:
        corr = 1.0
    return ModelErrorReport(
        scale=scale,
        mean_abs_rel_error=float(rel.mean()),
        median_abs_rel_error=float(np.median(rel)),
        max_abs_rel_error=float(rel.max()),
        correlation=corr,
        p95_abs_rel_error=float(np.percentile(rel, 95)),
        outliers=int((rel > OUTLIER_REL_ERROR).sum()),
    )
