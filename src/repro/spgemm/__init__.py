"""SpGEMM kernels: the in-core substrate the out-of-core framework drives."""

from .esc import spgemm_esc
from .flops import compression_ratio, flops_per_row, total_flops
from .gustavson import spgemm_gustavson
from .kernels import (
    ACCUMULATORS,
    FUSED_METHODS,
    KERNEL_KINDS,
    KernelSpec,
    plan_groups,
    resolve_kernel,
)
from .native import native_available, native_build_error
from .numeric import numeric_grouped, numeric_phase
from .reference import assert_same_product, spgemm_scipy
from .rmerge import spgemm_rmerge
from .rowanalysis import RowAnalysis, analyze_rows
from .semiring import MAX_MIN, MIN_PLUS, OR_AND, PLUS_TIMES, Semiring, spgemm_semiring
from .symbolic import symbolic_grouped, symbolic_row_nnz, symbolic_sort
from .twophase import TwoPhaseResult, TwoPhaseStats, spgemm_twophase
from .upperbound import row_upper_bound, row_upper_bound_cols, tightness

__all__ = [
    "spgemm_esc",
    "compression_ratio",
    "flops_per_row",
    "total_flops",
    "spgemm_gustavson",
    "ACCUMULATORS",
    "FUSED_METHODS",
    "KERNEL_KINDS",
    "KernelSpec",
    "plan_groups",
    "resolve_kernel",
    "native_available",
    "native_build_error",
    "numeric_grouped",
    "numeric_phase",
    "assert_same_product",
    "spgemm_scipy",
    "spgemm_rmerge",
    "RowAnalysis",
    "analyze_rows",
    "MAX_MIN",
    "MIN_PLUS",
    "OR_AND",
    "PLUS_TIMES",
    "Semiring",
    "spgemm_semiring",
    "symbolic_grouped",
    "symbolic_row_nnz",
    "symbolic_sort",
    "TwoPhaseResult",
    "TwoPhaseStats",
    "spgemm_twophase",
    "row_upper_bound",
    "row_upper_bound_cols",
    "tightness",
]
