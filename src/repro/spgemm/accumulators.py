"""Row accumulators: hash tables and dense arrays (paper Section II.B).

Intermediate products with colliding column ids must be combined into one
output nonzero.  Two methods are implemented, matching the paper (which
follows spECK [30] and Nagasaka et al. [28]):

``hash``
    per-row open-addressing hash tables sized from the upper-bound estimate
    (load factor <= 1/2), keyed by column id, linear probing, followed by a
    per-row sort of the surviving keys — "it then sorts the values of each
    row ... according to their column ids".
``dense``
    a dense accumulation buffer per row; column ids index the buffer
    directly.  Efficient when output rows are dense relative to the chunk
    width, wasteful otherwise — exactly the trade-off the row grouping
    exploits.

Both are vectorized across all rows of a group.  The hash insertion runs
the classic GPU trick in numpy: all pending products write their key to
their probe slot (arbitrary winner), everyone re-reads the slot, products
whose key now matches accumulate there, the rest advance to the next slot.
Each iteration of the Python-level loop is one *probe step*, not one
product, so the loop count is bounded by the probe-sequence length (small
at load factor 1/2), keeping the whole thing O(products) vector work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..sparse.ops import RowSliceCache, take_rows
from .expand import expand_products, products_per_row, row_batches

__all__ = [
    "RowResults",
    "hash_accumulate_rows",
    "dense_accumulate_rows",
    "esc_accumulate_rows",
]

#: Knuth multiplicative hashing constant (2^32 / phi), as used by many
#: GPU SpGEMM hash kernels.
_HASH_MULT = np.int64(2654435761)

#: dense accumulation processes rows in batches bounded by this many buffer
#: elements, so peak memory stays flat regardless of group size
DENSE_BATCH_ELEMS = 1 << 22

#: hash accumulation expands intermediate products in row batches bounded
#: by this many products, so peak memory is O(batch) instead of O(group)
HASH_PRODUCT_BATCH = 1 << 22


def _take(a: CSRMatrix, rows: np.ndarray, slice_cache: Optional[RowSliceCache]) -> CSRMatrix:
    if slice_cache is not None:
        return slice_cache.take(rows)
    return take_rows(a, rows)


@dataclass(frozen=True)
class RowResults:
    """Accumulated output rows of one group, in the group's row order.

    ``counts[i]`` output nonzeros for ``rows[i]``; ``col_ids``/``values``
    are the concatenated per-row results, columns ascending within a row.
    ``values`` is None for symbolic-only (structure) passes.
    """

    rows: np.ndarray
    counts: np.ndarray
    col_ids: np.ndarray
    values: Optional[np.ndarray]

    @property
    def nnz(self) -> int:
        return int(self.col_ids.size)

    def offsets(self) -> np.ndarray:
        out = np.zeros(self.rows.size + 1, dtype=INDEX_DTYPE)
        np.cumsum(self.counts, out=out[1:])
        return out


def _empty_results(rows: np.ndarray, with_values: bool) -> RowResults:
    return RowResults(
        rows=rows,
        counts=np.zeros(rows.size, dtype=INDEX_DTYPE),
        col_ids=np.empty(0, dtype=INDEX_DTYPE),
        values=np.empty(0, dtype=VALUE_DTYPE) if with_values else None,
    )


# ----------------------------------------------------------------------
# hash accumulation
# ----------------------------------------------------------------------
def _table_capacities(work: np.ndarray) -> np.ndarray:
    """Power-of-two table sizes >= 2x the upper-bound work per row."""
    need = np.maximum(2 * np.asarray(work, dtype=np.int64), 2)
    exp = np.ceil(np.log2(need)).astype(np.int64)
    return np.maximum(np.int64(1) << exp, 16)


def _hash_insert(
    keys: np.ndarray,
    vals: Optional[np.ndarray],
    table_off: np.ndarray,
    caps: np.ndarray,
    prod_rows: np.ndarray,
    prod_cols: np.ndarray,
    prod_vals: Optional[np.ndarray],
) -> None:
    """Insert one batch of products into the per-row open-addressing tables.

    Per-row tables are disjoint, so batches that keep whole rows together
    produce bit-identical tables to a single monolithic insertion: within a
    row, products retire at the same probe step and accumulate in the same
    order regardless of which other rows share the batch.
    """
    base = table_off[prod_rows]  # prod_rows are local (0..num group rows)
    mask = caps[prod_rows] - 1
    slot = base + ((prod_cols * _HASH_MULT) & mask)

    pending = np.arange(prod_rows.size, dtype=INDEX_DTYPE)
    max_steps = int(caps.max())
    for _ in range(max_steps + 1):
        if pending.size == 0:
            break
        s = slot[pending]
        c = prod_cols[pending]
        # claim empty slots (racing writes, numpy keeps the last writer —
        # any single winner is equally correct)
        empty = keys[s] == -1
        if np.any(empty):
            keys[s[empty]] = c[empty]
        # products whose column now owns the slot accumulate and retire
        won = keys[s] == c
        if np.any(won):
            if vals is not None:
                np.add.at(vals, s[won], prod_vals[pending[won]])
            pending = pending[~won]
            slot_adv = slot[pending]
        else:
            slot_adv = s
        if pending.size:
            # linear probe within the row's table
            b_off = table_off[prod_rows[pending]]
            m = caps[prod_rows[pending]] - 1
            slot[pending] = b_off + ((slot_adv - b_off + 1) & m)
    else:
        raise RuntimeError("hash table overflow: probe sequence exhausted")


def hash_accumulate_rows(
    a: CSRMatrix,
    b: CSRMatrix,
    rows: np.ndarray,
    work: np.ndarray,
    *,
    with_values: bool = True,
    slice_cache: Optional[RowSliceCache] = None,
    batch_products: int = HASH_PRODUCT_BATCH,
) -> RowResults:
    """Hash-accumulate the products of the given A rows.

    Parameters
    ----------
    rows:
        Row indices of ``A`` (the group), ascending.
    work:
        Upper-bound products per listed row (from row analysis); sizes the
        per-row tables so the load factor never exceeds 1/2.
    with_values:
        False runs the *symbolic* variant — structure only, no value array.
    slice_cache:
        Optional :class:`~repro.sparse.ops.RowSliceCache` over ``a`` that
        memoizes the group gather across symbolic/numeric passes and
        sibling chunks of the same row panel.
    batch_products:
        Expansion is tiled over contiguous row ranges holding at most this
        many intermediate products, bounding peak memory by the batch
        instead of the whole group (a row above the budget still gets its
        own batch).  The result is bit-identical for any batch size.
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size == 0:
        return _empty_results(rows, with_values)
    sub = _take(a, rows, slice_cache)

    caps = _table_capacities(work)
    table_off = np.zeros(rows.size + 1, dtype=INDEX_DTYPE)
    np.cumsum(caps, out=table_off[1:])
    total = int(table_off[-1])

    keys = np.full(total, -1, dtype=INDEX_DTYPE)
    vals = np.zeros(total, dtype=VALUE_DTYPE) if with_values else None

    inserted_any = False
    for lo, hi in row_batches(products_per_row(sub, b), batch_products):
        prod_rows, prod_cols, prod_vals = expand_products(sub, b, lo, hi)
        if prod_rows.size == 0:
            continue
        inserted_any = True
        _hash_insert(
            keys, vals, table_off, caps, prod_rows, prod_cols,
            prod_vals if with_values else None,
        )
    if not inserted_any:
        return _empty_results(rows, with_values)

    # extract: valid slots per row, sorted by column id (the paper's
    # post-insert sort producing CSR rows)
    valid = keys != -1
    slot_rows = np.repeat(np.arange(rows.size, dtype=INDEX_DTYPE), caps)
    vr = slot_rows[valid]
    vc = keys[valid]
    order = np.lexsort((vc, vr))
    counts = np.bincount(vr, minlength=rows.size).astype(INDEX_DTYPE)
    return RowResults(
        rows=rows,
        counts=counts,
        col_ids=vc[order],
        values=vals[valid][order] if with_values else None,
    )


# ----------------------------------------------------------------------
# ESC accumulation (expand / sort / compress, whole group at once)
# ----------------------------------------------------------------------
def esc_accumulate_rows(
    a: CSRMatrix,
    b: CSRMatrix,
    rows: np.ndarray,
    work: Optional[np.ndarray] = None,
    *,
    with_values: bool = True,
    slice_cache: Optional[RowSliceCache] = None,
    batch_products: int = HASH_PRODUCT_BATCH,
) -> RowResults:
    """ESC-accumulate the products of the given A rows in one batch.

    The bhSPARSE formulation applied per row group: expand every
    intermediate product of the group at once, sort by the fused
    ``(row, column)`` key with one stable radix sort, and segment-reduce
    duplicate coordinates — no per-row and no per-probe-step Python loops
    anywhere on the path.

    The stable sort preserves expansion order among equal keys, and the
    segment reduction uses ``np.add.at`` (strictly sequential in element
    order — ``np.add.reduceat`` would pairwise-sum long runs), so
    duplicate products combine in expansion (ascending ``k``) order —
    bit-identical to the ``hash`` / ``dense`` / ``native`` accumulators
    for any input.

    ``work`` is accepted for accumulator-signature uniformity and unused:
    ESC needs no per-row sizing.  Expansion is tiled over contiguous row
    ranges of at most ``batch_products`` products, bounding peak memory
    by the batch; tiling never changes the result (rows never straddle a
    batch boundary).
    """
    del work  # unused: ESC has no per-row table to size
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size == 0:
        return _empty_results(rows, with_values)
    width = np.int64(b.n_cols)
    if width == 0:
        return _empty_results(rows, with_values)
    sub = _take(a, rows, slice_cache)

    counts = np.zeros(rows.size, dtype=INDEX_DTYPE)
    cols_parts = []
    vals_parts = []
    for lo, hi in row_batches(products_per_row(sub, b), batch_products):
        prod_rows, prod_cols, prod_vals = expand_products(sub, b, lo, hi)
        if prod_rows.size == 0:
            continue
        # fused sort key: one stable (radix) argsort replaces the lexsort
        key = prod_rows * width + prod_cols
        order = np.argsort(key, kind="stable")
        key = key[order]
        new = np.empty(key.size, dtype=bool)
        new[0] = True
        new[1:] = key[1:] != key[:-1]
        starts = np.flatnonzero(new)
        unique_key = key[starts]
        counts += np.bincount(unique_key // width, minlength=rows.size).astype(
            INDEX_DTYPE
        )
        cols_parts.append((unique_key % width).astype(INDEX_DTYPE))
        if with_values:
            seg = np.cumsum(new) - 1  # segment id of every sorted product
            sums = np.zeros(starts.size, dtype=VALUE_DTYPE)
            np.add.at(sums, seg, prod_vals[order])
            vals_parts.append(sums)

    col_ids = (
        np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=INDEX_DTYPE)
    )
    values = None
    if with_values:
        values = (
            np.concatenate(vals_parts) if vals_parts else np.empty(0, dtype=VALUE_DTYPE)
        )
    return RowResults(rows=rows, counts=counts, col_ids=col_ids, values=values)


# ----------------------------------------------------------------------
# dense accumulation
# ----------------------------------------------------------------------
def dense_accumulate_rows(
    a: CSRMatrix,
    b: CSRMatrix,
    rows: np.ndarray,
    *,
    with_values: bool = True,
    batch_elems: int = DENSE_BATCH_ELEMS,
    slice_cache: Optional[RowSliceCache] = None,
) -> RowResults:
    """Dense-accumulate the products of the given A rows.

    Each row gets a dense buffer of the full output width ``b.n_cols``;
    rows are processed in batches so the buffer footprint stays below
    ``batch_elems`` elements.  ``slice_cache`` memoizes the per-batch
    ``take_rows`` gathers (see :func:`hash_accumulate_rows`).
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size == 0:
        return _empty_results(rows, with_values)
    width = b.n_cols
    if width == 0:
        return _empty_results(rows, with_values)

    batch_rows = max(1, int(batch_elems // max(width, 1)))
    counts = np.zeros(rows.size, dtype=INDEX_DTYPE)
    cols_parts = []
    vals_parts = []

    for start in range(0, rows.size, batch_rows):
        chunk_rows = rows[start : start + batch_rows]
        sub = _take(a, chunk_rows, slice_cache)
        prod_rows, prod_cols, prod_vals = expand_products(sub, b)

        touched = np.zeros((chunk_rows.size, width), dtype=bool)
        touched[prod_rows, prod_cols] = True
        if with_values:
            acc = np.zeros((chunk_rows.size, width), dtype=VALUE_DTYPE)
            np.add.at(acc, (prod_rows, prod_cols), prod_vals)

        # np.nonzero walks row-major, so columns come out ascending per row
        out_r, out_c = np.nonzero(touched)
        counts[start : start + chunk_rows.size] = np.bincount(
            out_r, minlength=chunk_rows.size
        )
        cols_parts.append(out_c.astype(INDEX_DTYPE))
        if with_values:
            vals_parts.append(acc[out_r, out_c])

    col_ids = (
        np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=INDEX_DTYPE)
    )
    values = None
    if with_values:
        values = (
            np.concatenate(vals_parts) if vals_parts else np.empty(0, dtype=VALUE_DTYPE)
        )
    return RowResults(rows=rows, counts=counts, col_ids=col_ids, values=values)
