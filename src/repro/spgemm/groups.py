"""Host-side row grouping for load balance (spECK-style, paper Fig. 3).

After row analysis, rows of ``A`` are assigned to *groups* by work size so
that one kernel per group can use an appropriately sized accumulator:

* rows whose (estimated or exact) output is dense relative to the output
  width go to **dense-accumulation** groups;
* the rest go to **hash-accumulation** groups, bucketed by power-of-two
  work size so each kernel's hash tables are uniformly sized.

The paper performs this twice: once on the *upper-bound* estimate (before
the symbolic phase) and once on the *exact* per-row nnz (before the numeric
phase) — "we re-assign rows of matrix A based on the number of non-zero
elements to achieve global load balance again".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["RowGroup", "RowGrouping", "group_rows"]

#: rows denser than this fraction of the output width use dense accumulation
DENSE_THRESHOLD = 1.0 / 16.0

#: hash groups are bucketed at powers of two between these work sizes
MIN_BUCKET = 16
MAX_BUCKET = 1 << 20


@dataclass(frozen=True)
class RowGroup:
    """A set of rows processed by one (simulated) kernel launch."""

    rows: np.ndarray  # int64 row indices, ascending
    method: str  # "dense" | "hash"
    bucket: int  # work-size bucket (power of two), 0 for dense groups

    def __len__(self) -> int:
        return int(self.rows.size)


@dataclass(frozen=True)
class RowGrouping:
    """All groups of one symbolic or numeric pass."""

    groups: Tuple[RowGroup, ...]
    n_rows: int

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def num_kernels(self) -> int:
        """Kernel launches this grouping costs (one per non-empty group)."""
        return sum(1 for g in self.groups if len(g) > 0)

    def coverage(self) -> np.ndarray:
        """Group index of every row; -1 marks rows with zero work
        (they are skipped entirely — their output rows are empty)."""
        out = np.full(self.n_rows, -1, dtype=np.int64)
        for gi, g in enumerate(self.groups):
            out[g.rows] = gi
        return out


def _bucket_of(work: np.ndarray) -> np.ndarray:
    """Power-of-two bucket per row, clamped to [MIN_BUCKET, MAX_BUCKET]."""
    clamped = np.clip(work, 1, MAX_BUCKET)
    exp = np.ceil(np.log2(clamped)).astype(np.int64)
    bucket = np.int64(1) << exp
    return np.maximum(bucket, MIN_BUCKET)


def group_rows(
    work_per_row: np.ndarray,
    out_width: int,
    *,
    dense_threshold: float = DENSE_THRESHOLD,
) -> RowGrouping:
    """Bin rows by work size and accumulation method.

    Parameters
    ----------
    work_per_row:
        Either the upper-bound products per row (symbolic grouping) or the
        exact output nnz per row (numeric re-grouping).
    out_width:
        Number of columns of the output chunk — the dense accumulator's
        buffer width, against which density is judged.
    dense_threshold:
        Rows with ``work >= dense_threshold * out_width`` use dense
        accumulation (the paper: "dense accumulation for dense rows and the
        hashmap methods for sparse rows").
    """
    work = np.asarray(work_per_row, dtype=np.int64)
    if np.any(work < 0):
        raise ValueError("work_per_row must be non-negative")
    n_rows = work.size
    groups: List[RowGroup] = []

    active = work > 0
    cutoff = max(1.0, dense_threshold * out_width)
    dense_mask = active & (work >= cutoff)
    hash_mask = active & ~dense_mask

    dense_rows = np.flatnonzero(dense_mask)
    if dense_rows.size:
        groups.append(RowGroup(rows=dense_rows, method="dense", bucket=0))

    hash_rows = np.flatnonzero(hash_mask)
    if hash_rows.size:
        buckets = _bucket_of(work[hash_rows])
        for b in np.unique(buckets):
            rows = hash_rows[buckets == b]
            groups.append(RowGroup(rows=rows, method="hash", bucket=int(b)))

    return RowGrouping(groups=tuple(groups), n_rows=n_rows)
