"""Numeric phase: compute output values into an exactly-sized allocation.

"The second phase is called numeric phase, which starts with the knowledge
of the number of non-zero elements in the output matrix, and thus, space
allocation is now feasible."  Row groups are re-derived from the *exact*
symbolic counts (the paper's second, global load-balancing pass), and each
group's accumulator writes directly into its rows' slots of the shared
output arrays — mirroring how the GPU kernels write disjoint ranges of one
pre-allocated buffer.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..sparse.ops import RowSliceCache
from .accumulators import RowResults
from .groups import RowGrouping, group_rows

__all__ = ["numeric_grouped", "numeric_phase"]


def numeric_grouped(
    a: CSRMatrix,
    b: CSRMatrix,
    row_nnz: np.ndarray,
    grouping: RowGrouping,
    *,
    slice_cache: Optional[RowSliceCache] = None,
    precomputed: Optional[Sequence[Optional[RowResults]]] = None,
) -> CSRMatrix:
    """Run the numeric phase with an explicit row grouping.

    ``row_nnz`` are the exact symbolic counts; they fix the output layout
    (``row_offsets``) before any group runs, so groups can fill their rows
    independently and in any order.  Accumulators are dispatched by group
    method through the kernel registry.  ``slice_cache`` memoizes
    row-group gathers of ``a`` across passes and sibling chunks.

    ``precomputed`` (parallel to ``grouping.groups``) supplies cached
    :class:`RowResults` for *fused* groups whose symbolic pass already
    produced values (esc/merge/native kernels); those groups only scatter
    here instead of recomputing.  ``None`` entries run normally.
    """
    row_nnz = np.asarray(row_nnz, dtype=INDEX_DTYPE)
    if row_nnz.size != a.n_rows:
        raise ValueError("row_nnz length must equal the number of A rows")

    row_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(row_nnz, out=row_offsets[1:])
    nnz = int(row_offsets[-1])
    col_ids = np.empty(nnz, dtype=INDEX_DTYPE)
    data = np.empty(nnz, dtype=VALUE_DTYPE)

    from .kernels import accumulate  # deferred: kernels imports this module's peers

    if precomputed is not None and len(precomputed) != len(grouping.groups):
        raise ValueError("precomputed must align with grouping.groups")

    for gi, g in enumerate(grouping):
        if len(g) == 0:
            continue
        res = precomputed[gi] if precomputed is not None else None
        if res is None:
            # exact counts are the tightest possible table/buffer sizing
            res = accumulate(
                g.method, a, b, g.rows, row_nnz[g.rows],
                with_values=True, slice_cache=slice_cache,
            )
        if not np.array_equal(res.counts, row_nnz[g.rows]):
            raise RuntimeError(
                "numeric phase disagrees with symbolic counts — "
                "accumulator inconsistency"
            )
        # scatter the group's concatenated rows into their global slots
        starts = row_offsets[g.rows]
        local = res.offsets()
        src_n = res.nnz
        dest = np.repeat(starts - local[:-1], res.counts) + np.arange(
            src_n, dtype=INDEX_DTYPE
        )
        col_ids[dest] = res.col_ids
        data[dest] = res.values

    return CSRMatrix(a.n_rows, b.n_cols, row_offsets, col_ids, data, check=False)


def numeric_phase(a: CSRMatrix, b: CSRMatrix, row_nnz: np.ndarray) -> CSRMatrix:
    """Numeric phase with the standard exact-count re-grouping."""
    grouping = group_rows(np.asarray(row_nnz), b.n_cols)
    return numeric_grouped(a, b, row_nnz, grouping)
