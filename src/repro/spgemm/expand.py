"""The *expansion* primitive shared by every SpGEMM path.

For ``C = A x B`` (row-row formulation), every nonzero ``A[i, k]`` scales row
``k`` of ``B``; expansion materializes all these *intermediate products* as
three flat arrays ``(out_rows, out_cols, values)``.  ESC sorts them, the
hash path inserts them into per-row tables, the dense path scatters them
into dense row buffers — but the expansion itself is identical, so it lives
here once, fully vectorized (no per-nonzero Python loops).

The number of products ``P`` equals ``flops / 2``; memory is ``O(P)``, which
is exactly why the out-of-core framework bounds chunk flops.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE

__all__ = ["expand_products", "num_products", "products_per_row", "row_batches"]


def num_products(a: CSRMatrix, b: CSRMatrix) -> int:
    """Number of intermediate products of ``A x B`` (= flops / 2)."""
    if a.nnz == 0:
        return 0
    return int(b.row_nnz()[a.col_ids].sum())


def products_per_row(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Exact intermediate products of each A row (= flops(row) / 2).

    One O(nnz) pass; this is what sizes expansion batches so peak memory
    stays bounded no matter how the caller groups rows.
    """
    per_elem = b.row_nnz()[a.col_ids]
    cum = np.zeros(a.nnz + 1, dtype=np.int64)
    np.cumsum(per_elem, out=cum[1:])
    return cum[a.row_offsets[1:]] - cum[a.row_offsets[:-1]]


def row_batches(products_per_row: np.ndarray, budget: int) -> Iterator[Tuple[int, int]]:
    """Yield contiguous row ranges whose total products stay under ``budget``.

    A single row exceeding the budget still gets its own batch (it cannot
    be split by this phase — the out-of-core planner splits on columns for
    that case).
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    n = products_per_row.size
    start = 0
    acc = 0
    for r in range(n):
        p = int(products_per_row[r])
        if acc and acc + p > budget:
            yield start, r
            start, acc = r, p
        else:
            acc += p
    if start < n:
        yield start, n


def expand_products(
    a: CSRMatrix,
    b: CSRMatrix,
    row_start: int = 0,
    row_stop: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialize intermediate products of rows ``[row_start, row_stop)``.

    Returns ``(out_rows, out_cols, values)`` where ``out_rows`` are *global*
    row ids of A (ascending), ``out_cols`` are B column ids, and
    ``values[p] = A[i, k] * B[k, j]``.  Products of one A row appear
    consecutively, ordered by the position of ``A[i, k]`` within the row
    and then by B's column order — i.e. deterministic.

    The row range lets callers batch expansion to bound peak memory.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    if row_stop is None:
        row_stop = a.n_rows
    if not 0 <= row_start <= row_stop <= a.n_rows:
        raise IndexError(f"invalid row range [{row_start}, {row_stop})")

    lo = int(a.row_offsets[row_start])
    hi = int(a.row_offsets[row_stop])
    a_cols = a.col_ids[lo:hi]
    a_vals = a.data[lo:hi]
    if a_cols.size == 0:
        empty_i = np.empty(0, dtype=INDEX_DTYPE)
        return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)

    counts = b.row_nnz()[a_cols]  # products per A element
    total = int(counts.sum())

    # row id of each A element in the range
    a_rows = np.repeat(
        np.arange(row_start, row_stop, dtype=INDEX_DTYPE),
        np.diff(a.row_offsets[row_start : row_stop + 1]),
    )
    out_rows = np.repeat(a_rows, counts)

    # gather source indices into B's element arrays:
    #   element e of A contributes B positions [row_offsets[k_e], +counts_e)
    starts = b.row_offsets[a_cols]
    exclusive = np.concatenate(
        [np.zeros(1, dtype=INDEX_DTYPE), np.cumsum(counts, dtype=INDEX_DTYPE)[:-1]]
    )
    src = np.repeat(starts - exclusive, counts) + np.arange(total, dtype=INDEX_DTYPE)

    out_cols = b.col_ids[src]
    values = np.repeat(a_vals, counts) * b.data[src]
    return out_rows, out_cols, values
