"""BRMerge-style group accumulator: binary row merging, fully vectorized.

Following "Accelerating CPU-Based Sparse General Matrix Multiplication
With Binary Row Merging" (BRMerge): each output row of ``A x B`` is the
union of the (already column-sorted) scaled B rows its A row selects, so
it can be produced purely by *merging* — no hashing, no global sort.
Per round, each row's surviving lists are paired **by ascending length**
(shortest with shortest, as BRMerge prescribes to minimize comparisons)
and every pair merges in one vectorized two-way merge; rounds repeat
until one list per row remains.

The two-way merge of all pairs at once is position arithmetic, not a
sort: with both sides of every pair globally ordered by the fused
``(pair, column)`` key, a ``searchsorted`` per side yields, for every
entry, how many opposite-side entries precede it; the union position is
``own_rank + opposite_rank - preceding_duplicates``, with duplicate
columns of a pair landing on the same slot where their values combine.
Total work is O(P log P) across all rounds with no per-row or per-pair
Python loops.

Unlike the ``hash`` / ``dense`` / ``esc`` / ``native`` accumulators —
which all combine duplicates in expansion (ascending ``k``) order and
are therefore mutually bit-identical — merging combines duplicates in
*tree* order.  Results are exact (bit-identical to every other kernel)
whenever the additions are exact, e.g. integer-valued data; for general
floats they agree to rounding (the usual ``allclose`` tolerance).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..sparse.ops import RowSliceCache
from .accumulators import (
    HASH_PRODUCT_BATCH,
    RowResults,
    _empty_results,
    _take,
)
from .expand import expand_products, products_per_row, row_batches

__all__ = ["merge_accumulate_rows"]


def _exclusive(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


def _merge_round(
    list_row: np.ndarray,
    list_len: np.ndarray,
    ecols: np.ndarray,
    evals: Optional[np.ndarray],
    width: np.int64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """One BRMerge round: pair each row's lists by ascending length and
    two-way-merge every pair at once.

    ``ecols``/``evals`` hold the entries of all lists, contiguous per
    list in list-id order, columns ascending within a list.  Returns the
    next round's ``(list_row, list_len, ecols, evals)`` with (at most)
    half as many lists per row; a row's odd leftover list (its longest)
    carries over unmerged as a pair with an empty right-hand side.
    """
    n_lists = list_len.size
    # order lists by (row, length); stable, so ties keep list-id order
    order = np.lexsort((list_len, list_row))
    srow = list_row[order]
    first = np.empty(n_lists, dtype=bool)
    first[0] = True
    first[1:] = srow[1:] != srow[:-1]
    starts_pos = np.flatnonzero(first)
    row_sizes = np.diff(np.append(starts_pos, n_lists))
    rank = np.arange(n_lists, dtype=np.int64) - np.repeat(starts_pos, row_sizes)

    # pair 2i with 2i+1 within each row; new list ids stay row-sorted
    new_sizes = (row_sizes + 1) // 2
    new_base = _exclusive(new_sizes)[:-1]
    new_id_sorted = np.repeat(new_base, row_sizes) + (rank >> 1)
    side_sorted = rank & 1  # 0 = left/shorter, 1 = right
    n_new = int(new_sizes.sum())
    new_row = np.repeat(srow[starts_pos], new_sizes)

    new_of = np.empty(n_lists, dtype=np.int64)
    side_of = np.empty(n_lists, dtype=np.int64)
    new_of[order] = new_id_sorted
    side_of[order] = side_sorted

    left = side_of == 0
    lenA = np.zeros(n_new, dtype=np.int64)
    lenB = np.zeros(n_new, dtype=np.int64)
    lenA[new_of[left]] = list_len[left]   # every pair has a left side
    lenB[new_of[~left]] = list_len[~left]  # carried lists leave it empty

    # permute entry *blocks* into (pair, side, column) order — a block
    # gather, not a sort: entries are already column-sorted per list
    list_off = _exclusive(list_len)
    sel = np.lexsort((side_of, new_of))
    blk = list_len[sel]
    total = int(list_off[-1])
    src = np.repeat(list_off[sel] - _exclusive(blk)[:-1], blk) + np.arange(
        total, dtype=np.int64
    )
    pcols = ecols[src]
    pvals = evals[src] if evals is not None else None
    p_side = np.repeat(side_of[sel], blk)

    mA = p_side == 0
    pair_of_entry = np.repeat(new_of[sel], blk)
    pairA = pair_of_entry[mA]
    pairB = pair_of_entry[~mA]
    colsA, colsB = pcols[mA], pcols[~mA]
    keyA = pairA * width + colsA
    keyB = pairB * width + colsB

    offA = _exclusive(lenA)
    offB = _exclusive(lenB)
    a_local = np.arange(keyA.size, dtype=np.int64) - np.repeat(offA[:-1], lenA)
    b_local = np.arange(keyB.size, dtype=np.int64) - np.repeat(offB[:-1], lenB)

    # ranks of each entry among the opposite side of its pair (keys of
    # different pairs never interleave, so one global search suffices)
    nb = np.searchsorted(keyB, keyA, side="left")
    na = np.searchsorted(keyA, keyB, side="left")
    dupA = np.zeros(keyA.size, dtype=bool)
    ok = nb < keyB.size
    dupA[ok] = keyB[nb[ok]] == keyA[ok]
    dupB = np.zeros(keyB.size, dtype=bool)
    ok = na < keyA.size
    dupB[ok] = keyA[na[ok]] == keyB[ok]

    # per-pair exclusive prefix of duplicates (segmented cumsum)
    cA = np.cumsum(dupA) - dupA
    dupA_excl = cA - np.repeat(cA[offA[:-1]], lenA)
    cB = np.cumsum(dupB) - dupB
    startB = np.zeros(n_new, dtype=np.int64)
    nzB = lenB > 0
    startB[nzB] = cB[offB[:-1][nzB]]
    dupB_excl = cB - np.repeat(startB, lenB)

    # union position = own rank + opposite rank - duplicates before it;
    # a duplicate pair (equal column both sides) lands on one slot
    posA = a_local + (nb - offB[pairA]) - dupA_excl
    posB = b_local + (na - offA[pairB]) - dupB_excl

    new_len = lenA + lenB - np.bincount(pairA[dupA], minlength=n_new)
    new_off = _exclusive(new_len)
    posA += new_off[pairA]
    posB += new_off[pairB]

    out_cols = np.empty(int(new_off[-1]), dtype=ecols.dtype)
    out_cols[posA] = colsA
    out_cols[posB] = colsB
    out_vals = None
    if pvals is not None:
        valsA, valsB = pvals[mA], pvals[~mA]
        out_vals = np.empty(out_cols.size, dtype=VALUE_DTYPE)
        out_vals[posA] = valsA
        keep = ~dupB
        out_vals[posB[keep]] = valsB[keep]
        # posB[dupB] are unique slots, so fancy-index += is well-defined
        out_vals[posB[dupB]] += valsB[dupB]
    return new_row, new_len, out_cols, out_vals


def merge_accumulate_rows(
    a: CSRMatrix,
    b: CSRMatrix,
    rows: np.ndarray,
    work: Optional[np.ndarray] = None,
    *,
    with_values: bool = True,
    slice_cache: Optional[RowSliceCache] = None,
    batch_products: int = HASH_PRODUCT_BATCH,
) -> RowResults:
    """Merge-accumulate the products of the given A rows (BRMerge).

    Same contract as the other group accumulators; ``work`` is accepted
    for signature uniformity and unused (merging needs no per-row
    sizing).  Row batches bound peak memory exactly as in
    :func:`~repro.spgemm.accumulators.hash_accumulate_rows`.
    """
    del work
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size == 0:
        return _empty_results(rows, with_values)
    width = np.int64(b.n_cols)
    if width == 0:
        return _empty_results(rows, with_values)
    sub = _take(a, rows, slice_cache)
    b_nnz = b.row_nnz()

    counts = np.zeros(rows.size, dtype=INDEX_DTYPE)
    cols_parts = []
    vals_parts = []
    for lo, hi in row_batches(products_per_row(sub, b), batch_products):
        a_lo = int(sub.row_offsets[lo])
        a_hi = int(sub.row_offsets[hi])
        a_cols = sub.col_ids[a_lo:a_hi]
        if a_cols.size == 0:
            continue
        # one initial list per A element: the scaled B row it selects,
        # column-sorted by construction; empty B rows spawn no list
        lens_all = b_nnz[a_cols].astype(np.int64)
        elem_row = np.repeat(
            np.arange(hi - lo, dtype=np.int64),
            np.diff(sub.row_offsets[lo : hi + 1]),
        )
        keep = lens_all > 0
        list_len = lens_all[keep]
        list_row = elem_row[keep]
        if list_len.size == 0:
            continue
        # expansion yields the initial entries already grouped per list
        _, ecols, evals = expand_products(sub, b, lo, hi)
        if not with_values:
            evals = None

        while np.bincount(list_row, minlength=hi - lo).max() > 1:
            list_row, list_len, ecols, evals = _merge_round(
                list_row, list_len, ecols, evals, width
            )

        # one list per productive row remains, lists in row order
        batch_counts = np.zeros(hi - lo, dtype=INDEX_DTYPE)
        batch_counts[list_row] = list_len
        counts[lo:hi] = batch_counts
        cols_parts.append(ecols.astype(INDEX_DTYPE, copy=False))
        if with_values:
            vals_parts.append(evals)

    col_ids = (
        np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=INDEX_DTYPE)
    )
    values = None
    if with_values:
        values = (
            np.concatenate(vals_parts) if vals_parts else np.empty(0, dtype=VALUE_DTYPE)
        )
    return RowResults(rows=rows, counts=counts, col_ids=col_ids, values=values)
