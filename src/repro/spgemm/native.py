"""Optional runtime-compiled C Gustavson group kernel (``native``).

The pure-numpy accumulators are bounded by sort/scatter throughput
(~50M products/s on one core); a row-major Gustavson sweep with a dense
sparse-accumulator (SPA) has no such bound — it touches each product
once and each output column twice.  When a C compiler and :mod:`cffi`
are available, this module compiles a tiny Gustavson kernel at runtime
(ABI mode, no ``Python.h`` needed) and registers it as the ``native``
accumulator kind; otherwise everything degrades to the numpy kernels.

Bit-identity.  The SPA accumulates each output column's duplicates in
ascending ``k`` order — exactly the expansion order every numpy
accumulator uses — and the build pins ``-ffp-contract=off`` so the
compiler cannot fuse ``a*b + s`` into an FMA.  The result is therefore
bit-identical to the ``hash`` / ``dense`` / ``esc`` kernels for
arbitrary float inputs.

Gating.  ``native_available()`` is the single capability probe: it
requires cffi, a working ``cc``/``gcc``, and a successful compile of the
kernel (cached by source hash, so the cost is one compilation per
machine).  ``REPRO_NATIVE=0`` force-disables; any failure is remembered
for the process so the hot path never retries a broken toolchain.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..sparse.ops import RowSliceCache, take_rows

__all__ = ["native_available", "native_accumulate_rows", "native_build_error"]

#: environment switch: "0"/"off"/"false" disables the native kernel
NATIVE_ENV = "REPRO_NATIVE"

#: override for the compiled-kernel cache directory
NATIVE_CACHE_ENV = "REPRO_NATIVE_CACHE"

_CDEF = """
long long repro_gustavson_group(
    long long n_rows,
    const long long *a_indptr, const long long *a_cols, const double *a_vals,
    const long long *b_indptr, const long long *b_cols, const double *b_vals,
    long long width,
    double *spa, long long *mark, long long *touched,
    long long *counts, long long *out_cols, double *out_vals,
    int with_values);
"""

_SOURCE = r"""
#include <stdlib.h>

/* ascending insertion sort; the per-row touched set is usually small */
static void isort64(long long *x, long long n) {
    for (long long i = 1; i < n; i++) {
        long long v = x[i];
        long long j = i - 1;
        while (j >= 0 && x[j] > v) { x[j + 1] = x[j]; j--; }
        x[j + 1] = v;
    }
}

static int cmp64(const void *pa, const void *pb) {
    long long a = *(const long long *)pa, b = *(const long long *)pb;
    return (a > b) - (a < b);
}

/* Gustavson SpGEMM over one row group.
 *
 * `mark` must arrive filled with -1; it is left holding row ids, so a
 * buffer can only be reused across calls after re-initialization.  The
 * SPA (`spa`) needs no clearing at all: a column's slot is (re)written
 * on first touch per row (mark test) and only read for touched columns.
 *
 * Accumulation order per output column is ascending A-element order
 * (= ascending k), i.e. expansion order: `spa[j] += av * bv` runs once
 * per intermediate product in the order the products are enumerated.
 * Compile with -ffp-contract=off so this never becomes an FMA.
 *
 * Returns the total nonzeros written to out_cols/out_vals; `counts[i]`
 * is row i's share, rows in group order, columns ascending per row.
 */
long long repro_gustavson_group(
    long long n_rows,
    const long long *a_indptr, const long long *a_cols, const double *a_vals,
    const long long *b_indptr, const long long *b_cols, const double *b_vals,
    long long width,
    double *spa, long long *mark, long long *touched,
    long long *counts, long long *out_cols, double *out_vals,
    int with_values)
{
    (void)width;
    long long out = 0;
    for (long long i = 0; i < n_rows; i++) {
        long long t = 0;
        for (long long p = a_indptr[i]; p < a_indptr[i + 1]; p++) {
            const long long k = a_cols[p];
            const double av = with_values ? a_vals[p] : 0.0;
            for (long long q = b_indptr[k]; q < b_indptr[k + 1]; q++) {
                const long long j = b_cols[q];
                if (mark[j] != i) {
                    mark[j] = i;
                    touched[t++] = j;
                    if (with_values) spa[j] = av * b_vals[q];
                } else if (with_values) {
                    spa[j] += av * b_vals[q];
                }
            }
        }
        if (t > 1) {
            if (t < 48) isort64(touched, t);
            else qsort(touched, (size_t)t, sizeof(long long), cmp64);
        }
        counts[i] = t;
        for (long long s = 0; s < t; s++) {
            const long long j = touched[s];
            out_cols[out] = j;
            if (with_values) out_vals[out] = spa[j];
            out++;
        }
    }
    return out;
}
"""

#: compile flags; -ffp-contract=off is load-bearing for bit-identity
_CFLAGS = ("-O2", "-shared", "-fPIC", "-std=c99", "-ffp-contract=off")

# process-wide probe state: (ffi, lib) when usable, error string when not
_STATE: dict = {"checked": False, "ffi": None, "lib": None, "error": None}

# serializes the first probe; thread-backend workers race to it, and a
# reader must never observe checked=True before lib/error are final
_PROBE_LOCK = threading.Lock()


def _cache_dir() -> Path:
    override = os.environ.get(NATIVE_CACHE_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(base) / "repro-native"


def _compiler() -> Optional[str]:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


def _build_library(cc: str) -> Path:
    """Compile the kernel into the cache (keyed by source + flags)."""
    digest = hashlib.sha256(
        (_SOURCE + "\0" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"gustavson-{digest}.so"
    if so_path.exists():
        return so_path
    cache.mkdir(parents=True, exist_ok=True)
    c_path = cache / f"gustavson-{digest}.c"
    c_path.write_text(_SOURCE)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    try:
        subprocess.run(
            [cc, *(_CFLAGS), "-o", tmp, str(c_path)],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp, so_path)  # atomic: racing builders converge
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return so_path


def _probe() -> None:
    """One-shot capability probe; results are memoized for the process."""
    if _STATE["checked"]:
        return
    with _PROBE_LOCK:
        if _STATE["checked"]:
            return
        try:
            _probe_locked()
        finally:
            # set last (and unconditionally): lock-free readers only see
            # checked=True once lib/error are final, and a crashed probe
            # is never retried
            _STATE["checked"] = True


def _probe_locked() -> None:
    flag = os.environ.get(NATIVE_ENV, "").strip().lower()
    if flag in ("0", "off", "false", "no"):
        _STATE["error"] = f"disabled via {NATIVE_ENV}={flag}"
        return
    try:
        import cffi  # noqa: F401  (optional dependency)
    except ImportError:
        _STATE["error"] = "cffi not installed"
        return
    cc = _compiler()
    if cc is None:
        _STATE["error"] = "no C compiler (cc/gcc/clang) on PATH"
        return
    try:
        so_path = _build_library(cc)
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(str(so_path))
    except Exception as exc:  # toolchain broken: remember, never retry
        _STATE["error"] = f"native kernel build failed: {exc}"
        return
    _STATE["ffi"], _STATE["lib"] = ffi, lib


def native_available() -> bool:
    """True when the compiled Gustavson kernel is usable in this process."""
    _probe()
    return _STATE["lib"] is not None


def native_build_error() -> Optional[str]:
    """Why the native kernel is unavailable (None when it is usable)."""
    _probe()
    return _STATE["error"]


def _as_i64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _as_f64(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


def native_accumulate_rows(
    a: CSRMatrix,
    b: CSRMatrix,
    rows: np.ndarray,
    work: np.ndarray,
    *,
    with_values: bool = True,
    slice_cache: Optional[RowSliceCache] = None,
) -> "RowResults":
    """Accumulate the given A rows through the compiled Gustavson kernel.

    Same contract as :func:`~repro.spgemm.accumulators.hash_accumulate_rows`:
    ``work`` is a per-row output upper bound (upper-bound products for the
    symbolic pass, exact counts for the numeric pass) used only to size
    the output buffers.  Raises :class:`RuntimeError` when the kernel is
    unavailable — callers gate on :func:`native_available`.
    """
    from .accumulators import RowResults, _empty_results

    if not native_available():
        raise RuntimeError(
            f"native kernel unavailable: {native_build_error()}"
        )
    ffi, lib = _STATE["ffi"], _STATE["lib"]

    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    width = int(b.n_cols)
    if rows.size == 0 or width == 0:
        return _empty_results(rows, with_values)
    sub = slice_cache.take(rows) if slice_cache is not None else take_rows(a, rows)

    cap = int(np.minimum(np.asarray(work, dtype=np.int64), width).sum())
    counts = np.zeros(rows.size, dtype=np.int64)
    out_cols = np.empty(max(cap, 1), dtype=np.int64)
    out_vals = np.empty(max(cap, 1) if with_values else 1, dtype=np.float64)
    spa = np.empty(width if with_values else 1, dtype=np.float64)
    mark = np.full(width, -1, dtype=np.int64)
    touched = np.empty(width, dtype=np.int64)

    a_indptr = _as_i64(sub.row_offsets)
    a_cols = _as_i64(sub.col_ids)
    a_vals = _as_f64(sub.data)
    b_indptr = _as_i64(b.row_offsets)
    b_cols = _as_i64(b.col_ids)
    b_vals = _as_f64(b.data)

    def ptr(ctype, arr):
        return ffi.cast(ctype, arr.ctypes.data)

    total = lib.repro_gustavson_group(
        rows.size,
        ptr("long long *", a_indptr), ptr("long long *", a_cols),
        ptr("double *", a_vals),
        ptr("long long *", b_indptr), ptr("long long *", b_cols),
        ptr("double *", b_vals),
        width,
        ptr("double *", spa), ptr("long long *", mark),
        ptr("long long *", touched),
        ptr("long long *", counts), ptr("long long *", out_cols),
        ptr("double *", out_vals),
        1 if with_values else 0,
    )
    total = int(total)
    if total > cap:
        raise RuntimeError(
            f"native kernel overflow: wrote {total} > capacity {cap}"
        )
    return RowResults(
        rows=rows,
        counts=counts.astype(INDEX_DTYPE, copy=False),
        col_ids=out_cols[:total].astype(INDEX_DTYPE, copy=True),
        values=(out_vals[:total].astype(VALUE_DTYPE, copy=True)
                if with_values else None),
    )
