"""Flop counting for SpGEMM (paper Table II and Algorithm 4, lines 6-13).

Following the paper's convention a multiply-add counts as **2 flops**, so

    flop(A x B) = 2 * sum over nonzeros A[i,k] of nnz(B[k,*])

The per-row variant is the *row analysis* quantity the spECK-style kernel
computes in its first stage, and the per-chunk variant is what the hybrid
scheduler (``GetFlops`` in Algorithm 4) sorts on.  The *compression ratio*
``flop(C) / nnz(C)`` is the paper's key performance indicator (Section V.B).
"""

from __future__ import annotations

import numpy as np

from ..sparse.formats import CSRMatrix

__all__ = [
    "flops_per_row",
    "total_flops",
    "compression_ratio",
]


def flops_per_row(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Flops contributed by each row of ``A`` in ``A x B`` (int64 array).

    Vectorized: gather nnz of the referenced B rows and segment-sum them
    back onto A's rows.  A multiply-add counts as 2 flops.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(
            f"dimension mismatch: A is {a.shape}, B is {b.shape}"
        )
    if a.nnz == 0:
        return np.zeros(a.n_rows, dtype=np.int64)
    b_row_nnz = b.row_nnz()
    per_element = b_row_nnz[a.col_ids]
    out = np.zeros(a.n_rows, dtype=np.int64)
    # segment sum: reduceat over row boundaries (empty rows handled via diff)
    np.add.at(out, a.expand_row_ids(), per_element)
    return 2 * out


def total_flops(a: CSRMatrix, b: CSRMatrix) -> int:
    """Total flops of ``A x B`` (2 x number of intermediate products)."""
    if a.n_cols != b.n_rows:
        raise ValueError(
            f"dimension mismatch: A is {a.shape}, B is {b.shape}"
        )
    if a.nnz == 0:
        return 0
    return int(2 * b.row_nnz()[a.col_ids].sum())


def compression_ratio(flops: int, nnz_out: int) -> float:
    """``flop(C) / nnz(C)`` — the paper's performance indicator.

    Values near 2 mean almost every intermediate product is a distinct
    output nonzero (irregular graphs); large values mean heavy collision
    (regular meshes) and thus more compute per transferred byte.
    Empty outputs return 0.0.
    """
    return flops / nnz_out if nnz_out else 0.0
