"""Symbolic phase: exact nnz of every output row (paper Section II.B).

"The first phase is the symbolic phase, where they first count the number
of non-zero elements of each row in the output matrix."  Knowing the counts
makes exact output allocation possible before any value is computed.

Three interchangeable implementations:

``symbolic_sort``
    expand + lexsort + unique.  Simple, used as the oracle and by the
    profiling path; batched over rows so peak memory is bounded.
``symbolic_grouped``
    the spECK-style path: per row group, one registered accumulator
    (hash/dense/esc/merge/native) in a structure-only run.
``symbolic_row_nnz``
    convenience dispatcher.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE
from .expand import expand_products, row_batches
from .groups import RowGrouping, group_rows
from .upperbound import row_upper_bound

__all__ = [
    "row_batches",
    "symbolic_sort",
    "symbolic_grouped",
    "symbolic_row_nnz",
]

#: default cap on intermediate products materialized at once
PRODUCT_BATCH = 1 << 23


def symbolic_sort(
    a: CSRMatrix, b: CSRMatrix, *, batch_products: int = PRODUCT_BATCH
) -> np.ndarray:
    """Exact output-row nnz via expand + sort + unique (oracle path)."""
    ppr = row_upper_bound(a, b)  # products per row
    out = np.zeros(a.n_rows, dtype=INDEX_DTYPE)
    for lo, hi in row_batches(ppr, batch_products):
        rows, cols, _ = expand_products(a, b, lo, hi)
        if rows.size == 0:
            continue
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        new = np.empty(rows.size, dtype=bool)
        new[0] = True
        new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        np.add.at(out, rows[new], 1)
    return out


def symbolic_grouped(
    a: CSRMatrix,
    b: CSRMatrix,
    grouping: RowGrouping,
    work: np.ndarray,
    *,
    slice_cache: Optional["RowSliceCache"] = None,
) -> np.ndarray:
    """spECK-style symbolic execution: one structure-only accumulator pass
    per row group, dispatched by group method through the kernel registry
    (:mod:`repro.spgemm.kernels`).  ``work`` is the per-row upper bound
    sizing hash tables and output buffers.  ``slice_cache`` memoizes the
    per-group ``take_rows(a, ...)`` slices so the numeric pass (and
    sibling chunks of the same A panel) reuse them."""
    from .kernels import accumulate  # deferred: kernels imports this module's peers

    out = np.zeros(a.n_rows, dtype=INDEX_DTYPE)
    for g in grouping:
        if len(g) == 0:
            continue
        res = accumulate(
            g.method, a, b, g.rows, work[g.rows],
            with_values=False, slice_cache=slice_cache,
        )
        out[g.rows] = res.counts
    return out


def symbolic_row_nnz(a: CSRMatrix, b: CSRMatrix, method: str = "grouped") -> np.ndarray:
    """Exact nnz per output row of ``A x B``.

    ``method`` is one of ``"grouped"`` (spECK-style) or ``"sort"`` (oracle).
    """
    if method == "sort":
        return symbolic_sort(a, b)
    if method == "grouped":
        work = row_upper_bound(a, b)
        grouping = group_rows(work, b.n_cols)
        return symbolic_grouped(a, b, grouping, work)
    raise ValueError(f"unknown symbolic method {method!r}")
