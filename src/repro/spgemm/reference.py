"""Cross-checking oracle built on scipy.sparse.

scipy's SpGEMM is an independent, battle-tested implementation; every
kernel in this package is validated against it (and against the sequential
Gustavson reference) in the test suite.  scipy appears *only* here — the
library itself never computes through it.
"""

from __future__ import annotations

from ..sparse.formats import CSRMatrix

__all__ = ["spgemm_scipy", "assert_same_product"]


def spgemm_scipy(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """``A x B`` via scipy, returned in canonical CSR."""
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    product = a.to_scipy() @ b.to_scipy()
    return CSRMatrix.from_scipy(product)


def assert_same_product(
    candidate: CSRMatrix,
    a: CSRMatrix,
    b: CSRMatrix,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> None:
    """Raise ``AssertionError`` unless ``candidate`` equals ``A x B``.

    Structure must match exactly (scipy prunes numerically-zero entries,
    so candidates are compared after the same pruning); values must match
    within tolerance.
    """
    from ..sparse.ops import drop_explicit_zeros

    expected = spgemm_scipy(a, b)
    got = drop_explicit_zeros(candidate)
    if got.shape != expected.shape:
        raise AssertionError(f"shape mismatch: {got.shape} vs {expected.shape}")
    if not got.allclose(expected, rtol=rtol, atol=atol):
        raise AssertionError(
            f"product mismatch: candidate nnz={got.nnz}, expected nnz={expected.nnz}"
        )
