"""Semiring SpGEMM — the GraphBLAS view of the paper's kernel.

The paper motivates SpGEMM through graph algorithms (citing the GraphBLAS
foundations [22], APSP [8], [35], and MCL clustering [29], [33]); many of
those run matrix multiplication over a *semiring* other than (+, x):
shortest paths over (min, +), reachability over (or, and), widest paths
over (max, min).

This module generalizes the ESC kernel: expansion applies the semiring's
``multiply`` to the operand values, and compression combines colliding
products with the semiring's ``add`` (a ufunc, applied with ``reduceat``
over the sorted product list) — structurally identical to the numeric
phase, so everything the out-of-core framework does applies unchanged.

Annihilating products (``mul == zero``, e.g. +inf path concatenations)
are dropped before compression, keeping the output properly sparse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from .expand import expand_products
from .symbolic import PRODUCT_BATCH, row_batches
from .upperbound import row_upper_bound

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_MIN",
    "OR_AND",
    "spgemm_semiring",
]


@dataclass(frozen=True)
class Semiring:
    """A (add, multiply, zero) algebra for SpGEMM.

    ``add`` must be a numpy ufunc (it is applied via ``reduceat``);
    ``multiply`` is any vectorized binary function; ``zero`` is the
    additive identity — entries equal to it are *absent* from the sparse
    structure, and products equal to it are dropped.
    """

    name: str
    add: np.ufunc
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


PLUS_TIMES = Semiring("plus_times", np.add, np.multiply, 0.0)
#: shortest paths: path weight = sum of edges, combine = min
MIN_PLUS = Semiring("min_plus", np.minimum, np.add, np.inf)
#: widest paths / bottleneck: path width = min edge, combine = max
MAX_MIN = Semiring("max_min", np.maximum, np.minimum, 0.0)
#: boolean reachability
OR_AND = Semiring("or_and", np.logical_or, np.logical_and, 0.0)


def spgemm_semiring(
    a: CSRMatrix,
    b: CSRMatrix,
    semiring: Semiring = PLUS_TIMES,
    *,
    batch_products: int = PRODUCT_BATCH,
) -> CSRMatrix:
    """``C = A (+.x) B`` over an arbitrary semiring (ESC formulation).

    Stored zeros of the *semiring* (values equal to ``semiring.zero``)
    are pruned from the result, so e.g. ``OR_AND`` outputs are 0/1
    matrices with no explicit falses.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")

    ppr = row_upper_bound(a, b)
    out_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    col_parts, val_parts = [], []

    for lo, hi in row_batches(ppr, batch_products):
        rows, cols, _ = expand_products(a, b, lo, hi)
        if rows.size == 0:
            continue
        # recompute the values under the semiring's multiply: expansion
        # gives us the source positions implicitly via a second pass
        vals = _semiring_products(a, b, lo, hi, semiring)

        # drop annihilated products
        alive = ~_equals_zero(vals, semiring.zero)
        rows, cols, vals = rows[alive], cols[alive], vals[alive]
        if rows.size == 0:
            continue

        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        new = np.empty(rows.size, dtype=bool)
        new[0] = True
        new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        starts = np.flatnonzero(new)
        combined = semiring.add.reduceat(vals, starts)
        out_rows = rows[starts]
        out_cols = cols[starts]

        keep = ~_equals_zero(combined, semiring.zero)
        out_rows, out_cols, combined = out_rows[keep], out_cols[keep], combined[keep]
        np.add.at(out_offsets, out_rows + 1, 1)
        col_parts.append(out_cols)
        val_parts.append(np.asarray(combined, dtype=VALUE_DTYPE))

    np.cumsum(out_offsets, out=out_offsets)
    col_ids = (
        np.concatenate(col_parts) if col_parts else np.empty(0, dtype=INDEX_DTYPE)
    )
    data = np.concatenate(val_parts) if val_parts else np.empty(0, dtype=VALUE_DTYPE)
    return CSRMatrix(a.n_rows, b.n_cols, out_offsets, col_ids, data, check=False)


def _semiring_products(a, b, lo, hi, semiring) -> np.ndarray:
    """Product values under the semiring multiply, for rows [lo, hi).

    Mirrors :func:`expand_products`' gather so values align with its
    (rows, cols) output.
    """
    a_lo, a_hi = int(a.row_offsets[lo]), int(a.row_offsets[hi])
    a_cols = a.col_ids[a_lo:a_hi]
    a_vals = a.data[a_lo:a_hi]
    counts = b.row_nnz()[a_cols]
    total = int(counts.sum())
    starts = b.row_offsets[a_cols]
    exclusive = np.concatenate(
        [np.zeros(1, dtype=INDEX_DTYPE), np.cumsum(counts, dtype=INDEX_DTYPE)[:-1]]
    )
    src = np.repeat(starts - exclusive, counts) + np.arange(total, dtype=INDEX_DTYPE)
    return np.asarray(
        semiring.multiply(np.repeat(a_vals, counts), b.data[src]), dtype=VALUE_DTYPE
    )


def _equals_zero(vals: np.ndarray, zero: float) -> np.ndarray:
    if np.isinf(zero):
        return np.isinf(vals) & (np.sign(vals) == np.sign(zero))
    return vals == zero
