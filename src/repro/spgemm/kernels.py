"""Unified kernel dispatch for the two-phase SpGEMM pipeline.

One small interface fronts every accumulator the repo knows about so new
kernels (and new group-selection heuristics) plug in without touching the
engine, the process workers, or the CLI:

* :data:`ACCUMULATORS` — registry of group accumulators, all sharing the
  signature ``fn(a, b, rows, work, *, with_values, slice_cache)`` and
  returning :class:`~repro.spgemm.accumulators.RowResults`;
* :class:`KernelSpec` — a frozen, string-codable kernel choice that rides
  on :class:`~repro.core.executor.plan.ChunkPlan` and crosses process
  boundaries as ``spec.encode()``;
* :func:`plan_groups` — maps row-analysis statistics (upper-bound work or
  exact counts) to a :class:`~repro.spgemm.groups.RowGrouping` whose
  group methods name registry entries.

Kinds
-----
``hash``    spECK-style: dense accumulation for dense rows, power-of-two
            hash buckets for the rest (the original default).
``dense``   dense accumulation for every productive row.
``esc``     bhSPARSE-style expand/sort/compress, one batch per group.
``merge``   BRMerge-style binary row merging.
``native``  runtime-compiled C Gustavson kernel (when available).
``auto``    ``native`` when the toolchain allows it, else dense rows to
            ``dense`` and the rest to ``esc``.

``hash``/``dense``/``esc``/``native`` combine duplicate products in
expansion (ascending ``k``) order and are mutually bit-identical for any
float input; ``merge`` combines in tree order and matches exactly on
integer-valued data, to rounding otherwise (see ``docs/KERNELS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

import numpy as np

from .accumulators import (
    RowResults,
    dense_accumulate_rows,
    esc_accumulate_rows,
    hash_accumulate_rows,
)
from .brmerge import merge_accumulate_rows
from .groups import (
    DENSE_THRESHOLD,
    RowGroup,
    RowGrouping,
    group_rows,
)
from .native import native_accumulate_rows, native_available, native_build_error

__all__ = [
    "KERNEL_KINDS",
    "FUSED_METHODS",
    "KernelSpec",
    "resolve_kernel",
    "resolved_wire",
    "ACCUMULATORS",
    "accumulate",
    "plan_groups",
]

#: every accepted ``KernelSpec.kind`` / ``--kernel`` value
KERNEL_KINDS = ("auto", "hash", "dense", "esc", "merge", "native")

#: group methods that produce values during the symbolic pass (their
#: symbolic run is cached and the numeric pass only scatters it)
FUSED_METHODS = frozenset({"esc", "merge", "native"})


@dataclass(frozen=True)
class KernelSpec:
    """A kernel choice for one chunk grid (or one multiplication).

    ``kind`` selects the accumulator family (see module docstring);
    ``dense_threshold`` tunes the dense/sparse split where the kind uses
    one (``hash`` and compiler-less ``auto``).  The spec serializes to a
    short string via :meth:`encode` so it can ride through spawn args to
    process workers and into trace span attributes.
    """

    kind: str = "auto"
    dense_threshold: float = DENSE_THRESHOLD

    def __post_init__(self) -> None:
        if self.kind not in KERNEL_KINDS:
            raise ValueError(
                f"unknown kernel kind {self.kind!r}; expected one of {KERNEL_KINDS}"
            )
        if not (self.dense_threshold >= 0.0):
            raise ValueError("dense_threshold must be non-negative")

    def encode(self) -> str:
        """Compact wire form, inverse of :meth:`parse`."""
        if self.dense_threshold == DENSE_THRESHOLD:
            return self.kind
        return f"{self.kind}@{self.dense_threshold!r}"

    @staticmethod
    def parse(text: str) -> "KernelSpec":
        kind, sep, rest = text.strip().partition("@")
        if not sep:
            return KernelSpec(kind=kind)
        return KernelSpec(kind=kind, dense_threshold=float(rest))

    def resolved(self) -> "KernelSpec":
        """The concrete spec ``auto`` resolves to on this toolchain.

        ``auto`` is a *policy*, not a kernel: on a box with a C compiler
        it runs the native Gustavson kernel; without one it runs the
        dense/ESC split.  Artifacts keyed on the kernel (profile caches,
        recorded :class:`~repro.core.chunks.ChunkStats`) must use the
        resolved wire form, or timings from different kernels alias
        under one key.
        """
        if self.kind == "auto" and native_available():
            return KernelSpec(kind="native", dense_threshold=self.dense_threshold)
        return self


def resolve_kernel(
    kernel: Union[None, str, KernelSpec],
) -> KernelSpec:
    """Normalize ``None`` / wire string / spec into a :class:`KernelSpec`."""
    if kernel is None:
        return KernelSpec()
    if isinstance(kernel, KernelSpec):
        return kernel
    return KernelSpec.parse(kernel)


def resolved_wire(kernel: Union[None, str, KernelSpec] = None) -> str:
    """Resolved wire form of a kernel choice — the cache key for
    kernel-dependent artifacts (e.g. on-disk chunk profiles)."""
    return resolve_kernel(kernel).resolved().encode()


def _dense_adapter(a, b, rows, work, *, with_values, slice_cache) -> RowResults:
    del work  # dense buffers are sized by the output width alone
    return dense_accumulate_rows(
        a, b, rows, with_values=with_values, slice_cache=slice_cache
    )


#: group-method name -> accumulator, uniform signature
ACCUMULATORS: Dict[str, Callable[..., RowResults]] = {
    "hash": hash_accumulate_rows,
    "dense": _dense_adapter,
    "esc": esc_accumulate_rows,
    "merge": merge_accumulate_rows,
    "native": native_accumulate_rows,
}


def accumulate(
    method: str,
    a,
    b,
    rows: np.ndarray,
    work: Optional[np.ndarray],
    *,
    with_values: bool,
    slice_cache=None,
) -> RowResults:
    """Run one registered accumulator over one row group."""
    try:
        fn = ACCUMULATORS[method]
    except KeyError:
        raise ValueError(f"unknown accumulator method {method!r}") from None
    return fn(a, b, rows, work, with_values=with_values, slice_cache=slice_cache)


def _single_group(work: np.ndarray, method: str) -> RowGrouping:
    rows = np.flatnonzero(work > 0)
    groups = ()
    if rows.size:
        groups = (RowGroup(rows=rows, method=method, bucket=0),)
    return RowGrouping(groups=groups, n_rows=work.size)


def plan_groups(
    work_per_row: np.ndarray,
    out_width: int,
    spec: KernelSpec,
) -> RowGrouping:
    """Derive the row grouping a :class:`KernelSpec` implies.

    ``work_per_row`` is the upper-bound products per row before the
    symbolic phase, or the exact output nnz per row before the numeric
    phase — the same statistic :func:`~repro.spgemm.groups.group_rows`
    consumes.  Rows with zero work are never grouped (their output rows
    are empty).
    """
    work = np.asarray(work_per_row, dtype=np.int64)
    kind = spec.resolved().kind

    if kind == "native":
        if not native_available():
            raise RuntimeError(
                f"kernel 'native' requested but unavailable: {native_build_error()}"
            )
        return _single_group(work, "native")
    if kind in ("esc", "merge"):
        return _single_group(work, kind)
    if kind == "hash":
        # the original spECK split: dense rows + power-of-two hash buckets
        return group_rows(work, out_width, dense_threshold=spec.dense_threshold)
    if kind == "dense":
        return group_rows(work, out_width, dense_threshold=0.0)
    # auto without a native toolchain: dense rows keep the dense
    # accumulator, everything else goes through one vectorized ESC batch
    cutoff = max(1.0, spec.dense_threshold * out_width)
    active = work > 0
    dense_rows = np.flatnonzero(active & (work >= cutoff))
    esc_rows = np.flatnonzero(active & (work < cutoff))
    groups = []
    if dense_rows.size:
        groups.append(RowGroup(rows=dense_rows, method="dense", bucket=0))
    if esc_rows.size:
        groups.append(RowGroup(rows=esc_rows, method="esc", bucket=0))
    return RowGrouping(groups=tuple(groups), n_rows=work.size)
