"""Expansion-Sort-Compression SpGEMM (Bell et al. [7], [9]; paper Sec. VI).

The classic GPU formulation the paper's related-work section opens with:

* **Expand** — materialize every intermediate product;
* **Sort** — order products by (row, column);
* **Compress** — combine runs with equal coordinates.

Implemented directly on the shared expansion primitive plus the COO
canonicalizer (whose sort + reduceat *is* sort/compress).  Batched over
rows so the expansion never exceeds a product budget — without that, ESC's
O(products) footprint is exactly what makes it unusable in-core for the
paper's matrices.
"""

from __future__ import annotations

from typing import List

from ..sparse.coo import coo_to_csr_arrays
from ..sparse.formats import CSRMatrix
from ..sparse.ops import vstack
from .expand import expand_products
from .symbolic import PRODUCT_BATCH, row_batches
from .upperbound import row_upper_bound

__all__ = ["spgemm_esc"]


def spgemm_esc(
    a: CSRMatrix, b: CSRMatrix, *, batch_products: int = PRODUCT_BATCH
) -> CSRMatrix:
    """ESC SpGEMM, batched by row ranges of ``A``."""
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")

    ppr = row_upper_bound(a, b)
    pieces: List[CSRMatrix] = []
    for lo, hi in row_batches(ppr, batch_products):
        rows, cols, vals = expand_products(a, b, lo, hi)           # Expand
        row_offsets, col_ids, data = coo_to_csr_arrays(            # Sort +
            hi - lo, rows - lo, cols, vals, sum_duplicates=True    # Compress
        )
        pieces.append(
            CSRMatrix(hi - lo, b.n_cols, row_offsets, col_ids, data, check=False)
        )
    if not pieces:
        return CSRMatrix.empty(a.n_rows, b.n_cols)
    out = vstack(pieces)
    if out.n_rows != a.n_rows:  # trailing empty rows not covered by batches
        pad = CSRMatrix.empty(a.n_rows - out.n_rows, b.n_cols)
        out = vstack([out, pad])
    return out
