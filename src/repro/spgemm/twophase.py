"""The full spECK-style in-core SpGEMM kernel (paper Fig. 3).

Pipeline of the three stages the paper describes:

1. **row analysis** — flops per row of ``A`` (device kernel, result shipped
   to the host so it can bin rows);
2. **symbolic execution** — one kernel per row group computes exact output
   nnz per row, enabling exact allocation;
3. **numeric execution** — rows re-grouped on exact counts ("global load
   balance again"), then one kernel per group computes values.

Which accumulator runs per group is decided by a
:class:`~repro.spgemm.kernels.KernelSpec` (``--kernel`` on the CLI): the
classic spECK split (dense rows dense, sparse rows hashed), the
vectorized ESC or BRMerge batch kernels, or the compiled ``native``
Gustavson kernel.  The *fused* kernels (esc/merge/native) produce values
already during the symbolic pass; their results are cached and the
numeric stage only scatters them into the exact allocation, halving the
work while keeping the two-phase structure (and its stats/spans) intact.

Alongside the result we return :class:`TwoPhaseStats` — everything the
out-of-core scheduler and the simulated-device cost model need: flops,
output nnz/bytes, per-stage kernel-launch counts and wall seconds, and
the sizes of the two intermediate device->host transfers that Section
IV's transfer scheduling reasons about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE
from ..sparse.ops import RowSliceCache
from .flops import compression_ratio
from .groups import RowGrouping
from .kernels import FUSED_METHODS, KernelSpec, accumulate, plan_groups, resolve_kernel
from .numeric import numeric_grouped
from .rowanalysis import RowAnalysis, analyze_rows

__all__ = ["TwoPhaseStats", "TwoPhaseResult", "spgemm_twophase"]


@dataclass(frozen=True)
class TwoPhaseStats:
    """Workload metrics of one in-core SpGEMM invocation."""

    flops: int                  # 2 x intermediate products
    nnz_out: int                # nonzeros of the result
    rows_out: int               # rows of the result (= rows of A panel)
    analysis_bytes: int         # row-analysis result shipped D2H (Fig. 3)
    symbolic_bytes: int         # per-row nnz info shipped D2H
    output_bytes: int           # CSR result chunk shipped D2H
    symbolic_kernels: int       # kernel launches in the symbolic stage
    numeric_kernels: int        # kernel launches in the numeric stage
    input_nnz: int              # nnz(A panel) + nnz(B panel)
    kernel: str = ""            # KernelSpec wire form that produced this
    # measured wall seconds per stage; -1 marks "not measured" (merged
    # stats of resplit subchunks, or records from before these fields)
    analysis_seconds: float = field(default=-1.0, compare=False)
    symbolic_seconds: float = field(default=-1.0, compare=False)
    numeric_seconds: float = field(default=-1.0, compare=False)

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.flops, self.nnz_out)


@dataclass(frozen=True)
class TwoPhaseResult:
    matrix: CSRMatrix
    stats: TwoPhaseStats
    analysis: RowAnalysis
    symbolic_grouping: RowGrouping
    numeric_grouping: RowGrouping


def _stage_gauges(tracer, trace_label: str, stats: TwoPhaseStats) -> None:
    """Per-stage throughput gauges: GFLOP/s and bytes/s of each stage.

    GFLOP/s attributes the multiplication's total flops to each stage's
    wall time (the standard way SpGEMM papers quote per-phase rates);
    bytes/s uses the stage's own D2H transfer volume.  Gauges are pure
    observability — skipped entirely when timings are absent.
    """
    for stage, seconds, nbytes in (
        ("analysis", stats.analysis_seconds, stats.analysis_bytes),
        ("symbolic", stats.symbolic_seconds, stats.symbolic_bytes),
        ("numeric", stats.numeric_seconds, stats.output_bytes),
    ):
        if seconds <= 0.0:
            continue
        tracer.gauge(
            f"throughput[{trace_label}]",
            **{
                f"{stage}_gflops": stats.flops / seconds / 1e9,
                f"{stage}_bytes_per_s": nbytes / seconds,
            },
        )


def spgemm_twophase(
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    kernel: Union[None, str, KernelSpec] = None,
    slice_cache: Optional[RowSliceCache] = None,
    tracer=None,
    trace_label: str = "",
    fault_hook=None,
    density_hint: Optional[np.ndarray] = None,
) -> TwoPhaseResult:
    """Multiply ``A x B`` with the full three-stage kernel pipeline.

    ``kernel`` selects the accumulator family — ``None``, a wire string
    (``"esc"``, ``"hash@0.25"``), or a :class:`KernelSpec`.  The default
    ``auto`` uses the compiled Gustavson kernel when available and the
    vectorized dense/ESC split otherwise.  All kernels produce the same
    matrix; see :mod:`repro.spgemm.kernels` for the bit-identity contract.

    ``slice_cache`` (a :class:`~repro.sparse.ops.RowSliceCache` over ``a``)
    lets the symbolic and numeric passes — and sibling invocations sharing
    the same A panel, as the out-of-core chunk executor arranges — reuse
    row-group gathers instead of re-slicing A.  One is created locally when
    not supplied.

    ``tracer`` (:mod:`repro.observability`) records the three phase
    boundaries as spans named ``analysis[label]`` / ``symbolic[label]`` /
    ``numeric[label]`` — the same labels the schedule simulator uses, so
    measured and simulated phases line up side by side in one trace — plus
    a ``throughput[label]`` gauge with per-stage GFLOP/s and bytes/s.
    Tracing never alters the computation; results are bit-identical with
    it on or off.

    ``fault_hook`` (chaos testing, :mod:`repro.core.executor.faults`) is
    called with the stage name (``analysis`` / ``symbolic`` / ``numeric``)
    at each stage entry; it may sleep, raise, or kill the process.  The
    default ``None`` costs nothing.

    ``density_hint`` (optional, one estimated output nnz per row of
    ``a`` — see :mod:`repro.spgemm.estimate`) refines the *symbolic*
    row grouping: rows are binned by estimated density instead of the
    loose flops upper bound, so a row the bound calls dense but the
    estimate calls sparse stays on the sparse accumulator.  It is purely
    a dispatch hint — hash-table/buffer sizing inside the accumulators
    still uses the hard upper bound, and results are bit-identical with
    or without it.
    """
    from ..observability import as_tracer  # deferred: avoid import cycles

    tracer = as_tracer(tracer)
    spec = resolve_kernel(kernel)
    # record the *resolved* wire form ("auto" is a policy, not a kernel)
    # so stats and caches never alias timings from different kernels
    wire = spec.resolved().encode()
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    if slice_cache is None:
        slice_cache = RowSliceCache(a)
    elif slice_cache.matrix is not a:
        raise ValueError("slice_cache was built for a different matrix")

    # stage 1: row analysis (flops per row; the host receives this)
    if fault_hook is not None:
        fault_hook("analysis")
    t0 = time.perf_counter()
    with tracer.span(f"analysis[{trace_label}]", "analysis"):
        analysis = analyze_rows(a, b)
    analysis_seconds = time.perf_counter() - t0
    work = analysis.flops // 2  # upper-bound products per row

    # host: bin rows for dispatch — by estimated density when a hint is
    # available (OCEAN-style), by upper-bound work otherwise.  The hint
    # is clamped into [1, work] on productive rows so no row can drop
    # out of (or join) the grouping by estimation error alone.
    group_work = work
    if density_hint is not None:
        hint = np.asarray(density_hint, dtype=np.int64)
        if hint.shape != work.shape:
            raise ValueError(
                f"density_hint has shape {hint.shape}, expected {work.shape}"
            )
        group_work = np.where(work > 0, np.clip(hint, 1, work), 0)
    sym_grouping = plan_groups(group_work, b.n_cols, spec)

    # stage 2: symbolic execution — exact nnz per output row.  Fused
    # kernels (esc/merge/native) compute values in the same pass; their
    # RowResults are cached so the numeric stage only has to scatter.
    if fault_hook is not None:
        fault_hook("symbolic")
    t0 = time.perf_counter()
    row_nnz = np.zeros(a.n_rows, dtype=INDEX_DTYPE)
    fused = []  # [(RowGroup, RowResults)] in symbolic-group order
    with tracer.span(f"symbolic[{trace_label}]", "symbolic",
                     kernels=sym_grouping.num_kernels(),
                     kernel=wire):
        for g in sym_grouping:
            if len(g) == 0:
                continue
            if g.method in FUSED_METHODS:
                res = accumulate(
                    g.method, a, b, g.rows, work[g.rows],
                    with_values=True, slice_cache=slice_cache,
                )
                fused.append((g, res))
            else:
                res = accumulate(
                    g.method, a, b, g.rows, work[g.rows],
                    with_values=False, slice_cache=slice_cache,
                )
            row_nnz[g.rows] = res.counts
    symbolic_seconds = time.perf_counter() - t0

    # host: re-group on exact counts (global load balance again) — only
    # the rows whose values are *not* already cached need a new group
    regroup_work = row_nnz.copy()
    for g, _ in fused:
        regroup_work[g.rows] = 0
    classic = plan_groups(regroup_work, b.n_cols, spec)
    num_grouping = RowGrouping(
        groups=tuple(g for g, _ in fused) + classic.groups,
        n_rows=a.n_rows,
    )
    precomputed = [res for _, res in fused] + [None] * len(classic.groups)

    # stage 3: numeric execution into the exact allocation
    if fault_hook is not None:
        fault_hook("numeric")
    t0 = time.perf_counter()
    with tracer.span(f"numeric[{trace_label}]", "numeric",
                     kernels=num_grouping.num_kernels(),
                     kernel=wire):
        c = numeric_grouped(
            a, b, row_nnz, num_grouping,
            slice_cache=slice_cache, precomputed=precomputed,
        )
    numeric_seconds = time.perf_counter() - t0

    stats = TwoPhaseStats(
        flops=analysis.total_flops,
        nnz_out=c.nnz,
        rows_out=c.n_rows,
        analysis_bytes=analysis.transfer_bytes(),
        symbolic_bytes=int(row_nnz.nbytes),
        output_bytes=c.nbytes(),
        symbolic_kernels=sym_grouping.num_kernels(),
        numeric_kernels=num_grouping.num_kernels(),
        input_nnz=a.nnz + b.nnz,
        kernel=wire,
        analysis_seconds=analysis_seconds,
        symbolic_seconds=symbolic_seconds,
        numeric_seconds=numeric_seconds,
    )
    _stage_gauges(tracer, trace_label, stats)
    return TwoPhaseResult(
        matrix=c,
        stats=stats,
        analysis=analysis,
        symbolic_grouping=sym_grouping,
        numeric_grouping=num_grouping,
    )
