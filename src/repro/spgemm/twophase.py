"""The full spECK-style in-core SpGEMM kernel (paper Fig. 3).

Pipeline of the three stages the paper describes:

1. **row analysis** — flops per row of ``A`` (device kernel, result shipped
   to the host so it can bin rows);
2. **symbolic execution** — one kernel per row group computes exact output
   nnz per row, enabling exact allocation;
3. **numeric execution** — rows re-grouped on exact counts ("global load
   balance again"), then one kernel per group computes values, dense
   accumulation for dense rows and hash maps for sparse rows.

Alongside the result we return :class:`TwoPhaseStats` — everything the
out-of-core scheduler and the simulated-device cost model need: flops,
output nnz/bytes, per-stage kernel-launch counts, and the sizes of the two
intermediate device->host transfers that Section IV's transfer scheduling
reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sparse.formats import CSRMatrix
from ..sparse.ops import RowSliceCache
from .flops import compression_ratio
from .groups import RowGrouping, group_rows
from .numeric import numeric_grouped
from .rowanalysis import RowAnalysis, analyze_rows
from .symbolic import symbolic_grouped

__all__ = ["TwoPhaseStats", "TwoPhaseResult", "spgemm_twophase"]


@dataclass(frozen=True)
class TwoPhaseStats:
    """Workload metrics of one in-core SpGEMM invocation."""

    flops: int                  # 2 x intermediate products
    nnz_out: int                # nonzeros of the result
    rows_out: int               # rows of the result (= rows of A panel)
    analysis_bytes: int         # row-analysis result shipped D2H (Fig. 3)
    symbolic_bytes: int         # per-row nnz info shipped D2H
    output_bytes: int           # CSR result chunk shipped D2H
    symbolic_kernels: int       # kernel launches in the symbolic stage
    numeric_kernels: int        # kernel launches in the numeric stage
    input_nnz: int              # nnz(A panel) + nnz(B panel)

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.flops, self.nnz_out)


@dataclass(frozen=True)
class TwoPhaseResult:
    matrix: CSRMatrix
    stats: TwoPhaseStats
    analysis: RowAnalysis
    symbolic_grouping: RowGrouping
    numeric_grouping: RowGrouping


def spgemm_twophase(
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    slice_cache: Optional[RowSliceCache] = None,
    tracer=None,
    trace_label: str = "",
    fault_hook=None,
) -> TwoPhaseResult:
    """Multiply ``A x B`` with the full three-stage kernel pipeline.

    ``slice_cache`` (a :class:`~repro.sparse.ops.RowSliceCache` over ``a``)
    lets the symbolic and numeric passes — and sibling invocations sharing
    the same A panel, as the out-of-core chunk executor arranges — reuse
    row-group gathers instead of re-slicing A.  One is created locally when
    not supplied.

    ``tracer`` (:mod:`repro.observability`) records the three phase
    boundaries as spans named ``analysis[label]`` / ``symbolic[label]`` /
    ``numeric[label]`` — the same labels the schedule simulator uses, so
    measured and simulated phases line up side by side in one trace.
    Tracing never alters the computation; results are bit-identical with
    it on or off.

    ``fault_hook`` (chaos testing, :mod:`repro.core.executor.faults`) is
    called with the stage name (``analysis`` / ``symbolic`` / ``numeric``)
    at each stage entry; it may sleep, raise, or kill the process.  The
    default ``None`` costs nothing.
    """
    from ..observability import as_tracer  # deferred: avoid import cycles

    tracer = as_tracer(tracer)
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    if slice_cache is None:
        slice_cache = RowSliceCache(a)
    elif slice_cache.matrix is not a:
        raise ValueError("slice_cache was built for a different matrix")

    # stage 1: row analysis (flops per row; the host receives this)
    if fault_hook is not None:
        fault_hook("analysis")
    with tracer.span(f"analysis[{trace_label}]", "analysis"):
        analysis = analyze_rows(a, b)
    work = analysis.flops // 2  # upper-bound products per row

    # host: bin rows by upper-bound work
    sym_grouping = group_rows(work, b.n_cols)

    # stage 2: symbolic execution — exact nnz per output row
    if fault_hook is not None:
        fault_hook("symbolic")
    with tracer.span(f"symbolic[{trace_label}]", "symbolic",
                     kernels=sym_grouping.num_kernels()):
        row_nnz = symbolic_grouped(a, b, sym_grouping, work, slice_cache=slice_cache)

    # host: re-group on exact counts (global load balance again)
    num_grouping = group_rows(row_nnz, b.n_cols)

    # stage 3: numeric execution into the exact allocation
    if fault_hook is not None:
        fault_hook("numeric")
    with tracer.span(f"numeric[{trace_label}]", "numeric",
                     kernels=num_grouping.num_kernels()):
        c = numeric_grouped(a, b, row_nnz, num_grouping, slice_cache=slice_cache)

    stats = TwoPhaseStats(
        flops=analysis.total_flops,
        nnz_out=c.nnz,
        rows_out=c.n_rows,
        analysis_bytes=analysis.transfer_bytes(),
        symbolic_bytes=int(row_nnz.nbytes),
        output_bytes=c.nbytes(),
        symbolic_kernels=sym_grouping.num_kernels(),
        numeric_kernels=num_grouping.num_kernels(),
        input_nnz=a.nnz + b.nnz,
    )
    return TwoPhaseResult(
        matrix=c,
        stats=stats,
        analysis=analysis,
        symbolic_grouping=sym_grouping,
        numeric_grouping=num_grouping,
    )
