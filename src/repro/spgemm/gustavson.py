"""Gustavson's sequential row-row SpGEMM (paper Algorithm 1).

The deliberately simple reference: per-row dict accumulation, Python loops
and all.  Slow, but its correctness is self-evident, which makes it the
oracle every vectorized kernel is tested against (the vectorized kernels
are *also* cross-checked against scipy in :mod:`repro.spgemm.reference`,
giving two independent oracles).
"""

from __future__ import annotations

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

__all__ = ["spgemm_gustavson"]


def spgemm_gustavson(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sequential Gustavson SpGEMM: ``C[i,*] = sum_k A[i,k] * B[k,*]``."""
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")

    row_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    cols_per_row = []
    vals_per_row = []

    for i in range(a.n_rows):
        acc = {}
        a_lo, a_hi = a.row_offsets[i], a.row_offsets[i + 1]
        for idx in range(a_lo, a_hi):
            k = a.col_ids[idx]
            a_ik = a.data[idx]
            b_lo, b_hi = b.row_offsets[k], b.row_offsets[k + 1]
            for jdx in range(b_lo, b_hi):
                j = int(b.col_ids[jdx])
                value = a_ik * b.data[jdx]
                if j in acc:
                    acc[j] += value
                else:
                    acc[j] = value
        cols = sorted(acc)
        row_offsets[i + 1] = row_offsets[i] + len(cols)
        cols_per_row.append(np.asarray(cols, dtype=INDEX_DTYPE))
        vals_per_row.append(np.asarray([acc[j] for j in cols], dtype=VALUE_DTYPE))

    col_ids = (
        np.concatenate(cols_per_row) if cols_per_row else np.empty(0, dtype=INDEX_DTYPE)
    )
    data = (
        np.concatenate(vals_per_row) if vals_per_row else np.empty(0, dtype=VALUE_DTYPE)
    )
    return CSRMatrix(a.n_rows, b.n_cols, row_offsets, col_ids, data, check=False)
