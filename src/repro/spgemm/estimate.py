"""OCEAN-style sampled estimation of SpGEMM output sizes.

The flops upper bound (`upperbound.py`) is cheap but loose: PAPER.md
Section IV.B rejects sizing from it because "the gap between upper
bounds and the actual sizes are really large".  OCEAN replaces the
bound with a sampled estimate: pick k rows of A, compute their *exact*
output nnz with the symbolic kernel, and extrapolate the observed
compression ratio to the unsampled rows.

This module implements that estimator with stratified sampling
(rows are grouped by log2 of their product count, so heavy rows cannot
be drowned out by the many light ones) and variance-aware confidence
bounds: ``row_nnz_hi`` is a one-sided ~97.5% upper confidence estimate,
always clamped to the hard per-row ceiling ``min(ub, n_cols)``.  The
upper bound therefore remains a correctness ceiling; the estimate only
tightens it.

Downstream consumers:

- `core/planner.py` sizes the chunk grid from estimated footprints
  (UB fallback ceiling).
- `core/executor/engine.py` gates the governor's device-OOM pre-check
  and host admission on estimated chunk bytes, and feeds per-row
  density hints to kernel dispatch.
- `repro bench --autotune` picks grid + kernel + hybrid ratio from the
  estimate (see `core.planner.plan_autotuned`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.formats import CSRMatrix
from ..sparse.partition import build_col_offsets
from .flops import flops_per_row
from .groups import DENSE_THRESHOLD
from .kernels import KernelSpec, accumulate
from .native import native_available

__all__ = [
    "DEFAULT_SAMPLE_FRACTION",
    "RowNnzEstimate",
    "ChunkEstimates",
    "estimate_row_nnz",
    "estimate_chunks",
    "choose_kernel",
    "hybrid_ratio_from_estimate",
]

DEFAULT_SAMPLE_FRACTION = 0.05
MIN_ROWS_PER_STRATUM = 8
MAX_SAMPLE_ROWS = 4096
Z_CONFIDENCE = 1.96
# Conservative half-width of the compression ratio (which lives in
# (0, 1]) used when a stratum has too few samples for a variance.
DEGENERATE_STDERR = 0.5


@dataclass(frozen=True)
class RowNnzEstimate:
    """Per-row output-nnz estimate for C = A @ B with confidence bounds.

    ``row_nnz`` is the point estimate, ``row_nnz_lo``/``row_nnz_hi`` the
    ~95% confidence band, and ``ub`` the hard flops-based ceiling
    (products per row).  Sampled rows carry their exact counts, so for
    them lo == nnz == hi.  Invariants: ``1 <= row_nnz_hi <= min(ub,
    width)`` wherever ``ub > 0``, and lo <= nnz <= hi everywhere.
    """

    row_nnz: np.ndarray
    row_nnz_lo: np.ndarray
    row_nnz_hi: np.ndarray
    ub: np.ndarray
    width: int
    sampled_rows: np.ndarray
    strata: int
    seed: int

    @property
    def n_rows(self) -> int:
        return int(self.ub.size)

    @property
    def sample_fraction(self) -> float:
        return self.sampled_rows.size / max(self.n_rows, 1)

    @property
    def total_nnz(self) -> float:
        return float(self.row_nnz.sum())

    @property
    def total_nnz_lo(self) -> float:
        return float(self.row_nnz_lo.sum())

    @property
    def total_nnz_hi(self) -> float:
        return float(self.row_nnz_hi.sum())

    def ratio(self) -> np.ndarray:
        """Estimated per-row compression ratio nnz/products in [0, 1]."""
        return self.row_nnz / np.maximum(self.ub, 1)

    def ratio_hi(self) -> np.ndarray:
        return self.row_nnz_hi / np.maximum(self.ub, 1)


def _clamp(values: np.ndarray, ub: np.ndarray, width: int) -> np.ndarray:
    out = np.minimum(values, np.minimum(ub, width))
    active = ub > 0
    out[active] = np.maximum(out[active], 1.0)
    out[~active] = 0.0
    return out


def estimate_row_nnz(
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    min_rows_per_stratum: int = MIN_ROWS_PER_STRATUM,
    max_sample_rows: int = MAX_SAMPLE_ROWS,
    z: float = Z_CONFIDENCE,
    seed: int = 0,
) -> RowNnzEstimate:
    """Estimate per-row output nnz of A @ B from a stratified row sample.

    Rows are stratified by ``floor(log2(products))`` so the sample covers
    the whole work distribution; each stratum gets ``sample_fraction`` of
    its rows (at least ``min_rows_per_stratum``, at most
    ``max_sample_rows``).  The sampled rows' exact nnz comes from the ESC
    symbolic accumulator; unsampled rows extrapolate their stratum's mean
    compression ratio with a z-scaled standard-error band (finite
    population corrected, so sampling every row collapses the band to the
    exact answer).
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
    ub = (flops_per_row(a, b) // 2).astype(np.int64)
    width = int(b.n_cols)
    n = int(a.n_rows)
    nnz = np.zeros(n, dtype=np.float64)
    lo = np.zeros(n, dtype=np.float64)
    hi = np.zeros(n, dtype=np.float64)
    active = np.flatnonzero(ub > 0)
    if active.size == 0:
        return RowNnzEstimate(nnz, lo, hi, ub, width, active, 0, seed)

    strata_key = np.floor(np.log2(ub[active])).astype(np.int64)
    labels = np.unique(strata_key)
    rng = np.random.default_rng(seed)
    picked = []
    for label in labels:
        rows_s = active[strata_key == label]
        k = int(np.ceil(sample_fraction * rows_s.size))
        k = max(k, min(min_rows_per_stratum, rows_s.size))
        k = min(k, max_sample_rows, rows_s.size)
        picked.append(rng.choice(rows_s, size=k, replace=False))
    sampled = np.sort(np.concatenate(picked))

    exact = accumulate("esc", a, b, sampled, ub[sampled], with_values=False).counts
    exact = exact.astype(np.float64)
    nnz[sampled] = exact
    lo[sampled] = exact
    hi[sampled] = exact

    sampled_mask = np.zeros(n, dtype=bool)
    sampled_mask[sampled] = True
    exact_by_row = np.zeros(n, dtype=np.float64)
    exact_by_row[sampled] = exact
    for label in labels:
        rows_s = active[strata_key == label]
        in_sample = rows_s[sampled_mask[rows_s]]
        rest = rows_s[~sampled_mask[rows_s]]
        if rest.size == 0:
            continue
        ratios = exact_by_row[in_sample] / ub[in_sample]
        mean = float(ratios.mean())
        k, pop = in_sample.size, rows_s.size
        if k > 1:
            fpc = np.sqrt(max(0.0, 1.0 - k / pop))
            stderr = float(ratios.std(ddof=1)) / np.sqrt(k) * fpc
        else:
            stderr = DEGENERATE_STDERR
        r_lo = max(0.0, mean - z * stderr)
        r_hi = min(1.0, mean + z * stderr)
        nnz[rest] = mean * ub[rest]
        lo[rest] = r_lo * ub[rest]
        hi[rest] = r_hi * ub[rest]

    nnz = _clamp(nnz, ub, width)
    hi = _clamp(hi, ub, width)
    lo = np.minimum(_clamp(lo, ub, width), nnz)
    hi = np.maximum(hi, nnz)
    return RowNnzEstimate(nnz, lo, hi, ub, width, sampled, int(labels.size), seed)


@dataclass(frozen=True)
class ChunkEstimates:
    """Per-chunk output-nnz estimates over a chunk grid (row-major ids)."""

    grid: "ChunkGrid"
    nnz: np.ndarray  # (R, C) point estimates
    nnz_hi: np.ndarray  # (R, C) upper confidence estimates
    products: np.ndarray  # (R, C) exact product counts (UB)
    panel_rows: np.ndarray  # rows per row panel

    def _chunk(self, cid: int) -> tuple[int, float, int]:
        rp, cp = self.grid.panel_of(cid)
        rows = int(self.panel_rows[rp])
        return rows, float(self.nnz_hi[rp, cp]), int(self.products[rp, cp])

    def host_bytes(self) -> np.ndarray:
        """Estimated CSR bytes of each chunk's output (row-major cids)."""
        from ..core.chunks import csr_bytes

        out = np.empty(self.nnz.size, dtype=np.int64)
        for cid in range(out.size):
            rows, hi, _ = self._chunk(cid)
            out[cid] = csr_bytes(rows, int(np.ceil(hi)))
        return out

    def device_bytes(self) -> np.ndarray:
        """Estimated device footprint per chunk: hash tables sized from
        the estimate (the OCEAN move) instead of the product count."""
        from ..core.memcheck import chunk_device_bytes

        out = np.empty(self.nnz.size, dtype=np.int64)
        for cid in range(out.size):
            rows, hi, _ = self._chunk(cid)
            out[cid] = chunk_device_bytes(rows, int(np.ceil(hi)))
        return out


def estimate_chunks(
    a: CSRMatrix, b: CSRMatrix, grid: "ChunkGrid", est: RowNnzEstimate
) -> ChunkEstimates:
    """Distribute the per-row estimate over a chunk grid.

    A row's products split across column panels exactly (via B's column
    offsets); its estimated nnz splits proportionally — each chunk gets
    ``ratio_i * products_i[cp]``, clamped to the chunk's dense extent and
    product count.
    """
    row_bounds = grid.row_bounds
    col_bounds = grid.col_bounds
    n_r, n_c = grid.num_row_panels, grid.num_col_panels
    splits = build_col_offsets(b, col_bounds)
    per_row_per_panel = np.diff(splits, axis=1)  # (n_rows_B, C)
    per_elem = per_row_per_panel[a.col_ids, :]  # (nnz_A, C)
    row_ids = a.expand_row_ids()
    ratio = est.ratio()[row_ids]
    ratio_hi = est.ratio_hi()[row_ids]

    nnz = np.zeros((n_r, n_c), dtype=np.float64)
    nnz_hi = np.zeros((n_r, n_c), dtype=np.float64)
    products = np.zeros((n_r, n_c), dtype=np.int64)
    panel_rows = np.diff(row_bounds).astype(np.int64)
    for rp in range(n_r):
        e_lo = int(a.row_offsets[row_bounds[rp]])
        e_hi = int(a.row_offsets[row_bounds[rp + 1]])
        if e_hi == e_lo:
            continue
        block = per_elem[e_lo:e_hi, :]
        products[rp, :] = block.sum(axis=0)
        nnz[rp, :] = (block * ratio[e_lo:e_hi, None]).sum(axis=0)
        nnz_hi[rp, :] = (block * ratio_hi[e_lo:e_hi, None]).sum(axis=0)

    col_widths = np.diff(col_bounds).astype(np.int64)
    dense_extent = panel_rows[:, None] * col_widths[None, :]
    ceiling = np.minimum(products, dense_extent).astype(np.float64)
    nnz = np.minimum(nnz, ceiling)
    nnz_hi = np.minimum(np.maximum(nnz_hi, nnz), ceiling)
    return ChunkEstimates(grid, nnz, nnz_hi, products, panel_rows)


def choose_kernel(est: RowNnzEstimate) -> KernelSpec:
    """Pick an accumulator kernel from the estimated output density.

    The native C kernel dominates whenever the toolchain supports it.
    Otherwise: mostly-dense estimated rows favor the dense accumulator,
    mostly-sparse rows the vectorized ESC batch, and mixed workloads the
    ``auto`` dense/ESC split.
    """
    if native_available():
        return KernelSpec(kind="native")
    active = est.ub > 0
    if not active.any():
        return KernelSpec(kind="esc")
    density = est.row_nnz[active] / max(est.width, 1)
    dense_frac = float((density >= DENSE_THRESHOLD).mean())
    if dense_frac >= 0.5:
        return KernelSpec(kind="dense")
    if dense_frac <= 0.05:
        return KernelSpec(kind="esc")
    return KernelSpec(kind="auto")


def hybrid_ratio_from_estimate(est: RowNnzEstimate, flops: int, cost) -> float:
    """CPU/GPU hybrid split ratio from the estimated output size.

    Feeds the estimated nnz (not the upper bound) into the cost model's
    compression-ratio-scaled speedup S, returning the paper's optimal
    GPU share S / (S + 1).
    """
    nnz_out = max(int(round(est.total_nnz)), 1)
    speedup = cost.expected_gpu_speedup(max(int(flops), 1), nnz_out)
    return float(np.clip(speedup / (speedup + 1.0), 0.0, 1.0))
