"""Worst-case (upper-bound) estimates of output size.

Section IV.B of the paper discusses — and rejects — sizing device buffers
from upper bounds: "the gap between upper bounds and the actual sizes are
really large".  We implement the estimators anyway because (a) the hash
accumulator sizes its per-row tables from them, and (b) the ablation bench
quantifies exactly how loose they are (the paper's argument).

Two bounds are provided:

``row_upper_bound``
    the flops-based bound: every intermediate product could be a distinct
    output nonzero, so ``ub[i] = sum over A[i,k] of nnz(B[k,*])``.
``row_upper_bound_cols``
    the trivial clamp ``min(flops-bound, n_cols of B)`` — an output row
    cannot hold more nonzeros than the output width.
"""

from __future__ import annotations

import numpy as np

from ..sparse.formats import CSRMatrix
from .flops import flops_per_row

__all__ = ["row_upper_bound", "row_upper_bound_cols", "tightness"]


def row_upper_bound(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Flops-based per-row upper bound on nnz of ``(A x B)[i, *]``."""
    return flops_per_row(a, b) // 2


def row_upper_bound_cols(a: CSRMatrix, b: CSRMatrix) -> np.ndarray:
    """Upper bound clamped by the output width."""
    return np.minimum(row_upper_bound(a, b), b.n_cols)


def tightness(upper_bound: np.ndarray, actual: np.ndarray) -> float:
    """Aggregate looseness factor ``sum(ub) / sum(actual)`` (>= 1).

    The paper's observation is that this is "really large" for irregular
    matrices — our Table II analogs show factors of 1.1x (regular meshes)
    up to several x (social graphs).  Returns ``inf`` when the actual
    output is empty but the bound is not.
    """
    ub = int(np.asarray(upper_bound).sum())
    act = int(np.asarray(actual).sum())
    if act == 0:
        return float("inf") if ub else 1.0
    return ub / act
