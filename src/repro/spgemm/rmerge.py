"""Iterative row-merging SpGEMM (RMerge, Gremse et al. [16], [17]).

The third accumulation family from the paper's related work, alongside
hashing and ESC: each output row is the union of the (already sorted)
scaled B rows selected by the A row, so it can be produced by *merging*
— no hashing, no global sort.  RMerge does this hierarchically: rounds of
pairwise merges halve the number of lists per output row until one sorted
list remains, like a k-way merge-sort tree.

The vectorized formulation here performs each round *globally*: all pairs
across all output rows merge in one pass.  A merge round is implemented
with the stable-sort trick — concatenate the paired lists, lexsort by
(pair, column), combine equal-column runs — giving O(P log k) total work
with no per-row Python loops.

Slower in numpy than the hash/dense kernels (each round re-sorts), but an
independent oracle with very different failure modes, and the natural
kernel when inputs arrive pre-sorted.
"""

from __future__ import annotations

import numpy as np

from ..sparse.formats import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from .symbolic import PRODUCT_BATCH, row_batches
from .upperbound import row_upper_bound

__all__ = ["spgemm_rmerge"]


def _merge_round(list_ids, cols, vals):
    """One round: merge list 2i with list 2i+1 (globally, stable sort).

    ``list_ids`` are global list identifiers; entries within one list are
    column-sorted.  Returns the same triple with half as many lists and
    equal columns within a pair combined.
    """
    pair_ids = list_ids >> 1
    order = np.lexsort((cols, pair_ids))
    pair_ids, cols, vals = pair_ids[order], cols[order], vals[order]

    new = np.empty(pair_ids.size, dtype=bool)
    new[0] = True
    new[1:] = (pair_ids[1:] != pair_ids[:-1]) | (cols[1:] != cols[:-1])
    starts = np.flatnonzero(new)
    vals = np.add.reduceat(vals, starts)
    return pair_ids[starts], cols[starts], vals


def spgemm_rmerge(
    a: CSRMatrix, b: CSRMatrix, *, batch_products: int = PRODUCT_BATCH
) -> CSRMatrix:
    """``A x B`` by hierarchical row merging."""
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")

    ppr = row_upper_bound(a, b)
    out_offsets = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    col_parts, val_parts = [], []

    for lo, hi in row_batches(ppr, batch_products):
        a_lo, a_hi = int(a.row_offsets[lo]), int(a.row_offsets[hi])
        a_cols = a.col_ids[a_lo:a_hi]
        a_vals = a.data[a_lo:a_hi]
        if a_cols.size == 0:
            continue

        # every A element spawns one list: the scaled B row it selects.
        # lists are numbered so that the elements of one output row occupy
        # a power-of-two aligned block -> pairwise merging never crosses
        # output rows.
        a_rows_local = (
            np.repeat(np.arange(lo, hi, dtype=INDEX_DTYPE),
                      np.diff(a.row_offsets[lo : hi + 1]))
            - lo
        )
        pos_in_row = np.arange(a_cols.size, dtype=INDEX_DTYPE) - a.row_offsets[
            lo + a_rows_local
        ] + a_lo
        max_lists = int(np.diff(a.row_offsets[lo : hi + 1]).max())
        width = 1 << max(int(max_lists - 1).bit_length(), 0)  # next pow2 >= max_lists
        rounds = width.bit_length() - 1
        list_ids = a_rows_local * width + pos_in_row

        counts = b.row_nnz()[a_cols]
        total = int(counts.sum())
        starts = b.row_offsets[a_cols]
        exclusive = np.concatenate(
            [np.zeros(1, dtype=INDEX_DTYPE), np.cumsum(counts, dtype=INDEX_DTYPE)[:-1]]
        )
        src = np.repeat(starts - exclusive, counts) + np.arange(total, dtype=INDEX_DTYPE)

        cols = b.col_ids[src]
        vals = np.repeat(a_vals, counts) * b.data[src]
        lists = np.repeat(list_ids, counts)

        for _ in range(rounds):
            if lists.size == 0:
                break
            lists, cols, vals = _merge_round(lists, cols, vals)

        # after all rounds one list per output row remains: id = local row
        out_rows = lists + lo  # width collapsed to 1
        np.add.at(out_offsets, out_rows + 1, 1)
        col_parts.append(cols)
        val_parts.append(vals)

    np.cumsum(out_offsets, out=out_offsets)
    col_ids = (
        np.concatenate(col_parts) if col_parts else np.empty(0, dtype=INDEX_DTYPE)
    )
    data = (
        np.concatenate(val_parts) if val_parts else np.empty(0, dtype=VALUE_DTYPE)
    )
    return CSRMatrix(a.n_rows, b.n_cols, out_offsets, col_ids, data, check=False)
