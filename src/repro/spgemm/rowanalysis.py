"""Row analysis — the first stage of the spECK-style in-core kernel.

The paper (Fig. 3): "we launch a kernel to do row analysis of input
matrices, i.e., computing the number of floating-point operations
associated with each row.  Then, we transfer this collected information
from device memory to the host memory."  The host uses it to bin rows into
load-balance groups (:mod:`repro.spgemm.groups`), and the out-of-core
scheduler uses the totals to cost chunks.

This stage is cheap — O(nnz(A)) — which is precisely why the asynchronous
pipeline (Section IV.B) is willing to sacrifice overlap during it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.formats import CSRMatrix
from .flops import flops_per_row

__all__ = ["RowAnalysis", "analyze_rows"]


@dataclass(frozen=True)
class RowAnalysis:
    """Per-row flop counts plus the aggregates the schedulers need."""

    flops: np.ndarray  # int64, per row of A (multiply-add = 2 flops)

    @property
    def total_flops(self) -> int:
        return int(self.flops.sum())

    @property
    def num_products(self) -> int:
        return self.total_flops // 2

    @property
    def max_row_flops(self) -> int:
        return int(self.flops.max()) if self.flops.size else 0

    def nonempty_rows(self) -> np.ndarray:
        """Indices of rows that produce at least one product."""
        return np.flatnonzero(self.flops > 0)

    def transfer_bytes(self) -> int:
        """Size of the analysis result shipped device -> host (Fig. 3)."""
        return int(self.flops.nbytes)


def analyze_rows(a: CSRMatrix, b: CSRMatrix) -> RowAnalysis:
    """Run the row-analysis stage for ``A x B``."""
    return RowAnalysis(flops=flops_per_row(a, b))
