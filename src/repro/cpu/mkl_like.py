"""An MKL-style CPU SpGEMM with 32-bit index arrays.

The paper considers Intel MKL as the CPU baseline and rejects it: "since
MKL Library only supports integer as the data type for the arrays
row_offsets and col_ids, it cannot handle large matrices".  This module
reproduces that limitation faithfully so the test suite (and the Table II
discussion in EXPERIMENTS.md) can demonstrate *why* the framework insists
on int64: any matrix whose output would need offsets beyond ``INT32_MAX``
raises :class:`IndexWidthError` before computing, exactly as a 32-bit API
would overflow.

The kernel itself is a dense-accumulation row-wise SpGEMM (Patwary et
al.'s observation that dense arrays beat hash tables on multicore, also
cited by the paper).
"""

from __future__ import annotations

import numpy as np

from ..sparse.formats import CSRMatrix, VALUE_DTYPE
from ..spgemm.accumulators import dense_accumulate_rows
from ..spgemm.upperbound import row_upper_bound

__all__ = ["IndexWidthError", "spgemm_mkl_like", "INT32_MAX"]

INT32_MAX = np.iinfo(np.int32).max


class IndexWidthError(OverflowError):
    """The matrix needs index values a 32-bit CSR representation cannot hold."""


def _check_32bit(value: int, what: str) -> None:
    if value > INT32_MAX:
        raise IndexWidthError(
            f"{what} = {value} exceeds INT32_MAX ({INT32_MAX}); "
            "a 32-bit CSR library (MKL) cannot represent this matrix"
        )


def spgemm_mkl_like(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Dense-accumulation SpGEMM constrained to 32-bit index arithmetic.

    Raises :class:`IndexWidthError` when inputs or the (upper bound of
    the) output exceed 32-bit offsets — before any numeric work, the way
    a 32-bit API fails at allocation time.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    _check_32bit(max(a.n_rows, a.n_cols, b.n_cols), "matrix dimension")
    _check_32bit(a.nnz, "nnz(A)")
    _check_32bit(b.nnz, "nnz(B)")
    # an int32 row_offsets array overflows at total output nnz; the upper
    # bound is what an implementation must allocate against
    ub_total = int(row_upper_bound(a, b).sum())
    _check_32bit(ub_total, "upper bound of nnz(C)")

    rows = np.arange(a.n_rows, dtype=np.int64)
    res = dense_accumulate_rows(a, b, rows, with_values=True)
    row_offsets = np.zeros(a.n_rows + 1, dtype=np.int32)
    np.cumsum(res.counts, out=row_offsets[1:])
    return CSRMatrix(
        a.n_rows,
        b.n_cols,
        row_offsets.astype(np.int64),  # widen at the boundary, as a caller
        res.col_ids,                   # wrapping MKL would have to
        np.asarray(res.values, dtype=VALUE_DTYPE),
        check=False,
    )
