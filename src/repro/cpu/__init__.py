"""CPU executors: the multicore baseline and the MKL-like comparator."""

from .mkl_like import INT32_MAX, IndexWidthError, spgemm_mkl_like
from .nagasaka import balanced_row_ranges, spgemm_nagasaka

__all__ = [
    "INT32_MAX",
    "IndexWidthError",
    "spgemm_mkl_like",
    "balanced_row_ranges",
    "spgemm_nagasaka",
]
